#!/usr/bin/env python
"""Scenario: round-tripping contest artefacts (XMI models + TTC logs).

The TTC 2018 contest distributes its inputs as EMF/XMI model documents plus
per-step XMI change models, and collects solution measurements in a
semicolon-separated log its R scripts aggregate.  This example exercises the
full interchange path:

1. generate a synthetic benchmark input,
2. save it as ``initial.xmi`` + ``change*.xmi`` (the contest's layout),
3. reload those artefacts and run the incremental GraphBLAS solution on
   them,
4. emit the measurements in the contest's log format and aggregate them
   back into the Fig. 5 phase groups.

Run:  python examples/contest_interchange.py [scale_factor]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.benchmark.phases import PhaseTimes
from repro.benchmark.ttc_format import aggregate_times, parse, render_run
from repro.model import (
    load_change_sets_xmi,
    load_graph_xmi,
    save_change_sets_xmi,
    save_graph_xmi,
)
from repro.datagen import generate_benchmark_input
from repro.queries import Q1Incremental, Q2Incremental


def main(scale_factor: int = 2) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # 1-2: generate and serialise the contest artefacts
        graph, change_sets = generate_benchmark_input(scale_factor, seed=7)
        save_graph_xmi(root / "initial.xmi", graph)
        save_change_sets_xmi(root / "changes", change_sets)
        n_files = len(list((root / "changes").glob("change*.xmi")))
        print(f"wrote initial.xmi + {n_files} change models under {root}")

        # 3: a fresh process would start here -- reload everything
        updates = load_change_sets_xmi(root / "changes")
        probe = load_graph_xmi(root / "initial.xmi")
        print(
            f"reloaded: {probe.num_users} users, {probe.num_posts} posts, "
            f"{probe.num_comments} comments, {len(updates)} change sets\n"
        )

        # run both queries through the TTC phase structure; each gets a
        # pristine model (apply() mutates the graph)
        for query_cls, view in ((Q1Incremental, "Q1"), (Q2Incremental, "Q2")):
            model = load_graph_xmi(root / "initial.xmi")
            t0 = time.perf_counter()
            engine = query_cls(model)
            t1 = time.perf_counter()
            top = engine.initial()
            t2 = time.perf_counter()

            times = PhaseTimes(
                initialization=t1 - t0,
                load=0.0,  # the XMI load is shared; attribute it to neither
                initial=t2 - t1,
                results=[engine.result_string()],
            )
            print(f"{view} initial top-3: {top}")
            for cs in updates:
                t = time.perf_counter()
                delta = model.apply(cs)
                top = engine.update(delta)
                times.updates.append(time.perf_counter() - t)
                times.results.append(engine.result_string())
            print(f"{view} final top-3:   {top}")

            # 4: contest log lines + the Fig. 5 aggregation
            lines = render_run("GraphBLAS-Incr", view, f"sf{scale_factor}", 0, times)
            print(f"\nfirst TTC log lines for {view}:")
            for line in lines[:4]:
                print(f"  {line}")
            agg = aggregate_times(parse("\n".join(lines)))
            for (tool, v, cs_name, group), secs in sorted(agg.items()):
                print(f"  {group:<24} {secs * 1e3:8.2f} ms")
            print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
