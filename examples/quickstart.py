#!/usr/bin/env python
"""Quickstart: the paper's worked example (Fig. 3), end to end.

Builds the initial example graph, evaluates Q1 ("influential posts") and Q2
("influential comments") in batch mode, applies the six-element update of
Fig. 3b, and re-evaluates both incrementally -- printing every score the
paper states so you can check them against the figures.  A final section
runs the same update through the architecture the repo has grown into: a
:class:`~repro.serving.GraphService` serving the queries *and* a live
analytics tool from its versioned cache (see README.md and DESIGN.md; on a
multicore box ``REPRO_WORKERS=8 python examples/quickstart.py`` runs the
kernels row-parallel).

Run:  python examples/quickstart.py
"""

from repro.model import (
    AddComment,
    AddFriendship,
    AddLike,
    ChangeSet,
    SocialGraph,
)
from repro.queries import Q1Batch, Q1Incremental, Q2Batch, Q2Incremental
from repro.serving import GraphService


def build_initial_graph() -> SocialGraph:
    """Fig. 3a: 4 users, 2 posts, 3 comments, 2 friendships, 5 likes."""
    g = SocialGraph()
    for uid, name in ((101, "u1"), (102, "u2"), (103, "u3"), (104, "u4")):
        g.add_user(uid, name)
    g.add_post(11, timestamp=10, user_id=101)          # p1
    g.add_post(12, timestamp=11, user_id=102)          # p2
    g.add_comment(21, 20, 102, parent_id=11)           # c1 under p1
    g.add_comment(22, 21, 101, parent_id=21)           # c2, reply to c1
    g.add_comment(23, 22, 103, parent_id=12)           # c3 under p2
    g.add_friendship(102, 103)                         # u2 -- u3
    g.add_friendship(103, 104)                         # u3 -- u4
    g.add_like(102, 21)                                # u2 likes c1
    g.add_like(103, 21)                                # u3 likes c1
    g.add_like(101, 22)                                # u1 likes c2
    g.add_like(103, 22)                                # u3 likes c2
    g.add_like(104, 22)                                # u4 likes c2
    return g


def fig3b_update() -> ChangeSet:
    """The update inserting six entities (Fig. 3b)."""
    return ChangeSet(
        [
            AddFriendship(101, 104),        # (1) friends u1 -- u4
            AddLike(102, 22),               # (2) u2 likes c2
            AddComment(24, 30, 103, 21),    # (3)-(5) c4 under c1, root p1
            AddLike(104, 24),               # (6) u4 likes c4
        ]
    )


def main() -> None:
    graph = build_initial_graph()
    print("Initial graph:", graph)

    print("\n-- Initial evaluation (batch) --")
    q1 = Q1Batch(graph)
    print("Q1 scores (p1, p2):", q1.scores().to_dense().tolist(), "(paper: [25, 10])")
    print("Q1 top-3:", q1.result_string())
    q2 = Q2Batch(graph)
    print("Q2 scores (c1..c3):", q2.scores().to_dense().tolist(), "(paper: [4, 5, 0])")
    print("Q2 top-3:", q2.result_string())

    print("\n-- Incremental evaluation across the Fig. 3b update --")
    graph2 = build_initial_graph()
    q1_inc = Q1Incremental(graph2)
    q2_inc = Q2Incremental(graph2)
    q1_inc.initial()
    q2_inc.initial()

    delta = graph2.apply(fig3b_update())
    print("applied:", fig3b_update().summary())
    print("Q1 top-3 after update:", "|".join(str(i) for i, _ in q1_inc.update(delta)))
    print("Q1 scores:", q1_inc.scores.to_dense().tolist(), "(paper: [37, 10])")
    print("Q2 top-3 after update:", "|".join(str(i) for i, _ in q2_inc.update(delta)))
    print("Q2 scores:", q2_inc.scores.to_dense().tolist(), "(paper: [4, 16, 0, 1])")

    print("\n-- The same update, served (GraphService + analytics) --")
    with GraphService(
        build_initial_graph(),
        tools=("graphblas-incremental",),
        analytics=("components",),
    ) as svc:
        svc.submit(fig3b_update())
        svc.flush()
        print("service:", svc)
        print("Q1 cached read:", svc.query("Q1").result_string)
        print("Q2 cached read:", svc.query("Q2").result_string)
        print("friend components (rep, size):", svc.query("components").top)


if __name__ == "__main__":
    main()
