#!/usr/bin/env python
"""Scenario: absorbing a high-rate edge stream with updatable storage.

The paper's future work proposes swapping rebuild-on-update CSR for an
updatable compressed format (faimGraph / Hornet).  This example streams the
benchmark's like-edge inserts into all three storage strategies the
repository implements and prints per-batch costs and the dynamic format's
arena statistics -- the trade-off the paper's proposal is about:

* rebuild:   re-canonicalise the whole matrix per batch   (O(nnz) each)
* log-flush: merge a sorted batch into the canonical form (O(nnz) merge)
* dynamic:   amortised O(degree) appends into row blocks with slack

Run:  python examples/dynamic_storage.py [scale_factor]
"""

import sys
import time

import numpy as np

from repro.datagen import generate_benchmark_input
from repro.graphblas import DynamicMatrix, Matrix, ops
from repro.graphblas.types import BOOL


def edge_stream(scale_factor: int):
    """Initial likes matrix + per-change-set (comment, user) insert batches."""
    graph, change_sets = generate_benchmark_input(scale_factor, seed=42)
    batches = []
    for cs in change_sets:
        delta = graph.apply(cs)
        c, u = delta.new_likes
        batches.append((c, u))
    r, c, v = graph.likes.to_coo()
    inserted = set()
    for bc, bu in batches:
        inserted.update(zip(bc.tolist(), bu.tolist()))
    keep = np.array(
        [(i, j) not in inserted for i, j in zip(r.tolist(), c.tolist())], dtype=bool
    )
    initial = Matrix.from_coo(
        r[keep], c[keep], v[keep], graph.likes.nrows, graph.likes.ncols, dtype=BOOL
    )
    return initial, batches


def main(scale_factor: int = 8) -> None:
    initial, batches = edge_stream(scale_factor)
    total_inserts = sum(b[0].size for b in batches)
    print(
        f"likes matrix: {initial.nrows} x {initial.ncols}, "
        f"{initial.nvals} edges; stream of {len(batches)} batches, "
        f"{total_inserts} inserts\n"
    )

    # -- strategy 1: rebuild per batch ----------------------------------
    t = time.perf_counter()
    rows, cols, vals = initial.to_coo()
    for bc, bu in batches:
        rows = np.concatenate([rows, bc])
        cols = np.concatenate([cols, bu])
        vals = np.concatenate([vals, np.ones(bc.size, dtype=vals.dtype)])
        rebuilt = Matrix.from_coo(
            rows, cols, vals, initial.nrows, initial.ncols, dtype=BOOL, dup_op=ops.lor
        )
    t_rebuild = time.perf_counter() - t

    # -- strategy 2: log-flush merge -------------------------------------
    t = time.perf_counter()
    flushed = initial.dup()
    for bc, bu in batches:
        flushed.assign_coo(bc, bu, True, accum=ops.lor)
    t_logflush = time.perf_counter() - t

    # -- strategy 3: dynamic blocks --------------------------------------
    t = time.perf_counter()
    dyn = DynamicMatrix.from_matrix(initial, slack=0.25)
    for bc, bu in batches:
        dyn.assign_coo(bc, bu, True, accum=ops.lor)
    t_dynamic = time.perf_counter() - t

    assert rebuilt.isequal(flushed) and flushed.isequal(dyn.to_matrix())

    per_batch = len(batches)
    print(f"{'strategy':<12} {'total':>10} {'per batch':>12}")
    for name, secs in (
        ("rebuild", t_rebuild),
        ("log-flush", t_logflush),
        ("dynamic", t_dynamic),
    ):
        print(f"{name:<12} {secs * 1e3:9.2f}ms {secs / per_batch * 1e6:10.1f}us")

    stats = dyn.memory_stats()
    print(
        f"\ndynamic arena after the stream: "
        f"{stats['filled_slots']} filled / {stats['allocated_slots']} allocated "
        f"slots ({stats['utilisation']:.0%} utilisation), "
        f"{stats['relocations']} block relocations, "
        f"{stats['free_list_slots']} slots parked on free lists"
    )
    print(
        "\nshape to expect: rebuild grows with matrix size, the other two "
        "with change size;\nthe dynamic format trades slack memory for "
        "sort-free appends (see benchmarks/bench_ablation_dynamic.py)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
