#!/usr/bin/env python
"""Scenario: a live "trending content" dashboard served by GraphService.

This is the workload the paper's introduction motivates -- serving
trending recommendations over connected data that changes continuously.
Where earlier revisions of this example drove the query engines by hand,
it now runs the real serving stack (:class:`repro.serving.GraphService`):
a synthetic social network is stood up behind a persistent service, a
stream of single changes arrives (tripping the micro-batcher's coalescing
thresholds), dashboard reads are served O(1) from the versioned result
cache, and at the end the service is killed and recovered from its
snapshot + change log to show the crash story.

The per-batch cost of an engine that recomputes from scratch is printed
alongside for comparison, as before.

Run:  python examples/trending_dashboard.py [scale_factor]
"""

import shutil
import sys
import tempfile
import time

from repro.datagen import generate_benchmark_input
from repro.queries import Q1Batch, Q2Batch
from repro.serving import GraphService


def main(scale_factor: int = 4) -> None:
    print(f"generating synthetic network at scale factor {scale_factor} ...")
    graph, stream = generate_benchmark_input(
        scale_factor, seed=2024, num_change_sets=8
    )
    stats = graph.stats()
    print(
        f"network: {stats['users']} users, {stats['posts']} posts, "
        f"{stats['comments']} comments, {stats['edges']} edges\n"
    )

    data_dir = tempfile.mkdtemp(prefix="trending-dashboard-")
    service = GraphService(
        graph,
        tools=("graphblas-incremental",),
        max_batch=64,
        max_delay_ms=25.0,
        data_dir=data_dir,
        snapshot_every=4,
    )
    try:
        t0 = time.perf_counter()
        q1 = service.query("Q1")
        q2 = service.query("Q2")
        print(f"service up in {time.perf_counter() - t0:.3f}s (version {q1.version})")
        print(f"  trending posts:    {q1.result_string}")
        print(f"  trending comments: {q2.result_string}\n")

        batch_total = 0.0
        shown_version = 0
        for step, batch in enumerate(stream, start=1):
            t0 = time.perf_counter()
            for change in batch:  # one submit per change, like live traffic
                service.submit(change)
            service.flush()
            ingest_dt = time.perf_counter() - t0

            # the dashboard read: O(1) against the cached current version
            top_posts = service.query("Q1")
            top_comments = service.query("Q2")

            # what a recomputing engine would have paid for the freshness
            t0 = time.perf_counter()
            Q1Batch(service.graph).evaluate()
            Q2Batch(service.graph, algorithm="unionfind").evaluate()
            batch_dt = time.perf_counter() - t0
            batch_total += batch_dt

            print(
                f"step {step}: +{len(batch)} changes -> v{top_posts.version} | "
                f"ingest {ingest_dt * 1e3:6.1f} ms vs recompute "
                f"{batch_dt * 1e3:6.1f} ms | posts {top_posts.result_string} | "
                f"comments {top_comments.result_string}"
            )
            shown_version = top_posts.version

        ops = service.stats()["ops"]
        inc_total = ops["apply"]["total_s"]
        speedup = batch_total / max(inc_total, 1e-9)
        print(
            f"\nstream total: service apply {inc_total:.3f}s, "
            f"recomputation {batch_total:.3f}s  ({speedup:.1f}x saved)"
        )
        print(
            f"reads: {ops['query']['count']} served, "
            f"p50 {ops['query']['p50_ms']:.4f} ms, "
            f"p99 {ops['query']['p99_ms']:.4f} ms"
        )
        final_q1 = service.query("Q1").result_string

        # -- the crash story -------------------------------------------
        print("\nkilling the service (no clean shutdown) ...")
        del service
        service = None
        t0 = time.perf_counter()
        recovered = GraphService.recover(
            data_dir, tools=("graphblas-incremental",), max_batch=64
        )
        snap, replayed = recovered._recovered_from
        print(
            f"recovered in {time.perf_counter() - t0:.3f}s from snapshot "
            f"v{snap} + {replayed} replayed batch(es) -> v{recovered.version}"
        )
        same = recovered.query("Q1").result_string == final_q1
        assert recovered.version == shown_version and same
        print(f"dashboard identical after recovery: {same}")
        recovered.close()
    finally:
        if service is not None:
            service.close()
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
