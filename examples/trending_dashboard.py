#!/usr/bin/env python
"""Scenario: a live "trending content" dashboard over a social-media stream.

This is the workload the paper's introduction motivates -- serving
personalised/trending recommendations over connected data that changes
continuously.  A synthetic social network is generated, then a stream of
insert batches arrives; the incremental GraphBLAS engines keep both top-3
leaderboards fresh after every batch, at a small fraction of the cost of
recomputation (the per-batch timings are printed for comparison).

Run:  python examples/trending_dashboard.py [scale_factor]
"""

import sys
import time

from repro.datagen import generate_benchmark_input
from repro.queries import Q1Batch, Q1Incremental, Q2Batch, Q2Incremental


def main(scale_factor: int = 4) -> None:
    print(f"generating synthetic network at scale factor {scale_factor} ...")
    graph, stream = generate_benchmark_input(
        scale_factor, seed=2024, num_change_sets=8
    )
    stats = graph.stats()
    print(
        f"network: {stats['users']} users, {stats['posts']} posts, "
        f"{stats['comments']} comments, {stats['edges']} edges\n"
    )

    q1 = Q1Incremental(graph)
    q2 = Q2Incremental(graph, algorithm="incremental")
    t0 = time.perf_counter()
    q1.initial()
    q2.initial()
    print(f"initial evaluation: {time.perf_counter() - t0:.3f}s")
    print(f"  trending posts:    {q1.result_string()}")
    print(f"  trending comments: {q2.result_string()}\n")

    inc_total = 0.0
    batch_total = 0.0
    for step, batch in enumerate(stream, start=1):
        delta = graph.apply(batch)

        t0 = time.perf_counter()
        top_posts = q1.update(delta)
        top_comments = q2.update(delta)
        inc_dt = time.perf_counter() - t0
        inc_total += inc_dt

        # what a recomputing engine would have paid for the same freshness
        t0 = time.perf_counter()
        Q1Batch(graph).evaluate()
        Q2Batch(graph, algorithm="unionfind").evaluate()
        batch_dt = time.perf_counter() - t0
        batch_total += batch_dt

        posts = "|".join(str(i) for i, _ in top_posts)
        comments = "|".join(str(i) for i, _ in top_comments)
        print(
            f"batch {step}: +{len(batch)} elements | "
            f"incremental {inc_dt * 1e3:6.1f} ms vs batch {batch_dt * 1e3:6.1f} ms | "
            f"posts {posts} | comments {comments}"
        )

    speedup = batch_total / max(inc_total, 1e-9)
    print(
        f"\nstream total: incremental {inc_total:.3f}s, "
        f"recomputation {batch_total:.3f}s  ({speedup:.1f}x saved)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
