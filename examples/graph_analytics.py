#!/usr/bin/env python
"""Scenario: the algorithm layer served live against a change stream.

Earlier revisions of this example ran the ``repro.lagraph`` algorithms
once, offline, on a synthetic matrix.  The repo now serves them: a
:class:`~repro.serving.GraphService` registers the analytics tools next to
the paper's Q2, ingests a generated social-network change stream in
micro-batches, and answers every read from its versioned cache --
incremental tools (``components``, ``degree``) exact at every version,
dirty-threshold tools (``pagerank``, ``cdlp``, ``triangles``) recomputing
only when enough of the friends graph changed, serving staleness-tagged
results in between.

Run:  PYTHONPATH=src python examples/graph_analytics.py
(on a multicore box, prefix with REPRO_WORKERS=8 for row-parallel kernels)
"""

from repro.datagen import generate_benchmark_input
from repro.serving import GraphService

ANALYTICS = ("components", "degree", "pagerank", "cdlp", "triangles")


def fmt(result) -> str:
    top = ", ".join(
        f"{ext}:{score:.3f}" if isinstance(score, float) else f"{ext}:{score}"
        for ext, score in result.top
    )
    stale = f"  [stale {result.staleness} batch(es)]" if result.staleness else ""
    return f"[{top}]{stale}"


def dashboard(svc: GraphService) -> None:
    print(f"  v{svc.version:<3} "
          f"users={svc.graph.num_users} friendships={svc.graph.stats()['friendships']}")
    print(f"    Q2 influential comments  {svc.query('Q2').result_string}")
    print(f"    largest components       {fmt(svc.query('components'))}")
    print(f"    top degree               {fmt(svc.query('degree'))}")
    print(f"    top pagerank             {fmt(svc.query('pagerank'))}")
    print(f"    largest communities      {fmt(svc.query('cdlp'))}")
    print(f"    most triangles           {fmt(svc.query('triangles'))}")


def main() -> None:
    graph, change_sets = generate_benchmark_input(scale_factor=4, seed=7)
    changes = [ch for cs in change_sets for ch in cs]
    print(f"initial graph: {graph}")
    print(f"streaming {len(changes)} changes through {len(ANALYTICS)} analytics "
          f"tools + Q2...\n")

    svc = GraphService(
        graph,
        queries=("Q2",),
        tools=("graphblas-incremental",),
        analytics=ANALYTICS,
        analytics_threshold=0.01,  # dirty tools recompute at 1% graph churn
        max_batch=8,
        max_delay_ms=1e9,
    )
    try:
        report_every = max(1, len(changes) // (4 * 8)) * 8
        for i, ch in enumerate(changes):
            svc.submit(ch)
            if (i + 1) % report_every == 0:
                dashboard(svc)
        svc.flush()
        print("\nfinal state:")
        dashboard(svc)

        ops = svc.stats()["ops"]
        print("\nmaintenance cost per applied batch (p50 ms):")
        for name in ANALYTICS:
            s = ops[f"refresh[{name}]"]
            print(f"  {name:<12} {s['p50_ms']:>8.3f}  (count {s['count']})")
        print(f"  apply p50 {ops['apply']['p50_ms']:.3f} ms, "
              f"read p99 {ops['query']['p99_ms']:.4f} ms")
    finally:
        svc.close()


if __name__ == "__main__":
    main()
