#!/usr/bin/env python
"""Scenario: fraud-ring analysis with the GraphBLAS substrate directly.

The case-study queries are two of many linear-algebraic graph computations;
this example uses the same substrate (``repro.graphblas`` + ``repro.lagraph``)
as a general-purpose toolkit on a synthetic transaction network:

* connected components (FastSV)     -- collusion cluster discovery
* BFS levels                        -- proximity of accounts to a known bad actor
* PageRank                          -- influence ranking
* triangle count                    -- local density (ring-like structure)
* strongly connected components     -- money-cycling groups (directed cycles)
* minimum spanning forest           -- cheapest audit backbone per cluster
* one masked SpGEMM                 -- "suspicious pairs": two hops within a cluster

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import graphblas as gb
from repro.graphblas import monoid, ops, semiring
from repro.lagraph import (
    bfs_levels,
    fastsv,
    minimum_spanning_forest,
    pagerank,
    scc,
    triangle_count,
)


def build_transaction_graph(n: int = 400, seed: int = 7) -> gb.Matrix:
    """Synthetic directed transaction graph with a few dense rings."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, n * 4)
    dst = rng.integers(0, n, n * 4)
    # plant three dense fraud rings of 8 accounts each
    rings = []
    for base in (10, 150, 300):
        members = np.arange(base, base + 8)
        ring_src, ring_dst = np.meshgrid(members, members)
        rings.append((ring_src.ravel(), ring_dst.ravel()))
    src = np.concatenate([src] + [r[0] for r in rings])
    dst = np.concatenate([dst] + [r[1] for r in rings])
    keep = src != dst
    return gb.Matrix.from_coo(
        src[keep], dst[keep], True, n, n, dtype=gb.BOOL, dup_op=ops.lor
    )


def main() -> None:
    a = build_transaction_graph()
    n = a.nrows
    sym = a.ewise_add(a.transpose(), ops.lor)  # undirected view
    print(f"transaction graph: {n} accounts, {a.nvals} directed edges")

    labels = fastsv(sym).to_dense()
    comps, sizes = np.unique(labels, return_counts=True)
    print(f"\nconnected components: {comps.size} (largest: {sizes.max()} accounts)")

    levels = bfs_levels(sym, source=10).to_dense(fill=-1)
    within2 = int(((levels >= 0) & (levels <= 2)).sum())
    print(f"accounts within 2 hops of known-bad account 10: {within2}")

    pr = pagerank(a).to_dense()
    top = np.argsort(-pr)[:5]
    print("top-5 PageRank accounts:", top.tolist())

    tri = triangle_count(sym)
    print(f"triangles (ring density signal): {tri}")

    # money cycling: accounts in a directed cycle form non-trivial SCCs
    scc_labels = scc(a).to_dense()
    _, scc_sizes = np.unique(scc_labels, return_counts=True)
    cycles = scc_sizes[scc_sizes > 1]
    print(
        f"money-cycling groups (SCCs > 1): {cycles.size} "
        f"(largest: {cycles.max() if cycles.size else 0} accounts)"
    )

    # audit backbone: cheapest edge set connecting each cluster, weighting
    # each relation by how *few* shared neighbours it has (rare links first)
    r, c, _ = sym.to_coo()
    weights = 1.0 / (1.0 + np.minimum(r % 7, c % 7))  # deterministic demo weights
    weighted = gb.Matrix.from_coo(r, c, weights, n, n, dtype=gb.FP64, dup_op=ops.min)
    backbone = minimum_spanning_forest(weighted)
    print(f"audit backbone: {len(backbone)} edges, total cost {sum(w for _, _, w in backbone):.1f}")

    # suspicious pairs: accounts sharing >= 4 distinct intermediaries,
    # restricted (via mask) to pairs already directly connected
    common = sym.mxm(
        sym,
        semiring.get("plus_pair"),
        mask=gb.Mask(sym, structure=True),
    ).select(ops.valuege, 4)
    print(f"directly-linked pairs with >=4 shared intermediaries: {common.nvals}")
    hottest = max(common.items(), key=lambda rcv: rcv[2], default=None)
    if hottest:
        r, c, v = hottest
        print(f"hottest pair: accounts {r} and {c} share {v} intermediaries")


if __name__ == "__main__":
    main()
