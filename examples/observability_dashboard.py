#!/usr/bin/env python
"""Scenario: watching the serving stack run, via the ``repro.obs`` layer.

A sharded service ingests a synthetic change stream while every kind of
telemetry the observability layer offers is live:

* a :class:`repro.obs.Tracer` collects one connected span tree per
  micro-batch (router -> scatter -> shards -> engine refreshes) and the
  run ends by dumping a Chrome trace-event file you can open in
  ``chrome://tracing`` or Perfetto;
* each step re-renders a plain-text dashboard from the services' typed
  metric registries (queue depth, batch sizes, WAL bytes, cache hit
  rate, shard fan-out balance) plus the ``OpMetrics`` latency
  percentiles -- the same numbers ``metrics_text()`` serves as
  Prometheus exposition;
* the slowest span tree of the run is replayed at the end as an
  indented waterfall, straight from the structured span log.

Run:  python examples/observability_dashboard.py [scale_factor]
"""

import shutil
import sys
import tempfile

from repro.datagen import generate_benchmark_input
from repro.obs import Tracer, set_tracer
from repro.sharding import ShardedGraphService

TRACE_OUT = "observability_trace.json"


def render_dashboard(step: int, service: ShardedGraphService) -> None:
    """One plain-text frame from the live registries."""
    stats = service.stats()
    m = stats["metrics"]
    ops = stats["ops"]
    cache_rates = []
    for shard in service._shards:
        c = shard.stats()["ops"]["cache"]
        cache_rates.append(c["hit_rate"])
    batch = m.get("repro_batch_size", {})
    skew = m.get("repro_scatter_skew", {})
    fanout = m.get("repro_shard_changes_total", {})
    print(f"-- step {step}: version {stats['version']} " + "-" * 40)
    print(
        f"   batches   count {batch.get('count', 0):>5}   "
        f"p50 size {batch.get('p50', 0):>4}   p99 size {batch.get('p99', 0):>4}"
    )
    print(
        f"   wal bytes {m.get('repro_wal_bytes_total', 0):>11,}   "
        f"queue depth {m.get('repro_ingest_queue_depth', 0)}"
    )
    if fanout:
        shares = "  ".join(f"{k}:{v}" for k, v in sorted(fanout.items()))
        print(
            f"   fan-out   {shares}   scatter skew p99 "
            f"{skew.get('p99', 1.0):.2f} (1.0 = balanced)"
        )
    print(
        "   cache hit-rate per shard  "
        + "  ".join(f"{r:.2f}" for r in cache_rates)
    )
    if "scatter" in ops:
        print(
            f"   scatter p50 {ops['scatter']['p50_ms']:7.2f} ms   "
            f"p99 {ops['scatter']['p99_ms']:7.2f} ms   "
            f"read p99 {ops['query']['p99_ms']:.4f} ms"
        )


def waterfall(tracer: Tracer) -> None:
    """Replay the slowest batch's span tree as an indented waterfall."""
    spans = tracer.finished()
    slowest = max(
        (s for s in spans if s["name"] in ("flush", "submit")),
        key=lambda s: s["duration"],
    )
    children: dict = {}
    for s in spans:
        children.setdefault(s["parent_id"], []).append(s)
    print(f"\nslowest write ({slowest['duration'] * 1e3:.2f} ms):")

    def walk(span, depth):
        label = " ".join(f"{k}={v}" for k, v in sorted(span["attrs"].items()))
        print(
            f"   {'  ' * depth}{span['name']:<10}"
            f"{span['duration'] * 1e3:8.2f} ms  {label}"
        )
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    walk(slowest, 0)


def main(scale_factor: int = 4) -> None:
    tracer = Tracer()
    set_tracer(tracer)

    print(f"generating synthetic network at scale factor {scale_factor} ...")
    graph, stream = generate_benchmark_input(
        scale_factor, seed=2024, num_change_sets=6
    )
    data_dir = tempfile.mkdtemp(prefix="obs-dashboard-")
    service = ShardedGraphService(
        graph,
        shards=2,
        tools=("graphblas-incremental",),
        analytics=("degree",),
        max_batch=16,
        max_delay_ms=1e9,
        data_dir=data_dir,
    )
    tracer.clear()  # construction spans are not the stream's story
    try:
        for step, batch in enumerate(stream, start=1):
            for change in batch:
                service.submit(change)
            service.flush()
            service.query("Q1")
            service.query("degree")
            render_dashboard(step, service)

        print("\nprometheus exposition (first lines of metrics_text()):")
        for line in service.metrics_text().splitlines()[:8]:
            print(f"   {line}")

        waterfall(tracer)

        tracer.dump(TRACE_OUT)
        print(
            f"\n{len(tracer.finished())} spans -> {TRACE_OUT} "
            f"(open in chrome://tracing or Perfetto)"
        )
    finally:
        set_tracer(None)
        service.close()
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
