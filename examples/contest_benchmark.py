#!/usr/bin/env python
"""Scenario: re-run the TTC 2018 contest benchmark, paper-style.

Drives the full benchmark harness over all six Fig. 5 tool configurations at
small scale factors (fast enough for a laptop) and prints both Fig. 5 panels
per query as tables and ASCII log-log charts, plus the regenerated Table II.

Run:  python examples/contest_benchmark.py [max_scale_factor]
Environment: REPRO_MAX_SF overrides the default of 4.
"""

import os
import sys

from repro.benchmark import BenchmarkConfig, run_benchmark
from repro.benchmark.runner import FIG5_TOOLS, _fig5_report, _table2_report
from repro.datagen.table2 import scale_factors


def main(max_sf: int) -> None:
    print("=" * 72)
    print("Table II regeneration")
    print("=" * 72)
    _table2_report(max_sf, seed=42)

    sfs = tuple(sf for sf in scale_factors() if sf <= max_sf)
    config = BenchmarkConfig(
        queries=("Q1", "Q2"),
        tools=FIG5_TOOLS,
        scale_factors=sfs,
        runs=3,
        seed=42,
    )
    print()
    print("=" * 72)
    print(f"Fig. 5 sweep: SF {sfs}, {config.runs} runs, geometric mean")
    print("=" * 72)

    def progress(res):
        print(
            f"  {res.query} SF{res.scale_factor:<4} {res.tool:<26}"
            f" load+init={res.load_and_initial:8.4f}s"
            f" update+reeval={res.update_and_reevaluation:8.4f}s"
        )

    results = run_benchmark(config, progress=progress)
    print()
    _fig5_report(results)


if __name__ == "__main__":
    default = int(os.environ.get("REPRO_MAX_SF", 4))
    main(int(sys.argv[1]) if len(sys.argv) > 1 else default)
