"""Ablation A2 (future-work item (2)): connected-components strategy in Q2.

Compares the update-phase cost of the three Q2Incremental component kernels:

* ``fastsv``      -- the paper's published design (re-run FastSV per affected comment)
* ``unionfind``   -- batch union-find re-run (cheaper constants, same asymptotics)
* ``incremental`` -- dynamically maintained components (Ediger-style), the
                     paper's proposed optimisation

The paper predicts the incremental algorithm wins on the update phase; the
load+initial phase pays for building the dynamic state (also measured).
"""

from __future__ import annotations

import pytest

from conftest import SCALE_FACTORS, fresh_input
from repro.queries import Q2Incremental

ALGORITHMS = ("fastsv", "unionfind", "incremental")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_q2_update_by_cc_strategy(benchmark, scale_factor, algorithm):
    benchmark.group = f"ablation-inc-cc-update-sf{scale_factor}"

    def setup():
        graph, change_sets = fresh_input(scale_factor)
        q = Q2Incremental(graph, algorithm=algorithm)
        q.initial()
        return (graph, q, change_sets), {}

    def phase(graph, q, change_sets):
        out = None
        for cs in change_sets:
            delta = graph.apply(cs)
            out = q.update(delta)
        return out

    result = benchmark.pedantic(phase, setup=setup, rounds=3)
    assert result


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_q2_initial_by_cc_strategy(benchmark, scale_factor, algorithm):
    benchmark.group = f"ablation-inc-cc-initial-sf{scale_factor}"

    def setup():
        graph, _ = fresh_input(scale_factor)
        return (Q2Incremental(graph, algorithm=algorithm),), {}

    result = benchmark.pedantic(lambda q: q.initial(), setup=setup, rounds=3)
    assert result is not None
