"""Gateway overload benchmark: open-loop load against the live front door.

Boots the full stack in-process -- ``GraphService`` under a
:class:`repro.gateway.Gateway` under the asyncio
:class:`~repro.gateway.GatewayServer` -- and drives **open-loop** HTTP
load at multiples of the configured admission capacity (0.5x, 1x, 4x).
Open-loop means arrivals follow a fixed schedule regardless of response
times: a request that finds the client behind schedule still counts its
latency from its *scheduled* arrival instant, so queueing delay is
charged honestly instead of silently thinning the arrival stream
(coordinated omission).

Per offered rate the record reports admitted vs shed (429-class)
volumes, p50/p99 latency of the *admitted* requests, read outcomes for a
20% read mix under a deadline header, and -- after a graceful
``/drain`` -- the version-continuity check: every admitted write must be
an applied version (``applied == tickets``), overload or not.

Script mode::

    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke

writes ``BENCH_gateway.json`` (committed copy:
``benchmarks/BENCH_gateway.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.gateway import Gateway, GatewayServer
from repro.serving import GraphService

LOAD_FACTORS = (0.5, 1.0, 4.0)
READ_MIX = 0.2          # every 5th request is a GET /read
READ_DEADLINE_MS = 250
TOOLS = ("graphblas-incremental",)

_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_gateway.json"


def _post(url, body: bytes, timeout=5.0):
    req = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as r:
            return r.status
    except urllib.error.HTTPError as e:
        return e.code


def _get(url, headers=None, timeout=5.0):
    req = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as r:
            r.read()
            return r.status
    except urllib.error.HTTPError as e:
        return e.code


def run_config(load_factor: float, capacity: float, duration_s: float,
               queue_limit: int, workers: int = 8) -> dict:
    """One offered rate against a fresh stack; returns the measurements."""
    service = GraphService(tools=TOOLS, max_batch=32, max_delay_ms=5.0)
    gateway = Gateway(
        service,
        queue_limit=queue_limit,
        classes={"default": (capacity, max(capacity / 20.0, 1.0))},
    )
    server = GatewayServer.run_in_thread(gateway, pump_interval_s=0.002)
    base = server.url

    n_offered = int(capacity * load_factor * duration_s)
    gap = duration_s / max(n_offered, 1)
    # user ids unique across the run so the engine never rejects writes
    schedule = [(i, i * gap) for i in range(n_offered)]
    lock = threading.Lock()
    cursor = [0]
    outcomes = {"202": 0, "429": 0, "200": 0, "503": 0, "504": 0, "other": 0}
    latencies: list[float] = []   # admitted submits, from scheduled arrival
    t_start = time.perf_counter() + 0.05

    def worker():
        while True:
            with lock:
                if cursor[0] >= len(schedule):
                    return
                i, t_sched = schedule[cursor[0]]
                cursor[0] += 1
            now = time.perf_counter() - t_start
            if now < t_sched:
                time.sleep(t_sched - now)
            if i % int(1 / READ_MIX) == 1:
                status = _get(base + "/read?query=Q1",
                              headers={"X-Deadline-Ms": str(READ_DEADLINE_MS)})
            else:
                body = json.dumps(
                    {"changes": [["U", 10_000 + i, f"u{i}"]]}
                ).encode()
                status = _post(base + "/submit", body)
            elapsed = (time.perf_counter() - t_start) - t_sched
            with lock:
                key = str(status)
                outcomes[key if key in outcomes else "other"] += 1
                if status == 202:
                    latencies.append(elapsed)

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    stats = gateway.stats()
    max_wait = stats["ops"].get("pump", {}).get("max_ms", 0.0)
    server.shutdown(drain=True)   # graceful drain flushes the queue
    drained = gateway.stats()
    service.close()

    lat = np.asarray(latencies) if latencies else np.asarray([0.0])
    return {
        "load_factor": load_factor,
        "offered": n_offered,
        "offered_per_s": round(capacity * load_factor, 1),
        "outcomes": outcomes,
        "admit_p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
        "admit_p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
        "pump_max_ms": max_wait,
        "tickets": drained["tickets"],
        "applied": drained["applied"],
        "rejected": drained["rejected"],
        "no_admitted_write_lost": (
            drained["applied"] + drained["rejected"] == drained["tickets"]
            and drained["rejected"] == 0
        ),
        "final_version": drained["service_version"],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small fixed CI workload")
    ap.add_argument("--capacity", type=float, default=400.0,
                    help="admission capacity (token rate, req/s)")
    ap.add_argument("--duration", type=float, default=4.0,
                    help="seconds of offered load per config")
    ap.add_argument("--queue-limit", type=int, default=64)
    args = ap.parse_args(argv)
    capacity = 200.0 if args.smoke else args.capacity
    duration = 1.5 if args.smoke else args.duration

    print(
        f"gateway bench: capacity {capacity:.0f} req/s, duration "
        f"{duration}s/config, queue_limit {args.queue_limit}, "
        f"read mix {READ_MIX:.0%} (deadline {READ_DEADLINE_MS}ms)"
    )
    print(
        f"{'offered':>10} {'202':>6} {'429':>6} {'200':>6} {'504':>6} "
        f"{'p50 ms':>8} {'p99 ms':>8}  writes"
    )

    failures = 0
    configs = []
    for f in LOAD_FACTORS:
        r = run_config(f, capacity, duration, args.queue_limit)
        configs.append(r)
        o = r["outcomes"]
        ok = r["no_admitted_write_lost"]
        print(
            f"{f:>9.1f}x {o['202']:>6} {o['429']:>6} {o['200']:>6} "
            f"{o['504']:>6} {r['admit_p50_ms']:>8.2f} "
            f"{r['admit_p99_ms']:>8.2f}  "
            f"{'all applied' if ok else 'LOST WRITES'}"
        )
        if not ok:
            failures += 1

    overloaded = [c for c in configs if c["load_factor"] >= 4.0]
    record = {
        "workload": {
            "capacity_per_s": capacity,
            "duration_s": duration,
            "queue_limit": args.queue_limit,
            "load_factors": list(LOAD_FACTORS),
            "read_mix": READ_MIX,
            "read_deadline_ms": READ_DEADLINE_MS,
            "tools": list(TOOLS),
        },
        "cpu_count": os.cpu_count(),
        "configs": configs,
        "note": (
            "open-loop arrivals (latency charged from scheduled arrival, "
            "so overload queueing is not hidden by coordinated omission); "
            "client, gateway and engine share one Python process, so "
            "absolute latencies include GIL contention -- the numbers to "
            "read are the shed ratios and the admitted-path p99 staying "
            "flat between 0.5x and 4x offered load"
        ),
        "sheds_under_overload": bool(
            overloaded and all(c["outcomes"]["429"] > 0 for c in overloaded)
        ),
        "no_admitted_write_lost": failures == 0,
    }
    out_path = Path("BENCH_gateway.json")
    if out_path.resolve() == _BASELINE_PATH:
        out_path = Path("BENCH_gateway.current.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {out_path}")
    if failures:
        print(f"{failures} configuration(s) lost admitted writes")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
