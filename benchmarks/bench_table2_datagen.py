"""Table II: regenerate the graph-size table and benchmark generation itself.

Asserts the generated counts against the paper's targets (nodes exact,
edges within 2%, inserts exact) and times generation per scale factor.
"""

from __future__ import annotations

import pytest

from conftest import SCALE_FACTORS
from repro.datagen import TABLE2, generate_benchmark_input


@pytest.mark.parametrize("sf", SCALE_FACTORS, ids=lambda sf: f"sf{sf}")
def test_table2_generation(benchmark, sf):
    benchmark.group = "table2-datagen"

    graph, change_sets = benchmark(generate_benchmark_input, sf, 42)

    row = TABLE2[sf]
    stats = graph.stats()
    assert stats["nodes"] == row.nodes
    assert abs(stats["edges"] - row.edges) / row.edges < 0.02
    assert sum(len(cs) for cs in change_sets) == row.inserts
