"""Ablation A4 (future-work item (1)): updatable matrix storage.

The paper's conclusion proposes replacing rebuild-on-update CSR with an
updatable compressed format (faimGraph / Hornet).  This bench measures the
*storage maintenance* cost of a change-set stream under three strategies:

* ``rebuild``  -- re-canonicalise the full COO on every change set (what a
                  naive GrB_build-per-step solution pays);
* ``logflush`` -- the repo's production scheme: append to a log, merge into
                  canonical form once per phase (Matrix.assign_coo);
* ``dynamic``  -- DynamicMatrix (Hornet-style blocks + faimGraph free lists):
                  amortised O(degree) per insert, one compaction at the end;
* ``dynamic+freeze`` -- the serving path's full cycle: arena update *plus*
                  a dirty-row freeze per change set (what ``SocialGraph``
                  pays when a query reads the matrix after every batch).

Expected shape: rebuild grows with graph size (each step is O(nnz) *sort*),
logflush and dynamic grow with change size; dynamic additionally avoids
the per-flush sort, winning when change sets are many and small -- the
regime the paper's future work targets.  ``dynamic+freeze`` sits between:
the splice is O(nnz) *memcpy* but sort-free, so its per-step cost stays
flat in |E| far longer than either merge strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import fresh_input
from repro.graphblas import ops
from repro.graphblas.dynamic import DynamicMatrix
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import BOOL


def _like_stream(scale_factor: int):
    """The likes-matrix insert stream of the update phase, precomputed.

    Returns the initial likes matrix and one (rows, cols) batch per change
    set, with dimensions already grown to their final size so the three
    strategies time pure storage maintenance.
    """
    graph, change_sets = fresh_input(scale_factor)
    batches = []
    for cs in change_sets:
        delta = graph.apply(cs)
        c, u = delta.new_likes
        batches.append((c.copy(), u.copy()))
    final = graph.likes
    # rebuild the *initial* likes matrix at final dimensions
    n_rows, n_cols = final.nrows, final.ncols
    r, c, v = final.to_coo()
    inserted = np.zeros(0, dtype=np.int64)
    for bc, bu in batches:
        inserted = np.concatenate([inserted, bc * np.int64(n_cols) + bu])
    keys = r * np.int64(n_cols) + c
    keep = ~np.isin(keys, inserted)
    initial = Matrix.from_coo(r[keep], c[keep], v[keep], n_rows, n_cols, dtype=BOOL)
    return initial, batches


_STREAM_CACHE: dict[int, tuple] = {}


def _stream(scale_factor: int):
    if scale_factor not in _STREAM_CACHE:
        _STREAM_CACHE[scale_factor] = _like_stream(scale_factor)
    return _STREAM_CACHE[scale_factor]


def _setup_rebuild(initial: Matrix):
    return initial.to_coo()


def _run_rebuild(initial: Matrix, state, batches) -> Matrix:
    rows, cols, vals = state
    m = initial
    for bc, bu in batches:
        rows = np.concatenate([rows, bc])
        cols = np.concatenate([cols, bu])
        vals = np.concatenate([vals, np.ones(bc.size, dtype=vals.dtype)])
        m = Matrix.from_coo(
            rows, cols, vals, initial.nrows, initial.ncols, dtype=BOOL, dup_op=ops.lor
        )
    return m


def _setup_logflush(initial: Matrix):
    return initial.dup()  # assign_coo mutates; keep the cached input pristine


def _run_logflush(initial: Matrix, state: Matrix, batches) -> Matrix:
    for bc, bu in batches:
        state = state.assign_coo(bc, bu, True, accum=ops.lor)
    return state


def _setup_dynamic(initial: Matrix):
    return DynamicMatrix.from_matrix(initial, slack=0.25)


def _run_dynamic(initial: Matrix, state: DynamicMatrix, batches) -> DynamicMatrix:
    for bc, bu in batches:
        state.assign_coo(bc, bu, True, accum=ops.lor)
    return state


def _setup_dynamic_freeze(initial: Matrix):
    dm = DynamicMatrix.from_matrix(initial, slack=0.25)
    dm.freeze()  # the steady state starts with a materialised view
    return dm


def _run_dynamic_freeze(initial: Matrix, state: DynamicMatrix, batches) -> DynamicMatrix:
    for bc, bu in batches:
        state.assign_coo(bc, bu, True, accum=ops.lor)
        state.freeze()  # a reader consumes the view after every change set
    return state


STRATEGIES = {
    "rebuild": (_setup_rebuild, _run_rebuild),
    "logflush": (_setup_logflush, _run_logflush),
    "dynamic": (_setup_dynamic, _run_dynamic),
    "dynamic+freeze": (_setup_dynamic_freeze, _run_dynamic_freeze),
}


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_update_storage_maintenance(benchmark, scale_factor, strategy):
    """Time the insert stream only; format construction happens in setup.

    This isolates the per-change-set maintenance cost -- the quantity the
    paper's future-work proposal targets.  ``rebuild`` still re-sorts the
    whole matrix once per change set inside the timed region (that *is* its
    maintenance cost); the others touch O(change) entries.
    """
    benchmark.group = f"ablation-dynamic-update-sf{scale_factor}"
    initial, batches = _stream(scale_factor)
    prepare, run = STRATEGIES[strategy]

    def setup():
        return (initial, prepare(initial), batches), {}

    result = benchmark.pedantic(run, setup=setup, rounds=5)
    assert result.nvals >= initial.nvals


@pytest.mark.parametrize("strategy", ["dynamic"])
def test_dynamic_adoption_cost(benchmark, scale_factor, strategy):
    """One-time cost of adopting a CSR matrix into the dynamic format."""
    benchmark.group = f"ablation-dynamic-adopt-sf{scale_factor}"
    initial, _ = _stream(scale_factor)
    benchmark(DynamicMatrix.from_matrix, initial, slack=0.25)


def test_strategies_agree(scale_factor):
    """All three maintenance strategies produce the identical final matrix."""
    initial, batches = _stream(scale_factor)
    results = []
    for prepare, run in STRATEGIES.values():
        out = run(initial, prepare(initial), batches)
        results.append(out.to_matrix() if isinstance(out, DynamicMatrix) else out)
    first = results[0]
    for other in results[1:]:
        assert first.isequal(other)
