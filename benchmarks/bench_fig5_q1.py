"""Fig. 5, Q1 panels: load+initial and update+reevaluation per tool.

Each benchmark times exactly one Fig. 5 phase of one tool line.  Groups:

* ``q1-load-initial``  -- upper-left panel
* ``q1-update-reeval`` -- lower-left panel

The "8 thr" process-pool variants are exercised in ``bench_ablation_parallel``
(Q1 has no per-comment parallel region, matching the paper's solution).
"""

from __future__ import annotations

import pytest

from conftest import fresh_input
from repro.queries.engine import make_engine

TOOLS = ("graphblas-batch", "graphblas-incremental", "nmf-batch", "nmf-incremental")


@pytest.mark.parametrize("tool", TOOLS)
def test_q1_load_and_initial(benchmark, scale_factor, tool):
    benchmark.group = f"q1-load-initial-sf{scale_factor}"

    def phase():
        graph, _ = fresh_input(scale_factor)
        engine = make_engine(tool, "Q1")
        engine.load(graph)
        out = engine.initial()
        engine.close()
        return out

    result = benchmark(phase)
    assert result.count("|") >= 1


@pytest.mark.parametrize("tool", TOOLS)
def test_q1_update_and_reevaluation(benchmark, scale_factor, tool):
    benchmark.group = f"q1-update-reeval-sf{scale_factor}"

    def setup():
        graph, change_sets = fresh_input(scale_factor)
        engine = make_engine(tool, "Q1")
        engine.load(graph)
        engine.initial()
        return (engine, change_sets), {}

    def phase(engine, change_sets):
        out = None
        for cs in change_sets:
            out = engine.update(cs)
        engine.close()
        return out

    result = benchmark.pedantic(phase, setup=setup, rounds=3)
    assert result.count("|") >= 1
