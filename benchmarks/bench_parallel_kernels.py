"""Parallel kernel layer benchmark: serial vs REPRO_WORKERS=N, same workload.

Two phases, both correctness-guarded (any serial/parallel mismatch exits
non-zero):

* **kernels** -- synthetic CSR workloads sized above the parallel cutoff
  drive ``generic_mxm``, ``mxv``, ``reduce_rows`` and ``merge_dirty_rows``
  once serially and once through a fork-once kernel executor; per-kernel
  wall times and bit-identity checks are recorded.
* **serving** -- a :class:`repro.serving.GraphService` with all four
  GraphBLAS engine configurations ingests the same generated change stream
  twice: serial refresh loop with no kernel executor ("pre") vs concurrent
  engine fan-out + kernel executor ("post").  Batched-refresh throughput
  (updates/sec) and read p50/p99 come from the service's own metrics.

The report is written to ``BENCH_parallel.json`` in the same
``{workload, pre, post}`` shape as ``BENCH_serving.json`` so CI can upload
it as an artifact and the committed record extends the perf trajectory.
``cpu_count`` is part of the record: on single-core containers forked
workers time-slice one core and the honest speedup is ~1x or below; the
multi-core CI runners produce the representative numbers.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_kernels.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel_kernels.py --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.datagen import generate_benchmark_input
from repro.graphblas import monoid as mon
from repro.graphblas import semiring as sem
from repro.graphblas._kernels import freeze, parallel as kp, reduce as red, spgemm, spmv
from repro.graphblas._kernels.coo import canonicalize_matrix
from repro.graphblas._kernels.csr import indptr_from_rows
from repro.parallel import make_executor
from repro.serving import GraphService

_OUT_DEFAULT = Path("BENCH_parallel.json")
_COMMITTED = Path(__file__).resolve().parent / "BENCH_parallel.json"

SERVING_TOOLS = ("graphblas-batch", "graphblas-incremental")


# ---------------------------------------------------------------------------
# kernel phase
# ---------------------------------------------------------------------------


def _rand_coo(rng, nrows, ncols, nnz):
    r = rng.integers(0, nrows, nnz)
    c = rng.integers(0, ncols, nnz)
    v = rng.integers(-4, 5, nnz)
    rr, cc, vv = canonicalize_matrix(r, c, v, nrows, ncols, dup_op=mon.plus_monoid.op)
    return (rr, cc, vv, nrows, ncols)


def _time(fn, reps=3):
    best, out = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _identical(a, b) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(x, y) and x.dtype == y.dtype for x, y in zip(a, b)
    )


def kernel_phase(workers: int, scale: float) -> tuple[dict, int]:
    """Time each routed kernel serial vs parallel; returns (report, failures)."""
    rng = np.random.default_rng(42)
    n = int(20_000 * scale)
    nnz = int(250_000 * scale)
    a = _rand_coo(rng, n, n, nnz)
    b = _rand_coo(rng, n, n, nnz)
    big = _rand_coo(rng, n, 64, int(2_600_000 * scale))
    big_ip = indptr_from_rows(big[0], n)
    u_idx = np.unique(rng.integers(0, 64, 48))
    u = (u_idx, rng.integers(1, 5, u_idx.size), 64)

    dirty = np.unique(rng.integers(0, n, int(20_000 * scale)))
    reps = rng.integers(0, 4, dirty.size)
    d_rows = np.repeat(dirty, reps)
    d_cols = np.zeros(d_rows.size, dtype=np.int64)
    # make replacement columns unique per row: 0..reps-1 within each row
    off = np.arange(d_rows.size) - np.repeat(
        np.concatenate([[0], np.cumsum(reps)[:-1]]), reps
    )
    d_cols = off.astype(np.int64)
    d_vals = rng.integers(1, 9, d_rows.size)

    workloads = {
        "mxm": lambda: spgemm.generic_mxm(a, b, sem.get("plus_times")),
        "mxv": lambda: spmv.mxv(big, u, sem.get("plus_times"), indptr=big_ip),
        "reduce": lambda: red.reduce_rows(big[0], big[2], mon.plus_monoid, indptr=big_ip),
        "merge_dirty_rows": lambda: freeze.merge_dirty_rows(
            big[0], big[1], big[2], big_ip, n, dirty, d_rows, d_cols, d_vals
        ),
    }

    failures = 0
    report: dict = {}
    serial_out = {}
    kp.set_kernel_executor(None)
    for name, fn in workloads.items():
        t, out = _time(fn)
        serial_out[name] = out
        report[name] = {"serial_s": round(t, 4)}

    ex = make_executor("persistent", workers)
    ex.start()
    kp.set_kernel_executor(ex)
    try:
        for name, fn in workloads.items():
            t, out = _time(fn)
            ok = _identical(serial_out[name], out)
            report[name]["parallel_s"] = round(t, 4)
            report[name]["speedup"] = round(report[name]["serial_s"] / max(t, 1e-9), 2)
            report[name]["ok"] = ok
            if not ok:
                failures += 1
            print(
                f"kernel {name:<18} serial {report[name]['serial_s']:.3f}s  "
                f"parallel({workers}) {t:.3f}s  x{report[name]['speedup']:.2f}  "
                f"{'OK' if ok else 'MISMATCH'}"
            )
    finally:
        kp.close_kernel_executor()
    return report, failures


# ---------------------------------------------------------------------------
# serving phase
# ---------------------------------------------------------------------------


def serving_best_of(reps: int, *args, **kwargs) -> dict:
    """Best-of-``reps`` serving runs (max updates/sec): the container-noise
    countermeasure, same spirit as pytest-benchmark's min-of-rounds."""
    best = None
    for _ in range(reps):
        r = serving_run(*args, **kwargs)
        if best is None or r["updates_per_s"] > best["updates_per_s"]:
            best = r
    return best


def serving_run(
    scale: int,
    *,
    workers: int,
    concurrent: bool,
    max_batch: int = 8,
    read_every: int = 5,
) -> dict:
    graph, change_sets = generate_benchmark_input(scale, seed=42)
    changes = [ch for cs in change_sets for ch in cs]
    if workers > 1:
        ex = make_executor("persistent", workers)
        ex.start()
        kp.set_kernel_executor(ex)
    else:
        kp.set_kernel_executor(None)
        ex = None
    service = GraphService(
        graph,
        tools=SERVING_TOOLS,
        max_batch=max_batch,
        max_delay_ms=1e9,
        q2_algorithm="unionfind",
        concurrent_refresh=concurrent,
    )
    try:
        for i, ch in enumerate(changes):
            service.submit(ch)
            if i % read_every == 0:
                service.query("Q1")
                service.query("Q2")
        service.flush()
        ops = service.stats()["ops"]
        return {
            "workers": workers,
            "concurrent_refresh": concurrent,
            "changes": len(changes),
            "updates_per_s": round(len(changes) / ops["apply"]["total_s"], 1),
            "apply_p50_ms": ops["apply"]["p50_ms"],
            "apply_p99_ms": ops["apply"]["p99_ms"],
            "read_p50_ms": ops["query"]["p50_ms"],
            "read_p99_ms": ops["query"]["p99_ms"],
            "q1": service.query("Q1").result_string,
            "q2": service.query("Q2").result_string,
        }
    finally:
        service.close()
        # explicitly installed executors are caller-owned: close ours so no
        # forked workers or /dev/shm arenas outlive the measurement
        kp.close_kernel_executor()
        if ex is not None:
            ex.close()


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fixed CI workload")
    ap.add_argument(
        "--workers",
        type=int,
        default=kp.kernel_workers_from_env() or 2,
        help="parallel worker count (default: REPRO_WORKERS or 2)",
    )
    ap.add_argument("--serving-scale", type=int, default=16)
    ap.add_argument("--kernel-scale", type=float, default=1.0)
    ap.add_argument("--reps", type=int, default=3, help="best-of reps per config")
    ap.add_argument("--out", type=Path, default=_OUT_DEFAULT)
    args = ap.parse_args(argv)

    kernel_scale = 0.5 if args.smoke else args.kernel_scale
    serving_scale = args.serving_scale  # ~100 changes at any Table II scale

    print(
        f"parallel kernels bench: workers={args.workers}, "
        f"cpu_count={os.cpu_count()}, kernel_scale={kernel_scale}, "
        f"serving_scale={serving_scale}"
    )
    kernels, failures = kernel_phase(args.workers, kernel_scale)

    reps = args.reps
    pre = serving_best_of(reps, serving_scale, workers=1, concurrent=False)
    fanout_only = serving_best_of(reps, serving_scale, workers=1, concurrent=True)
    post = serving_best_of(reps, serving_scale, workers=args.workers, concurrent=True)
    ok = (
        pre["q1"] == post["q1"] == fanout_only["q1"]
        and pre["q2"] == post["q2"] == fanout_only["q2"]
    )
    if not ok:
        print("SERVING MISMATCH between serial and parallel configurations")
        failures += 1
    speedup = round(post["updates_per_s"] / max(pre["updates_per_s"], 1e-9), 2)
    print(
        f"serving sf{serving_scale}: serial {pre['updates_per_s']:.0f} upd/s "
        f"(read p99 {pre['read_p99_ms']:.3f}ms) -> fan-out only "
        f"{fanout_only['updates_per_s']:.0f} upd/s -> fan-out+{args.workers}w "
        f"{post['updates_per_s']:.0f} upd/s (read p99 {post['read_p99_ms']:.3f}ms) "
        f"x{speedup} {'OK' if ok else 'MISMATCH'}"
    )

    record = {
        "workload": {
            "serving_scale": serving_scale,
            "kernel_scale": kernel_scale,
            "tools": list(SERVING_TOOLS),
            "max_batch": 8,
            "seed": 42,
            "best_of": reps,
        },
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "kernels": kernels,
        "pre": {k: v for k, v in pre.items() if k not in ("q1", "q2")},
        "post_fanout_only": {
            k: v for k, v in fanout_only.items() if k not in ("q1", "q2")
        },
        "post": {k: v for k, v in post.items() if k not in ("q1", "q2")},
        "speedup_updates_per_s": speedup,
        "speedup_fanout_only": round(
            fanout_only["updates_per_s"] / max(pre["updates_per_s"], 1e-9), 2
        ),
        "ok": ok and failures == 0,
    }
    if (os.cpu_count() or 1) < 2:
        record["note"] = (
            "single-core container: forked kernel workers time-slice one core, "
            "so wall-clock parallel gains are not representable here; the "
            "kernels section still reflects the block-wise algorithmic wins "
            "and the multi-core CI artifact carries the representative numbers"
        )
    out = args.out
    if out.resolve() == _COMMITTED:
        out = Path("BENCH_parallel.current.json")  # never clobber the record
    with open(out, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"wrote {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
