"""Analytics-serving benchmark: maintenance-policy ablation under a stream.

``bench_serving.py`` measures the Fig. 5 query engines as a service; this
bench measures the :mod:`repro.analytics` layer the same way: one
:class:`~repro.serving.GraphService` registering the algorithm-layer tools
(``components``, ``degree``, ``pagerank``, ``cdlp``, ``triangles``) and
driving a generated change stream through them.  Two policies head-to-head
on identical streams:

* ``fresh`` -- ``analytics_threshold=0.0``: every applied batch recomputes
  every dirty tool (the "always exact" upper bound on maintenance cost);
* ``dirty`` -- ``analytics_threshold=0.25``: dirty tools recompute only
  once the accumulated friends-graph delta reaches 25% of the graph,
  serving staleness-tagged results in between (the bounded-staleness
  operating point); incremental tools (components, degree) stay exact
  under both.

Script mode (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_analytics.py --smoke

drives both policies, checks every correctness gate (incremental CC
bit-identical to FastSV at the end, every tool equal to a cold engine on
the final graph after a forced recompute, dirty == fresh at recompute
points by construction), prints per-tool refresh latencies from the
service metrics, and writes the ``BENCH_analytics.json`` record the CI
job uploads; non-zero exit on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.analytics import ANALYTICS_NAMES, make_analytics_engine
from repro.datagen import generate_benchmark_input
from repro.lagraph import fastsv
from repro.serving import GraphService

TOOLS = ("components", "degree", "pagerank", "cdlp", "triangles")
POLICIES = {"fresh": 0.0, "dirty": 0.25}
_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_analytics.json"


def run_policy(scale: int, threshold: float, read_every: int = 10) -> dict:
    """One policy over one generated stream; returns report + correctness."""
    graph, change_sets = generate_benchmark_input(scale, seed=42)
    changes = [ch for cs in change_sets for ch in cs]
    service = GraphService(
        graph,
        queries=(),
        tools=(),
        analytics=TOOLS,
        analytics_threshold=threshold,
        max_batch=16,
        max_delay_ms=1e9,
    )
    max_stale = 0
    for i, ch in enumerate(changes):
        service.submit(ch)
        if i % read_every == 0:
            for name in TOOLS:
                max_stale = max(max_stale, service.query(name).staleness)
    service.flush()

    # maintenance accounting first: the correctness gate below forces one
    # extra recompute per tool which is measurement artifact, not serving
    recomputes = {
        name: service._engines[(name, name)].recomputes for name in TOOLS
    }

    ok = True
    # gate 1: incremental CC is bit-identical to a from-scratch FastSV run
    cc = service._engines[("components", "components")]
    ok &= bool(
        np.array_equal(cc.labels(), fastsv(service.graph.friends).to_dense())
    )
    # gate 2: after a forced recompute, every tool equals a cold engine
    # evaluated on the final graph (dirty tools converge at recompute points)
    for name in TOOLS:
        eng = service._engines[(name, name)]
        eng.recompute_now()
        cold = make_analytics_engine(name, policy="dirty")
        cold.load(service.graph)
        cold.initial()
        ok &= eng.last_top == cold.last_top

    ops = service.stats()["ops"]
    report = {
        "threshold": threshold,
        "changes": len(changes),
        "versions": service.version,
        "updates_per_s": round(len(changes) / max(ops["apply"]["total_s"], 1e-9), 1),
        "apply_p50_ms": ops["apply"]["p50_ms"],
        "apply_p99_ms": ops["apply"]["p99_ms"],
        "read_p99_ms": ops["query"]["p99_ms"],
        "refresh_p50_ms": {
            name: ops[f"refresh[{name}]"]["p50_ms"] for name in TOOLS
        },
        "recomputes": recomputes,
        "max_staleness": max_stale,
        "ok": bool(ok),
        "metrics": service.stats()["metrics"],
    }
    service.close()
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fixed CI workload")
    ap.add_argument("--scale", type=int, default=4, help="Table II scale factor")
    args = ap.parse_args(argv)
    scale = 2 if args.smoke else args.scale

    print(f"analytics bench: scale factor {scale}, tools {', '.join(TOOLS)}")
    print(
        f"{'policy':<8} {'upd/s':>8} {'apply p50':>10} {'read p99':>9} "
        f"{'max stale':>10}  recomputes"
    )
    reports = {}
    failures = 0
    for policy, threshold in POLICIES.items():
        r = run_policy(scale, threshold)
        reports[policy] = r
        rc = sum(r["recomputes"].values())
        print(
            f"{policy:<8} {r['updates_per_s']:>8.0f} {r['apply_p50_ms']:>9.3f}m "
            f"{r['read_p99_ms']:>8.4f}m {r['max_staleness']:>10} "
            f" {rc} total {r['recomputes']}"
        )
        if not r["ok"]:
            print(f"{policy}: CORRECTNESS MISMATCH")
            failures += 1

    fresh, dirty = reports["fresh"], reports["dirty"]
    if fresh["updates_per_s"]:
        speedup = dirty["updates_per_s"] / fresh["updates_per_s"]
        print(
            f"\ndirty-threshold vs always-fresh maintenance: {speedup:.1f}x "
            f"updates/s at max staleness {dirty['max_staleness']} batch(es)"
        )
    # the dirty policy must actually skip work, or the threshold is dead
    if dirty["recomputes"]["pagerank"] >= fresh["recomputes"]["pagerank"]:
        print("dirty policy never skipped a recompute -- threshold broken?")
        failures += 1

    record = {
        "workload": {"scale": scale, "seed": 42, "max_batch": 16},
        "tools": list(TOOLS),
        "fresh": fresh,
        "dirty": dirty,
        "speedup_updates_per_s": round(
            dirty["updates_per_s"] / max(fresh["updates_per_s"], 1e-9), 2
        ),
    }
    out_path = Path("BENCH_analytics.json")
    if out_path.resolve() == _BASELINE_PATH:
        # never clobber the committed record when run from benchmarks/
        out_path = Path("BENCH_analytics.current.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
