"""Ablation A3: executor choice for the Q2 batch parallel region.

The paper parallelises Q2 with OpenMP at comment granularity; this bench
quantifies our substitution choices:

* ``serial``     -- baseline;
* ``thread``     -- GIL-bound pool (demonstrably useless for this kernel);
* ``process``    -- fresh ``multiprocessing`` pool per region (~250 ms spawn);
* ``forkjoin``   -- raw ``os.fork`` fan-out per region (~25 ms/child once
                    the parent heap is benchmark-sized);
* ``persistent`` -- fork-once workers + shared-memory priming, the Fig. 5
                    "8 threads" executor whose entry cost matches OpenMP's.

Expected shape: only ``persistent`` beats serial across the sweep; the
per-region spawners pay their entry cost anew each evaluation -- the same
overhead narrative as the paper's evaluation, quantified per executor.
"""

from __future__ import annotations

import pytest

from conftest import SCALE_FACTORS, benchmark_input
from repro.parallel import make_executor
from repro.queries.q2 import score_comments

EXECUTORS = ("serial", "thread", "process", "forkjoin", "persistent")


@pytest.mark.parametrize("kind", EXECUTORS)
def test_q2_batch_scoring_by_executor(benchmark, scale_factor, kind):
    benchmark.group = f"ablation-parallel-sf{scale_factor}"
    graph, _ = benchmark_input(scale_factor)
    comments = list(range(graph.num_comments))

    executor = None if kind == "serial" else make_executor(kind, 8)
    if executor is not None:
        # force the parallel path even below the amortisation threshold so
        # the overhead itself is measured
        executor.MIN_PARALLEL_ITEMS = 0

    def phase():
        return score_comments(
            graph, comments, algorithm="unionfind", executor=executor
        )

    scored = benchmark(phase)
    assert len(scored) == len(comments)
    if executor is not None:
        executor.close()
