"""Arena-storage backend benchmark: heap vs mmap (vs sqlite) end to end.

Measures what the storage seam actually changes -- nothing else:

* ``ingest``   -- wall time to drive a datagen change stream through a
  :class:`~repro.serving.GraphService` built on each backend (the hot
  mutation path never calls the store, so heap and mmap should be close;
  a large gap is a regression in the seam);
* ``read``     -- a query burst against the cached results;
* ``snapshot`` -- one full snapshot.  For mmap this is flush + file
  copy; for heap it is the CSV serialisation alone; for sqlite it is a
  transaction rewriting every blob -- the honest price of the oracle;
* ``recover``  -- rebuild from the data dir (mmap exercises the arena
  adoption fast path, heap replays the edge CSVs).

Honesty notes: single-core, page-cache-warm (files never leave RAM at
these sizes), tmpfs-or-disk depends on the runner -- treat the numbers
as *relative* between backends in one run, never across machines.  The
mmap backend's win is capacity (graphs larger than RAM), not speed;
this bench exists to show the seam costs ~nothing, not that mmap is
faster.

Script mode (the CI artifact)::

    PYTHONPATH=src python benchmarks/bench_storage.py --smoke

writes ``benchmarks/BENCH_storage.json`` and exits non-zero on any
correctness mismatch between backends.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.datagen import generate_change_sets, generate_graph
from repro.serving import GraphService

KW = dict(tools=("graphblas-incremental",), max_batch=10**9, max_delay_ms=1e9)
QUERIES = ("Q1", "Q2")


def _stream(scale: int, seed: int, total_inserts: int):
    graph = generate_graph(scale, seed=seed)
    return graph, generate_change_sets(
        graph,
        total_inserts=total_inserts,
        num_change_sets=8,
        seed=seed + 1,
        removal_fraction=0.25,
    )


def run_backend(backend: str, scale: int, seed: int, total_inserts: int) -> dict:
    data_dir = tempfile.mkdtemp(prefix=f"repro-storage-{backend}-")
    try:
        base, stream = _stream(scale, seed, total_inserts)
        changes = [ch for cs in stream for ch in cs]
        svc = GraphService(storage=backend, data_dir=data_dir, **KW)

        t0 = time.perf_counter()
        for ch in base.to_change_stream():
            svc.submit([ch])
        svc.flush()
        for cs in stream:
            svc.submit(list(cs))
            svc.flush()
        ingest_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        reads = 0
        for _ in range(50):
            for q in QUERIES:
                svc.query(q)
                reads += 1
        read_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        svc.snapshot()
        snapshot_s = time.perf_counter() - t0

        results = {q: svc.query(q).result_string for q in QUERIES}
        bytes_ = svc.graph.storage_bytes()
        svc.close()

        t0 = time.perf_counter()
        rec = GraphService.recover(data_dir, storage=backend, **KW)
        recover_s = time.perf_counter() - t0
        ok = {q: rec.query(q).result_string for q in QUERIES} == results
        rec.close()

        return {
            "backend": backend,
            "changes": len(changes),
            "ingest_s": round(ingest_s, 4),
            "updates_per_s": round(len(changes) / ingest_s, 1),
            "read_us": round(read_s / reads * 1e6, 1),
            "snapshot_s": round(snapshot_s, 4),
            "recover_s": round(recover_s, 4),
            "storage_bytes": bytes_,
            "ok": ok,
        }
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fixed CI workload")
    ap.add_argument("--scale", type=int, default=1, help="Table II scale factor")
    ap.add_argument("--inserts", type=int, default=400)
    ap.add_argument(
        "--skip-sqlite", action="store_true",
        help="omit the (deliberately slow) oracle backend",
    )
    args = ap.parse_args(argv)
    scale = 1 if args.smoke else args.scale
    inserts = 250 if args.smoke else args.inserts
    backends = ["heap", "mmap"] + ([] if args.skip_sqlite else ["sqlite"])

    print(f"storage bench: scale factor {scale}, {inserts} stream inserts")
    print(
        f"{'backend':<8} {'upd/s':>9} {'read us':>9} {'snap s':>8} "
        f"{'recover s':>10} {'bytes':>12}  result"
    )
    rows = {}
    failures = 0
    for backend in backends:
        r = run_backend(backend, scale, seed=42, total_inserts=inserts)
        rows[backend] = r
        print(
            f"{backend:<8} {r['updates_per_s']:>9.0f} {r['read_us']:>9.1f} "
            f"{r['snapshot_s']:>8.4f} {r['recover_s']:>10.4f} "
            f"{r['storage_bytes']:>12}  {'OK' if r['ok'] else 'MISMATCH'}"
        )
        if not r["ok"]:
            failures += 1

    record = {
        "workload": {
            "description": (
                "datagen ingest + read burst + snapshot + recover per "
                "storage backend; single-core, page-cache-warm -- "
                "compare backends within one run only"
            ),
            "scale": scale,
            "inserts": inserts,
            "seed": 42,
        },
        "backends": rows,
    }
    if "heap" in rows and "mmap" in rows and rows["heap"]["ingest_s"]:
        record["mmap_ingest_overhead"] = round(
            rows["mmap"]["ingest_s"] / rows["heap"]["ingest_s"], 3
        )
    out = Path(__file__).resolve().parent / "BENCH_storage.json"
    with open(out, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"wrote {out.resolve()}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
