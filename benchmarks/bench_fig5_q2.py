"""Fig. 5, Q2 panels: load+initial and update+reevaluation per tool.

Q2 is the expensive query (per-comment induced subgraphs + connected
components); the parallel "8 thr" variants appear here as in the paper's
right-hand panels.  The process-pool variants only run when the graph is
large enough to amortise the pool spawn (see repro.parallel), mirroring the
paper's observation about parallelisation overhead.
"""

from __future__ import annotations

import pytest

from conftest import fresh_input
from repro.parallel import make_executor
from repro.queries.engine import make_engine

SERIAL_TOOLS = (
    "graphblas-batch",
    "graphblas-incremental",
    "nmf-batch",
    "nmf-incremental",
)


def _make(tool: str, parallel: bool):
    executor = make_executor("process", 8) if parallel else None
    return make_engine(tool, "Q2", executor=executor)


def _variants():
    out = [(t, False) for t in SERIAL_TOOLS]
    out += [("graphblas-batch", True), ("graphblas-incremental", True)]
    return out


def _vid(v):
    tool, parallel = v
    return f"{tool}-8thr" if parallel else tool


@pytest.mark.parametrize("variant", _variants(), ids=_vid)
def test_q2_load_and_initial(benchmark, scale_factor, variant):
    tool, parallel = variant
    benchmark.group = f"q2-load-initial-sf{scale_factor}"

    def phase():
        graph, _ = fresh_input(scale_factor)
        engine = _make(tool, parallel)
        engine.load(graph)
        out = engine.initial()
        engine.close()
        return out

    result = benchmark(phase)
    assert result.count("|") >= 1


@pytest.mark.parametrize("variant", _variants(), ids=_vid)
def test_q2_update_and_reevaluation(benchmark, scale_factor, variant):
    tool, parallel = variant
    benchmark.group = f"q2-update-reeval-sf{scale_factor}"

    def setup():
        graph, change_sets = fresh_input(scale_factor)
        engine = _make(tool, parallel)
        engine.load(graph)
        engine.initial()
        return (engine, change_sets), {}

    def phase(engine, change_sets):
        out = None
        for cs in change_sets:
            out = engine.update(cs)
        engine.close()
        return out

    result = benchmark.pedantic(phase, setup=setup, rounds=2)
    assert result.count("|") >= 1
