"""Shared benchmark fixtures and scale-factor selection.

Every bench regenerates an artefact of the paper's evaluation section.  The
sweep is bounded by ``REPRO_MAX_SF`` (default 8) so the default
``pytest benchmarks/ --benchmark-only`` finishes in minutes; raise it to 64+
to reproduce the full Fig. 5 slopes.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen import generate_benchmark_input

MAX_SF = int(os.environ.get("REPRO_MAX_SF", 8))

#: scale factors exercised by the Fig. 5 benches
SCALE_FACTORS = [sf for sf in (1, 2, 4, 8, 16, 32, 64, 128) if sf <= MAX_SF]

_INPUT_CACHE: dict[int, tuple] = {}


def benchmark_input(scale_factor: int):
    """Cached (graph, change_sets) per scale factor; callers must not mutate
    the cached graph -- use :func:`fresh_input` inside timed code."""
    if scale_factor not in _INPUT_CACHE:
        _INPUT_CACHE[scale_factor] = generate_benchmark_input(scale_factor, seed=42)
    return _INPUT_CACHE[scale_factor]


def fresh_input(scale_factor: int):
    """Uncached (graph, change_sets): safe to mutate (update-phase benches)."""
    return generate_benchmark_input(scale_factor, seed=42)


@pytest.fixture(params=SCALE_FACTORS, ids=lambda sf: f"sf{sf}")
def scale_factor(request) -> int:
    return request.param
