"""Serving-path benchmark: sustained update throughput and read latency.

The Fig. 5 benches measure isolated engine phases; this bench measures the
*service*: a :class:`repro.serving.GraphService` under a sustained stream
of single-change submits with interleaved reads -- the workload the
ROADMAP's "heavy traffic" north star describes.  Two engine configurations
are compared head-to-head:

* ``batch``       -- the service re-evaluates with ``graphblas-batch``
                     on every applied micro-batch;
* ``incremental`` -- the service maintains results with
                     ``graphblas-incremental``.

Groups (pytest-benchmark, like the other benches):

* ``serving-ingest-sf{N}`` -- wall time to drive the full change stream
  through submit/apply (reported by pytest-benchmark; updates/sec =
  stream size / time);
* ``serving-read-sf{N}``   -- a read burst against the cached results
  while updates flow.

Script mode (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke

drives a small persistent service end-to-end (WAL + snapshots + a
recovery round-trip), prints updates/sec and p50/p99 latencies from the
service's own metrics, and exits non-zero on any correctness mismatch --
this is the CI guard that the serving path stays alive.  The smoke also
runs the *steady-state phase*: a larger graph under single-change
micro-batches (the regime the rebuild-free storage PR targets), whose
updates/sec and latency percentiles are written to ``BENCH_serving.json``
and compared against the committed pre-/post-PR record in
``benchmarks/BENCH_serving.json``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path

try:  # pytest-benchmark fixtures only exist under pytest
    import pytest
except ImportError:  # pragma: no cover - script mode
    pytest = None

from repro.datagen import generate_benchmark_input
from repro.queries import Q1Batch, Q2Batch
from repro.serving import GraphService

CONFIGS = {
    "batch": ("graphblas-batch",),
    "incremental": ("graphblas-incremental",),
}


def _drive(service: GraphService, changes, read_every: int = 25) -> None:
    """Submit every change singly, reading both queries periodically."""
    for i, ch in enumerate(changes):
        service.submit(ch)
        if i % read_every == 0:
            service.query("Q1")
            service.query("Q2")
    service.flush()


if pytest is not None:
    from conftest import fresh_input

    @pytest.mark.parametrize("config", sorted(CONFIGS), ids=sorted(CONFIGS))
    def test_serving_sustained_updates(benchmark, scale_factor, config):
        benchmark.group = f"serving-ingest-sf{scale_factor}"

        def setup():
            graph, change_sets = fresh_input(scale_factor)
            service = GraphService(
                graph, tools=CONFIGS[config], max_batch=64, max_delay_ms=1e9
            )
            changes = [ch for cs in change_sets for ch in cs]
            return (service, changes), {}

        def phase(service, changes):
            _drive(service, changes)
            return service.version

        applied = benchmark.pedantic(phase, setup=setup, rounds=3)
        assert applied > 0

    @pytest.mark.parametrize("config", sorted(CONFIGS), ids=sorted(CONFIGS))
    def test_serving_read_latency(benchmark, scale_factor, config):
        """Cached reads must stay O(1): time a pure read burst on a
        service that has already ingested its stream."""
        benchmark.group = f"serving-read-sf{scale_factor}"

        graph, change_sets = fresh_input(scale_factor)
        service = GraphService(
            graph, tools=CONFIGS[config], max_batch=64, max_delay_ms=1e9
        )
        _drive(service, [ch for cs in change_sets for ch in cs])

        def read_burst():
            for _ in range(500):
                service.query("Q1")
                service.query("Q2")
            return service.query("Q1").version

        version = benchmark(read_burst)
        assert version == service.version


# ---------------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------------


def run_stream(scale: int, config: str, data_dir=None, max_batch: int = 64) -> dict:
    """Drive one configuration over one generated stream; return a report."""
    graph, change_sets = generate_benchmark_input(scale, seed=42)
    changes = [ch for cs in change_sets for ch in cs]
    service = GraphService(
        graph,
        tools=CONFIGS[config],
        max_batch=max_batch,
        max_delay_ms=1e9,
        data_dir=data_dir,
        snapshot_every=4 if data_dir else 0,
    )
    _drive(service, changes)
    stats = service.stats()
    q1, q2 = service.query("Q1"), service.query("Q2")

    # correctness guard: the served result must equal a cold batch run
    expect_q1 = Q1Batch(service.graph).result_string()
    expect_q2 = Q2Batch(service.graph, algorithm="unionfind").result_string()
    ok = q1.result_string == expect_q1 and q2.result_string == expect_q2

    report = {
        "config": config,
        "changes": len(changes),
        "versions": stats["version"],
        "apply_total_s": stats["ops"]["apply"]["total_s"],
        "updates_per_s": (
            len(changes) / stats["ops"]["apply"]["total_s"]
            if stats["ops"]["apply"]["total_s"]
            else float("inf")
        ),
        "read_p50_ms": stats["ops"]["query"]["p50_ms"],
        "read_p99_ms": stats["ops"]["query"]["p99_ms"],
        "q1": q1.result_string,
        "q2": q2.result_string,
        "ok": ok,
        "service": service,
    }
    return report


# The steady-state perf phase: a moderately sized graph under single-change
# micro-batches -- the workload where pre-PR flushes paid O(|E|) per change.
STEADY_SCALE = 32
STEADY_MAX_BATCH = 1
STEADY_READ_EVERY = 10
_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"


def run_steady_state(scale: int = STEADY_SCALE) -> dict:
    """One sustained single-change stream; returns the BENCH_serving record."""
    graph, change_sets = generate_benchmark_input(scale, seed=42)
    changes = [ch for cs in change_sets for ch in cs]
    service = GraphService(
        graph,
        tools=("graphblas-incremental",),
        max_batch=STEADY_MAX_BATCH,
        max_delay_ms=1e9,
        q2_algorithm="unionfind",
    )
    _drive(service, changes, read_every=STEADY_READ_EVERY)
    stats = service.stats()
    ops, metrics = stats["ops"], stats["metrics"]
    q1, q2 = service.query("Q1"), service.query("Q2")
    ok = (
        q1.result_string == Q1Batch(service.graph).result_string()
        and q2.result_string
        == Q2Batch(service.graph, algorithm="unionfind").result_string()
    )
    return {
        "scale": scale,
        "max_batch": STEADY_MAX_BATCH,
        "changes": len(changes),
        "updates_per_s": round(len(changes) / ops["apply"]["total_s"], 1),
        "apply_p50_ms": ops["apply"]["p50_ms"],
        "apply_p99_ms": ops["apply"]["p99_ms"],
        "read_p50_ms": ops["query"]["p50_ms"],
        "read_p99_ms": ops["query"]["p99_ms"],
        "ok": ok,
        "metrics": metrics,
    }


def steady_state_phase() -> int:
    """Run the steady-state stream, emit BENCH_serving.json, compare to the
    committed pre-PR baseline.  Returns the number of failures (correctness
    only -- CI must not flake on machine speed)."""
    r = run_steady_state()
    metrics = r.pop("metrics")  # ride along at record level, not in pre/post
    print(
        f"\nsteady-state: sf{r['scale']} micro-batch={r['max_batch']} "
        f"-> {r['updates_per_s']:.0f} upd/s, apply p50 {r['apply_p50_ms']:.3f}ms "
        f"p99 {r['apply_p99_ms']:.3f}ms, read p99 {r['read_p99_ms']:.4f}ms "
        f"{'OK' if r['ok'] else 'MISMATCH'}"
    )
    committed = (
        json.loads(_BASELINE_PATH.read_text()) if _BASELINE_PATH.exists() else {}
    )
    pre = committed.get("pre")
    # same {workload, pre, post} schema as the committed record, so the CI
    # artifact can be copied over benchmarks/BENCH_serving.json verbatim to
    # extend the perf trajectory
    record = {
        "workload": committed.get(
            "workload",
            {"scale": r["scale"], "max_batch": r["max_batch"], "seed": 42},
        ),
        "pre": pre,
        "post": r,
        "metrics": metrics,
    }
    if pre and pre.get("updates_per_s"):
        record["speedup_updates_per_s"] = round(
            r["updates_per_s"] / pre["updates_per_s"], 2
        )
        print(
            f"steady-state vs committed pre-PR baseline "
            f"({pre['updates_per_s']:.0f} upd/s): "
            f"{record['speedup_updates_per_s']:.1f}x"
        )
    out_path = Path("BENCH_serving.json")
    if out_path.resolve() == _BASELINE_PATH:
        # never clobber the committed pre-/post-PR record when run from
        # inside benchmarks/
        out_path = Path("BENCH_serving.current.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    return 0 if r["ok"] else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fixed CI workload")
    ap.add_argument("--scale", type=int, default=1, help="Table II scale factor")
    ap.add_argument("--max-batch", type=int, default=64)
    args = ap.parse_args(argv)
    scale = 1 if args.smoke else args.scale

    failures = 0
    print(f"serving bench: scale factor {scale}, micro-batch {args.max_batch}")
    print(
        f"{'config':<12} {'changes':>8} {'batches':>8} {'upd/s':>10} "
        f"{'read p50':>10} {'read p99':>10}  result"
    )
    reports = {}
    for config in sorted(CONFIGS):
        data_dir = tempfile.mkdtemp(prefix=f"repro-serve-{config}-")
        try:
            r = run_stream(scale, config, data_dir=data_dir, max_batch=args.max_batch)
            reports[config] = r
            print(
                f"{config:<12} {r['changes']:>8} {r['versions']:>8} "
                f"{r['updates_per_s']:>10.0f} {r['read_p50_ms']:>9.3f}m "
                f"{r['read_p99_ms']:>9.3f}m  {'OK' if r['ok'] else 'MISMATCH'}"
            )
            if not r["ok"]:
                failures += 1

            # recovery round trip: kill the service, rebuild from disk
            final_version = r["service"].version
            final_q1 = r["q1"]
            del r["service"]
            recovered = GraphService.recover(
                data_dir, tools=CONFIGS[config], max_delay_ms=1e9
            )
            rec_ok = (
                recovered.version == final_version
                and recovered.query("Q1").result_string == final_q1
            )
            snap, replayed = recovered._recovered_from
            print(
                f"{'':<12} recover: snapshot v{snap} + {replayed} replayed "
                f"batch(es) -> v{recovered.version} {'OK' if rec_ok else 'MISMATCH'}"
            )
            recovered.close()
            if not rec_ok:
                failures += 1
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)

    if len(reports) == len(CONFIGS):
        a, b = reports["incremental"], reports["batch"]
        if a["q1"] != b["q1"] or a["q2"] != b["q2"]:
            print("CONFIG DISAGREEMENT between batch and incremental results")
            failures += 1
        elif b["apply_total_s"]:
            speedup = b["apply_total_s"] / max(a["apply_total_s"], 1e-9)
            print(f"\nincremental vs batch apply time: {speedup:.1f}x faster")

    if args.smoke:
        failures += steady_state_phase()

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
