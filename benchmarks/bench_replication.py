"""Replicated-serving benchmark: read fan-out across replica counts.

Drives the standard micro-batched change stream through a
:class:`repro.replication.ReplicatedGraphService` at replicas ∈ {0, 1, 2}
under a bounded-staleness read policy (``max_staleness=4``), measuring
sustained updates/sec through the leader's WAL path, replica-served
reads/sec, and the observed replication lag the staleness bound allows to
accumulate.  Every configuration must serve Q1/Q2/analytics results
bit-identical to the leader-only reference -- a mismatch fails the run,
so this doubles as the CI guard that WAL shipping stays exact.

Script mode::

    PYTHONPATH=src python benchmarks/bench_replication.py --smoke

writes the ``{workload, configs, ...}`` record to
``BENCH_replication.json`` (committed copy:
``benchmarks/BENCH_replication.json``).  Like the sharding record it
carries ``cpu_count`` and an honest ``note``: leader and replicas share
one Python process here, so replicas>0 buys *read fan-out, bounded-lag
reads and failover capacity*, not in-process wall-clock speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.datagen import generate_benchmark_input
from repro.replication import ReplicatedGraphService

REPLICA_COUNTS = (0, 1, 2)
TOOLS = ("graphblas-incremental",)
ANALYTICS = ("components", "degree")
QUERIES = ("Q1", "Q2") + ANALYTICS
MAX_STALENESS = 4
READ_LOOPS = 50  # timed read phase: READ_LOOPS passes over QUERIES

_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_replication.json"


def _fresh_workload(scale: int, seed: int = 42):
    graph, change_sets = generate_benchmark_input(scale, seed=seed)
    return graph, [ch for cs in change_sets for ch in cs]


def run_config(replicas: int, scale: int, max_batch: int) -> dict:
    """One replica count over the standard stream; 0 = leader-only."""
    graph, changes = _fresh_workload(scale)
    with tempfile.TemporaryDirectory() as td:
        service = ReplicatedGraphService(
            graph,
            replicas=replicas,
            data_dir=td,
            max_staleness=MAX_STALENESS,
            tools=TOOLS,
            analytics=ANALYTICS,
            max_batch=max_batch,
            max_delay_ms=1e9,
            q2_algorithm="unionfind",
        )
        try:
            lag_max = 0
            t0 = time.perf_counter()
            for i, ch in enumerate(changes):
                service.submit(ch)
                if i % 10 == 0:
                    for q in QUERIES:
                        service.query(q)
                    st = service.stats()["replicas"]
                    lag_max = max([lag_max] + [s["lag"] for s in st.values()])
            service.flush()
            write_s = time.perf_counter() - t0

            sources = set()
            t0 = time.perf_counter()
            for _ in range(READ_LOOPS):
                for q in QUERIES:
                    sources.add(service.query(q).source)
            read_s = time.perf_counter() - t0
            n_reads = READ_LOOPS * len(QUERIES)

            return {
                "replicas": replicas,
                "changes": len(changes),
                "versions": service.version,
                "updates_per_s": round(len(changes) / write_s, 1),
                "reads_per_s": round(n_reads / read_s, 1),
                "read_sources": sorted(sources),
                "observed_lag_max": lag_max,
                "final_lag": max(
                    [0] + [s["lag"] for s in service.stats()["replicas"].values()]
                ),
                "results": {q: service.query(q).result_string for q in QUERIES},
            }
        finally:
            service.close()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fixed CI workload")
    ap.add_argument("--scale", type=int, default=4, help="Table II scale factor")
    ap.add_argument("--max-batch", type=int, default=8)
    args = ap.parse_args(argv)
    scale = 4 if args.smoke else args.scale

    print(
        f"replication bench: scale factor {scale}, micro-batch "
        f"{args.max_batch}, max_staleness {MAX_STALENESS}, tools {TOOLS}, "
        f"analytics {ANALYTICS}"
    )
    print(
        f"{'config':<12} {'changes':>8} {'upd/s':>10} {'reads/s':>10} "
        f"{'lag max':>8}  result"
    )

    failures = 0
    configs = []
    reference = None
    for n in REPLICA_COUNTS:
        r = run_config(n, scale, args.max_batch)
        if reference is None:
            reference = r
            r["ok"] = True
        else:
            r["ok"] = r["results"] == reference["results"]
        configs.append(r)
        print(
            f"{f'replicas={n}':<12} {r['changes']:>8} {r['updates_per_s']:>10.0f} "
            f"{r['reads_per_s']:>10.0f} {r['observed_lag_max']:>8} "
            f" {'OK' if r['ok'] else 'MISMATCH vs leader-only'}"
        )
        if not r["ok"]:
            failures += 1

    record = {
        "workload": {
            "scale": scale,
            "seed": 42,
            "max_batch": args.max_batch,
            "max_staleness": MAX_STALENESS,
            "tools": list(TOOLS),
            "analytics": list(ANALYTICS),
        },
        "cpu_count": os.cpu_count(),
        "configs": [{k: c[k] for k in c if k != "results"} for c in configs],
        "note": (
            "leader and replicas share one Python process; replicas>0 buys "
            "read fan-out under a bounded-staleness contract, failover "
            "capacity and per-replica fault isolation rather than in-process "
            "wall-clock speedup -- the REPRO_REPLICAS=2 CI job's artifact "
            "records the multi-replica numbers"
        ),
        "results_identical_across_configs": failures == 0,
    }
    out_path = Path("BENCH_replication.json")
    if out_path.resolve() == _BASELINE_PATH:
        out_path = Path("BENCH_replication.current.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {out_path}")
    if failures:
        print(f"{failures} configuration(s) diverged from the leader-only reference")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
