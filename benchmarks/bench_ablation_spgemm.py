"""Ablation A1: generic expansion SpGEMM vs the SciPy plus_times fast path.

DESIGN.md calls out the dual-path mxm as a design choice; this bench
quantifies it on random square matrices of growing size (results also sanity
-check each other).  The generic path is the price of arbitrary semirings;
the fast path shows what delegating to compiled SpGEMM buys for plus_times.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphblas import INT64, Matrix, semiring
from repro.graphblas._kernels import spgemm

SIZES = (200, 500, 1000)
DENSITY = 0.01


def _random_matrix(n: int, seed: int) -> Matrix:
    rng = np.random.default_rng(seed)
    nnz = max(1, int(n * n * DENSITY))
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.integers(1, 10, nnz)
    from repro.graphblas import ops

    return Matrix.from_coo(rows, cols, vals, n, n, dtype=INT64, dup_op=ops.plus)


@pytest.mark.parametrize("n", SIZES, ids=lambda n: f"n{n}")
@pytest.mark.parametrize("path", ["generic", "scipy"])
def test_spgemm_paths(benchmark, n, path):
    benchmark.group = f"ablation-spgemm-n{n}"
    a = _random_matrix(n, 1)
    b = _random_matrix(n, 2)
    at, bt = a._coo_tuple(), b._coo_tuple()

    if path == "generic":
        out = benchmark(spgemm.generic_mxm, at, bt, semiring.plus_times)
    else:
        out = benchmark(spgemm.scipy_plus_times_mxm, at, bt)
    assert out[0].size > 0


@pytest.mark.parametrize("n", SIZES[:2], ids=lambda n: f"n{n}")
def test_spgemm_paths_agree(n):
    a = _random_matrix(n, 3)._coo_tuple()
    b = _random_matrix(n, 4)._coo_tuple()
    g = spgemm.generic_mxm(a, b, semiring.plus_times)
    s = spgemm.scipy_plus_times_mxm(a, b)
    assert np.array_equal(g[0], s[0])
    assert np.array_equal(g[2].astype(np.int64), s[2].astype(np.int64))
