"""Observability overhead benchmark: telemetry must be free when off.

The obs layer's contract is *disabled-by-default cheap*: with no tracer
installed every ``span_if`` resolves to a shared null span after one slot
read, and ``locked_map`` skips the ``TimedBlock`` wrapper entirely.  This
bench prices that contract on the steady-state serving workload from
``bench_serving`` (single-change micro-batches, interleaved reads,
``graphblas-incremental`` engines) in three configurations:

* ``off``   -- no tracer, no profiler: the default production path.  Its
  updates/sec (best of three rounds) is compared against a *pre-obs
  baseline*: the same workload run by the code as it was before the
  instrumentation existed.  Pass ``--pre-src PATH`` (a pristine checkout,
  e.g. ``git worktree add /tmp/pre <pre-obs-ref>``) to measure that
  baseline on the same machine in a subprocess -- the only comparison
  that isolates instrumentation cost from machine drift.  Without it the
  committed ``benchmarks/BENCH_serving.json`` ``post.updates_per_s`` is
  used, and the delta then folds in whatever the machine has drifted
  since that record was committed.
* ``trace`` -- a live :class:`repro.obs.Tracer` collecting every span.
* ``both``  -- tracer plus :class:`repro.obs.KernelProfiler` (the
  profiler only engages inside parallel kernel regions, so on the
  single-process smoke it prices the slot checks, not block timing).

Script mode (CI)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke \
        [--trace-out trace.json] [--prom-out metrics.prom]

writes ``BENCH_obs.json`` (or ``BENCH_obs.current.json`` when run from
inside ``benchmarks/``), optionally dumping the ``trace`` round's Chrome
trace and the Prometheus exposition as CI artifacts.  Exit status
reflects correctness only -- overhead numbers are recorded, not gated,
so CI cannot flake on machine speed.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_serving import (  # noqa: E402
    STEADY_MAX_BATCH,
    STEADY_READ_EVERY,
    STEADY_SCALE,
    _drive,
)

from repro.datagen import generate_benchmark_input  # noqa: E402
from repro.obs import KernelProfiler, Tracer, set_kernel_profiler, set_tracer  # noqa: E402
from repro.queries import Q1Batch, Q2Batch  # noqa: E402
from repro.serving import GraphService  # noqa: E402

_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"
_RECORD_PATH = Path(__file__).resolve().parent / "BENCH_obs.json"


def run_round(scale: int, *, tracer=None, profiler=None) -> dict:
    """One steady-state stream under the given telemetry configuration."""
    set_tracer(tracer)
    set_kernel_profiler(profiler)
    try:
        graph, change_sets = generate_benchmark_input(scale, seed=42)
        changes = [ch for cs in change_sets for ch in cs]
        service = GraphService(
            graph,
            tools=("graphblas-incremental",),
            max_batch=STEADY_MAX_BATCH,
            max_delay_ms=1e9,
            q2_algorithm="unionfind",
        )
        _drive(service, changes, read_every=STEADY_READ_EVERY)
        stats = service.stats()
        ops = stats["ops"]
        q1, q2 = service.query("Q1"), service.query("Q2")
        ok = (
            q1.result_string == Q1Batch(service.graph).result_string()
            and q2.result_string
            == Q2Batch(service.graph, algorithm="unionfind").result_string()
        )
        out = {
            "changes": len(changes),
            "updates_per_s": round(len(changes) / ops["apply"]["total_s"], 1),
            "apply_p50_ms": ops["apply"]["p50_ms"],
            "apply_p99_ms": ops["apply"]["p99_ms"],
            "read_p99_ms": ops["query"]["p99_ms"],
            "ok": ok,
        }
        if tracer is not None:
            out["spans"] = len(tracer.finished())
        out["_service"] = service
        return out
    finally:
        set_tracer(None)
        set_kernel_profiler(None)


def _subprocess_steady(root: Path, scale: int) -> dict:
    """One warmed steady-state round against `root`'s checkout in a fresh
    interpreter (two module trees cannot share one process, and a fresh
    process per round gives both sides of the A/B identical conditions)."""
    snippet = (
        "import sys, json\n"
        f"sys.path.insert(0, {str(root / 'benchmarks')!r})\n"
        "from bench_serving import run_steady_state\n"
        f"run_steady_state(max(2, {scale} // 8))  # warm the process\n"
        f"r = run_steady_state({scale})\n"
        "print(json.dumps({k: r[k] for k in"
        " ('updates_per_s', 'apply_p50_ms', 'ok')}))\n"
    )
    env = dict(os.environ, PYTHONPATH=str(root / "src"))
    out = subprocess.run(
        [sys.executable, "-c", snippet],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def same_machine_ab(pre_root: Path, scale: int, rounds: int) -> dict:
    """Interleaved A/B: pre-obs checkout vs this checkout (telemetry off),
    one fresh subprocess per round, best-of-``rounds`` per side.
    Interleaving means adjacent rounds see the same machine load, so the
    delta prices the instrumentation rather than scheduler weather."""
    here = Path(__file__).resolve().parents[1]
    pre_runs, off_runs = [], []
    for i in range(rounds):
        pre_runs.append(_subprocess_steady(pre_root, scale))
        off_runs.append(_subprocess_steady(here, scale))
        print(f"  A/B round {i + 1}/{rounds}: "
              f"pre {pre_runs[-1]['updates_per_s']:.0f} upd/s, "
              f"off {off_runs[-1]['updates_per_s']:.0f} upd/s")
    best_pre = max(r["updates_per_s"] for r in pre_runs)
    best_off = max(r["updates_per_s"] for r in off_runs)
    return {
        "pre_obs_updates_per_s": best_pre,
        "obs_off_updates_per_s": best_off,
        "off_vs_pre_pct": _pct(best_off, best_pre),
        "ok": all(r["ok"] for r in pre_runs + off_runs),
        "pre_runs": [r["updates_per_s"] for r in pre_runs],
        "off_runs": [r["updates_per_s"] for r in off_runs],
    }


def _pct(new: float, ref: float) -> float:
    """Overhead of `new` relative to `ref` throughput, in percent.

    Positive = `new` is slower (lower updates/sec) than `ref`.
    """
    return round((ref / new - 1.0) * 100.0, 2)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="fixed CI workload")
    ap.add_argument("--scale", type=int, default=STEADY_SCALE)
    ap.add_argument("--trace-out", type=Path, default=None,
                    help="dump the trace round's Chrome trace JSON here")
    ap.add_argument("--prom-out", type=Path, default=None,
                    help="dump the trace round's Prometheus exposition here")
    ap.add_argument("--pre-src", type=Path, default=None,
                    help="pristine pre-obs checkout root; enables the "
                         "same-machine baseline subprocess")
    ap.add_argument("--rounds", type=int, default=3,
                    help="best-of-N rounds for the off/baseline configs")
    args = ap.parse_args(argv)
    scale = STEADY_SCALE if args.smoke else args.scale

    # warm the process (imports, numpy, datagen caches) so the measured
    # rounds run under the same conditions as the committed baseline,
    # which was recorded after bench_serving's smoke phase
    warm = run_round(max(2, scale // 8))
    warm["_service"].close()

    failures = 0
    rounds = {}
    print(f"obs overhead bench: steady-state sf{scale}, "
          f"micro-batch={STEADY_MAX_BATCH}")
    print(f"{'config':<8} {'upd/s':>8} {'apply p50':>10} {'read p99':>9}"
          f"  result")
    for name, kwargs in (
        ("off", {}),
        ("trace", {"tracer": Tracer()}),
        ("both", {"tracer": Tracer(), "profiler": KernelProfiler()}),
    ):
        # the off config is the <2% claim: take the best of N rounds so a
        # scheduler hiccup can't masquerade as instrumentation cost
        n = args.rounds if name == "off" else 1
        best = None
        for _ in range(n):
            if kwargs.get("tracer") is not None:
                kwargs["tracer"].clear()
            r = run_round(scale, **kwargs)
            if best is None or r["updates_per_s"] > best["updates_per_s"]:
                if best is not None:
                    best.pop("_service").close()
                best = r
            else:
                r.pop("_service").close()
        r = best
        service = r.pop("_service")
        if name == "trace":
            if args.trace_out:
                kwargs["tracer"].dump(args.trace_out)
                print(f"  trace -> {args.trace_out}")
            if args.prom_out:
                args.prom_out.write_text(service.metrics_text())
                print(f"  prometheus -> {args.prom_out}")
        service.close()
        rounds[name] = r
        print(f"{name:<8} {r['updates_per_s']:>8.0f} "
              f"{r['apply_p50_ms']:>9.3f}m {r['read_p99_ms']:>8.4f}m  "
              f"{'OK' if r['ok'] else 'MISMATCH'}")
        if not r["ok"]:
            failures += 1

    committed = (
        json.loads(_BASELINE_PATH.read_text()) if _BASELINE_PATH.exists() else {}
    )
    committed_upds = (committed.get("post") or {}).get("updates_per_s")
    same_machine = None
    if args.pre_src:
        print(f"\ninterleaved A/B vs pre-obs checkout {args.pre_src} "
              f"(best of {args.rounds} fresh subprocesses per side) ...")
        same_machine = same_machine_ab(args.pre_src, scale, args.rounds)
        if not same_machine["ok"]:
            failures += 1
    baseline = (same_machine or {}).get("pre_obs_updates_per_s") or committed_upds
    baseline_src = "same-machine pre-obs run" if same_machine else (
        "committed BENCH_serving.json post"
    )
    record = {
        "workload": {
            "description": (
                "bench_serving steady-state stream under three telemetry "
                "configurations, compared against the pre-obs code running "
                "the same workload"
            ),
            "scale": scale,
            "max_batch": STEADY_MAX_BATCH,
            "read_every": STEADY_READ_EVERY,
            "seed": 42,
            "best_of_rounds": args.rounds,
        },
        "baseline_updates_per_s": baseline,
        "baseline_source": baseline_src,
        "baseline_same_machine": same_machine,
        "committed_serving_post_updates_per_s": committed_upds,
        "rounds": rounds,
        "overhead_pct": {
            "off_vs_baseline": (
                same_machine["off_vs_pre_pct"] if same_machine
                else _pct(rounds["off"]["updates_per_s"], baseline)
                if baseline else None
            ),
            "trace_vs_off": _pct(
                rounds["trace"]["updates_per_s"], rounds["off"]["updates_per_s"]
            ),
            "both_vs_off": _pct(
                rounds["both"]["updates_per_s"], rounds["off"]["updates_per_s"]
            ),
        },
        "note": (
            "positive pct = slower than reference; off_vs_baseline is the "
            "cost of the dormant instrumentation (target <2%; negative = "
            "measured faster than the baseline, i.e. within machine "
            "noise); trace_vs_off prices a live tracer keeping every span; "
            "without --pre-src the baseline is the committed record and "
            "the delta folds in machine drift since it was committed"
        ),
    }
    off_pct = record["overhead_pct"]["off_vs_baseline"]
    if off_pct is not None:
        print(f"\ntelemetry-off vs {baseline_src} "
              f"({baseline:.0f} upd/s): {off_pct:+.2f}%")
    print(f"tracing-on vs off: "
          f"{record['overhead_pct']['trace_vs_off']:+.2f}% "
          f"({rounds['trace']['spans']} spans)")

    out_path = Path("BENCH_obs.json")
    if out_path.resolve() == _RECORD_PATH:
        out_path = Path("BENCH_obs.current.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
