"""Sharded-serving benchmark: scatter throughput across shard counts.

Drives the same micro-batched change stream through a
:class:`repro.sharding.ShardedGraphService` at shards ∈ {1, 2, 4} (plus an
unsharded :class:`repro.serving.GraphService` reference), measuring
sustained updates/sec through the router's WAL + route + scatter path and
the merged-read latency percentiles.  Every configuration must serve
bit-identical Q1/Q2/analytics results -- a result mismatch fails the run,
so this doubles as the CI guard that the scatter-gather merge stays exact.

Script mode::

    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke

writes the ``{workload, configs, ...}`` record to ``BENCH_sharding.json``
(committed copy: ``benchmarks/BENCH_sharding.json``).  Like
``BENCH_parallel.json``, the record carries ``cpu_count`` and an honest
``note``: the scatter fans out over Python threads, so on a single-core
box (or under the GIL with CPU-bound refreshes) shards > 1 mostly buys
*partitioned state and fault isolation*, not wall-clock speedup -- the
per-shard work units shrink, but they serialize.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.datagen import generate_benchmark_input
from repro.serving import GraphService
from repro.sharding import ShardedGraphService

SHARD_COUNTS = (1, 2, 4)
TOOLS = ("graphblas-incremental",)
ANALYTICS = ("components", "degree")
QUERIES = ("Q1", "Q2") + ANALYTICS

_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_sharding.json"


def _drive(service, changes, max_batch: int, read_every: int = 10) -> None:
    for i, ch in enumerate(changes):
        service.submit(ch)
        if i % read_every == 0:
            for q in QUERIES:
                service.query(q)
    service.flush()


def _fresh_workload(scale: int, seed: int = 42):
    graph, change_sets = generate_benchmark_input(scale, seed=seed)
    return graph, [ch for cs in change_sets for ch in cs]


def run_config(shards: int | None, scale: int, max_batch: int) -> dict:
    """One shard count over the standard stream; shards=None = unsharded."""
    graph, changes = _fresh_workload(scale)
    kwargs = dict(
        tools=TOOLS,
        analytics=ANALYTICS,
        max_batch=max_batch,
        max_delay_ms=1e9,
        q2_algorithm="unionfind",
    )
    if shards is None:
        service = GraphService(graph, **kwargs)
    else:
        service = ShardedGraphService(graph, shards=shards, **kwargs)
    try:
        _drive(service, changes, max_batch)
        ops = service.stats()["ops"]
        apply_key = "scatter" if shards is not None else "apply"
        total_s = ops[apply_key]["total_s"]
        return {
            "shards": shards if shards is not None else 0,
            "changes": len(changes),
            "versions": service.version,
            "updates_per_s": round(len(changes) / total_s, 1) if total_s else None,
            "apply_p50_ms": ops[apply_key]["p50_ms"],
            "apply_p99_ms": ops[apply_key]["p99_ms"],
            "read_p50_ms": ops["query"]["p50_ms"],
            "read_p99_ms": ops["query"]["p99_ms"],
            "metrics": service.stats()["metrics"],
            "results": {q: service.query(q).result_string for q in QUERIES},
        }
    finally:
        service.close()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fixed CI workload")
    ap.add_argument("--scale", type=int, default=4, help="Table II scale factor")
    ap.add_argument("--max-batch", type=int, default=8)
    args = ap.parse_args(argv)
    scale = 4 if args.smoke else args.scale

    print(
        f"sharding bench: scale factor {scale}, micro-batch {args.max_batch}, "
        f"tools {TOOLS}, analytics {ANALYTICS}"
    )
    print(
        f"{'config':<12} {'changes':>8} {'upd/s':>10} {'apply p99':>10} "
        f"{'read p99':>10}  result"
    )

    reference = run_config(None, scale, args.max_batch)
    print(
        f"{'unsharded':<12} {reference['changes']:>8} "
        f"{reference['updates_per_s']:>10.0f} {reference['apply_p99_ms']:>9.2f}m "
        f"{reference['read_p99_ms']:>9.3f}m  reference"
    )

    failures = 0
    configs = []
    for n in SHARD_COUNTS:
        r = run_config(n, scale, args.max_batch)
        ok = r["results"] == reference["results"]
        r["ok"] = ok
        configs.append(r)
        print(
            f"{f'shards={n}':<12} {r['changes']:>8} {r['updates_per_s']:>10.0f} "
            f"{r['apply_p99_ms']:>9.2f}m {r['read_p99_ms']:>9.3f}m  "
            f"{'OK' if ok else 'MISMATCH vs unsharded'}"
        )
        if not ok:
            failures += 1

    base = configs[0]["updates_per_s"]
    record = {
        "workload": {
            "scale": scale,
            "seed": 42,
            "max_batch": args.max_batch,
            "tools": list(TOOLS),
            "analytics": list(ANALYTICS),
        },
        "cpu_count": os.cpu_count(),
        "unsharded": {k: reference[k] for k in reference if k != "results"},
        "configs": [{k: c[k] for k in c if k != "results"} for c in configs],
        "scaling_vs_shards1": {
            f"shards={c['shards']}": round(c["updates_per_s"] / base, 2)
            for c in configs
        },
        "note": (
            "scatter fans out over Python threads; on a single-core box or "
            "with GIL-bound refreshes, shards>1 buys partitioned state, "
            "bounded per-shard work and fault isolation rather than "
            "wall-clock speedup -- multi-core scaling comes from the "
            "REPRO_SHARDS=2 CI job's artifact"
        ),
        "results_identical_across_configs": failures == 0,
    }
    out_path = Path("BENCH_sharding.json")
    if out_path.resolve() == _BASELINE_PATH:
        out_path = Path("BENCH_sharding.current.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {out_path}")
    if failures:
        print(f"{failures} configuration(s) diverged from the unsharded reference")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
