"""Sharded-serving benchmark: scatter throughput across shard counts.

Drives the same micro-batched change stream through a
:class:`repro.sharding.ShardedGraphService` at shards ∈ {1, 2, 4} (plus an
unsharded :class:`repro.serving.GraphService` reference), measuring
sustained updates/sec through the router's WAL + route + scatter path and
the merged-read latency percentiles.  Every configuration must serve
bit-identical Q1/Q2/analytics results -- a result mismatch fails the run,
so this doubles as the CI guard that the scatter-gather merge stays exact.

Both shard backends are measured like-for-like on the same workload:
``inproc`` (shards as threads in this process, the PR 5 configuration)
and ``process`` (one worker process per shard behind the pipe-RPC
handles, ``REPRO_SHARD_PROCS=1``).  Script mode::

    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke

writes the ``{workload, configs, ...}`` record to ``BENCH_sharding.json``
(committed copy: ``benchmarks/BENCH_sharding.json``).  Every config row
carries a ``backend`` field, and ``process_vs_inproc`` reports the
updates/s ratio at each shard count.  Like ``BENCH_parallel.json``, the
record carries ``cpu_count`` and an honest ``note``: on a single-core
box neither backend can beat the other by much -- the thread backend
serializes on the GIL and the process backend time-slices its workers --
so shards > 1 mostly buys *partitioned state and fault isolation* there;
real scaling numbers come from the multicore ``tier1-sharded-procs`` CI
job's artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.datagen import generate_benchmark_input
from repro.serving import GraphService
from repro.sharding import ShardedGraphService

SHARD_COUNTS = (1, 2, 4)
TOOLS = ("graphblas-incremental",)
ANALYTICS = ("components", "degree")
QUERIES = ("Q1", "Q2") + ANALYTICS

_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_sharding.json"


def _drive(service, changes, max_batch: int, read_every: int = 10) -> None:
    for i, ch in enumerate(changes):
        service.submit(ch)
        if i % read_every == 0:
            for q in QUERIES:
                service.query(q)
    service.flush()


def _fresh_workload(scale: int, seed: int = 42):
    graph, change_sets = generate_benchmark_input(scale, seed=seed)
    return graph, [ch for cs in change_sets for ch in cs]


def run_config(
    shards: int | None, scale: int, max_batch: int, backend: str = "inproc"
) -> dict:
    """One shard count over the standard stream; shards=None = unsharded."""
    graph, changes = _fresh_workload(scale)
    kwargs = dict(
        tools=TOOLS,
        analytics=ANALYTICS,
        max_batch=max_batch,
        max_delay_ms=1e9,
        q2_algorithm="unionfind",
    )
    if shards is None:
        service = GraphService(graph, **kwargs)
    else:
        service = ShardedGraphService(
            graph, shards=shards, backend=backend, **kwargs
        )
    try:
        _drive(service, changes, max_batch)
        ops = service.stats()["ops"]
        apply_key = "scatter" if shards is not None else "apply"
        total_s = ops[apply_key]["total_s"]
        return {
            "shards": shards if shards is not None else 0,
            "backend": backend if shards is not None else None,
            "changes": len(changes),
            "versions": service.version,
            "updates_per_s": round(len(changes) / total_s, 1) if total_s else None,
            "apply_p50_ms": ops[apply_key]["p50_ms"],
            "apply_p99_ms": ops[apply_key]["p99_ms"],
            "read_p50_ms": ops["query"]["p50_ms"],
            "read_p99_ms": ops["query"]["p99_ms"],
            "metrics": service.stats()["metrics"],
            "results": {q: service.query(q).result_string for q in QUERIES},
        }
    finally:
        service.close()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fixed CI workload")
    ap.add_argument("--scale", type=int, default=4, help="Table II scale factor")
    ap.add_argument("--max-batch", type=int, default=8)
    ap.add_argument(
        "--backend", choices=("both", "inproc", "process"), default="both",
        help="shard backend(s) to measure (default: both, like-for-like)",
    )
    args = ap.parse_args(argv)
    scale = 4 if args.smoke else args.scale
    backends = (
        ("inproc", "process") if args.backend == "both" else (args.backend,)
    )

    print(
        f"sharding bench: scale factor {scale}, micro-batch {args.max_batch}, "
        f"tools {TOOLS}, analytics {ANALYTICS}, backends {backends}"
    )
    print(
        f"{'config':<22} {'changes':>8} {'upd/s':>10} {'apply p99':>10} "
        f"{'read p99':>10}  result"
    )

    reference = run_config(None, scale, args.max_batch)
    print(
        f"{'unsharded':<22} {reference['changes']:>8} "
        f"{reference['updates_per_s']:>10.0f} {reference['apply_p99_ms']:>9.2f}m "
        f"{reference['read_p99_ms']:>9.3f}m  reference"
    )

    failures = 0
    configs = []
    for backend in backends:
        for n in SHARD_COUNTS:
            r = run_config(n, scale, args.max_batch, backend=backend)
            ok = r["results"] == reference["results"]
            r["ok"] = ok
            configs.append(r)
            label = f"shards={n} [{backend}]"
            print(
                f"{label:<22} {r['changes']:>8} {r['updates_per_s']:>10.0f} "
                f"{r['apply_p99_ms']:>9.2f}m {r['read_p99_ms']:>9.3f}m  "
                f"{'OK' if ok else 'MISMATCH vs unsharded'}"
            )
            if not ok:
                failures += 1

    def _ups(backend, shards):
        for c in configs:
            if c["backend"] == backend and c["shards"] == shards:
                return c["updates_per_s"]
        return None

    scaling = {}
    for backend in backends:
        base = _ups(backend, SHARD_COUNTS[0])
        scaling[backend] = {
            f"shards={n}": round(_ups(backend, n) / base, 2)
            for n in SHARD_COUNTS
            if base and _ups(backend, n) is not None
        }
    process_vs_inproc = None
    if "inproc" in backends and "process" in backends:
        process_vs_inproc = {
            f"shards={n}": round(_ups("process", n) / _ups("inproc", n), 2)
            for n in SHARD_COUNTS
            if _ups("inproc", n) and _ups("process", n) is not None
        }
    multicore = (os.cpu_count() or 1) > 1
    record = {
        "workload": {
            "scale": scale,
            "seed": 42,
            "max_batch": args.max_batch,
            "tools": list(TOOLS),
            "analytics": list(ANALYTICS),
        },
        "cpu_count": os.cpu_count(),
        "unsharded": {k: reference[k] for k in reference if k != "results"},
        "configs": [{k: c[k] for k in c if k != "results"} for c in configs],
        "scaling_vs_shards1": scaling,
        "process_vs_inproc_updates_per_s": process_vs_inproc,
        "note": (
            "backends are measured like-for-like on the same workload and "
            "must serve identical bytes; "
            + (
                "multi-core box: the process backend escapes the GIL, so "
                "shards>1 should scale scatter throughput with cores"
                if multicore
                else "single-core box: the thread backend serializes on the "
                "GIL and the process backend time-slices its workers plus "
                "pays per-batch RPC, so shards>1 buys partitioned state, "
                "bounded per-shard work and fault isolation rather than "
                "wall-clock speedup -- real scaling numbers come from the "
                "multicore tier1-sharded-procs CI job's artifact"
            )
        ),
        "results_identical_across_configs": failures == 0,
    }
    out_path = Path("BENCH_sharding.json")
    if out_path.resolve() == _BASELINE_PATH:
        out_path = Path("BENCH_sharding.current.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {out_path}")
    if failures:
        print(f"{failures} configuration(s) diverged from the unsharded reference")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
