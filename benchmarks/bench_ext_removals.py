"""Extension experiment E1 (paper future work): mixed insert/remove streams.

"It would be interesting to investigate the performance of the solution in
the presence of more realistic update operations, including both insertions
and removals."  This bench does exactly that: the update+reevaluation phase
under a stream where 30 % of the like/friendship changes are removals,
comparing batch recomputation against the removal-aware incremental engines
(whose top-k falls back from the monotone merge rule to an O(n) reselect).
"""

from __future__ import annotations

import pytest

from conftest import SCALE_FACTORS
from repro.datagen import generate_benchmark_input
from repro.queries import Q1Batch, Q1Incremental, Q2Batch, Q2Incremental

REMOVAL_FRACTION = 0.3

VARIANTS = ("batch", "incremental", "incremental-cc")


def _mixed_input(scale_factor: int):
    return generate_benchmark_input(
        scale_factor, seed=42, removal_fraction=REMOVAL_FRACTION
    )


@pytest.mark.parametrize("variant", ("batch", "incremental"))
def test_q1_update_with_removals(benchmark, scale_factor, variant):
    benchmark.group = f"ext-removals-q1-sf{scale_factor}"

    def setup():
        graph, change_sets = _mixed_input(scale_factor)
        if variant == "incremental":
            q = Q1Incremental(graph)
            q.initial()
        else:
            q = Q1Batch(graph)
            q.evaluate()
        return (graph, q, change_sets), {}

    def phase(graph, q, change_sets):
        out = None
        for cs in change_sets:
            delta = graph.apply(cs)
            out = q.update(delta) if variant == "incremental" else q.evaluate()
        return out

    assert benchmark.pedantic(phase, setup=setup, rounds=3)


@pytest.mark.parametrize("variant", VARIANTS)
def test_q2_update_with_removals(benchmark, scale_factor, variant):
    benchmark.group = f"ext-removals-q2-sf{scale_factor}"

    def setup():
        graph, change_sets = _mixed_input(scale_factor)
        if variant == "batch":
            q = Q2Batch(graph, algorithm="unionfind")
            q.evaluate()
        else:
            algo = "incremental" if variant == "incremental-cc" else "unionfind"
            q = Q2Incremental(graph, algorithm=algo)
            q.initial()
        return (graph, q, change_sets), {}

    def phase(graph, q, change_sets):
        out = None
        for cs in change_sets:
            delta = graph.apply(cs)
            out = q.evaluate() if variant == "batch" else q.update(delta)
        return out

    assert benchmark.pedantic(phase, setup=setup, rounds=2)
