"""Parallel kernel layer: parallel results must be bit-identical to serial.

Every routed kernel (expansion SpGEMM, the SciPy repair pass, SpMV,
row-reduce, the dirty-row merge) is run serially (no executor) and through
a real fork-once pool at worker counts {1, 2, 4} with the cutoff forced to
zero, and the outputs are compared element-for-element *and* dtype-for-
dtype.  Workloads include empty rows/blocks, annihilating sums (products
cancelling to exactly zero, which GraphBLAS must keep), and single-row
matrices.
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest

from repro.graphblas import monoid as mon
from repro.graphblas import semiring as sem
from repro.graphblas._kernels import freeze, parallel as kp, reduce as red, spgemm, spmv
from repro.graphblas._kernels.coo import canonicalize_matrix
from repro.graphblas._kernels.csr import indptr_from_rows
from repro.parallel import make_executor
from repro.util.validation import ReproError

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based kernel executor is POSIX-only"
)

WORKER_COUNTS = (1, 2, 4)


@contextmanager
def kernel_workers(workers: int):
    """Install a persistent pool of the given width with a zero cutoff."""
    ex = make_executor("persistent", workers) if workers > 1 else None
    kp.set_kernel_executor(ex)
    kp.set_parallel_cutoff(0)
    try:
        yield
    finally:
        kp.close_kernel_executor()
        kp.set_parallel_cutoff(None)


def rand_coo(rng, nrows, ncols, nnz, lo=-3, hi=4, dtype=np.int64):
    rows = rng.integers(0, nrows, nnz)
    cols = rng.integers(0, ncols, nnz)
    vals = rng.integers(lo, hi, nnz).astype(dtype)
    r, c, v = canonicalize_matrix(rows, cols, vals, nrows, ncols, dup_op=mon.plus_monoid.op)
    return (r, c, v, nrows, ncols)


def assert_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for s, p in zip(serial, parallel):
        assert np.array_equal(s, p), (s, p)
        assert s.dtype == p.dtype, (s.dtype, p.dtype)


MATRICES = {
    # name -> (nrows, ncols, nnz): empty-row stretches, skew, tiny shapes
    "dense-ish": (60, 50, 900),
    "sparse-empty-rows": (400, 80, 300),
    "single-row": (1, 64, 40),
    "single-col": (64, 1, 40),
}


class TestMxmParallel:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("shape", sorted(MATRICES))
    @pytest.mark.parametrize("semiring", ["plus_times", "min_second", "lor_land"])
    def test_matches_serial(self, workers, shape, semiring):
        rng = np.random.default_rng(7)
        nr, nc, nnz = MATRICES[shape]
        s = sem.get(semiring)
        dtype = np.bool_ if semiring == "lor_land" else np.int64
        a = rand_coo(rng, nr, nc, nnz, lo=0, hi=2, dtype=dtype)
        b = rand_coo(rng, nc, 70, 800, lo=0, hi=2, dtype=dtype)
        serial = spgemm.generic_mxm(a, b, s)
        with kernel_workers(workers):
            parallel = spgemm.generic_mxm(a, b, s)
        assert_identical(serial, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_annihilating_sum_kept(self, workers):
        """Products cancelling to exactly 0 must keep their entry on both
        paths (GraphBLAS structural semantics)."""
        # A row [1, -1] times B rows that collide on the same output column
        a = canonicalize_matrix(
            np.array([0, 0]), np.array([0, 1]), np.array([1, -1]), 1, 2
        )
        a = (*a, 1, 2)
        b = canonicalize_matrix(
            np.array([0, 1]), np.array([0, 0]), np.array([5, 5]), 2, 1
        )
        b = (*b, 2, 1)
        serial = spgemm.generic_mxm(a, b, sem.get("plus_times"))
        assert serial[2].tolist() == [0]  # annihilated but present
        with kernel_workers(workers):
            parallel = spgemm.generic_mxm(a, b, sem.get("plus_times"))
        assert_identical(serial, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_scipy_repair_matches(self, workers):
        rng = np.random.default_rng(3)
        a = rand_coo(rng, 80, 60, 700)
        b = rand_coo(rng, 60, 90, 700)
        serial = spgemm.scipy_plus_times_mxm(a, b)
        with kernel_workers(workers):
            parallel = spgemm.scipy_plus_times_mxm(a, b)
        assert_identical(serial, parallel)


class TestTiledMxm:
    def test_over_limit_degrades_to_tiles(self, monkeypatch):
        """Totals above FLOP_LIMIT row-tile instead of failing (the former
        hard ReproError), and the tiled result is identical."""
        rng = np.random.default_rng(11)
        a = rand_coo(rng, 120, 80, 900)
        b = rand_coo(rng, 80, 100, 900)
        want = spgemm.generic_mxm(a, b, sem.get("plus_times"))
        monkeypatch.setattr(spgemm, "FLOP_LIMIT", 500)
        got = spgemm.generic_mxm(a, b, sem.get("plus_times"))
        assert_identical(want, got)

    def test_single_dense_row_still_raises(self, monkeypatch):
        """A single row that alone exceeds the limit cannot be tiled."""
        monkeypatch.setattr(spgemm, "FLOP_LIMIT", 2)
        a = canonicalize_matrix(
            np.array([0, 0]), np.array([0, 1]), np.array([1, 1]), 1, 2
        )
        b = canonicalize_matrix(
            np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1]), np.ones(4), 2, 2
        )
        with pytest.raises(ReproError, match="single output row"):
            spgemm.generic_mxm((*a, 1, 2), (*b, 2, 2), sem.get("plus_times"))


class TestMxvParallel:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("shape", sorted(MATRICES))
    @pytest.mark.parametrize("semiring", ["plus_times", "min_second"])
    def test_matches_serial(self, workers, shape, semiring):
        rng = np.random.default_rng(13)
        nr, nc, nnz = MATRICES[shape]
        a = rand_coo(rng, nr, nc, nnz)
        u_idx = np.unique(rng.integers(0, nc, max(1, nc // 2)))
        u_vals = rng.integers(1, 6, u_idx.size)
        u = (u_idx, u_vals, nc)
        s = sem.get(semiring)
        serial = spmv.mxv(a, u, s)
        with kernel_workers(workers):
            parallel = spmv.mxv(a, u, s, indptr=indptr_from_rows(a[0], nr))
        assert_identical(serial, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_blocks_with_no_output(self, workers):
        """Row blocks whose columns all miss u must contribute empty
        segments without disturbing dtype or order."""
        # rows 0..9 hit column 0; rows 100..109 hit column 1; u only has col 0
        rows = np.concatenate([np.arange(10), np.arange(100, 110)]).astype(np.int64)
        cols = np.concatenate([np.zeros(10), np.ones(10)]).astype(np.int64)
        vals = np.arange(20, dtype=np.int64)
        a = (rows, cols, vals, 200, 2)
        u = (np.array([0], dtype=np.int64), np.array([3], dtype=np.int64), 2)
        serial = spmv.mxv(a, u, sem.get("plus_times"))
        with kernel_workers(workers):
            parallel = spmv.mxv(a, u, sem.get("plus_times"))
        assert_identical(serial, parallel)


class TestReduceParallel:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("shape", sorted(MATRICES))
    @pytest.mark.parametrize("monoid", ["plus", "min", "lor"])
    def test_matches_serial(self, workers, shape, monoid):
        rng = np.random.default_rng(17)
        nr, nc, nnz = MATRICES[shape]
        m = mon.MONOIDS[monoid]
        dtype = np.bool_ if monoid == "lor" else np.int64
        a = rand_coo(rng, nr, nc, nnz, lo=0, hi=2, dtype=dtype)
        serial = red.reduce_rows(a[0], a[2], m)
        with kernel_workers(workers):
            parallel = red.reduce_rows(a[0], a[2], m, indptr=indptr_from_rows(a[0], nr))
        assert_identical(serial, parallel)


class TestMergeDirtyRowsParallel:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_serial(self, workers, seed):
        rng = np.random.default_rng(seed)
        nr, nc = 150, 40
        rows, cols, vals, _, _ = rand_coo(rng, nr, nc, 800)
        indptr = indptr_from_rows(rows, nr)
        dirty = np.unique(rng.integers(0, nr, 30))
        reps = []
        for r in dirty.tolist():
            k = int(rng.integers(0, 6))  # some dirty rows become empty
            cset = np.unique(rng.integers(0, nc, k))
            reps.append(
                (
                    np.full(cset.size, r, dtype=np.int64),
                    cset.astype(np.int64),
                    rng.integers(1, 9, cset.size),
                )
            )
        d_rows = np.concatenate([x[0] for x in reps])
        d_cols = np.concatenate([x[1] for x in reps])
        d_vals = np.concatenate([x[2] for x in reps])
        serial = freeze.merge_dirty_rows(
            rows, cols, vals, indptr, nr, dirty, d_rows, d_cols, d_vals
        )
        with kernel_workers(workers):
            parallel = freeze.merge_dirty_rows(
                rows, cols, vals, indptr, nr, dirty, d_rows, d_cols, d_vals
            )
        assert_identical(serial, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_all_rows_dirty_and_first_last(self, workers):
        """Dirty set covering row 0 and the last row exercises the zero
        prev boundary and the absent tail."""
        nr = 40
        rows = np.repeat(np.arange(nr, dtype=np.int64), 2)
        cols = np.tile(np.array([0, 3], dtype=np.int64), nr)
        vals = np.arange(2 * nr, dtype=np.int64)
        indptr = indptr_from_rows(rows, nr)
        dirty = np.arange(nr, dtype=np.int64)
        d_rows = np.arange(nr, dtype=np.int64)
        d_cols = np.ones(nr, dtype=np.int64)
        d_vals = np.full(nr, 7, dtype=np.int64)
        serial = freeze.merge_dirty_rows(
            rows, cols, vals, indptr, nr, dirty, d_rows, d_cols, d_vals
        )
        with kernel_workers(workers):
            parallel = freeze.merge_dirty_rows(
                rows, cols, vals, indptr, nr, dirty, d_rows, d_cols, d_vals
            )
        assert_identical(serial, parallel)


class TestRoutingGuards:
    def test_cutoff_keeps_small_work_serial(self):
        """Below the cutoff the executor must not be consulted at all."""
        with kernel_workers(2):
            kp.set_parallel_cutoff(10**9)
            rng = np.random.default_rng(5)
            a = rand_coo(rng, 30, 30, 100)
            b = rand_coo(rng, 30, 30, 100)
            # would raise inside the pool if dispatched with a poisoned fn;
            # instead we just assert the executor stays un-started
            spgemm.generic_mxm(a, b, sem.get("plus_times"))
            ex = kp.get_kernel_executor()
            assert ex._children == []  # never forked

    def test_forked_child_never_reenters_pool(self):
        """A forked process inheriting the executor slot must see None."""
        with kernel_workers(2):
            r, w = os.pipe()
            pid = os.fork()
            if pid == 0:  # child
                status = 1
                try:
                    ok = kp.get_kernel_executor() is None
                    os.write(w, b"1" if ok else b"0")
                    status = 0
                finally:
                    os._exit(status)
            os.close(w)
            got = os.read(r, 1)
            os.close(r)
            os.waitpid(pid, 0)
            assert got == b"1"

    def test_reduce_without_indptr_stays_serial(self):
        """Arbitrary group ids (reduce_groups on encoded keys) must never
        reach the parallel path: an indptr over the id space is O(max id)."""
        with kernel_workers(2):
            huge_ids = np.sort(np.array([0, 10**12, 10**12, 10**15], dtype=np.int64))
            vals = np.array([1, 2, 3, 4], dtype=np.int64)
            assert kp.parallel_reduce_rows(huge_ids, vals, mon.plus_monoid) is None
            idx, out = red.reduce_rows(huge_ids, vals, mon.plus_monoid)
            assert idx.tolist() == [0, 10**12, 10**15]
            assert out.tolist() == [1, 5, 4]

    def test_balanced_bounds_cover_all_rows(self):
        indptr = np.array([0, 0, 10, 10, 11, 100, 100], dtype=np.int64)
        bounds = kp.balanced_bounds(indptr, 4)
        assert bounds[0] == 0 and bounds[-1] == indptr.size - 1
        assert (np.diff(bounds) >= 0).all()
