"""Unit tests for the Matrix class: all Table-I operations of the paper."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphblas import BOOL, FP64, INT64, Mask, Matrix, Vector, monoid, ops, semiring
from repro.graphblas.descriptor import Descriptor
from repro.util.validation import DimensionMismatch, IndexOutOfBounds, ReproError


@pytest.fixture
def a23():
    """[[1, 2, .], [., ., 3]]"""
    return Matrix.from_coo([0, 0, 1], [0, 1, 2], [1, 2, 3], 2, 3)


class TestConstruction:
    def test_sparse_empty(self):
        m = Matrix.sparse(INT64, 3, 4)
        assert m.shape == (3, 4) and m.nvals == 0

    def test_from_coo(self, a23):
        assert a23.to_dense().tolist() == [[1, 2, 0], [0, 0, 3]]

    def test_from_coo_scalar_broadcast(self):
        m = Matrix.from_coo([0, 1], [1, 0], True, 2, 2, dtype=BOOL)
        assert m.nvals == 2

    def test_duplicates_need_dup_op(self):
        with pytest.raises(ReproError):
            Matrix.from_coo([0, 0], [0, 0], [1, 2], 1, 1)
        m = Matrix.from_coo([0, 0], [0, 0], [1, 2], 1, 1, dup_op=ops.plus)
        assert m[0, 0] == 3

    def test_index_validation(self):
        with pytest.raises(IndexOutOfBounds):
            Matrix.from_coo([2], [0], [1], 2, 3)
        with pytest.raises(IndexOutOfBounds):
            Matrix.from_coo([0], [3], [1], 2, 3)

    def test_from_dense(self):
        m = Matrix.from_dense(np.array([[0, 5], [6, 0]]))
        assert m.nvals == 2 and m[0, 1] == 5

    def test_from_scipy_roundtrip(self, a23):
        s = a23.to_scipy()
        assert isinstance(s, sp.csr_matrix)
        back = Matrix.from_scipy(s)
        assert back.isequal(a23)

    def test_explicit_zeros_preserved(self):
        m = Matrix.from_coo([0], [0], [0], 1, 1)
        assert m.nvals == 1 and m[0, 0] == 0


class TestElementAccess:
    def test_set_get_remove(self):
        m = Matrix.sparse(INT64, 2, 2)
        m[1, 0] = 7
        assert m[1, 0] == 7 and m.nvals == 1
        m[1, 0] = 8
        assert m[1, 0] == 8 and m.nvals == 1
        m.remove_element(1, 0)
        assert m.nvals == 0
        m.remove_element(1, 0)  # no-op

    def test_get_default(self):
        m = Matrix.sparse(INT64, 2, 2)
        assert m.get(0, 0) is None
        assert m.get(0, 0, default=0) == 0

    def test_getitem_missing(self):
        with pytest.raises(KeyError):
            Matrix.sparse(INT64, 2, 2)[0, 0]

    def test_items(self, a23):
        assert list(a23.items()) == [(0, 0, 1), (0, 1, 2), (1, 2, 3)]


class TestLifecycle:
    def test_dup_deep(self, a23):
        b = a23.dup()
        b[0, 0] = 99
        assert a23[0, 0] == 1

    def test_clear(self, a23):
        a23.clear()
        assert a23.nvals == 0 and a23.shape == (2, 3)

    def test_resize_grow_cheap(self, a23):
        a23.resize(5, 7)
        assert a23.shape == (5, 7) and a23.nvals == 3

    def test_resize_shrink_drops(self, a23):
        a23.resize(1, 2)
        assert a23.nvals == 2  # only row 0, cols 0..1 survive

    def test_indptr(self, a23):
        assert a23.indptr.tolist() == [0, 2, 3]


class TestMxM:
    def test_plus_times_matches_numpy(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            ad = (rng.random((4, 5)) < 0.4) * rng.integers(1, 5, (4, 5))
            bd = (rng.random((5, 3)) < 0.4) * rng.integers(1, 5, (5, 3))
            a = Matrix.from_dense(ad)
            b = Matrix.from_dense(bd)
            c = a.mxm(b, semiring.plus_times)
            np.testing.assert_array_equal(c.to_dense(), ad @ bd)

    def test_inner_dim_mismatch(self):
        with pytest.raises(DimensionMismatch):
            Matrix.sparse(INT64, 2, 3).mxm(Matrix.sparse(INT64, 2, 3), semiring.plus_times)

    def test_min_plus(self):
        # shortest-path-style semiring
        a = Matrix.from_coo([0, 0], [0, 1], [1, 5], 1, 2)
        b = Matrix.from_coo([0, 1], [0, 0], [10, 2], 2, 1)
        c = a.mxm(b, semiring.get("min_plus"))
        assert c[0, 0] == 7  # min(1+10, 5+2)

    def test_transpose_descriptors(self, a23):
        at = a23.transpose()
        c1 = at.mxm(a23, semiring.plus_times)
        c2 = a23.mxm(a23, semiring.plus_times, desc=Descriptor(transpose_a=True))
        assert c1.isequal(c2)
        c3 = a23.mxm(a23, semiring.plus_times, desc=Descriptor(transpose_b=True))
        c4 = a23.mxm(at, semiring.plus_times)
        assert c3.isequal(c4)

    def test_annihilation_entry_kept(self):
        # GraphBLAS keeps entries whose dot product sums to exactly zero
        a = Matrix.from_coo([0, 0], [0, 1], [1, -1], 1, 2)
        b = Matrix.from_coo([0, 1], [0, 0], [1, 1], 2, 1)
        c = a.mxm(b, semiring.plus_times)
        assert c.nvals == 1 and c[0, 0] == 0

    def test_masked_mxm(self):
        a = Matrix.from_dense(np.ones((2, 2), dtype=np.int64))
        m = Matrix.from_coo([0], [0], [True], 2, 2, dtype=BOOL)
        c = a.mxm(a, semiring.plus_times, mask=m)
        assert c.nvals == 1 and c[0, 0] == 2

    def test_plus_pair_counts(self):
        a = Matrix.from_dense(np.array([[1, 1], [0, 1]]))
        c = a.mxm(a, semiring.get("plus_pair"), desc=Descriptor(transpose_b=True))
        # row0·row0 = 2 common entries
        assert c[0, 0] == 2


class TestMxV:
    def test_plus_times(self, a23):
        u = Vector.from_coo([0, 2], [10, 100], 3)
        w = a23.mxv(u, semiring.plus_times)
        assert dict(w.items()) == {0: 10, 1: 300}

    def test_empty_vector(self, a23):
        w = a23.mxv(Vector.sparse(INT64, 3), semiring.plus_times)
        assert w.nvals == 0

    def test_min_second_fastsv_pattern(self):
        a = Matrix.from_coo([0, 1, 1, 2], [1, 0, 2, 1], True, 3, 3, dtype=BOOL)
        f = Vector.iota(3)
        w = a.mxv(f, semiring.get("min_second"))
        assert w.to_dense().tolist() == [1, 0, 1]

    def test_size_mismatch(self, a23):
        with pytest.raises(ReproError):
            a23.mxv(Vector.sparse(INT64, 2), semiring.plus_times)


class TestEwise:
    def test_add(self, a23):
        b = Matrix.from_coo([0, 1], [0, 0], [5, 5], 2, 3)
        c = a23.ewise_add(b, ops.plus)
        assert c.to_dense().tolist() == [[6, 2, 0], [5, 0, 3]]

    def test_mult(self, a23):
        b = Matrix.from_coo([0, 1], [0, 0], [5, 5], 2, 3)
        c = a23.ewise_mult(b, ops.times)
        assert c.nvals == 1 and c[0, 0] == 5

    def test_shape_mismatch(self, a23):
        with pytest.raises(DimensionMismatch):
            a23.ewise_add(Matrix.sparse(INT64, 3, 2), ops.plus)


class TestApplySelect:
    def test_apply(self, a23):
        c = a23.apply(ops.times.bind_second(10))
        assert c[1, 2] == 30

    def test_apply_one_retype(self, a23):
        c = a23.apply(ops.one, dtype=INT64)
        assert sorted(v for _, _, v in c.items()) == [1, 1, 1]

    def test_select_value(self, a23):
        c = a23.select(ops.valuegt, 1)
        assert c.nvals == 2

    def test_select_valueeq_q2_pattern(self):
        ac = Matrix.from_coo([0, 1, 1], [0, 0, 1], [1, 2, 2], 2, 2)
        kept = ac.select(ops.valueeq, 2)
        assert set((r, c) for r, c, _ in kept.items()) == {(1, 0), (1, 1)}

    def test_select_tril(self):
        m = Matrix.from_dense(np.ones((3, 3), dtype=np.int64))
        low = m.select(ops.tril, -1)
        assert all(c < r for r, c, _ in low.items())
        assert low.nvals == 3


class TestReduce:
    def test_rowwise(self, a23):
        w = a23.reduce_vector(monoid.plus_monoid)
        assert w.to_dense().tolist() == [3, 3]

    def test_colwise_via_transpose_desc(self, a23):
        w = a23.reduce_vector(monoid.plus_monoid, desc=Descriptor(transpose_a=True))
        assert w.to_dense().tolist() == [1, 2, 3]

    def test_empty_rows_absent(self):
        m = Matrix.from_coo([0], [0], [5], 3, 2)
        w = m.reduce_vector(monoid.plus_monoid)
        assert w.nvals == 1

    def test_typed_reduce_counts_bool(self):
        m = Matrix.from_coo([0, 0, 1], [0, 1, 0], True, 2, 2, dtype=BOOL)
        w = m.reduce_vector(monoid.plus_monoid, dtype=INT64)
        assert w.to_dense().tolist() == [2, 1]

    def test_scalar(self, a23):
        assert a23.reduce_scalar(monoid.plus_monoid) == 6
        assert a23.reduce_scalar(monoid.max_monoid) == 3

    def test_scalar_empty_identity(self):
        assert Matrix.sparse(INT64, 2, 2).reduce_scalar(monoid.plus_monoid) == 0


class TestTransposeExtract:
    def test_transpose(self, a23):
        t = a23.transpose()
        assert t.shape == (3, 2)
        np.testing.assert_array_equal(t.to_dense(), a23.to_dense().T)

    def test_transpose_involution(self, a23):
        assert a23.transpose().transpose().isequal(a23)

    def test_T_cached(self, a23):
        t1 = a23.T
        assert a23.T is t1
        a23[0, 2] = 9  # mutation invalidates
        assert a23.T is not t1

    def test_extract_rows_cols(self, a23):
        c = a23.extract([1, 0], [2, 0])
        assert c.to_dense().tolist() == [[3, 0], [0, 1]]

    def test_extract_all(self, a23):
        assert a23.extract(None, None).isequal(a23)

    def test_extract_row_duplicates(self, a23):
        c = a23.extract([0, 0], [0])
        assert c.to_dense().tolist() == [[1], [1]]

    def test_extract_dup_cols_rejected(self, a23):
        with pytest.raises(ReproError):
            a23.extract([0], [0, 0])

    def test_extract_row_col_vectors(self, a23):
        r = a23.extract_row(0)
        assert dict(r.items()) == {0: 1, 1: 2}
        c = a23.extract_col(2)
        assert dict(c.items()) == {1: 3}

    def test_extract_induced_subgraph(self):
        # the Q2 pattern: Friends submatrix on liker set
        friends = Matrix.from_coo(
            [0, 1, 1, 2, 2, 3], [1, 0, 2, 1, 3, 2], True, 4, 4, dtype=BOOL
        )
        sub = friends.extract([0, 1, 3], [0, 1, 3])
        assert set((r, c) for r, c, _ in sub.items()) == {(0, 1), (1, 0)}


class TestAssignCoo:
    def test_insert_new(self):
        m = Matrix.sparse(BOOL, 2, 2)
        m.assign_coo([0, 1], [1, 0], True)
        assert m.nvals == 2

    def test_overwrite_default_second(self):
        m = Matrix.from_coo([0], [0], [1], 1, 1)
        m.assign_coo([0], [0], [9])
        assert m[0, 0] == 9 and m.nvals == 1

    def test_accum(self):
        m = Matrix.from_coo([0], [0], [1], 1, 2)
        m.assign_coo([0, 0], [0, 1], [5, 5], accum=ops.plus)
        assert m[0, 0] == 6 and m[0, 1] == 5


class TestMaskWriteSemantics:
    def test_structural_vs_value_mask(self):
        a = Matrix.from_dense(np.array([[1, 2]]))
        m = Matrix.from_coo([0, 0], [0, 1], [False, True], 1, 2, dtype=BOOL)
        out_v = a.apply(ops.identity, mask=m)
        assert out_v.nvals == 1
        out_s = a.apply(ops.identity, mask=Mask(m, structure=True))
        assert out_s.nvals == 2

    def test_complement_replace(self):
        a = Matrix.from_dense(np.array([[1, 2]]))
        out = Matrix.from_coo([0, 0], [0, 1], [7, 7], 1, 2)
        m = Matrix.from_coo([0], [0], [True], 1, 2, dtype=BOOL)
        a.apply(
            ops.identity,
            out=out,
            mask=Mask(m, complement=True),
            desc=Descriptor(replace=True),
        )
        assert dict(((r, c), v) for r, c, v in out.items()) == {(0, 1): 2}

    def test_mask_shape_checked(self):
        a = Matrix.from_dense(np.array([[1]]))
        with pytest.raises(DimensionMismatch):
            a.apply(ops.identity, mask=Matrix.sparse(BOOL, 2, 2))
