"""Unit tests for the Vector class: construction, element access, operations."""

import numpy as np
import pytest

from repro.graphblas import BOOL, FP64, INT64, Mask, Vector, monoid, ops, semiring
from repro.graphblas.descriptor import Descriptor
from repro.util.validation import DimensionMismatch, IndexOutOfBounds, ReproError


class TestConstruction:
    def test_sparse_empty(self):
        v = Vector.sparse(INT64, 5)
        assert v.size == 5 and v.nvals == 0 and v.dtype is INT64

    def test_from_coo(self):
        v = Vector.from_coo([3, 1], [30, 10], 5)
        assert dict(v.items()) == {1: 10, 3: 30}

    def test_from_coo_scalar_broadcast(self):
        v = Vector.from_coo([0, 2], True, 3, dtype=BOOL)
        assert dict(v.items()) == {0: True, 2: True}

    def test_from_coo_duplicates_require_dup_op(self):
        with pytest.raises(ReproError):
            Vector.from_coo([1, 1], [1, 2], 3)

    def test_from_coo_dup_op(self):
        v = Vector.from_coo([1, 1], [1, 2], 3, dup_op=ops.plus)
        assert v[1] == 3

    def test_from_coo_out_of_range(self):
        with pytest.raises(IndexOutOfBounds):
            Vector.from_coo([5], [1], 5)

    def test_from_dense_full(self):
        v = Vector.from_dense(np.array([1, 0, 2]))
        assert v.nvals == 3  # explicit zero kept!
        assert v[1] == 0

    def test_full(self):
        v = Vector.full(INT64, 4, 7)
        assert v.to_dense().tolist() == [7, 7, 7, 7]

    def test_iota(self):
        assert Vector.iota(4).to_dense().tolist() == [0, 1, 2, 3]


class TestElementAccess:
    def test_set_get(self):
        v = Vector.sparse(INT64, 4)
        v[2] = 9
        assert v[2] == 9 and v.nvals == 1

    def test_set_overwrites(self):
        v = Vector.from_coo([1], [5], 3)
        v[1] = 6
        assert v[1] == 6 and v.nvals == 1

    def test_get_default(self):
        v = Vector.sparse(INT64, 3)
        assert v.get(0) is None
        assert v.get(0, -1) == -1

    def test_getitem_missing_raises(self):
        v = Vector.sparse(INT64, 3)
        with pytest.raises(KeyError):
            v[0]

    def test_contains(self):
        v = Vector.from_coo([1], [0], 3)  # explicit zero is present
        assert 1 in v and 0 not in v

    def test_remove_element(self):
        v = Vector.from_coo([1, 2], [5, 6], 4)
        v.remove_element(1)
        assert v.nvals == 1 and v.get(1) is None
        v.remove_element(3)  # absent: no-op
        assert v.nvals == 1

    def test_out_of_range(self):
        v = Vector.sparse(INT64, 3)
        with pytest.raises(IndexOutOfBounds):
            v[5] = 1


class TestConversionLifecycle:
    def test_to_coo_copies(self):
        v = Vector.from_coo([0], [1], 2)
        idx, vals = v.to_coo()
        idx[0] = 1
        assert v.get(0) == 1  # unchanged

    def test_to_dense_fill(self):
        v = Vector.from_coo([1], [5], 3)
        assert v.to_dense(fill=-1).tolist() == [-1, 5, -1]

    def test_dup_retype(self):
        v = Vector.from_coo([0], [2], 2)
        w = v.dup(FP64)
        assert w.dtype is FP64 and w[0] == 2.0
        w[0] = 3.0
        assert v[0] == 2  # deep copy

    def test_clear(self):
        v = Vector.from_coo([0], [1], 2)
        v.clear()
        assert v.nvals == 0 and v.size == 2

    def test_resize_grow(self):
        v = Vector.from_coo([1], [5], 2)
        v.resize(10)
        assert v.size == 10 and v[1] == 5

    def test_resize_shrink_drops(self):
        v = Vector.from_coo([0, 4], [1, 2], 5)
        v.resize(2)
        assert v.size == 2 and v.nvals == 1


class TestEwise:
    def test_add_union(self):
        u = Vector.from_coo([0, 1], [1, 2], 3)
        v = Vector.from_coo([1, 2], [10, 20], 3)
        w = u.ewise_add(v, ops.plus)
        assert dict(w.items()) == {0: 1, 1: 12, 2: 20}

    def test_mult_intersection(self):
        u = Vector.from_coo([0, 1], [1, 2], 3)
        v = Vector.from_coo([1, 2], [10, 20], 3)
        w = u.ewise_mult(v, ops.times)
        assert dict(w.items()) == {1: 20}

    def test_noncommutative_order(self):
        u = Vector.from_coo([0], [10], 1)
        v = Vector.from_coo([0], [3], 1)
        assert u.ewise_mult(v, ops.minus)[0] == 7

    def test_size_mismatch(self):
        with pytest.raises(DimensionMismatch):
            Vector.sparse(INT64, 2).ewise_add(Vector.sparse(INT64, 3), ops.plus)

    def test_bool_result_dtype(self):
        u = Vector.from_coo([0], [1], 1)
        w = u.ewise_mult(u, ops.eq)
        assert w.dtype is BOOL and w[0] == True  # noqa: E712


class TestApplySelectReduce:
    def test_apply(self):
        v = Vector.from_coo([0, 2], [1, 3], 3)
        w = v.apply(ops.times.bind_second(10))
        assert dict(w.items()) == {0: 10, 2: 30}

    def test_apply_dtype_override(self):
        v = Vector.from_coo([0], [1], 1)
        assert v.apply(ops.identity, dtype=FP64).dtype is FP64

    def test_select(self):
        v = Vector.from_coo([0, 1, 2], [1, 2, 3], 3)
        w = v.select(ops.valuegt, 1)
        assert dict(w.items()) == {1: 2, 2: 3}

    def test_reduce(self):
        v = Vector.from_coo([0, 2], [4, 6], 3)
        assert v.reduce(monoid.plus_monoid) == 10
        assert v.reduce(monoid.min_monoid) == 4

    def test_reduce_typed(self):
        v = Vector.from_coo([0, 1], [True, True], 3, dtype=BOOL)
        assert v.reduce(monoid.plus_monoid, dtype=INT64) == 2

    def test_reduce_empty_is_identity(self):
        assert Vector.sparse(INT64, 3).reduce(monoid.plus_monoid) == 0


class TestExtract:
    def test_basic(self):
        v = Vector.from_coo([1, 3], [10, 30], 4)
        w = v.extract([3, 0, 1])
        assert w.size == 3
        assert dict(w.items()) == {0: 30, 2: 10}

    def test_duplicates_allowed(self):
        v = Vector.from_coo([1], [10], 2)
        w = v.extract([1, 1])
        assert dict(w.items()) == {0: 10, 1: 10}


class TestAssign:
    def test_scalar_all(self):
        v = Vector.sparse(INT64, 3)
        v.assign(7)
        assert v.to_dense().tolist() == [7, 7, 7]

    def test_scalar_indices(self):
        v = Vector.sparse(INT64, 4)
        v.assign(5, indices=[1, 3])
        assert dict(v.items()) == {1: 5, 3: 5}

    def test_vector_into_indices(self):
        v = Vector.from_coo([0], [1], 4)
        u = Vector.from_coo([0, 1], [8, 9], 2)
        v.assign(u, indices=[2, 3])
        assert dict(v.items()) == {0: 1, 2: 8, 3: 9}

    def test_no_accum_replaces_pattern_inside_indices(self):
        # C(I) = u: positions of I where u is empty are *deleted*
        v = Vector.from_coo([0, 1], [1, 2], 3)
        u = Vector.sparse(INT64, 2)
        v.assign(u, indices=[0, 1])
        assert v.nvals == 0

    def test_accum_union(self):
        v = Vector.from_coo([0], [1], 2)
        u = Vector.from_coo([0, 1], [10, 20], 2)
        v.assign(u, accum=ops.plus)
        assert dict(v.items()) == {0: 11, 1: 20}

    def test_accum_duplicate_indices_combined(self):
        v = Vector.full(INT64, 3, 100)
        u = Vector.from_coo([0, 1], [5, 7], 2)
        v.assign(u, indices=[1, 1], accum=ops.min)
        assert dict(v.items()) == {0: 100, 1: 5, 2: 100}

    def test_masked_assign(self):
        # the paper's Alg. 2 line 14: Δscores<scores+> = scores'
        scores_new = Vector.from_coo([0, 1], [37, 10], 2)
        scores_plus = Vector.from_coo([0], [12], 2)
        delta = Vector.sparse(INT64, 2)
        delta.assign(scores_new, mask=scores_plus)
        assert dict(delta.items()) == {0: 37}

    def test_size_mismatch(self):
        v = Vector.sparse(INT64, 3)
        with pytest.raises(DimensionMismatch):
            v.assign(Vector.sparse(INT64, 2), indices=[0, 1, 2])


class TestScatterMin:
    def test_duplicates_resolved_by_min(self):
        v = Vector.from_dense(np.array([5, 5, 5], dtype=np.int64))
        v.scatter_min(np.array([1, 1, 2]), np.array([4, 2, 9]))
        assert v.to_dense().tolist() == [5, 2, 5]

    def test_requires_full(self):
        v = Vector.from_coo([0], [1], 3)
        with pytest.raises(ReproError):
            v.scatter_min(np.array([0]), np.array([0]))


class TestVxm:
    def test_plus_times(self):
        from repro.graphblas import Matrix

        a = Matrix.from_coo([0, 1, 2], [0, 0, 1], [1, 2, 3], 3, 2)
        u = Vector.from_coo([0, 2], [5, 7], 3)
        w = u.vxm(a, semiring.plus_times)
        assert w.to_dense().tolist() == [5, 21]

    def test_operand_order_first(self):
        from repro.graphblas import Matrix

        a = Matrix.from_coo([0], [0], [99], 1, 1)
        u = Vector.from_coo([0], [5], 1)
        # min_first semiring: value should come from u, not A
        w = u.vxm(a, semiring.get("min_first"))
        assert w[0] == 5


class TestWriteSemantics:
    def test_mask_value_vs_structure(self):
        u = Vector.from_coo([0, 1], [1, 2], 2)
        m = Vector.from_coo([0, 1], [False, True], 2, dtype=BOOL)
        out_val = u.apply(ops.identity, mask=m)
        assert dict(out_val.items()) == {1: 2}
        out_struct = u.apply(ops.identity, mask=Mask(m, structure=True))
        assert dict(out_struct.items()) == {0: 1, 1: 2}

    def test_complement_mask(self):
        u = Vector.from_coo([0, 1], [1, 2], 2)
        m = Vector.from_coo([0], [True], 2, dtype=BOOL)
        out = u.apply(ops.identity, mask=Mask(m, complement=True))
        assert dict(out.items()) == {1: 2}

    def test_replace_clears_outside_mask(self):
        out = Vector.from_coo([0, 1], [100, 200], 2)
        u = Vector.from_coo([0], [1], 2)
        m = Vector.from_coo([0], [True], 2, dtype=BOOL)
        u.apply(ops.identity, out=out, mask=m, desc=Descriptor(replace=True))
        assert dict(out.items()) == {0: 1}

    def test_no_replace_keeps_outside_mask(self):
        out = Vector.from_coo([0, 1], [100, 200], 2)
        u = Vector.from_coo([0], [1], 2)
        m = Vector.from_coo([0], [True], 2, dtype=BOOL)
        u.apply(ops.identity, out=out, mask=m)
        assert dict(out.items()) == {0: 1, 1: 200}

    def test_accum_into_out(self):
        out = Vector.from_coo([0], [10], 2)
        u = Vector.from_coo([0, 1], [1, 2], 2)
        u.apply(ops.identity, out=out, accum=ops.plus)
        assert dict(out.items()) == {0: 11, 1: 2}

    def test_without_accum_out_pattern_replaced(self):
        out = Vector.from_coo([1], [99], 2)
        u = Vector.from_coo([0], [1], 2)
        u.apply(ops.identity, out=out)
        assert dict(out.items()) == {0: 1}

    def test_isequal(self):
        u = Vector.from_coo([0], [1], 2)
        assert u.isequal(Vector.from_coo([0], [1], 2))
        assert not u.isequal(Vector.from_coo([0], [2], 2))
        assert not u.isequal(Vector.from_coo([0], [1], 3))
