"""Dirty-row freeze: the merge kernel and DynamicMatrix.freeze contract."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas import ops
from repro.graphblas._kernels.csr import indptr_from_rows
from repro.graphblas._kernels.freeze import merge_dirty_rows
from repro.graphblas.dynamic import DynamicMatrix
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import BOOL, INT64


def canonical(nrows, ncols, entries):
    """Matrix + aligned arrays from {(i, j): v}."""
    if entries:
        items = sorted(entries.items())
        r = np.array([i for (i, _), _ in items], dtype=np.int64)
        c = np.array([j for (_, j), _ in items], dtype=np.int64)
        v = np.array([val for _, val in items], dtype=np.int64)
    else:
        r = c = np.zeros(0, np.int64)
        v = np.zeros(0, np.int64)
    return r, c, v


class TestMergeDirtyRows:
    @given(
        base=st.dictionaries(
            st.tuples(st.integers(0, 7), st.integers(0, 5)), st.integers(1, 9),
            max_size=30,
        ),
        replacement=st.dictionaries(
            st.tuples(st.integers(0, 7), st.integers(0, 5)), st.integers(1, 9),
            max_size=15,
        ),
        extra_dirty=st.sets(st.integers(0, 7), max_size=3),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_rebuild(self, base, replacement, extra_dirty):
        """Splicing == rebuilding from the merged entry dict."""
        nrows, ncols = 8, 6
        rows, cols, vals = canonical(nrows, ncols, base)
        indptr = indptr_from_rows(rows, nrows)
        dirty = sorted({i for i, _ in replacement} | extra_dirty)
        d_rows, d_cols, d_vals = canonical(nrows, ncols, replacement)
        out = merge_dirty_rows(
            rows, cols, vals, indptr, nrows,
            np.asarray(dirty, dtype=np.int64), d_rows, d_cols, d_vals,
        )
        expected = {k: v for k, v in base.items() if k[0] not in set(dirty)}
        expected.update(replacement)
        er, ec, ev = canonical(nrows, ncols, expected)
        assert out[0].tolist() == er.tolist()
        assert out[1].tolist() == ec.tolist()
        assert out[2].tolist() == ev.tolist()
        assert out[3].tolist() == indptr_from_rows(er, nrows).tolist()

    def test_empty_everything(self):
        empty = np.zeros(0, np.int64)
        out = merge_dirty_rows(
            empty, empty, empty, np.zeros(3, np.int64), 2,
            np.array([1]), empty, empty, empty,
        )
        assert all(a.size == 0 for a in out[:3])


class TestFreeze:
    def test_identity_while_clean(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.assign_coo([0, 1, 2], [1, 2, 3], [10, 20, 30])
        f = dm.freeze()
        ip = f.indptr
        t = f.T
        assert dm.freeze() is f
        assert f.indptr is ip and f.T is t

    def test_splice_after_mutations(self):
        rng = np.random.default_rng(5)
        dm = DynamicMatrix(INT64, 10, 8)
        dm.assign_coo(rng.integers(0, 10, 40), rng.integers(0, 8, 40),
                      rng.integers(1, 99, 40))
        f = dm.freeze()
        dm.set_element(3, 7, 123)
        dm.remove_coo([0, 1], [0, 0])
        dm.assign_coo([9, 9, 3], [0, 4, 1], [5, 6, 7], accum=ops.plus)
        f2 = dm.freeze()
        assert f2 is f  # same object, refreshed in place
        assert f2.isequal(dm.to_matrix())
        assert f2.indptr.tolist() == dm.to_matrix().indptr.tolist()

    def test_freeze_follows_resize(self):
        dm = DynamicMatrix(BOOL, 2, 2)
        dm.set_element(0, 1, True)
        f = dm.freeze()
        dm.resize(5, 6)
        dm.set_element(4, 5, True)
        f2 = dm.freeze()
        assert f2 is f
        assert f2.shape == (5, 6)
        assert f2.isequal(dm.to_matrix())

    def test_frozen_view_survives_compaction(self):
        dm = DynamicMatrix(INT64, 3, 50)
        for j in range(40):
            dm.set_element(1, j, j)
        f = dm.freeze()
        dm.compact()
        assert dm.freeze() is f
        dm.set_element(2, 0, 1)
        assert dm.freeze().isequal(dm.to_matrix())

    @given(
        ops_seq=st.lists(
            st.tuples(
                st.sampled_from(["set", "remove", "bulk", "freeze"]),
                st.integers(0, 5),
                st.integers(0, 5),
                st.integers(1, 50),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_freeze_always_canonical(self, ops_seq):
        """freeze() interleaved anywhere in an op stream equals to_matrix()."""
        dm = DynamicMatrix(INT64, 6, 6)
        oracle = Matrix.sparse(INT64, 6, 6)
        for kind, i, j, v in ops_seq:
            if kind == "set":
                dm.set_element(i, j, v)
                oracle[i, j] = v
            elif kind == "remove":
                dm.remove_element(i, j)
                oracle.remove_element(i, j)
            elif kind == "bulk":
                dm.assign_coo([i, j], [j, i], [v, v])
                oracle.assign_coo([i, j], [j, i], [v, v])
            else:
                f = dm.freeze()
                assert f.isequal(oracle)
                assert f.indptr.tolist() == oracle.indptr.tolist()
        assert dm.freeze().isequal(oracle)


class TestRemoveCoo:
    def test_bulk_remove(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.assign_coo([0, 0, 1, 2], [1, 2, 3, 0], [1, 2, 3, 4])
        assert dm.remove_coo([0, 1, 3], [2, 3, 3]) == 2
        assert dm.nvals == 2
        assert dm.get(0, 1) == 1 and dm.get(2, 0) == 4
        assert dm.get(0, 2) is None and dm.get(1, 3) is None

    def test_remove_absent_ignored(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.set_element(1, 1, 5)
        assert dm.remove_coo([0, 1], [0, 0]) == 0
        assert dm.nvals == 1

    def test_remove_coo_empty(self):
        dm = DynamicMatrix(INT64, 4, 4)
        assert dm.remove_coo([], []) == 0

    def test_bounds(self):
        from repro.util.validation import IndexOutOfBounds

        dm = DynamicMatrix(INT64, 2, 2)
        dm.set_element(0, 0, 1)
        with pytest.raises(IndexOutOfBounds):
            dm.remove_coo([5], [0])
        with pytest.raises(IndexOutOfBounds):
            dm.remove_coo([0], [5])

    def test_matches_matrix_remove_coo(self):
        rng = np.random.default_rng(8)
        m = Matrix.from_coo(
            rng.integers(0, 6, 25), rng.integers(0, 6, 25), 1, 6, 6,
            dtype=BOOL, dup_op=ops.lor,
        )
        dm = DynamicMatrix.from_matrix(m)
        rr = rng.integers(0, 6, 15)
        rc = rng.integers(0, 6, 15)
        m.remove_coo(rr, rc)
        dm.remove_coo(rr, rc)
        assert dm.to_matrix().isequal(m)
