"""Batch element removal on Vector and Matrix (GrB_removeElement, batched)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas import Matrix, Vector, ops
from repro.graphblas.types import INT64
from repro.util.validation import IndexOutOfBounds


class TestVectorRemoveCoo:
    def test_removes_existing(self):
        v = Vector.from_coo([0, 2, 4], [1, 2, 3], 6, dtype=INT64)
        v.remove_coo([2, 4])
        assert [(i, x) for i, x in v.items()] == [(0, 1)]

    def test_absent_positions_ignored(self):
        v = Vector.from_coo([1], [9], 4, dtype=INT64)
        v.remove_coo([0, 2, 3])
        assert v.nvals == 1

    def test_empty_indices_noop(self):
        v = Vector.from_coo([1], [9], 4, dtype=INT64)
        assert v.remove_coo([]) is v
        assert v.nvals == 1

    def test_on_empty_vector(self):
        v = Vector.sparse(INT64, 4)
        v.remove_coo([0, 1])
        assert v.nvals == 0

    def test_duplicate_indices(self):
        v = Vector.from_coo([0, 1], [5, 6], 3, dtype=INT64)
        v.remove_coo([1, 1, 1])
        assert v.nvals == 1

    def test_out_of_range_rejected(self):
        v = Vector.from_coo([0], [1], 3, dtype=INT64)
        with pytest.raises(IndexOutOfBounds):
            v.remove_coo([5])

    @given(
        present=st.sets(st.integers(0, 15), max_size=12),
        doomed=st.sets(st.integers(0, 15), max_size=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_set_difference(self, present, doomed):
        idx = np.array(sorted(present), dtype=np.int64)
        v = Vector.from_coo(idx, np.ones(idx.size), 16, dtype=INT64)
        v.remove_coo(np.array(sorted(doomed), dtype=np.int64))
        assert {i for i, _ in v.items()} == present - doomed


class TestMatrixRemoveCoo:
    def test_removes_existing(self):
        m = Matrix.from_coo([0, 0, 1], [0, 1, 1], [1, 2, 3], 2, 2, dtype=INT64)
        m.remove_coo([0], [1])
        assert [(r, c) for r, c, _ in m.items()] == [(0, 0), (1, 1)]

    def test_equivalent_to_elementwise(self):
        rng = np.random.default_rng(5)
        r = rng.integers(0, 6, 20)
        c = rng.integers(0, 6, 20)
        m1 = Matrix.from_coo(r, c, 1, 6, 6, dtype=INT64, dup_op=ops.plus)
        m2 = m1.dup()
        kill = list({(int(a), int(b)) for a, b in zip(r[:8], c[:8])})
        m1.remove_coo([k[0] for k in kill], [k[1] for k in kill])
        for i, j in kill:
            m2.remove_element(i, j)
        assert m1.isequal(m2)
