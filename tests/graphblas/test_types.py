"""Unit tests for the GraphBLAS type system."""

import numpy as np
import pytest

from repro.graphblas import types as t


class TestRegistry:
    def test_all_types_registered(self):
        assert len(t.ALL_TYPES) == 11

    def test_from_numpy_roundtrip(self):
        for dt in t.ALL_TYPES:
            assert t.from_numpy(dt.np_dtype) is dt

    def test_from_numpy_unknown(self):
        with pytest.raises(TypeError):
            t.from_numpy(np.complex128)

    def test_lookup_by_name(self):
        assert t.lookup("INT64") is t.INT64
        assert t.lookup("int64") is t.INT64
        assert t.lookup("fp32") is t.FP32

    def test_lookup_passthrough(self):
        assert t.lookup(t.BOOL) is t.BOOL

    def test_lookup_numpy(self):
        assert t.lookup(np.float64) is t.FP64


class TestProperties:
    def test_bool_flags(self):
        assert t.BOOL.is_bool
        assert not t.BOOL.is_float
        assert not t.INT8.is_bool

    def test_integer_flags(self):
        assert t.INT32.is_integer and t.INT32.is_signed
        assert t.UINT32.is_integer and not t.UINT32.is_signed
        assert not t.FP32.is_integer

    def test_float_flags(self):
        assert t.FP32.is_float and t.FP64.is_float

    def test_zero_one(self):
        assert t.INT64.zero() == 0
        assert t.FP32.one() == 1.0
        assert t.BOOL.zero() == False  # noqa: E712

    def test_min_max_int(self):
        assert t.INT8.min_value() == -128
        assert t.INT8.max_value() == 127
        assert t.UINT8.min_value() == 0
        assert t.UINT8.max_value() == 255

    def test_min_max_float(self):
        assert t.FP64.min_value() == -np.inf
        assert t.FP64.max_value() == np.inf

    def test_min_max_bool(self):
        assert t.BOOL.min_value() == False  # noqa: E712
        assert t.BOOL.max_value() == True  # noqa: E712


class TestCast:
    def test_int_to_bool_is_nonzero_test(self):
        out = t.BOOL.cast(np.array([0, 1, 5, -2]))
        assert out.dtype == np.bool_
        assert out.tolist() == [False, True, True, True]

    def test_float_to_int_truncates(self):
        out = t.INT64.cast(np.array([1.9, -1.9]))
        assert out.tolist() == [1, -1]

    def test_cast_preserves_when_same(self):
        arr = np.array([1, 2], dtype=np.int64)
        assert t.INT64.cast(arr) is arr


class TestPromote:
    def test_same(self):
        assert t.promote(t.INT64, t.INT64) is t.INT64

    def test_int_widths(self):
        assert t.promote(t.INT8, t.INT32) is t.INT32

    def test_bool_int(self):
        assert t.promote(t.BOOL, t.INT64) is t.INT64

    def test_int_float(self):
        assert t.promote(t.INT64, t.FP32) is t.FP64
