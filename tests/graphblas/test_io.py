"""Matrix Market / text serialisation round-trips."""

import numpy as np
import pytest

from repro.graphblas import BOOL, FP64, INT64, Matrix, Vector
from repro.graphblas.io import mmread, mmwrite, vector_from_text, vector_to_text
from repro.util.validation import ReproError


class TestMatrixMarket:
    def test_roundtrip_int(self, tmp_path):
        m = Matrix.from_coo([0, 1, 2], [1, 0, 2], [5, -3, 7], 3, 3)
        path = tmp_path / "m.mtx"
        mmwrite(path, m)
        back = mmread(path)
        assert back.isequal(m) and back.dtype is INT64

    def test_roundtrip_float(self, tmp_path):
        m = Matrix.from_coo([0], [0], [1.5], 2, 2, dtype=FP64)
        path = tmp_path / "m.mtx"
        mmwrite(path, m)
        back = mmread(path)
        assert back.dtype is FP64 and back[0, 0] == 1.5

    def test_roundtrip_bool(self, tmp_path):
        m = Matrix.from_coo([0, 1], [1, 0], True, 2, 2, dtype=BOOL)
        path = tmp_path / "m.mtx"
        mmwrite(path, m)
        back = mmread(path)
        assert back.dtype is BOOL and back.nvals == 2

    def test_explicit_zero_preserved(self, tmp_path):
        m = Matrix.from_coo([0], [0], [0], 1, 1)
        path = tmp_path / "z.mtx"
        mmwrite(path, m)
        assert mmread(path).nvals == 1

    def test_empty_matrix(self, tmp_path):
        m = Matrix.sparse(INT64, 4, 5)
        path = tmp_path / "e.mtx"
        mmwrite(path, m)
        back = mmread(path)
        assert back.shape == (4, 5) and back.nvals == 0

    def test_foreign_file_without_dtype_comment(self, tmp_path):
        path = tmp_path / "f.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 1 1.5\n2 2 -2.0\n"
        )
        m = mmread(path)
        assert m.dtype is FP64 and m[1, 1] == -2.0

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n")
        with pytest.raises(ReproError):
            mmread(path)


class TestVectorText:
    def test_roundtrip(self):
        v = Vector.from_coo([1, 4], [10, 40], 6)
        back = vector_from_text(vector_to_text(v))
        assert back.isequal(v)

    def test_roundtrip_float(self):
        v = Vector.from_coo([0], [2.5], 2, dtype=FP64)
        back = vector_from_text(vector_to_text(v))
        assert back.dtype is FP64 and back[0] == 2.5

    def test_empty(self):
        v = Vector.sparse(INT64, 3)
        back = vector_from_text(vector_to_text(v))
        assert back.size == 3 and back.nvals == 0
