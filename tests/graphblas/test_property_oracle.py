"""Property-based tests: vectorised kernels vs the dict-of-keys oracle.

Every core operation is checked for *exact* structural and value agreement
with :mod:`repro.graphblas.reference` on randomly generated sparse objects,
including the full masked/accumulated/replace write semantics -- the part of
the GraphBLAS spec that is easiest to get subtly wrong.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas import BOOL, INT64, Mask, Matrix, Vector, monoid, ops, semiring
from repro.graphblas import reference as ref
from repro.graphblas.descriptor import Descriptor

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

DIM = st.integers(min_value=1, max_value=7)
VAL = st.integers(min_value=-4, max_value=4)


@st.composite
def sparse_vector(draw, size=None):
    n = size if size is not None else draw(DIM)
    entries = draw(
        st.dictionaries(st.integers(0, n - 1), VAL, max_size=n)
    )
    return n, entries


@st.composite
def sparse_matrix(draw, nrows=None, ncols=None):
    r = nrows if nrows is not None else draw(DIM)
    c = ncols if ncols is not None else draw(DIM)
    entries = draw(
        st.dictionaries(
            st.tuples(st.integers(0, r - 1), st.integers(0, c - 1)),
            VAL,
            max_size=r * c,
        )
    )
    return r, c, entries


def vec_of(n: int, d: dict) -> Vector:
    idx = np.fromiter(d.keys(), dtype=np.int64, count=len(d))
    vals = np.fromiter(d.values(), dtype=np.int64, count=len(d))
    return Vector.from_coo(idx, vals, n, dtype=INT64)


def mat_of(r: int, c: int, d: dict) -> Matrix:
    rows = np.asarray([k[0] for k in d], dtype=np.int64)
    cols = np.asarray([k[1] for k in d], dtype=np.int64)
    vals = np.asarray(list(d.values()), dtype=np.int64)
    return Matrix.from_coo(rows, cols, vals, r, c, dtype=INT64)


def vec_dict(v: Vector) -> dict:
    return {int(i): int(x) for i, x in v.items()}


def mat_dict(m: Matrix) -> dict:
    return {(int(r), int(c)): int(x) for r, c, x in m.items()}


# ---------------------------------------------------------------------------
# elementwise
# ---------------------------------------------------------------------------

BINOPS = {
    "plus": (ops.plus, lambda a, b: a + b),
    "minus": (ops.minus, lambda a, b: a - b),
    "times": (ops.times, lambda a, b: a * b),
    "min": (ops.min, min),
    "max": (ops.max, max),
    "first": (ops.first, lambda a, b: a),
    "second": (ops.second, lambda a, b: b),
}


@given(st.data(), st.sampled_from(sorted(BINOPS)))
def test_vector_ewise_add_matches_oracle(data, opname):
    n, da = data.draw(sparse_vector())
    _, db = data.draw(sparse_vector(size=n))
    op, pyop = BINOPS[opname]
    got = vec_dict(vec_of(n, da).ewise_add(vec_of(n, db), op))
    assert got == ref.ewise_add(da, db, pyop)


@given(st.data(), st.sampled_from(sorted(BINOPS)))
def test_vector_ewise_mult_matches_oracle(data, opname):
    n, da = data.draw(sparse_vector())
    _, db = data.draw(sparse_vector(size=n))
    op, pyop = BINOPS[opname]
    got = vec_dict(vec_of(n, da).ewise_mult(vec_of(n, db), op))
    assert got == ref.ewise_mult(da, db, pyop)


@given(st.data(), st.sampled_from(sorted(BINOPS)))
def test_matrix_ewise_add_matches_oracle(data, opname):
    r, c, da = data.draw(sparse_matrix())
    _, _, db = data.draw(sparse_matrix(nrows=r, ncols=c))
    op, pyop = BINOPS[opname]
    got = mat_dict(mat_of(r, c, da).ewise_add(mat_of(r, c, db), op))
    assert got == ref.ewise_add(da, db, pyop)


@given(st.data(), st.sampled_from(sorted(BINOPS)))
def test_matrix_ewise_mult_matches_oracle(data, opname):
    r, c, da = data.draw(sparse_matrix())
    _, _, db = data.draw(sparse_matrix(nrows=r, ncols=c))
    op, pyop = BINOPS[opname]
    got = mat_dict(mat_of(r, c, da).ewise_mult(mat_of(r, c, db), op))
    assert got == ref.ewise_mult(da, db, pyop)


# ---------------------------------------------------------------------------
# products
# ---------------------------------------------------------------------------

SEMIRINGS = {
    "plus_times": (lambda a, b: a + b, lambda a, b: a * b),
    "min_plus": (min, lambda a, b: a + b),
    "max_times": (max, lambda a, b: a * b),
    "min_second": (min, lambda a, b: b),
    "min_first": (min, lambda a, b: a),
    "plus_pair": (lambda a, b: a + b, lambda a, b: 1),
}


@given(st.data(), st.sampled_from(sorted(SEMIRINGS)))
def test_mxm_matches_oracle(data, srname):
    r, k, da = data.draw(sparse_matrix())
    _, c, db = data.draw(sparse_matrix(nrows=k))
    add, mult = SEMIRINGS[srname]
    got = mat_dict(mat_of(r, k, da).mxm(mat_of(k, c, db), semiring.get(srname)))
    assert got == ref.mxm(da, db, add, mult)


@given(st.data(), st.sampled_from(sorted(SEMIRINGS)))
def test_mxv_matches_oracle(data, srname):
    r, k, da = data.draw(sparse_matrix())
    _, du = data.draw(sparse_vector(size=k))
    add, mult = SEMIRINGS[srname]
    got = vec_dict(mat_of(r, k, da).mxv(vec_of(k, du), semiring.get(srname)))
    assert got == ref.mxv(da, du, add, mult)


@given(st.data(), st.sampled_from(sorted(SEMIRINGS)))
def test_vxm_matches_oracle(data, srname):
    r, c, da = data.draw(sparse_matrix())
    _, du = data.draw(sparse_vector(size=r))
    add, mult = SEMIRINGS[srname]
    got = vec_dict(vec_of(r, du).vxm(mat_of(r, c, da), semiring.get(srname)))
    assert got == ref.vxm(du, da, add, mult)


@given(st.data())
def test_mxm_scipy_fastpath_equals_generic(data):
    """The SciPy plus_times fast path agrees with the generic kernel."""
    from repro.graphblas._kernels import spgemm

    r, k, da = data.draw(sparse_matrix())
    _, c, db = data.draw(sparse_matrix(nrows=k))
    a = mat_of(r, k, da)
    b = mat_of(k, c, db)
    fast = spgemm.scipy_plus_times_mxm(a._coo_tuple(), b._coo_tuple())
    gen = spgemm.generic_mxm(a._coo_tuple(), b._coo_tuple(), semiring.plus_times)
    assert np.array_equal(fast[0], gen[0])
    assert np.array_equal(fast[1], gen[1])
    assert np.array_equal(fast[2].astype(np.int64), gen[2].astype(np.int64))


# ---------------------------------------------------------------------------
# reduce / transpose / extract
# ---------------------------------------------------------------------------


@given(sparse_matrix())
def test_reduce_rowwise_matches_oracle(mat):
    r, c, da = mat
    got = vec_dict(mat_of(r, c, da).reduce_vector(monoid.plus_monoid))
    assert got == ref.reduce_rowwise(da, lambda a, b: a + b)


@given(sparse_matrix())
def test_reduce_scalar_matches_oracle(mat):
    r, c, da = mat
    got = int(mat_of(r, c, da).reduce_scalar(monoid.plus_monoid))
    assert got == ref.reduce_all(da, lambda a, b: a + b, 0)


@given(sparse_matrix())
def test_transpose_matches_oracle(mat):
    r, c, da = mat
    got = mat_dict(mat_of(r, c, da).transpose())
    assert got == {(j, i): v for (i, j), v in da.items()}


@given(st.data())
def test_extract_matches_oracle(data):
    r, c, da = data.draw(sparse_matrix())
    rows = data.draw(st.lists(st.integers(0, r - 1), min_size=1, max_size=r))
    cols = data.draw(st.lists(st.integers(0, c - 1), min_size=1, max_size=c, unique=True))
    got = mat_dict(mat_of(r, c, da).extract(rows, cols))
    assert got == ref.extract_matrix(da, rows, cols)


@given(st.data())
def test_select_matches_oracle(data):
    r, c, da = data.draw(sparse_matrix())
    thunk = data.draw(VAL)
    got = mat_dict(mat_of(r, c, da).select(ops.valuegt, thunk))
    assert got == ref.select_matrix(da, lambda v, i, j, k: v > k, thunk)


@given(st.data())
def test_apply_matches_oracle(data):
    n, du = data.draw(sparse_vector())
    got = vec_dict(vec_of(n, du).apply(ops.times.bind_second(3)))
    assert got == ref.apply(du, lambda v: v * 3)


# ---------------------------------------------------------------------------
# the write semantics (mask x accum x replace), on vectors
# ---------------------------------------------------------------------------


@given(
    st.data(),
    st.booleans(),
    st.booleans(),
    st.booleans(),
    st.booleans(),
)
def test_write_semantics_matches_oracle(data, use_accum, complement, structure, replace):
    n, dc = data.draw(sparse_vector())
    _, dt = data.draw(sparse_vector(size=n))
    _, dm = data.draw(sparse_vector(size=n))

    c = vec_of(n, dc)
    t = vec_of(n, dt)
    m = vec_of(n, dm)

    mask_set = {i for i, v in dm.items() if structure or v != 0}

    # drive the identity apply of T into C under the configured modifiers
    got_vec = t.apply(
        ops.identity,
        out=c,
        mask=Mask(m, complement=complement, structure=structure),
        accum=ops.plus if use_accum else None,
        desc=Descriptor(replace=replace),
    )
    expected = ref.write(
        dc,
        dt,
        mask=mask_set,
        mask_complement=complement,
        replace=replace,
        accum=(lambda a, b: a + b) if use_accum else None,
    )
    assert vec_dict(got_vec) == expected


@given(st.data(), st.booleans(), st.booleans())
def test_matrix_write_semantics_matches_oracle(data, use_accum, replace):
    r, c_, dc = data.draw(sparse_matrix())
    _, _, dt = data.draw(sparse_matrix(nrows=r, ncols=c_))
    _, _, dm = data.draw(sparse_matrix(nrows=r, ncols=c_))

    cm = mat_of(r, c_, dc)
    tm = mat_of(r, c_, dt)
    mm = mat_of(r, c_, dm)
    mask_set = {k for k, v in dm.items() if v != 0}

    got = tm.apply(
        ops.identity,
        out=cm,
        mask=mm,
        accum=ops.plus if use_accum else None,
        desc=Descriptor(replace=replace),
    )
    expected = ref.write(
        dc,
        dt,
        mask=mask_set,
        mask_complement=False,
        replace=replace,
        accum=(lambda a, b: a + b) if use_accum else None,
    )
    assert mat_dict(got) == expected


# ---------------------------------------------------------------------------
# algebraic invariants
# ---------------------------------------------------------------------------


@given(st.data())
def test_ewise_add_commutative(data):
    n, da = data.draw(sparse_vector())
    _, db = data.draw(sparse_vector(size=n))
    a, b = vec_of(n, da), vec_of(n, db)
    assert a.ewise_add(b, ops.plus).isequal(b.ewise_add(a, ops.plus))


@given(st.data())
def test_mxm_associative_plus_times(data):
    r, k, da = data.draw(sparse_matrix())
    _, c, db = data.draw(sparse_matrix(nrows=k))
    _, w, dd = data.draw(sparse_matrix(nrows=c))
    a, b, d = mat_of(r, k, da), mat_of(k, c, db), mat_of(c, w, dd)
    s = semiring.plus_times
    left = a.mxm(b, s).mxm(d, s)
    right = a.mxm(b.mxm(d, s), s)
    # structures may differ by annihilation-produced zeros; compare densely
    np.testing.assert_array_equal(left.to_dense(), right.to_dense())


@given(sparse_matrix())
def test_transpose_involution(mat):
    r, c, da = mat
    m = mat_of(r, c, da)
    assert m.transpose().transpose().isequal(m)


@given(st.data())
def test_mxv_distributes_over_ewise_add(data):
    r, k, da = data.draw(sparse_matrix())
    _, du = data.draw(sparse_vector(size=k))
    _, dv = data.draw(sparse_vector(size=k))
    a = mat_of(r, k, da)
    u, v = vec_of(k, du), vec_of(k, dv)
    s = semiring.plus_times
    left = a.mxv(u.ewise_add(v, ops.plus), s)
    right = a.mxv(u, s).ewise_add(a.mxv(v, s), s.add.op)
    np.testing.assert_array_equal(left.to_dense(), right.to_dense())
