"""Unit tests for unary / binary / index-unary operators."""

import numpy as np
import pytest

from repro.graphblas import ops


class TestUnary:
    def test_identity(self):
        a = np.array([1, 2, 3])
        assert ops.identity(a) is a

    def test_ainv(self):
        assert ops.ainv(np.array([1, -2])).tolist() == [-1, 2]

    def test_abs(self):
        assert ops.abs_(np.array([-3, 4])).tolist() == [3, 4]

    def test_lnot(self):
        out = ops.lnot(np.array([0, 1, 7]))
        assert out.dtype == np.bool_
        assert out.tolist() == [True, False, False]

    def test_one(self):
        assert ops.one(np.array([5, -2])).tolist() == [1, 1]

    def test_minv(self):
        out = ops.minv(np.array([2.0, 4.0]))
        assert out.tolist() == [0.5, 0.25]

    def test_minv_zero_no_raise(self):
        out = ops.minv(np.array([0.0]))
        assert np.isinf(out[0])


class TestBinary:
    def test_plus(self):
        assert ops.plus(np.array([1, 2]), np.array([3, 4])).tolist() == [4, 6]

    def test_minus_order(self):
        assert ops.minus(np.array([5]), np.array([3])).tolist() == [2]

    def test_times(self):
        assert ops.times(np.array([2, 3]), np.array([4, 5])).tolist() == [8, 15]

    def test_div_by_zero_no_raise(self):
        out = ops.div(np.array([1.0]), np.array([0.0]))
        assert np.isinf(out[0])

    def test_min_max(self):
        a, b = np.array([1, 9]), np.array([5, 2])
        assert ops.min(a, b).tolist() == [1, 2]
        assert ops.max(a, b).tolist() == [5, 9]

    def test_first_second(self):
        a, b = np.array([1]), np.array([2])
        assert ops.first(a, b).tolist() == [1]
        assert ops.second(a, b).tolist() == [2]

    def test_pair_is_one(self):
        out = ops.pair(np.array([7, 8]), np.array([9, 10]))
        assert out.tolist() == [1, 1]

    def test_logical_coerce(self):
        out = ops.lor(np.array([0, 2]), np.array([0, 0]))
        assert out.tolist() == [False, True]
        out = ops.land(np.array([1, 2]), np.array([1, 0]))
        assert out.tolist() == [True, False]
        out = ops.lxor(np.array([1, 1]), np.array([1, 0]))
        assert out.tolist() == [False, True]

    def test_comparisons_bool_result_flag(self):
        for op in (ops.eq, ops.ne, ops.gt, ops.lt, ops.ge, ops.le):
            assert op.bool_result

    def test_eq(self):
        assert ops.eq(np.array([1, 2]), np.array([1, 3])).tolist() == [True, False]

    def test_associative_flags(self):
        assert ops.plus.associative
        assert ops.min.associative
        assert not ops.minus.associative

    def test_ufunc_presence(self):
        assert ops.plus.ufunc is np.add
        assert ops.first.ufunc is None


class TestBinding:
    def test_bind_second(self):
        mul10 = ops.times.bind_second(10)
        assert mul10(np.array([3])).tolist() == [30]

    def test_bind_first(self):
        sub_from_10 = ops.minus.bind_first(10)
        assert sub_from_10(np.array([3])).tolist() == [7]

    def test_bound_bool_result(self):
        gt5 = ops.gt.bind_second(5)
        assert gt5.bool_result
        assert gt5(np.array([3, 7])).tolist() == [False, True]


class TestSelectOps:
    def setup_method(self):
        self.vals = np.array([1, 2, 2, 5])
        self.rows = np.array([0, 0, 1, 2])
        self.cols = np.array([0, 2, 1, 2])

    def test_valueeq(self):
        keep = ops.valueeq(self.vals, self.rows, self.cols, 2)
        assert keep.tolist() == [False, True, True, False]

    def test_valuegt_ge_lt_le_ne(self):
        assert ops.valuegt(self.vals, self.rows, self.cols, 2).tolist() == [False, False, False, True]
        assert ops.valuege(self.vals, self.rows, self.cols, 2).tolist() == [False, True, True, True]
        assert ops.valuelt(self.vals, self.rows, self.cols, 2).tolist() == [True, False, False, False]
        assert ops.valuele(self.vals, self.rows, self.cols, 2).tolist() == [True, True, True, False]
        assert ops.valuene(self.vals, self.rows, self.cols, 2).tolist() == [True, False, False, True]

    def test_tril_triu(self):
        assert ops.tril(self.vals, self.rows, self.cols, None).tolist() == [True, False, True, True]
        assert ops.triu(self.vals, self.rows, self.cols, None).tolist() == [True, True, True, True]

    def test_diag_offdiag(self):
        # positions: (0,0) (0,2) (1,1) (2,2) -> diagonal at 0, 2, 3
        assert ops.diag(self.vals, self.rows, self.cols, None).tolist() == [True, False, True, True]
        assert ops.offdiag(self.vals, self.rows, self.cols, None).tolist() == [False, True, False, False]

    def test_rowcol_le(self):
        assert ops.rowindex_le(self.vals, self.rows, self.cols, 0).tolist() == [True, True, False, False]
        assert ops.colindex_le(self.vals, self.rows, self.cols, 1).tolist() == [True, False, True, False]

    def test_returns_bool_dtype(self):
        out = ops.valueeq(self.vals, self.rows, self.cols, 1)
        assert out.dtype == np.bool_
