"""DynamicMatrix (future-work item (1)): unit + property tests.

The oracle is the immutable :class:`Matrix`: any sequence of set/remove
operations applied to both representations must leave them element-equal.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas import ops
from repro.graphblas.dynamic import DynamicMatrix, _block_cap
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import BOOL, FP64, INT64
from repro.util.validation import DimensionMismatch, IndexOutOfBounds


def small_matrix(nrows=5, ncols=7) -> Matrix:
    rng = np.random.default_rng(7)
    r = rng.integers(0, nrows, 12)
    c = rng.integers(0, ncols, 12)
    v = rng.integers(1, 100, 12)
    return Matrix.from_coo(r, c, v, nrows, ncols, dtype=INT64, dup_op=ops.plus)


class TestBlockCap:
    def test_minimum(self):
        assert _block_cap(0) == 4
        assert _block_cap(1) == 4
        assert _block_cap(4) == 4

    def test_powers_of_two(self):
        assert _block_cap(5) == 8
        assert _block_cap(8) == 8
        assert _block_cap(9) == 16
        assert _block_cap(1000) == 1024


class TestConstruction:
    def test_empty(self):
        dm = DynamicMatrix(INT64, 3, 4)
        assert dm.shape == (3, 4)
        assert dm.nvals == 0
        assert dm.to_matrix().nvals == 0

    def test_from_matrix_roundtrip(self):
        m = small_matrix()
        dm = DynamicMatrix.from_matrix(m)
        assert dm.nvals == m.nvals
        assert dm.to_matrix().isequal(m)

    def test_from_matrix_with_slack(self):
        m = small_matrix()
        tight = DynamicMatrix.from_matrix(m)
        roomy = DynamicMatrix.from_matrix(m, slack=1.0)
        stats_t, stats_r = tight.memory_stats(), roomy.memory_stats()
        assert stats_r["allocated_slots"] >= stats_t["allocated_slots"]
        assert roomy.to_matrix().isequal(m)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            DynamicMatrix.from_matrix(small_matrix(), slack=-0.5)

    def test_from_empty_matrix(self):
        dm = DynamicMatrix.from_matrix(Matrix.sparse(INT64, 4, 4))
        assert dm.nvals == 0

    def test_bool_dtype(self):
        m = Matrix.from_coo([0, 1], [1, 0], True, 2, 2, dtype=BOOL)
        dm = DynamicMatrix.from_matrix(m)
        assert dm.get(0, 1) == True  # noqa: E712 - numpy bool
        assert dm.to_matrix().isequal(m)


class TestElementOps:
    def test_set_then_get(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.set_element(1, 2, 42)
        assert dm.get(1, 2) == 42
        assert dm.nvals == 1

    def test_set_overwrites(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.set_element(1, 2, 42)
        dm.set_element(1, 2, 7)
        assert dm.get(1, 2) == 7
        assert dm.nvals == 1

    def test_get_absent_returns_default(self):
        dm = DynamicMatrix(INT64, 4, 4)
        assert dm.get(0, 0) is None
        assert dm.get(0, 0, default=-1) == -1

    def test_contains(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.set_element(2, 3, 1)
        assert (2, 3) in dm
        assert (3, 2) not in dm

    def test_remove_existing(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.set_element(0, 1, 5)
        dm.set_element(0, 2, 6)
        assert dm.remove_element(0, 1)
        assert dm.get(0, 1) is None
        assert dm.get(0, 2) == 6
        assert dm.nvals == 1

    def test_remove_absent_is_false(self):
        dm = DynamicMatrix(INT64, 4, 4)
        assert not dm.remove_element(0, 0)

    def test_remove_swaps_with_last(self):
        """Deleting a middle entry must keep all other entries intact."""
        dm = DynamicMatrix(INT64, 2, 10)
        for j in range(6):
            dm.set_element(0, j, j * 10)
        assert dm.remove_element(0, 2)
        remaining = dict(zip(*dm.row(0)))
        assert remaining == {0: 0, 1: 10, 3: 30, 4: 40, 5: 50}

    def test_bounds_checked(self):
        dm = DynamicMatrix(INT64, 2, 2)
        with pytest.raises(IndexOutOfBounds):
            dm.set_element(2, 0, 1)
        with pytest.raises(IndexOutOfBounds):
            dm.set_element(0, 2, 1)
        with pytest.raises(IndexOutOfBounds):
            dm.get(-1, 0)
        with pytest.raises(IndexOutOfBounds):
            dm.remove_element(0, 5)

    def test_row_degree(self):
        dm = DynamicMatrix(INT64, 3, 5)
        for j in (0, 2, 4):
            dm.set_element(1, j, 1)
        assert dm.row_degree(1) == 3
        assert dm.row_degree(0) == 0


class TestGrowthAndArena:
    def test_row_growth_preserves_entries(self):
        dm = DynamicMatrix(INT64, 1, 1000)
        for j in range(100):
            dm.set_element(0, j, j)
        assert dm.nvals == 100
        assert dm.relocations > 0
        cols, vals = dm.row(0)
        assert dict(zip(cols.tolist(), vals.tolist())) == {j: j for j in range(100)}

    def test_free_list_recycling(self):
        """Growing many rows in lockstep must reuse freed blocks."""
        dm = DynamicMatrix(INT64, 50, 1000)
        for j in range(8):  # grows each row once past the minimum capacity
            for i in range(50):
                dm.set_element(i, j, 1)
        stats = dm.memory_stats()
        # freed 4-capacity blocks are either reused or parked on the free list
        assert stats["allocated_slots"] + stats["free_list_slots"] <= stats["arena_size"]
        assert dm.to_matrix().nvals == 400

    def test_memory_stats_keys(self):
        stats = DynamicMatrix(INT64, 2, 2).memory_stats()
        assert {
            "arena_size",
            "allocated_slots",
            "filled_slots",
            "free_list_slots",
            "utilisation",
            "relocations",
        } <= set(stats)

    def test_compact_reclaims_slack(self):
        dm = DynamicMatrix(INT64, 1, 1000)
        for j in range(33):  # lands just past a capacity class boundary
            dm.set_element(0, j, j)
        before = dm.memory_stats()["arena_size"]
        dm.compact()
        after = dm.memory_stats()
        assert after["arena_size"] <= before
        assert after["filled_slots"] == 33
        assert dm.get(0, 17) == 17


class TestBulkAssign:
    def test_assign_coo_inserts(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.assign_coo([0, 1, 2], [1, 2, 3], [10, 20, 30])
        assert dm.nvals == 3
        assert dm.get(1, 2) == 20

    def test_assign_coo_overwrites_without_accum(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.set_element(0, 1, 5)
        dm.assign_coo([0], [1], [9])
        assert dm.get(0, 1) == 9
        assert dm.nvals == 1

    def test_assign_coo_accumulates(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.set_element(0, 1, 5)
        dm.assign_coo([0, 0], [1, 2], [9, 2], accum=ops.plus)
        assert dm.get(0, 1) == 14
        assert dm.get(0, 2) == 2

    def test_assign_coo_batch_duplicates_overwrite(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.assign_coo([0, 0], [1, 1], [3, 8])
        assert dm.get(0, 1) == 8
        assert dm.nvals == 1

    def test_assign_coo_batch_duplicates_accumulate(self):
        dm = DynamicMatrix(INT64, 4, 4)
        dm.assign_coo([0, 0, 0], [1, 1, 1], [3, 8, 4], accum=ops.plus)
        assert dm.get(0, 1) == 15

    def test_assign_coo_scalar_broadcast(self):
        dm = DynamicMatrix(BOOL, 3, 3)
        dm.assign_coo([0, 1, 2], [0, 1, 2], True)
        assert dm.nvals == 3

    def test_assign_coo_empty_noop(self):
        dm = DynamicMatrix(INT64, 3, 3)
        dm.assign_coo([], [], [])
        assert dm.nvals == 0

    def test_assign_coo_bounds(self):
        dm = DynamicMatrix(INT64, 2, 2)
        with pytest.raises(IndexOutOfBounds):
            dm.assign_coo([5], [0], [1])
        with pytest.raises(IndexOutOfBounds):
            dm.assign_coo([0], [5], [1])

    def test_matches_matrix_assign_coo(self):
        """Bulk accumulate agrees with the immutable Matrix's assign_coo."""
        m = small_matrix()
        dm = DynamicMatrix.from_matrix(m)
        rng = np.random.default_rng(3)
        r = rng.integers(0, 5, 20)
        c = rng.integers(0, 7, 20)
        v = rng.integers(1, 9, 20)
        expected = m.assign_coo(r, c, v, accum=ops.plus)
        dm.assign_coo(r, c, v, accum=ops.plus)
        assert dm.to_matrix().isequal(expected)


class TestResize:
    def test_grow(self):
        dm = DynamicMatrix(INT64, 2, 2)
        dm.set_element(1, 1, 3)
        dm.resize(5, 6)
        assert dm.shape == (5, 6)
        dm.set_element(4, 5, 9)
        assert dm.get(1, 1) == 3

    def test_shrink_rejected(self):
        dm = DynamicMatrix(INT64, 4, 4)
        with pytest.raises(DimensionMismatch):
            dm.resize(2, 4)
        with pytest.raises(DimensionMismatch):
            dm.resize(4, 2)


class TestConversion:
    def test_to_coo_is_canonical(self):
        dm = DynamicMatrix(INT64, 3, 5)
        # insert out of order within a row
        for j in (4, 0, 2):
            dm.set_element(1, j, j)
        rows, cols, vals = dm.to_coo()
        assert rows.tolist() == [1, 1, 1]
        assert cols.tolist() == [0, 2, 4]
        assert vals.tolist() == [0, 2, 4]

    def test_items_sorted(self):
        dm = DynamicMatrix(INT64, 3, 3)
        dm.set_element(2, 0, 1)
        dm.set_element(0, 2, 2)
        assert [(i, j) for i, j, _ in dm.items()] == [(0, 2), (2, 0)]

    def test_isequal_against_matrix(self):
        m = small_matrix()
        dm = DynamicMatrix.from_matrix(m)
        assert dm.isequal(m)
        dm.set_element(0, 0, 999)
        assert not dm.isequal(m)

    def test_fp64_values(self):
        dm = DynamicMatrix(FP64, 2, 2)
        dm.set_element(0, 0, 2.5)
        assert dm.get(0, 0) == pytest.approx(2.5)


# ---------------------------------------------------------------------------
# property tests: DynamicMatrix == Matrix under arbitrary operation sequences
# ---------------------------------------------------------------------------

_ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["set", "remove"]),
        st.integers(0, 5),  # i
        st.integers(0, 5),  # j
        st.integers(-50, 50),  # value (ignored by remove)
    ),
    max_size=60,
)


class TestPropertyOracle:
    @given(ops_seq=_ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_matrix_under_random_ops(self, ops_seq):
        dm = DynamicMatrix(INT64, 6, 6)
        oracle = Matrix.sparse(INT64, 6, 6)
        for kind, i, j, v in ops_seq:
            if kind == "set":
                dm.set_element(i, j, v)
                oracle[i, j] = v
            else:
                dm.remove_element(i, j)
                oracle.remove_element(i, j)
        assert dm.nvals == oracle.nvals
        assert dm.to_matrix().isequal(oracle)

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(1, 9)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_bulk_assign_equals_elementwise(self, data):
        r = np.array([d[0] for d in data])
        c = np.array([d[1] for d in data])
        v = np.array([d[2] for d in data])
        bulk = DynamicMatrix(INT64, 8, 8)
        bulk.assign_coo(r, c, v)
        single = DynamicMatrix(INT64, 8, 8)
        for i, j, val in data:
            single.set_element(i, j, val)
        assert bulk.to_matrix().isequal(single.to_matrix())

    @given(
        degrees=st.lists(st.integers(0, 40), min_size=1, max_size=10),
        slack=st.sampled_from([0.0, 0.25, 1.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_shape(self, degrees, slack):
        nrows = len(degrees)
        ncols = max(max(degrees), 1)
        rows, cols = [], []
        for i, d in enumerate(degrees):
            rows.extend([i] * d)
            cols.extend(range(d))
        m = Matrix.from_coo(rows, cols, 1, nrows, ncols, dtype=INT64, dup_op=ops.plus)
        dm = DynamicMatrix.from_matrix(m, slack=slack)
        assert dm.to_matrix().isequal(m)
        stats = dm.memory_stats()
        assert stats["filled_slots"] == m.nvals
        assert 0.0 < stats["utilisation"] <= 1.0 or m.nvals == 0
