"""Unit tests for monoids and the generated semiring registry."""

import numpy as np
import pytest

from repro.graphblas import monoid as m
from repro.graphblas import ops
from repro.graphblas import semiring as sr
from repro.graphblas import types as t


class TestMonoidIdentities:
    @pytest.mark.parametrize(
        "mon,dtype,expected",
        [
            (m.plus_monoid, t.INT64, 0),
            (m.times_monoid, t.INT64, 1),
            (m.min_monoid, t.INT64, np.iinfo(np.int64).max),
            (m.max_monoid, t.INT64, np.iinfo(np.int64).min),
            (m.min_monoid, t.FP64, np.inf),
            (m.max_monoid, t.FP64, -np.inf),
            (m.lor_monoid, t.BOOL, False),
            (m.land_monoid, t.BOOL, True),
            (m.lxor_monoid, t.BOOL, False),
        ],
    )
    def test_identity(self, mon, dtype, expected):
        assert mon.identity(dtype) == expected

    def test_identity_is_neutral(self):
        for mon in (m.plus_monoid, m.times_monoid, m.min_monoid, m.max_monoid):
            ident = mon.identity(t.INT64)
            vals = np.array([7], dtype=np.int64)
            assert mon.op(vals, np.array([ident]))[0] == 7

    def test_terminal(self):
        assert m.times_monoid.terminal(t.INT64) == 0
        assert m.lor_monoid.terminal(t.BOOL) == True  # noqa: E712
        assert m.plus_monoid.terminal(t.INT64) is None

    def test_non_associative_op_rejected(self):
        with pytest.raises(ValueError):
            m.Monoid("bad", ops.minus, lambda dt: 0)


class TestReduceArray:
    def test_empty_returns_identity(self):
        assert m.plus_monoid.reduce_array(np.zeros(0, np.int64), t.INT64) == 0
        assert m.min_monoid.reduce_array(np.zeros(0, np.int64), t.INT64) == np.iinfo(np.int64).max

    def test_plus(self):
        assert m.plus_monoid.reduce_array(np.array([1, 2, 3]), t.INT64) == 6

    def test_min(self):
        assert m.min_monoid.reduce_array(np.array([5, 1, 9]), t.INT64) == 1

    def test_nonufunc_monoid_fallback(self):
        out = m.any_monoid.reduce_array(np.array([4, 5, 6]), t.INT64)
        assert out in (4, 5, 6)


class TestSemiringRegistry:
    def test_well_known_present(self):
        for name in ("plus_times", "min_second", "lor_land", "plus_pair", "max_first"):
            assert name in sr.SEMIRINGS

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            sr.get("nope_nope")

    def test_attribute_access(self):
        assert sr.plus_times is sr.get("plus_times")
        with pytest.raises(AttributeError):
            sr.this_does_not_exist

    def test_count(self):
        # 8 monoids x 14 multiply ops
        assert len(sr.SEMIRINGS) == 8 * 14


class TestOutputDtype:
    def test_plus_times_promotes(self):
        assert sr.plus_times.output_dtype(t.INT32, t.FP32) is t.FP64

    def test_bool_mult(self):
        assert sr.get("plus_eq").output_dtype(t.INT64, t.INT64) is t.BOOL

    def test_pair_is_int64(self):
        assert sr.get("plus_pair").output_dtype(t.BOOL, t.BOOL) is t.INT64

    def test_first_second(self):
        assert sr.get("min_first").output_dtype(t.INT32, t.FP64) is t.INT32
        assert sr.get("min_second").output_dtype(t.INT32, t.FP64) is t.FP64


class TestSwapped:
    def test_commutative_unchanged(self):
        assert sr.swapped(sr.plus_times) is sr.plus_times

    def test_first_second_swap(self):
        assert sr.swapped(sr.get("min_first")).mult.name == "second"
        assert sr.swapped(sr.get("min_second")).mult.name == "first"

    def test_general_swap(self):
        s = sr.swapped(sr.get("plus_minus"))
        assert s.mult(np.array([5]), np.array([3])).tolist() == [-2]
