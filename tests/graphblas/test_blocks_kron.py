"""Block operations (concat/split/stack/diag) and the Kronecker product."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphblas import FP64, INT64, Matrix, Vector, concat, diag, hstack, ops, split, vstack
from repro.graphblas import reference as ref
from repro.util.validation import DimensionMismatch, ReproError

from tests.graphblas.test_property_oracle import mat_dict, mat_of, sparse_matrix


def _eye(n: int) -> Matrix:
    return Matrix.from_dense(np.eye(n, dtype=np.int64))


class TestConcat:
    def test_two_by_two_grid(self):
        a = _eye(2)
        b = mat_of(2, 3, {(0, 2): 5})
        c = mat_of(1, 2, {(0, 0): 7})
        d = mat_of(1, 3, {(0, 1): 9})
        g = concat([[a, b], [c, d]])
        assert g.shape == (3, 5)
        assert mat_dict(g) == {
            (0, 0): 1,
            (1, 1): 1,
            (0, 4): 5,
            (2, 0): 7,
            (2, 3): 9,
        }

    def test_dtype_promotion(self):
        a = mat_of(1, 1, {(0, 0): 1})
        b = Matrix.from_dense(np.array([[0.5]]))
        g = concat([[a, b]])
        assert g.dtype is FP64

    def test_ragged_grid_rejected(self):
        a = _eye(1)
        with pytest.raises(ReproError):
            concat([[a, a], [a]])

    def test_mismatched_tile_heights_rejected(self):
        with pytest.raises(DimensionMismatch):
            concat([[_eye(2), _eye(3)]])

    def test_empty_grid_rejected(self):
        with pytest.raises(ReproError):
            concat([])


class TestSplit:
    def test_roundtrip_identity(self):
        g = mat_of(4, 6, {(0, 0): 1, (1, 5): 2, (3, 2): 3, (2, 2): 4})
        tiles = split(g, [1, 3], [2, 2, 2])
        assert len(tiles) == 2 and len(tiles[0]) == 3
        assert concat(tiles).isequal(g)

    def test_bad_sizes_rejected(self):
        g = _eye(3)
        with pytest.raises(DimensionMismatch):
            split(g, [2, 2], [3])
        with pytest.raises(ReproError):
            split(g, [3, 0], [3])

    @given(st.data())
    def test_split_concat_roundtrip_property(self, data):
        r, c, d = data.draw(sparse_matrix())
        m = mat_of(r, c, d)
        # Random partition of each dimension.
        def partition(n):
            cuts = data.draw(
                st.lists(st.integers(1, n), min_size=1, max_size=3)
            )
            sizes, left = [], n
            for s in cuts:
                if left == 0:
                    break
                s = min(s, left)
                sizes.append(s)
                left -= s
            if left:
                sizes.append(left)
            return sizes

        rs, cs = partition(r), partition(c)
        assert concat(split(m, rs, cs)).isequal(m)


class TestStacks:
    def test_hstack(self):
        g = hstack([_eye(2), _eye(2)])
        assert g.shape == (2, 4)
        assert g.nvals == 4

    def test_vstack(self):
        g = vstack([_eye(2), _eye(2)])
        assert g.shape == (4, 2)
        assert g.nvals == 4


class TestDiag:
    def test_main_diagonal_roundtrip(self):
        v = Vector.from_coo([0, 2], [5, 7], 3, dtype=INT64)
        d = diag(v)
        assert d.shape == (3, 3)
        assert mat_dict(d) == {(0, 0): 5, (2, 2): 7}
        assert d.diagonal().isequal(v)

    def test_super_and_sub_diagonal(self):
        v = Vector.from_coo([1], [4], 2, dtype=INT64)
        up = diag(v, 1)
        assert mat_dict(up) == {(1, 2): 4}
        down = diag(v, -1)
        assert mat_dict(down) == {(2, 1): 4}

    def test_diagonal_extraction_offsets(self):
        m = mat_of(3, 4, {(0, 1): 1, (1, 2): 2, (2, 0): 9})
        d1 = m.diagonal(1)
        assert {int(i): int(x) for i, x in d1.items()} == {0: 1, 1: 2}
        dm2 = m.diagonal(-2)
        assert {int(i): int(x) for i, x in dm2.items()} == {0: 9}

    def test_empty_diagonal_rejected(self):
        m = Matrix.sparse(INT64, 2, 2)
        with pytest.raises(DimensionMismatch):
            m.diagonal(5)


class TestKronecker:
    def test_eye_kron_shifts_blocks(self):
        b = mat_of(2, 2, {(0, 1): 3, (1, 0): 4})
        k = _eye(2).kronecker(b, ops.times)
        assert k.shape == (4, 4)
        assert mat_dict(k) == {(0, 1): 3, (1, 0): 4, (2, 3): 3, (3, 2): 4}

    def test_empty_operand_gives_empty(self):
        a = Matrix.sparse(INT64, 2, 2)
        b = _eye(2)
        assert a.kronecker(b, ops.times).nvals == 0

    @given(st.data(), st.sampled_from(["times", "plus", "first"]))
    def test_matches_oracle(self, data, opname):
        ra, ca, da = data.draw(sparse_matrix())
        rb, cb, db = data.draw(sparse_matrix())
        op = getattr(ops, opname)
        pyop = {
            "times": lambda a, b: a * b,
            "plus": lambda a, b: a + b,
            "first": lambda a, b: a,
        }[opname]
        got = mat_dict(mat_of(ra, ca, da).kronecker(mat_of(rb, cb, db), op))
        assert got == ref.kron(da, db, pyop, rb, cb)


class TestApplyIndex:
    def test_rowindex_colindex(self):
        m = mat_of(2, 3, {(0, 1): 10, (1, 2): 20})
        assert mat_dict(m.apply_index(ops.rowindex)) == {(0, 1): 0, (1, 2): 1}
        assert mat_dict(m.apply_index(ops.colindex, 1)) == {(0, 1): 2, (1, 2): 3}

    def test_diagindex(self):
        m = mat_of(2, 2, {(0, 1): 1, (1, 0): 1})
        assert mat_dict(m.apply_index(ops.diagindex)) == {(0, 1): 1, (1, 0): -1}

    def test_vector_apply_index(self):
        v = Vector.from_coo([2, 4], [7, 7], 5, dtype=INT64)
        out = v.apply_index(ops.rowindex)
        assert {int(i): int(x) for i, x in out.items()} == {2: 2, 4: 4}

    @given(st.data())
    def test_matches_oracle(self, data):
        r, c, d = data.draw(sparse_matrix())
        got = mat_dict(mat_of(r, c, d).apply_index(ops.rowindex, 3))
        assert got == ref.apply_index_matrix(d, lambda v, i, j, k: i + k, 3)


class TestPower:
    def test_adjacency_power_counts_paths(self):
        # Path graph 0->1->2: A^2 has exactly the length-2 path.
        a = mat_of(3, 3, {(0, 1): 1, (1, 2): 1})
        from repro.graphblas import semiring

        a2 = a.power(2, semiring.plus_times)
        assert mat_dict(a2) == {(0, 2): 1}

    def test_power_one_is_copy(self):
        from repro.graphblas import semiring

        a = mat_of(2, 2, {(0, 0): 2})
        p = a.power(1, semiring.plus_times)
        assert p.isequal(a) and p is not a

    def test_non_square_rejected(self):
        from repro.graphblas import semiring

        with pytest.raises(DimensionMismatch):
            mat_of(2, 3, {}).power(2, semiring.plus_times)

    def test_zero_power_rejected(self):
        from repro.graphblas import semiring

        with pytest.raises(ValueError):
            mat_of(2, 2, {}).power(0, semiring.plus_times)


class TestNewUnaryOps:
    def test_sqrt_exp_log_sign(self):
        v = Vector.from_coo([0, 1], [4.0, 9.0], 2, dtype=FP64)
        got = v.apply(ops.sqrt)
        assert [float(x) for _, x in got.items()] == [2.0, 3.0]
        w = Vector.from_coo([0], [-3.0], 1, dtype=FP64)
        assert [float(x) for _, x in w.apply(ops.sign).items()] == [-1.0]
        assert [round(float(x), 6) for _, x in w.apply(ops.abs_).items()] == [3.0]

    def test_floor_ceil(self):
        v = Vector.from_coo([0], [1.5], 1, dtype=FP64)
        assert [float(x) for _, x in v.apply(ops.floor).items()] == [1.0]
        assert [float(x) for _, x in v.apply(ops.ceil).items()] == [2.0]
