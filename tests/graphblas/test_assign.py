"""GrB_assign semantics: submatrix assign with region overwrite, accum, masks.

Hand-built examples pin the tricky spec corners (region deletion, whole-C
mask, replace) and hypothesis cross-checks the kernel against the naive
dict oracle on random inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphblas import INT64, Mask, Matrix, Vector, ops
from repro.graphblas import reference as ref
from repro.graphblas.descriptor import Descriptor
from repro.util.validation import DimensionMismatch, ReproError

from tests.graphblas.test_property_oracle import (
    mat_dict,
    mat_of,
    sparse_matrix,
)


def _mat(entries: dict, r: int, c: int) -> Matrix:
    return mat_of(r, c, entries)


class TestAssignBasics:
    def test_region_overwrite_deletes_stale_entries(self):
        # C(0,2) lies inside the assigned region {0,2} x {0,2} but A has no
        # entry there, so it must be deleted.
        c = _mat({(0, 0): 1, (0, 2): 2, (1, 1): 3, (2, 2): 4}, 3, 3)
        a = _mat({(0, 0): 9, (1, 1): 8}, 2, 2)
        c.assign(a, [0, 2], [0, 2])
        assert mat_dict(c) == {(0, 0): 9, (1, 1): 3, (2, 2): 8}

    def test_entries_outside_region_survive(self):
        c = _mat({(2, 0): 7}, 3, 3)
        a = _mat({(0, 0): 1}, 1, 1)
        c.assign(a, [0], [0])
        assert mat_dict(c) == {(0, 0): 1, (2, 0): 7}

    def test_assign_all_replaces_everything(self):
        c = _mat({(0, 0): 1, (1, 1): 2}, 2, 2)
        a = _mat({(0, 1): 5}, 2, 2)
        c.assign(a)
        assert mat_dict(c) == {(0, 1): 5}

    def test_accum_merges_instead_of_deleting(self):
        c = _mat({(0, 0): 1, (0, 2): 2}, 3, 3)
        a = _mat({(0, 0): 9, (1, 1): 8}, 2, 2)
        c.assign(a, [0, 2], [0, 2], accum=ops.plus)
        assert mat_dict(c) == {(0, 0): 10, (0, 2): 2, (2, 2): 8}

    def test_unsorted_index_maps(self):
        # I = [2, 0]: A's row 0 lands on C's row 2.
        c = Matrix.sparse(INT64, 3, 3)
        a = _mat({(0, 0): 5, (1, 1): 6}, 2, 2)
        c.assign(a, [2, 0], [2, 0])
        assert mat_dict(c) == {(2, 2): 5, (0, 0): 6}

    def test_returns_self(self):
        c = Matrix.sparse(INT64, 2, 2)
        a = _mat({(0, 0): 1}, 2, 2)
        assert c.assign(a) is c


class TestAssignValidation:
    def test_shape_mismatch_raises(self):
        c = Matrix.sparse(INT64, 3, 3)
        a = Matrix.sparse(INT64, 2, 2)
        with pytest.raises(DimensionMismatch):
            c.assign(a, [0], [0, 1])

    def test_duplicate_indices_raise(self):
        c = Matrix.sparse(INT64, 3, 3)
        a = Matrix.sparse(INT64, 2, 2)
        with pytest.raises(ReproError):
            c.assign(a, [0, 0], [0, 1])

    def test_out_of_range_indices_raise(self):
        c = Matrix.sparse(INT64, 3, 3)
        a = Matrix.sparse(INT64, 1, 1)
        with pytest.raises(Exception):
            c.assign(a, [3], [0])


class TestAssignMask:
    def test_mask_blocks_writes_outside_mask(self):
        c = _mat({(0, 0): 1, (1, 1): 2}, 2, 2)
        a = _mat({(0, 0): 9, (1, 1): 8}, 2, 2)
        m = _mat({(0, 0): 1}, 2, 2)  # only (0,0) writable
        c.assign(a, mask=m)
        # (0,0) updated; (1,1) kept old value because the mask is false there.
        assert mat_dict(c) == {(0, 0): 9, (1, 1): 2}

    def test_mask_with_replace_clears_unmasked(self):
        c = _mat({(0, 0): 1, (1, 1): 2}, 2, 2)
        a = _mat({(0, 0): 9, (1, 1): 8}, 2, 2)
        m = _mat({(0, 0): 1}, 2, 2)
        c.assign(a, mask=m, desc=Descriptor(replace=True))
        assert mat_dict(c) == {(0, 0): 9}

    def test_complemented_structural_mask(self):
        c = _mat({(0, 0): 1}, 2, 2)
        a = _mat({(0, 0): 9, (1, 1): 8}, 2, 2)
        m = _mat({(0, 0): 0}, 2, 2)  # structure: (0,0) present
        c.assign(a, mask=Mask(m, complement=True, structure=True))
        # (0,0) masked out -> old value survives; (1,1) written.
        assert mat_dict(c) == {(0, 0): 1, (1, 1): 8}


class TestAssignPropertyOracle:
    @given(st.data(), st.sampled_from([None, "plus", "second", "max"]))
    def test_matches_oracle(self, data, accum_name):
        r, c, dc = data.draw(sparse_matrix())
        # Draw index subsets of C's rows / cols (non-empty, unique).
        rows = data.draw(
            st.lists(st.integers(0, r - 1), min_size=1, max_size=r, unique=True)
        )
        cols = data.draw(
            st.lists(st.integers(0, c - 1), min_size=1, max_size=c, unique=True)
        )
        _, _, da = data.draw(
            sparse_matrix(nrows=len(rows), ncols=len(cols))
        )
        accum = None if accum_name is None else getattr(ops, accum_name)
        pyaccum = {
            None: None,
            "plus": lambda a, b: a + b,
            "second": lambda a, b: b,
            "max": max,
        }[accum_name]

        got_m = mat_of(r, c, dc)
        got_m.assign(mat_of(len(rows), len(cols), da), rows, cols, accum=accum)
        want = ref.assign_matrix(dc, da, rows, cols, accum=pyaccum)
        assert mat_dict(got_m) == want


class TestVectorAssignRegion:
    def test_scalar_broadcast(self):
        w = Vector.from_coo([0, 2], [1, 3], 4, dtype=INT64)
        w.assign(7, [1, 2])
        assert {int(i): int(v) for i, v in w.items()} == {0: 1, 1: 7, 2: 7}

    def test_vector_into_indices(self):
        w = Vector.sparse(INT64, 5)
        u = Vector.from_coo([0, 1], [10, 20], 2, dtype=INT64)
        w.assign(u, [3, 1])
        assert {int(i): int(v) for i, v in w.items()} == {3: 10, 1: 20}
