"""Low-level kernel tests: canonicalisation, key encoding, merges, CSR helpers."""

import numpy as np
import pytest

from repro.graphblas import ops
from repro.graphblas._kernels import coo, csr, merge, reduce as red
from repro.graphblas.monoid import min_monoid, plus_monoid
from repro.util.validation import ReproError


class TestEncode:
    def test_roundtrip(self):
        rows = np.array([0, 1, 2], dtype=np.int64)
        cols = np.array([3, 0, 2], dtype=np.int64)
        keys = coo.encode(rows, cols, 5)
        r, c = coo.decode(keys, 5)
        assert np.array_equal(r, rows) and np.array_equal(c, cols)

    def test_key_space_guard(self):
        coo.check_key_space(10**9, 10**9)  # fits
        with pytest.raises(ReproError):
            coo.check_key_space(2**40, 2**40)


class TestCanonicalize:
    def test_sorts_row_major(self):
        r, c, v = coo.canonicalize_matrix(
            [1, 0, 0], [0, 2, 1], [10, 20, 30], 2, 3
        )
        assert r.tolist() == [0, 0, 1]
        assert c.tolist() == [1, 2, 0]
        assert v.tolist() == [30, 20, 10]

    def test_dedup_plus(self):
        r, c, v = coo.canonicalize_matrix(
            [0, 0, 0], [1, 1, 0], [1, 2, 5], 1, 2, dup_op=ops.plus
        )
        assert r.tolist() == [0, 0]
        assert c.tolist() == [0, 1]
        assert v.tolist() == [5, 3]

    def test_dedup_second_last_wins(self):
        idx, vals = coo.canonicalize_vector([2, 2, 0], [1, 9, 5], 3, dup_op=ops.second)
        assert idx.tolist() == [0, 2]
        assert vals.tolist() == [5, 9]

    def test_dedup_first(self):
        idx, vals = coo.canonicalize_vector([2, 2], [1, 9], 3, dup_op=ops.first)
        assert vals.tolist() == [1]

    def test_no_dup_op_raises(self):
        with pytest.raises(ReproError):
            coo.canonicalize_vector([0, 0], [1, 2], 1)

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            coo.canonicalize_matrix([0], [0, 1], [1, 2], 2, 2)


class TestSegmentReduce:
    def test_ufunc_path(self):
        vals = np.array([1, 2, 3, 4, 5])
        starts = np.array([0, 2, 3])
        out = coo.segment_reduce(vals, starts, ops.plus)
        assert out.tolist() == [3, 3, 9]

    def test_python_fallback(self):
        vals = np.array([1, 2, 3])
        starts = np.array([0, 1])
        out = coo.segment_reduce(vals, starts, ops.any_)
        assert out.tolist() == [1, 2]

    def test_empty(self):
        out = coo.segment_reduce(np.zeros(0), np.zeros(0, np.int64), ops.plus)
        assert out.size == 0


class TestIn1dSorted:
    def test_membership(self):
        hay = np.array([2, 5, 9], dtype=np.int64)
        needles = np.array([0, 2, 5, 6, 9, 11], dtype=np.int64)
        assert coo.in1d_sorted(needles, hay).tolist() == [
            False, True, True, False, True, False,
        ]

    def test_empty_haystack(self):
        out = coo.in1d_sorted(np.array([1, 2]), np.zeros(0, np.int64))
        assert out.tolist() == [False, False]


class TestCsrHelpers:
    def test_indptr_roundtrip(self):
        rows = np.array([0, 0, 2], dtype=np.int64)
        ip = csr.indptr_from_rows(rows, 4)
        assert ip.tolist() == [0, 2, 2, 3, 3]
        assert csr.expand_rows(ip).tolist() == [0, 0, 2]

    def test_row_ranges(self):
        ip = np.array([0, 2, 2, 5], dtype=np.int64)
        entry, group = csr.row_ranges(ip, np.array([2, 0], dtype=np.int64))
        assert entry.tolist() == [2, 3, 4, 0, 1]
        assert group.tolist() == [0, 0, 0, 1, 1]

    def test_row_ranges_empty(self):
        ip = np.array([0, 0], dtype=np.int64)
        entry, group = csr.row_ranges(ip, np.array([0], dtype=np.int64))
        assert entry.size == 0 and group.size == 0


class TestMerge:
    def test_union_disjoint(self):
        ka = np.array([0, 2], dtype=np.int64)
        kb = np.array([1, 3], dtype=np.int64)
        keys, vals = merge.union_merge(ka, np.array([1, 2]), kb, np.array([3, 4]), ops.plus)
        assert keys.tolist() == [0, 1, 2, 3]
        assert vals.tolist() == [1, 3, 2, 4]

    def test_union_overlap_op_order(self):
        ka = np.array([5], dtype=np.int64)
        kb = np.array([5], dtype=np.int64)
        _, vals = merge.union_merge(ka, np.array([10]), kb, np.array([3]), ops.minus)
        assert vals.tolist() == [7]  # A - B, stable order preserved

    def test_union_empty_sides(self):
        ka = np.zeros(0, np.int64)
        kb = np.array([1], dtype=np.int64)
        keys, vals = merge.union_merge(ka, np.zeros(0, np.int64), kb, np.array([7]), ops.plus)
        assert keys.tolist() == [1] and vals.tolist() == [7]

    def test_intersect(self):
        ka = np.array([0, 1, 4], dtype=np.int64)
        kb = np.array([1, 4, 9], dtype=np.int64)
        keys, vals = merge.intersect_merge(
            ka, np.array([1, 2, 3]), kb, np.array([10, 20, 30]), ops.plus
        )
        assert keys.tolist() == [1, 4]
        assert vals.tolist() == [12, 23]

    def test_intersect_swapped_sizes_keeps_order(self):
        # larger A than B exercises the other branch
        ka = np.array([0, 1, 2, 3], dtype=np.int64)
        kb = np.array([2], dtype=np.int64)
        keys, vals = merge.intersect_merge(
            ka, np.array([5, 6, 7, 8]), kb, np.array([100]), ops.minus
        )
        assert keys.tolist() == [2] and vals.tolist() == [-93]  # A - B


class TestReduceKernels:
    def test_reduce_rows(self):
        rows = np.array([0, 0, 3], dtype=np.int64)
        vals = np.array([1, 5, 9])
        idx, out = red.reduce_rows(rows, vals, plus_monoid)
        assert idx.tolist() == [0, 3]
        assert out.tolist() == [6, 9]

    def test_reduce_groups_unsorted(self):
        groups = np.array([3, 0, 3, 0], dtype=np.int64)
        vals = np.array([1, 10, 2, 20])
        idx, out = red.reduce_groups(groups, vals, min_monoid)
        assert idx.tolist() == [0, 3]
        assert out.tolist() == [10, 1]


class TestSpgemmGuards:
    def test_flop_limit(self, monkeypatch):
        from repro.graphblas import semiring
        from repro.graphblas._kernels import spgemm

        monkeypatch.setattr(spgemm, "FLOP_LIMIT", 2)
        a = (
            np.array([0, 0], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            np.array([1, 1]),
            1,
            2,
        )
        b = (
            np.array([0, 0, 1, 1], dtype=np.int64),
            np.array([0, 1, 0, 1], dtype=np.int64),
            np.array([1, 1, 1, 1]),
            2,
            2,
        )
        with pytest.raises(ReproError):
            spgemm.generic_mxm(a, b, semiring.plus_times)
