"""Regression tests for two SnapshotStore recovery bugs.

Bug 1 -- orphaned ``.tmp`` leak: ``save()`` only clears the tmp tree of
the *same* version it is retrying, so a crash at version V followed by a
recovery (whose next snapshot is V+1, V+2, ...) left ``snapshot-...V.tmp``
on disk forever.  The store now sweeps crash turds on construction
(:meth:`SnapshotStore.sweep_tmp`); readers of a foreign live directory
opt out with ``sweep=False``.

Bug 2 -- recovery bricked by one damaged ``meta.json``: ``versions()``
ran a bare ``json.load`` per snapshot dir, so a single empty/torn/foreign
meta file made *every* recovery raise even with a perfectly good newer
snapshot present.  Unreadable metas are now quarantined (warn + skip),
while a readable meta with the wrong schema stays a loud error -- and
``load()`` applies the same schema check instead of trusting the caller.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan, InjectedCrash, inject
from repro.model.graph import SocialGraph
from repro.serving import GraphService
from repro.serving.persistence import SnapshotStore
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

KW = dict(tools=("graphblas-incremental",), max_batch=10**9, max_delay_ms=1e9)


def _graph(n=2) -> SocialGraph:
    g = SocialGraph()
    for i in range(1, n + 1):
        g.add_user(i)
    return g


class TestOrphanTmpSweep:
    def test_crash_at_v_then_save_at_v_plus_1_used_to_leak(self, tmp_path):
        """The failing-before shape: the v1 turd survives a v2 save
        (save only clears its own version), and only the construction
        sweep reclaims it."""
        store = SnapshotStore(tmp_path)
        with inject(FaultPlan().crash("snapshot-write")):
            with pytest.raises(InjectedCrash):
                store.save(_graph(), 1)
        turd = tmp_path / "snapshot-0000000001.tmp"
        assert turd.exists()

        store.save(_graph(), 2)  # the service moved on past the crash
        assert turd.exists()  # <- the leak the old code never cleaned

        swept = SnapshotStore(tmp_path).sweep_tmp()  # idempotent: init swept
        assert swept == []
        assert not turd.exists()
        assert SnapshotStore(tmp_path).versions() == [2]

    def test_construction_sweep_reports_names(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for v in (3, 9):
            with inject(FaultPlan().crash("snapshot-write")):
                with pytest.raises(InjectedCrash):
                    store.save(_graph(), v)
        fresh = SnapshotStore.__new__(SnapshotStore)
        fresh.root = tmp_path
        assert fresh.sweep_tmp() == [
            "snapshot-0000000003.tmp",
            "snapshot-0000000009.tmp",
        ]

    def test_reader_with_sweep_false_leaves_turds_alone(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with inject(FaultPlan().crash("snapshot-write")):
            with pytest.raises(InjectedCrash):
                store.save(_graph(), 1)
        turd = tmp_path / "snapshot-0000000001.tmp"
        SnapshotStore(tmp_path, sweep=False)
        assert turd.exists()  # a foreign reader must not delete in-flight work

    def test_service_recovery_sweeps_the_crash_turd(self, tmp_path):
        """End to end: crash a periodic snapshot, recover, and the data
        dir holds no ``.tmp`` even though later snapshots use new
        version numbers."""
        fresh, stream = datagen_stream(61, total_inserts=80,
                                       num_change_sets=3)
        svc = GraphService(fresh(), data_dir=tmp_path, **KW)
        svc.submit(list(stream[0]))
        svc.flush()
        with inject(FaultPlan().crash("snapshot-write")):
            with pytest.raises(InjectedCrash):
                svc.snapshot()
        assert list(tmp_path.glob("*.tmp"))
        svc.close()

        rec = GraphService.recover(tmp_path, **KW)
        assert not list(tmp_path.glob("*.tmp"))
        rec.submit(list(stream[1]))
        rec.flush()
        rec.snapshot()
        assert not list(tmp_path.glob("*.tmp"))
        rec.close()


def _damage(tmp_path, version: int, payload) -> None:
    d = tmp_path / f"snapshot-{version:010d}"
    (d / "meta.json").write_bytes(payload)


class TestQuarantineUnreadableMeta:
    def _store_with_good_and_bad(self, tmp_path, payload) -> SnapshotStore:
        store = SnapshotStore(tmp_path)
        store.save(_graph(), 1)
        store.save(_graph(3), 2)
        _damage(tmp_path, 1, payload)
        return store

    @pytest.mark.parametrize("payload", [
        b"",                                # truncated to nothing
        b'{"schema": 1, "version',          # torn mid-write
        b"\x00\xffnot json at all",         # binary junk
        b'[1, 2, 3]',                       # readable JSON, not a meta
        b'{"hello": "world"}',              # dict without a version
    ])
    def test_one_bad_meta_no_longer_bricks_recovery(self, tmp_path, payload):
        """The failing-before shape: versions() used to raise on the
        first damaged dir it globbed, hiding the good snapshot."""
        store = self._store_with_good_and_bad(tmp_path, payload)
        with pytest.warns(RuntimeWarning, match="quarantining snapshot"):
            assert store.versions() == [2]
        with pytest.warns(RuntimeWarning):
            assert store.latest() == 2
        assert 3 in store.load(2).users

    def test_loading_the_damaged_version_is_loud(self, tmp_path):
        store = self._store_with_good_and_bad(tmp_path, b"")
        with pytest.raises(ReproError, match="unreadable meta.json"):
            store.load(1)

    def test_schema_mismatch_still_raises(self, tmp_path):
        """Readable-but-wrong is drift, not damage: never quarantined."""
        store = SnapshotStore(tmp_path)
        store.save(_graph(), 1)
        _damage(tmp_path, 1, json.dumps({"schema": 99, "version": 1}).encode())
        with pytest.raises(ReproError, match="schema 99"):
            store.versions()
        with pytest.raises(ReproError, match="schema 99"):
            store.load(1)

    def test_load_missing_version_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(ReproError, match="no snapshot for version"):
            store.load(4)

    def test_service_recovers_past_damaged_older_snapshot(self, tmp_path):
        fresh, stream = datagen_stream(67, total_inserts=80,
                                       num_change_sets=3)
        svc = GraphService(fresh(), data_dir=tmp_path, snapshot_every=1, **KW)
        for cs in stream:
            svc.submit(list(cs))
            svc.flush()
        want = svc.query("Q1").result_string
        svc.close()
        good = SnapshotStore(tmp_path, sweep=False).latest()
        _damage(tmp_path, good - 1, b"")  # an older snapshot is torn

        with pytest.warns(RuntimeWarning, match="quarantining snapshot"):
            rec = GraphService.recover(tmp_path, **KW)
        assert rec.query("Q1").result_string == want
        rec.close()
