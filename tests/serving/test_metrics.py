"""LatencyStats / OpMetrics: exact counters, deterministic reservoir."""

from __future__ import annotations

from repro.serving.metrics import LatencyStats, OpMetrics


class TestLatencyStats:
    def test_exact_count_and_total(self):
        s = LatencyStats()
        for v in (0.001, 0.002, 0.003):
            s.record(v)
        assert s.count == 3
        assert abs(s.total - 0.006) < 1e-12
        assert abs(s.mean - 0.002) < 1e-12
        assert s.min == 0.001 and s.max == 0.003

    def test_percentiles(self):
        s = LatencyStats()
        for i in range(1, 101):
            s.record(i / 1000.0)
        assert 0.045 <= s.percentile(50) <= 0.055
        assert s.percentile(99) >= 0.098

    def test_reservoir_bounded_and_deterministic(self):
        a, b = LatencyStats(max_samples=64), LatencyStats(max_samples=64)
        for i in range(10_000):
            a.record(i * 1e-6)
            b.record(i * 1e-6)
        assert len(a._samples) < 64
        assert a._samples == b._samples  # no RNG in the measurement path
        assert a.count == 10_000  # count/total stay exact under decimation
        assert a.max == 9999 * 1e-6

    def test_empty_summary(self):
        s = LatencyStats()
        out = s.summary()
        assert out["count"] == 0
        assert out["p99_ms"] == 0.0
        assert out["min_ms"] == 0.0


class TestOpMetrics:
    def test_timed_context(self):
        m = OpMetrics()
        with m.timed("query"):
            pass
        with m.timed("query"):
            pass
        assert m["query"].count == 2
        assert m["query"].total >= 0.0

    def test_summary_sorted_by_op(self):
        m = OpMetrics()
        m.record("b", 0.1)
        m.record("a", 0.2)
        assert list(m.summary()) == ["a", "b"]
        assert m.summary()["a"]["count"] == 1
