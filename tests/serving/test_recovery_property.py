"""Crash-recovery convergence property.

For random datagen graphs and random update streams -- including streams
with ``RemoveLike``/``RemoveFriendship`` -- a service that is killed after
its stream and rebuilt with ``GraphService.recover(snapshot + log tail)``
must serve top-k results identical to a fresh batch engine evaluated on
the final graph.  This is the serving layer's analogue of the repo's
incremental-vs-batch equivalence property: persistence must not be able to
lose, duplicate, or reorder any applied batch.
"""

from __future__ import annotations

import pytest

from repro.datagen import generate_graph
from repro.queries import Q1Batch, Q2Batch
from repro.serving import GraphService
from repro.serving.persistence import SnapshotStore
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

TOOLS = ("graphblas-incremental",)


def _generate(seed: int, removal_fraction: float):
    fresh_graph, stream = datagen_stream(
        seed, removal_fraction=removal_fraction, total_inserts=240, num_change_sets=8
    )
    final_graph = fresh_graph()
    for cs in stream:
        final_graph.apply(cs)
    return fresh_graph(), stream, final_graph


@pytest.mark.parametrize("seed", [5, 17, 29])
@pytest.mark.parametrize("removal_fraction", [0.0, 0.3])
def test_recover_converges_to_fresh_batch(tmp_path, seed, removal_fraction):
    graph, stream, final_graph = _generate(seed, removal_fraction)
    svc = GraphService(
        graph,
        tools=TOOLS,
        max_batch=10_000,
        max_delay_ms=1e9,
        data_dir=tmp_path,
        snapshot_every=3,
        keep_snapshots=2,
    )
    for cs in stream:
        svc.submit(cs)  # each whole set coalesces into one applied batch
        svc.flush()
    assert svc.version == len(stream)
    del svc  # kill: no close(), the WAL frame per batch is already durable

    rec = GraphService.recover(tmp_path, tools=TOOLS, max_delay_ms=1e9)
    try:
        # the log tail really was replayed (snapshots stop at version 6)
        snap_version, replayed = rec._recovered_from
        assert replayed == rec.version - snap_version
        assert rec.version == len(stream)
        assert replayed > 0
        assert rec.query("Q1").result_string == Q1Batch(final_graph).result_string()
        assert (
            rec.query("Q2").result_string
            == Q2Batch(final_graph, algorithm="unionfind").result_string()
        )
        # recovered graphs are structurally identical, not just same top-k
        assert rec.graph.stats() == final_graph.stats()
    finally:
        rec.close()


def test_recover_continues_serving_and_logging(tmp_path):
    """A recovered service is a first-class service: it keeps appending to
    the same log and survives a second crash."""
    graph, stream, final_graph = _generate(5, 0.3)
    svc = GraphService(
        graph, tools=TOOLS, max_batch=10_000, max_delay_ms=1e9,
        data_dir=tmp_path, snapshot_every=100,
    )
    for cs in stream[:4]:
        svc.submit(cs)
        svc.flush()
    del svc

    svc2 = GraphService.recover(tmp_path, tools=TOOLS, max_delay_ms=1e9)
    for cs in stream[4:]:
        svc2.submit(cs)
        svc2.flush()
    assert svc2.version == len(stream)
    del svc2

    svc3 = GraphService.recover(tmp_path, tools=TOOLS, max_delay_ms=1e9)
    try:
        assert svc3.version == len(stream)
        assert svc3.query("Q1").result_string == Q1Batch(final_graph).result_string()
        assert svc3.graph.stats() == final_graph.stats()
    finally:
        svc3.close()


def test_crash_mid_append_then_keep_serving_then_recover_again(tmp_path):
    """A torn WAL tail (crash mid-append) must not poison the log: the
    recovered service keeps appending and a second recovery still works."""
    graph, stream, final_graph = _generate(29, 0.3)
    svc = GraphService(
        graph, tools=TOOLS, max_batch=10_000, max_delay_ms=1e9,
        data_dir=tmp_path, snapshot_every=100,
    )
    for cs in stream[:4]:
        svc.submit(cs)
        svc.flush()
    del svc
    # crash mid-append of batch 5: an unclosed frame at the tail
    with open(tmp_path / "wal.csv", "a", newline="") as fh:
        fh.write("BEGIN,5,2\nU,999999,\n")

    svc2 = GraphService.recover(tmp_path, tools=TOOLS, max_delay_ms=1e9)
    assert svc2.version == 4  # the torn batch never committed
    for cs in stream[4:]:
        svc2.submit(cs)
        svc2.flush()
    del svc2

    svc3 = GraphService.recover(tmp_path, tools=TOOLS, max_delay_ms=1e9)
    try:
        assert svc3.version == len(stream)
        assert svc3.query("Q1").result_string == Q1Batch(final_graph).result_string()
        assert svc3.graph.stats() == final_graph.stats()
    finally:
        svc3.close()


def test_fresh_service_refuses_dirty_dir(tmp_path):
    graph, stream, _ = _generate(5, 0.0)
    svc = GraphService(graph, tools=TOOLS, max_delay_ms=1e9, data_dir=tmp_path)
    svc.close()
    with pytest.raises(ReproError, match="already holds service state"):
        GraphService(generate_graph(1, seed=5), tools=TOOLS, data_dir=tmp_path)


def test_recover_without_state_raises(tmp_path):
    with pytest.raises(ReproError, match="no snapshot"):
        GraphService.recover(tmp_path)


def test_pruned_snapshots_still_recover(tmp_path):
    """Recovery only ever needs the newest snapshot; pruning must not
    break it even when the WAL predates the snapshot."""
    graph, stream, final_graph = _generate(17, 0.3)
    svc = GraphService(
        graph, tools=TOOLS, max_batch=10_000, max_delay_ms=1e9,
        data_dir=tmp_path, snapshot_every=2, keep_snapshots=1,
    )
    for cs in stream:
        svc.submit(cs)
        svc.flush()
    del svc
    assert len(SnapshotStore(tmp_path).versions()) == 1
    rec = GraphService.recover(tmp_path, tools=TOOLS, max_delay_ms=1e9)
    try:
        assert rec.query("Q1").result_string == Q1Batch(final_graph).result_string()
    finally:
        rec.close()
