"""Concurrent engine fan-out and parallel-machinery lifecycle.

The serving layer refreshes independent engines concurrently per applied
batch; these tests pin (a) result equivalence with the serial fan-out over
the same change stream, (b) per-engine metrics preservation, and (c) the
teardown guarantees: neither ``close()`` nor a crashed apply may leave
forked kernel workers behind.
"""

import os

import pytest

from repro.datagen import generate_benchmark_input
from repro.graphblas._kernels import parallel as kp
from repro.model.changes import AddUser
from repro.serving import GraphService

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based kernel executor is POSIX-only"
)

ALL_TOOLS = (
    "graphblas-batch",
    "graphblas-incremental",
    "nmf-batch",
    "nmf-incremental",
)


def _drive(service, changes):
    for ch in changes:
        service.submit(ch)
    service.flush()


@pytest.fixture
def stream():
    graph_a, change_sets = generate_benchmark_input(1, seed=42)
    graph_b, _ = generate_benchmark_input(1, seed=42)
    changes = [ch for cs in change_sets for ch in cs]
    return graph_a, graph_b, changes


class TestFanoutEquivalence:
    def test_concurrent_equals_serial(self, stream):
        graph_a, graph_b, changes = stream
        with GraphService(
            graph_a, tools=ALL_TOOLS, max_batch=16, max_delay_ms=1e9
        ) as conc, GraphService(
            graph_b,
            tools=ALL_TOOLS,
            max_batch=16,
            max_delay_ms=1e9,
            concurrent_refresh=False,
        ) as serial:
            assert conc._fanout is not None
            assert serial._fanout is None
            _drive(conc, changes)
            _drive(serial, changes)
            assert conc.version == serial.version
            for q in ("Q1", "Q2"):
                for t in ALL_TOOLS:
                    a, b = conc.query(q, t), serial.query(q, t)
                    assert a.result_string == b.result_string, (q, t)
                    assert a.top == b.top
                    assert a.version == b.version == conc.version

    def test_per_engine_refresh_metrics_preserved(self, stream):
        graph_a, _, changes = stream
        with GraphService(
            graph_a, tools=ALL_TOOLS, max_batch=16, max_delay_ms=1e9
        ) as svc:
            _drive(svc, changes)
            ops = svc.stats()["ops"]
            for t in ALL_TOOLS:
                assert ops[f"refresh[{t}]"]["count"] >= 1

    def test_adaptive_gate_on_refresh_cost(self, monkeypatch, stream):
        """Sub-threshold refreshes stay serial; heavy ones use the pool."""
        graph_a, _, changes = stream
        with GraphService(
            graph_a, tools=ALL_TOOLS, max_batch=16, max_delay_ms=1e9
        ) as svc:
            submits = []
            real_submit = svc._fanout.submit
            monkeypatch.setattr(
                svc._fanout, "submit",
                lambda *a, **kw: submits.append(1) or real_submit(*a, **kw),
            )
            monkeypatch.setattr(GraphService, "MIN_FANOUT_REFRESH_S", float("inf"))
            _drive(svc, changes[:20])
            assert not submits  # estimated work never clears the gate
            monkeypatch.setattr(GraphService, "MIN_FANOUT_REFRESH_S", 0.0)
            _drive(svc, changes[20:40])
            assert submits  # every batch fans out now

    def test_single_engine_skips_fanout_pool(self, stream):
        graph_a, _, _ = stream
        with GraphService(
            graph_a, queries=("Q1",), tools=("graphblas-incremental",)
        ) as svc:
            assert svc._fanout is None


class TestKernelExecutorLifecycle:
    @pytest.fixture(autouse=True)
    def reset_kernel_executor(self):
        kp.close_kernel_executor()
        yield
        kp.close_kernel_executor()

    def _child_pids(self):
        ex = kp.get_kernel_executor()
        assert ex is not None
        ex.start()
        return [pid for pid, _, _ in ex._children]

    @staticmethod
    def _assert_gone(pids):
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # reaped: no such process, not even a zombie

    def test_close_tears_down_kernel_workers(self, monkeypatch, stream):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        graph_a, _, changes = stream
        svc = GraphService(graph_a, tools=("graphblas-incremental",), max_batch=16)
        pids = self._child_pids()
        assert pids
        _drive(svc, changes[:40])
        svc.close()
        assert kp._state["executor"] is None
        self._assert_gone(pids)

    def test_shared_executor_survives_until_last_service(self, monkeypatch, stream):
        """Closing one of two services must not kill the other's workers;
        the last close stops them (refcounted env executor)."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        graph_a, graph_b, changes = stream
        svc_a = GraphService(graph_a, tools=("graphblas-incremental",), max_batch=16)
        svc_b = GraphService(graph_b, tools=("graphblas-incremental",), max_batch=16)
        pids = self._child_pids()
        svc_a.close()
        assert kp._state["executor"] is not None  # svc_b still holds it
        for pid in pids:
            os.kill(pid, 0)  # workers alive
        _drive(svc_b, changes[:20])
        svc_b.close()
        assert kp._state["executor"] is None
        self._assert_gone(pids)

    def test_explicit_executor_is_caller_owned(self, stream):
        """A set_kernel_executor() pool must survive service teardown."""
        from repro.parallel import make_executor

        graph_a, _, _ = stream
        ex = make_executor("persistent", 2)
        kp.set_kernel_executor(ex)
        try:
            svc = GraphService(graph_a, tools=("graphblas-incremental",))
            svc.close()
            assert kp.get_kernel_executor() is ex  # not closed, not cleared
        finally:
            kp.close_kernel_executor()

    def test_failed_init_releases_executor(self, monkeypatch, stream):
        """A constructor failure after the retain must release the workers."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        graph_a, _, _ = stream
        monkeypatch.setattr(
            GraphService,
            "_load_engines",
            lambda self: (_ for _ in ()).throw(RuntimeError("load boom")),
        )
        with pytest.raises(RuntimeError, match="load boom"):
            GraphService(graph_a, tools=("graphblas-incremental",))
        assert kp._state["executor"] is None
        assert kp._state["refs"] == 0

    def test_crashed_apply_leaves_no_children(self, monkeypatch, stream):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        graph_a, _, _ = stream
        svc = GraphService(graph_a, tools=ALL_TOOLS, max_batch=1)
        pids = self._child_pids()
        assert pids

        engine = svc._engines[("Q1", "graphblas-incremental")]
        monkeypatch.setattr(
            engine, "refresh", lambda delta: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        with pytest.raises(RuntimeError, match="boom"):
            svc.submit(AddUser(user_id=987654, name="crash"))
        # fail-stopped AND cleaned up: no executor slot, no live children
        assert svc._failed
        assert svc._fanout is None
        assert kp._state["executor"] is None
        self._assert_gone(pids)

    def test_failure_order_is_deterministic(self, monkeypatch, stream):
        """Two poisoned engines: the one earliest in registration order
        must be the error surfaced, regardless of completion order."""
        graph_a, _, _ = stream
        svc = GraphService(graph_a, tools=ALL_TOOLS, max_batch=1)
        for tool, msg in (("nmf-incremental", "later"), ("graphblas-batch", "first")):
            engine = svc._engines[("Q1", tool)]
            err = RuntimeError(msg)
            for name in ("refresh", "update"):
                if hasattr(engine, name):
                    monkeypatch.setattr(
                        engine, name, lambda *_a, _e=err: (_ for _ in ()).throw(_e)
                    )
        with pytest.raises(RuntimeError, match="first"):
            svc.submit(AddUser(user_id=987655, name="crash"))
