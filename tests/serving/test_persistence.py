"""ChangeLog (WAL) and SnapshotStore: round-trips, torn tails, atomicity."""

from __future__ import annotations

import shutil

import pytest

from repro.model import ChangeSet, SocialGraph
from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddUser,
    RemoveFriendship,
    RemoveLike,
)
from repro.serving.persistence import ChangeLog, SnapshotStore
from repro.util.validation import ReproError


def build_paper_graph() -> SocialGraph:
    """Fig. 3a (same construction as tests/conftest.py, kept local)."""
    g = SocialGraph()
    for uid in (101, 102, 103, 104):
        g.add_user(uid, f"u{uid - 100}")
    g.add_post(11, 10, 101)
    g.add_post(12, 11, 102)
    g.add_comment(21, 20, 102, 11)
    g.add_comment(22, 21, 101, 21)
    g.add_comment(23, 22, 103, 12)
    g.add_friendship(102, 103)
    g.add_friendship(103, 104)
    for u, c in ((102, 21), (103, 21), (101, 22), (103, 22), (104, 22)):
        g.add_like(u, c)
    return g


def _batches():
    return [
        ChangeSet([AddUser(900), AddUser(901)]),
        ChangeSet(
            [
                AddFriendship(101, 104),
                AddLike(102, 22),
                AddComment(24, 30, 103, 21),
                AddLike(104, 24),
            ]
        ),
        ChangeSet([RemoveLike(102, 21), RemoveFriendship(103, 104)]),
    ]


class TestChangeLog:
    def test_append_replay_roundtrip(self, tmp_path):
        log = ChangeLog(tmp_path)
        for v, cs in enumerate(_batches(), start=1):
            log.append(v, cs)
        log.close()

        replayed = list(ChangeLog(tmp_path).replay())
        assert [v for v, _ in replayed] == [1, 2, 3]
        for (_, got), want in zip(replayed, _batches()):
            assert list(got) == list(want)  # removals survive the round-trip

    def test_replay_after_version(self, tmp_path):
        log = ChangeLog(tmp_path)
        for v, cs in enumerate(_batches(), start=1):
            log.append(v, cs)
        assert [v for v, _ in log.replay(after_version=2)] == [3]
        assert log.last_version() == 3

    def test_torn_tail_dropped(self, tmp_path):
        log = ChangeLog(tmp_path)
        log.append(1, ChangeSet([AddUser(1)]))
        log.close()
        # simulate a crash mid-append: BEGIN frame without COMMIT
        with open(log.path, "a", newline="") as fh:
            fh.write("BEGIN,2,5\nU,2,\n")
        replayed = list(ChangeLog(tmp_path).replay())
        assert [v for v, _ in replayed] == [1]

    def test_torn_middle_raises(self, tmp_path):
        log = ChangeLog(tmp_path)
        log.append(1, ChangeSet([AddUser(1)]))
        log.close()
        with open(log.path, "a", newline="") as fh:
            fh.write("BEGIN,2,1\nU,2,\nBEGIN,3,1\nU,3,\nCOMMIT,3\n")
        with pytest.raises(ReproError, match="no COMMIT"):
            list(ChangeLog(tmp_path).replay())

    def test_change_row_outside_frame_raises(self, tmp_path):
        log = ChangeLog(tmp_path)
        with open(log.path, "w", newline="") as fh:
            fh.write("U,1,\n")
        with pytest.raises(ReproError, match="outside"):
            list(log.replay())

    def test_missing_log_replays_empty(self, tmp_path):
        assert list(ChangeLog(tmp_path / "nowhere").replay()) == []

    def test_repair_truncates_torn_tail_only(self, tmp_path):
        log = ChangeLog(tmp_path)
        log.append(1, ChangeSet([AddUser(1)]))
        log.close()
        with open(log.path, "a", newline="") as fh:
            fh.write("BEGIN,2,5\nU,2,\n")
        assert log.repair() is True
        assert log.repair() is False  # idempotent: nothing left to cut
        # the log is clean again: appending after repair keeps it replayable
        log.append(2, ChangeSet([AddUser(3)]))
        log.close()
        assert [v for v, _ in ChangeLog(tmp_path).replay()] == [1, 2]

    def test_repair_leaves_interior_corruption_for_replay(self, tmp_path):
        log = ChangeLog(tmp_path)
        log.append(1, ChangeSet([AddUser(1)]))
        log.close()
        with open(log.path, "a", newline="") as fh:
            fh.write("BEGIN,2,1\nU,2,\nBEGIN,3,1\nU,3,\nCOMMIT,3\n")
        assert log.repair() is False  # tail ends at a COMMIT: nothing cut
        with pytest.raises(ReproError, match="no COMMIT"):
            list(log.replay())


class TestSnapshotStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        g = build_paper_graph()
        store.save(g, 7)
        assert store.versions() == [7]
        assert store.latest() == 7
        loaded = store.load(7)
        assert loaded.stats() == g.stats()

    def test_latest_of_many(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for v in (3, 12, 5):
            store.save(build_paper_graph(), v)
        assert store.versions() == [3, 5, 12]
        assert store.latest() == 12

    def test_prune_keeps_newest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for v in (1, 2, 3, 4):
            store.save(build_paper_graph(), v)
        dropped = store.prune(keep=2)
        assert dropped == [1, 2]
        assert store.versions() == [3, 4]

    def test_duplicate_version_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(build_paper_graph(), 1)
        with pytest.raises(ReproError, match="already exists"):
            store.save(build_paper_graph(), 1)

    def test_crashed_tmp_dir_ignored_and_reused(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.save(build_paper_graph(), 2)
        # fake a crashed later attempt: a half-written .tmp directory
        shutil.copytree(path, store._dirname(9).with_suffix(".tmp"))
        assert store.versions() == [2]  # tmp is not a snapshot
        store.save(build_paper_graph(), 9)  # and does not block a retry
        assert store.versions() == [2, 9]

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no snapshot"):
            SnapshotStore(tmp_path).load(42)
