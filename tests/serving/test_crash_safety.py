"""Crash safety of the persistence layer, driven by repro.faults.

The satellite regression for the fsync-before-rename fix: a crash
injected between a snapshot's file writes and its atomic rename must
leave *no published snapshot* (only an ignorable ``.tmp``), and a crash
at the WAL-append site must leave the log exactly as it was -- so what a
recovery (or a tailing replica) reads is always a fully-fsynced artefact.
Also pins the epoch fencing contract on ``ChangeLog.append``.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, InjectedCrash, inject
from repro.model.changes import AddUser, ChangeSet
from repro.serving import GraphService
from repro.serving.persistence import (
    ChangeLog,
    FencedError,
    SnapshotStore,
    read_fence,
    write_fence,
)
from repro.model.graph import SocialGraph
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

KW = dict(tools=("graphblas-incremental",), max_batch=10**9, max_delay_ms=1e9)


class TestSnapshotWriteCrash:
    def test_crash_before_rename_publishes_nothing(self, tmp_path):
        store = SnapshotStore(tmp_path)
        g = SocialGraph()
        g.add_user(1)
        with inject(FaultPlan().crash("snapshot-write")):
            with pytest.raises(InjectedCrash):
                store.save(g, 1)
        # the commit point (rename) was never reached: nothing is visible
        assert store.versions() == []
        assert (tmp_path / "snapshot-0000000001.tmp").exists()

    def test_crashed_attempt_is_retryable(self, tmp_path):
        store = SnapshotStore(tmp_path)
        g = SocialGraph()
        g.add_user(1)
        with inject(FaultPlan().crash("snapshot-write")):
            with pytest.raises(InjectedCrash):
                store.save(g, 1)
        store.save(g, 1)  # the .tmp turd from the crash is swept aside
        assert store.versions() == [1]
        assert 1 in store.load(1).users

    def test_service_crash_between_write_and_rename_recovers(self, tmp_path):
        """The ISSUE scenario end-to-end: kill the service inside
        snapshot(), recover, and serve results identical to an
        uninterrupted run."""
        fresh, stream = datagen_stream(71, removal_fraction=0.2,
                                       total_inserts=120)
        svc = GraphService(fresh(), data_dir=tmp_path, snapshot_every=2, **KW)
        svc.submit(list(stream[0]))
        svc.flush()
        # the v2 periodic snapshot dies between file writes and rename
        with inject(FaultPlan().crash("snapshot-write")):
            with pytest.raises(InjectedCrash):
                svc.submit(list(stream[1]))
                svc.flush()
        # v2 committed (WAL) and applied; only the snapshot is missing
        assert svc.version == 2
        store = SnapshotStore(tmp_path)
        assert 2 not in store.versions()
        del svc

        rec = GraphService.recover(tmp_path, **KW)
        oracle = GraphService(fresh(), **KW)
        for cs in stream[:2]:
            oracle.submit(list(cs))
            oracle.flush()
        try:
            assert rec.version == 2
            for q in ("Q1", "Q2"):
                assert rec.query(q).result_string == oracle.query(q).result_string
        finally:
            rec.close()
            oracle.close()


class TestWalAppendCrash:
    def test_crash_leaves_log_byte_identical(self, tmp_path):
        log = ChangeLog(tmp_path)
        log.append(1, ChangeSet([AddUser(1)]))
        before = (tmp_path / "wal.csv").read_bytes()
        with inject(FaultPlan().crash("wal-append")):
            with pytest.raises(InjectedCrash):
                log.append(2, ChangeSet([AddUser(2)]))
        assert (tmp_path / "wal.csv").read_bytes() == before
        assert log.last_version() == 1

    def test_service_fail_stops_and_recovers_at_committed_version(self, tmp_path):
        fresh, stream = datagen_stream(73, removal_fraction=0.3,
                                       total_inserts=120)
        svc = GraphService(fresh(), data_dir=tmp_path, **KW)
        svc.submit(list(stream[0]))
        svc.flush()
        with inject(FaultPlan().crash("wal-append")):
            with pytest.raises(InjectedCrash):
                svc.submit(list(stream[1]))
                svc.flush()
        with pytest.raises(ReproError, match="fail-stopped"):
            svc.query("Q1")
        del svc

        rec = GraphService.recover(tmp_path, **KW)
        try:
            assert rec.version == 1  # the crashed frame never committed
            rec.submit(list(stream[1]))  # client retry carries on
            rec.flush()
            assert rec.version == 2
        finally:
            rec.close()


class TestEpochFencing:
    def test_append_under_stale_epoch_raises_before_writing(self, tmp_path):
        log = ChangeLog(tmp_path, epoch=0)
        log.append(1, ChangeSet([AddUser(1)]))
        before = (tmp_path / "wal.csv").read_bytes()
        write_fence(tmp_path, 1)
        with pytest.raises(FencedError, match="zombie"):
            log.append(2, ChangeSet([AddUser(2)]))
        assert (tmp_path / "wal.csv").read_bytes() == before

    def test_append_at_fence_epoch_is_accepted(self, tmp_path):
        write_fence(tmp_path, 3)
        log = ChangeLog(tmp_path, epoch=3)
        log.append(1, ChangeSet([AddUser(1)]))
        assert list(log.replay_frames()) != []

    def test_fence_only_advances(self, tmp_path):
        write_fence(tmp_path, 2)
        write_fence(tmp_path, 2)  # idempotent per epoch
        with pytest.raises(ReproError, match="cannot lower"):
            write_fence(tmp_path, 1)
        assert read_fence(tmp_path) == 2

    def test_epoch_rides_the_frame_and_replays(self, tmp_path):
        log = ChangeLog(tmp_path, epoch=0)
        log.append(1, ChangeSet([AddUser(1)]))
        log.epoch = 2
        log.append(2, ChangeSet([AddUser(2)]))
        frames = list(log.replay_frames())
        assert [(v, e) for v, _, e in frames] == [(1, 0), (2, 2)]

    def test_pre_epoch_frames_replay_as_epoch_zero(self, tmp_path):
        """Backward compatibility: 3-field BEGIN frames (pre-replication
        logs) still replay, tagged epoch 0."""
        with open(tmp_path / "wal.csv", "w", newline="") as fh:
            fh.write("BEGIN,1,1\nU,7,\nCOMMIT,1\n")
        frames = list(ChangeLog(tmp_path).replay_frames())
        assert [(v, len(b), e) for v, b, e in frames] == [(1, 1, 0)]
