"""MicroBatcher: count/time coalescing under a frozen clock."""

from __future__ import annotations

import pytest

from repro.model import AddUser, ChangeSet
from repro.serving.ingest import MicroBatcher
from repro.util.timer import WallClock
from repro.util.validation import ReproError


@pytest.fixture
def clock(monkeypatch):
    """Patchable frozen clock; advance with clock.tick(seconds)."""

    class _Clock:
        t = 1000.0

        @classmethod
        def tick(cls, dt: float) -> None:
            cls.t += dt

    monkeypatch.setattr(WallClock, "now", staticmethod(lambda: _Clock.t))
    return _Clock


def _changes(n, start=0):
    return [AddUser(start + i) for i in range(n)]


class TestCountThreshold:
    def test_batch_trips_at_max_changes(self, clock):
        mb = MicroBatcher(max_changes=3, max_delay_ms=1e9)
        assert mb.offer(_changes(1)) is None
        assert mb.offer(_changes(1, 1)) is None
        batch = mb.offer(_changes(1, 2))
        assert batch is not None and len(batch) == 3
        assert mb.pending == 0

    def test_oversized_changeset_not_split(self, clock):
        mb = MicroBatcher(max_changes=3, max_delay_ms=1e9)
        batch = mb.offer(ChangeSet(_changes(10)))
        assert len(batch) == 10

    def test_counters(self, clock):
        mb = MicroBatcher(max_changes=2, max_delay_ms=1e9)
        mb.offer(_changes(1))
        mb.offer(_changes(1, 1))
        mb.offer(_changes(1, 2))
        assert mb.submitted == 3
        assert mb.batches == 1
        assert mb.pending == 1


class TestTimeThreshold:
    def test_due_after_max_delay(self, clock):
        mb = MicroBatcher(max_changes=100, max_delay_ms=50)
        mb.offer(_changes(1))
        assert not mb.due()
        clock.tick(0.049)
        assert not mb.due()
        clock.tick(0.002)
        assert mb.due()

    def test_offer_drains_when_overdue(self, clock):
        mb = MicroBatcher(max_changes=100, max_delay_ms=50)
        mb.offer(_changes(1))
        clock.tick(0.060)
        batch = mb.offer(_changes(1, 1))
        assert batch is not None and len(batch) == 2

    def test_age_resets_after_drain(self, clock):
        mb = MicroBatcher(max_changes=100, max_delay_ms=50)
        mb.offer(_changes(1))
        clock.tick(1.0)
        assert mb.drain() is not None
        assert mb.age_ms() == 0.0
        assert not mb.due()

    def test_empty_never_due(self, clock):
        mb = MicroBatcher(max_changes=2, max_delay_ms=0)
        assert not mb.due()
        assert mb.drain() is None


def test_invalid_config():
    with pytest.raises(ReproError):
        MicroBatcher(max_changes=0)
    with pytest.raises(ReproError):
        MicroBatcher(max_delay_ms=-1)
