"""Bounded in-process ingest: ``max_pending`` backpressure (satellite 1).

The default stays unbounded (regression-locked here); with a bound, an
overflowing submission is rejected all-or-nothing with a typed
:class:`QueueFull` carrying a retry hint -- and on a full service, the
rejection happens *before* SubmitGate tracks pending ids, so a shed
batch can be resubmitted verbatim once the queue drains.
"""

from __future__ import annotations

import pytest

from repro.model import AddUser, ChangeSet
from repro.serving import GraphService
from repro.serving.ingest import MicroBatcher, QueueFull
from repro.util.timer import WallClock
from repro.util.validation import ReproError


@pytest.fixture
def clock(monkeypatch):
    class _Clock:
        t = 1000.0

        @classmethod
        def tick(cls, dt):
            cls.t += dt

    monkeypatch.setattr(WallClock, "now", staticmethod(lambda: _Clock.t))
    return _Clock


def _changes(n, start=0):
    return [AddUser(start + i) for i in range(n)]


class TestMicroBatcherBound:
    def test_default_is_unbounded(self, clock):
        mb = MicroBatcher(max_changes=1000, max_delay_ms=1e9)
        for i in range(500):  # far beyond any sane queue; never rejects
            assert mb.offer(_changes(1, i)) is None
        assert mb.pending == 500
        assert mb.max_pending is None

    def test_overflow_rejects_all_or_nothing(self, clock):
        mb = MicroBatcher(max_changes=2, max_delay_ms=1e9, max_pending=3)
        mb.offer(_changes(1))
        with pytest.raises(QueueFull) as exc:
            mb.offer(ChangeSet(_changes(3, 10)))
        # nothing from the rejected batch was enqueued
        assert mb.pending == 1
        assert exc.value.pending == 1
        assert exc.value.limit == 3

    def test_exact_boundary_accepted(self, clock):
        mb = MicroBatcher(max_changes=4, max_delay_ms=1e9, max_pending=4)
        mb.offer(_changes(2))
        batch = mb.offer(_changes(2, 2))  # hits max_changes, flushes
        assert batch is not None and len(batch) == 4

    def test_retry_after_tracks_remaining_delay(self, clock):
        mb = MicroBatcher(max_changes=2, max_delay_ms=100.0, max_pending=2)
        mb.offer(_changes(1))
        clock.tick(0.040)
        with pytest.raises(QueueFull) as exc:
            mb.offer(_changes(2, 10))
        # 60ms of the coalescing window left: that's when space frees up
        assert exc.value.retry_after == pytest.approx(0.060)

    def test_bound_must_cover_one_batch(self):
        with pytest.raises(ReproError):
            MicroBatcher(max_changes=8, max_pending=4)


class TestServiceBound:
    def _svc(self, **kw):
        kw.setdefault("tools", ("graphblas-incremental",))
        return GraphService(**kw)

    def test_bounded_service_sheds_then_recovers(self):
        svc = self._svc(max_batch=4, max_delay_ms=1e9, max_pending=4)
        try:
            svc.submit(_changes(3))
            with pytest.raises(QueueFull):
                svc.submit(_changes(2, 10))
            assert svc.flush() == 1
            svc.submit(_changes(2, 10))  # space again after the flush
        finally:
            svc.close()

    def test_rejected_batch_leaves_no_tracked_ids(self):
        # the regression this ordering exists for: a QueueFull *after*
        # SubmitGate.admit would leak the batch's ids as pending, making
        # the client's retry of the identical batch a duplicate-id error
        svc = self._svc(max_batch=2, max_delay_ms=1e9, max_pending=2)
        try:
            svc.submit(_changes(1))
            overflow = _changes(2, 50)
            with pytest.raises(QueueFull):
                svc.submit(overflow)
            svc.flush()
            assert svc.submit(overflow) == 2  # retry verbatim: accepted
        finally:
            svc.close()

    def test_unbounded_service_unchanged(self):
        svc = self._svc(max_batch=1000, max_delay_ms=1e9)
        try:
            for i in range(50):
                svc.submit(_changes(1, i))
            assert svc.stats()["pending"] == 50
        finally:
            svc.close()
