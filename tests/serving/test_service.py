"""GraphService: serving semantics, caching, validation, lifecycle.

``test_e2e_stream_matches_batch_at_every_version`` is the PR's acceptance
check: a >=1k-change stream with interleaved reads, where the cached
``query()`` results must match a fresh ``graphblas-batch`` evaluation at
every applied version, followed by a kill/``recover()`` round trip that
must reproduce the same final top-k.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen import generate_benchmark_input, generate_change_sets
from repro.model import ChangeSet, SocialGraph
from repro.model.changes import AddFriendship, AddLike, AddPost, AddUser
from repro.queries import Q1Batch, Q2Batch
from repro.serving import GraphService
from repro.util.validation import ReproError


def small_graph() -> SocialGraph:
    g = SocialGraph()
    for u in (1, 2, 3):
        g.add_user(u)
    g.add_post(10, 0, 1)
    g.add_comment(20, 1, 2, 10)
    g.add_like(1, 20)
    g.add_friendship(1, 2)
    return g


GB_TOOLS = ("graphblas-incremental", "graphblas-batch")


class TestServingBasics:
    def test_initial_results_cached_at_v0(self):
        with GraphService(small_graph(), tools=GB_TOOLS, max_delay_ms=1e9) as svc:
            r = svc.query("Q1")
            assert r.version == 0
            assert r.tool == "graphblas-incremental"
            assert r.result_string == Q1Batch(svc.graph).result_string()

    def test_submit_below_batch_size_stays_pending(self):
        with GraphService(
            small_graph(), tools=GB_TOOLS, max_batch=100, max_delay_ms=1e9
        ) as svc:
            svc.submit(AddUser(50))
            assert svc.version == 0
            assert svc.stats()["pending"] == 1
            # the read still serves v0 -- pending changes are invisible
            assert svc.query("Q1").version == 0

    def test_flush_applies_and_bumps_version(self):
        with GraphService(
            small_graph(), tools=GB_TOOLS, max_batch=100, max_delay_ms=1e9
        ) as svc:
            svc.submit(AddUser(50))
            svc.submit(AddPost(60, 5, 50))
            assert svc.flush() == 1
            r = svc.query("Q1")
            assert r.version == 1
            assert 60 in r.ids  # a fresh post can enter a tiny top-k

    def test_batch_size_triggers_apply(self):
        with GraphService(
            small_graph(), tools=GB_TOOLS, max_batch=2, max_delay_ms=1e9
        ) as svc:
            svc.submit(AddUser(50))
            assert svc.version == 0
            svc.submit(AddUser(51))
            assert svc.version == 1

    def test_expired_pending_applied_at_read(self, monkeypatch):
        from repro.util.timer import WallClock

        t = [1000.0]
        monkeypatch.setattr(WallClock, "now", staticmethod(lambda: t[0]))
        svc = GraphService(
            small_graph(), tools=GB_TOOLS, max_batch=100, max_delay_ms=50
        )
        svc.submit(AddUser(50))
        assert svc.query("Q1").version == 0
        t[0] += 0.060  # max_delay_ms exceeded
        assert svc.query("Q1").version == 1
        svc.close()

    def test_all_tools_cached_and_agree(self):
        graph, stream = generate_benchmark_input(1, seed=3, num_change_sets=2)
        with GraphService(graph, max_batch=10_000, max_delay_ms=1e9) as svc:
            for cs in stream:
                svc.submit(cs)
            svc.flush()
            for query in ("Q1", "Q2"):
                strings = {
                    svc.query(query, tool).result_string for tool in svc.tools
                }
                assert len(strings) == 1, f"{query} disagreement: {strings}"

    def test_stats_shape(self):
        with GraphService(small_graph(), tools=GB_TOOLS, max_delay_ms=1e9) as svc:
            svc.submit(AddUser(50))
            svc.flush()
            svc.query("Q1")
            s = svc.stats()
            assert s["version"] == 1
            assert s["submitted"] == 1
            assert s["applied_batches"] == 1
            assert s["graph"]["users"] == 4
            assert s["ops"]["apply"]["count"] == 1
            assert s["ops"]["query"]["count"] == 1
            assert s["ops"]["refresh[graphblas-batch]"]["count"] == 2  # Q1+Q2


class TestValidation:
    def test_unknown_reference_rejected_before_enqueue(self):
        with GraphService(small_graph(), tools=GB_TOOLS, max_delay_ms=1e9) as svc:
            with pytest.raises(ReproError, match="unknown user"):
                svc.submit(AddLike(999, 20))
            with pytest.raises(ReproError, match="unknown comment"):
                svc.submit(AddLike(1, 999))
            with pytest.raises(ReproError, match="self-friendship"):
                svc.submit(AddFriendship(1, 1))
            with pytest.raises(ReproError, match="duplicate user"):
                svc.submit(AddUser(1))
            assert svc.stats()["pending"] == 0  # nothing half-enqueued

    def test_pending_entity_referencable(self):
        with GraphService(
            small_graph(), tools=GB_TOOLS, max_batch=100, max_delay_ms=1e9
        ) as svc:
            svc.submit(AddUser(50))
            svc.submit(AddPost(60, 5, 50))  # references the pending user
            assert svc.flush() == 1

    def test_intra_set_references_accepted(self):
        """A single submitted ChangeSet may reference entities it
        introduces itself (the paper's Fig. 3b shape)."""
        with GraphService(
            small_graph(), tools=GB_TOOLS, max_batch=100, max_delay_ms=1e9
        ) as svc:
            svc.submit(ChangeSet([AddUser(70), AddPost(71, 5, 70)]))
            assert svc.flush() == 1
            assert 71 in svc.query("Q1").ids

    def test_intra_set_duplicate_rejected_and_rolled_back(self):
        with GraphService(
            small_graph(), tools=GB_TOOLS, max_batch=100, max_delay_ms=1e9
        ) as svc:
            with pytest.raises(ReproError, match="duplicate user"):
                svc.submit(ChangeSet([AddUser(80), AddUser(80)]))
            assert svc.stats()["pending"] == 0
            # the rejected set's phantom pending id must not linger
            svc.submit(AddUser(80))
            assert svc.flush() == 1

    def test_engine_failure_fail_stops_the_service(self):
        svc = GraphService(
            small_graph(), tools=GB_TOOLS, max_batch=100, max_delay_ms=1e9
        )

        def boom(_delta):
            raise RuntimeError("engine exploded")

        next(iter(svc._engines.values())).refresh = boom
        svc.submit(AddUser(90))
        with pytest.raises(RuntimeError, match="engine exploded"):
            svc.flush()
        with pytest.raises(ReproError, match="fail-stopped"):
            svc.query("Q1")
        with pytest.raises(ReproError, match="fail-stopped"):
            svc.submit(AddUser(91))
        svc.close()  # close still succeeds (and must not re-apply)

    def test_unknown_query_and_tool(self):
        with GraphService(small_graph(), tools=GB_TOOLS, max_delay_ms=1e9) as svc:
            with pytest.raises(ReproError):
                svc.query("Q3")
            with pytest.raises(ReproError):
                GraphService(small_graph(), tools=("not-a-tool",))

    def test_closed_service_rejects_ops(self):
        svc = GraphService(small_graph(), tools=GB_TOOLS, max_delay_ms=1e9)
        svc.close()
        with pytest.raises(ReproError, match="closed"):
            svc.submit(AddUser(50))
        with pytest.raises(ReproError, match="closed"):
            svc.query("Q1")
        svc.close()  # idempotent


class TestAutoFlush:
    def test_background_flusher_applies_overdue_batch(self):
        svc = GraphService(
            small_graph(),
            tools=("graphblas-incremental",),
            max_batch=100,
            max_delay_ms=20,
            auto_flush=True,
        )
        try:
            svc.submit(AddUser(50))
            deadline = time.time() + 5.0
            while svc.version == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert svc.version == 1  # flushed without any further submit/read
        finally:
            svc.close()


class TestE2E:
    def test_e2e_stream_matches_batch_at_every_version(self, tmp_path):
        """Acceptance: >=1k changes, interleaved reads, per-version batch
        equivalence, then kill + recover reproduces the final top-k."""
        graph, _ = generate_benchmark_input(1, seed=11)
        stream = generate_change_sets(
            graph, total_inserts=1100, num_change_sets=1, seed=11,
            removal_fraction=0.15,
        )
        changes = list(stream[0])
        assert len(changes) >= 1000

        # reference graph fed the exact same coalesced batches
        ref_graph, _ = generate_benchmark_input(1, seed=11)

        svc = GraphService(
            graph,
            tools=GB_TOOLS,
            max_batch=128,
            max_delay_ms=1e9,
            data_dir=tmp_path,
            snapshot_every=4,
        )
        seen_version = svc.version
        pending: list = []
        versions_checked = 0
        for i, ch in enumerate(changes):
            pending.append(ch)
            svc.submit(ch)
            if i % 97 == 0:  # interleaved reads never fail or go backwards
                assert svc.query("Q1").version == svc.version
            if svc.version != seen_version:
                seen_version = svc.version
                ref_graph.apply(ChangeSet(pending))
                pending = []
                assert (
                    svc.query("Q1").result_string
                    == Q1Batch(ref_graph).result_string()
                )
                assert (
                    svc.query("Q2").result_string
                    == Q2Batch(ref_graph, algorithm="unionfind").result_string()
                )
                versions_checked += 1
        svc.flush()
        if pending:
            ref_graph.apply(ChangeSet(pending))
        assert versions_checked >= 7
        final_q1 = svc.query("Q1").result_string
        final_q2 = svc.query("Q2").result_string
        assert final_q1 == Q1Batch(ref_graph).result_string()
        assert final_q2 == Q2Batch(ref_graph, algorithm="unionfind").result_string()
        final_version = svc.version

        # kill (no close -- the WAL is fsynced per applied batch) + recover
        del svc
        rec = GraphService.recover(tmp_path, tools=GB_TOOLS, max_delay_ms=1e9)
        try:
            assert rec.version == final_version
            assert rec.query("Q1").result_string == final_q1
            assert rec.query("Q2").result_string == final_q2
        finally:
            rec.close()
