"""ResultCache hit/miss/eviction accounting and its stats() exposure."""

from __future__ import annotations

import pytest

from repro.model.changes import AddFriendship, AddUser
from repro.serving.cache import CachedResult, ResultCache
from repro.serving.service import GraphService
from repro.util.validation import ReproError


def _result(query="Q1", tool="t", version=1):
    return CachedResult(query, tool, version, ((1, 1),), "1", 0.0,
                        computed_version=version)


class TestResultCacheCounters:
    def test_hits_and_misses(self):
        cache = ResultCache()
        cache.put(_result())
        assert cache.get("Q1", "t").version == 1
        with pytest.raises(ReproError):
            cache.get("Q2", "t")
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1
        assert s["hit_rate"] == 0.5

    def test_same_version_put_is_not_an_eviction(self):
        cache = ResultCache()
        cache.put(_result(version=1))
        cache.put(_result(version=1))  # idempotent overwrite
        assert cache.stats()["evictions"] == 0

    def test_version_bump_evicts_exactly_replaced_entries(self):
        """A version bump invalidates exactly the (query, tool) entries it
        replaces -- one eviction per refreshed engine, nothing else."""
        cache = ResultCache()
        for q in ("Q1", "Q2"):
            for tool in ("a", "b"):
                cache.put(_result(q, tool, version=1))
        assert cache.stats()["evictions"] == 0
        # bump only Q1 under both tools to v2
        for tool in ("a", "b"):
            cache.put(_result("Q1", tool, version=2))
        s = cache.stats()
        assert s["evictions"] == 2
        assert s["entries"] == 4

    def test_empty_cache_rate_is_zero(self):
        assert ResultCache().stats()["hit_rate"] == 0.0


class TestServiceExposure:
    def test_stats_ops_cache_and_per_batch_evictions(self):
        svc = GraphService(tools=("graphblas-incremental",),
                           analytics=("degree",), max_batch=1)
        n_engines = len(svc._engines)  # Q1, Q2, degree
        assert n_engines == 3
        svc.submit([AddUser(1), AddUser(2)])
        svc.submit(AddFriendship(1, 2))
        svc.query("Q1")
        svc.query("degree")
        cache = svc.stats()["ops"]["cache"]
        # 2 applied batches x 3 engines: each bump evicted exactly the
        # previous version's entry for every refreshed engine
        assert cache["evictions"] == 2 * n_engines
        assert cache["entries"] == n_engines
        assert cache["hits"] == 2 and cache["misses"] == 0
        assert cache["hit_rate"] == 1.0
        svc.close()

    def test_miss_counted_through_service(self):
        svc = GraphService(tools=("graphblas-incremental",), max_batch=1)
        with pytest.raises(ReproError):
            svc.query("Q1", "no-such-tool")
        assert svc.stats()["ops"]["cache"]["misses"] == 1
        svc.close()
