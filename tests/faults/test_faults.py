"""repro.faults: registry, deterministic schedules, matchers, injection."""

from __future__ import annotations

import pytest

import repro.gateway  # noqa: F401 - registers the gateway-* points
import repro.replication  # noqa: F401 - registers ship/promote
import repro.serving.service  # noqa: F401 - registers the serving points
import repro.storage  # noqa: F401 - registers arena-flush
from repro.faults import (
    FaultPlan,
    InjectedCrash,
    at_path,
    crash_points,
    fire,
    inject,
    register_crash_point,
)
from repro.util.validation import ReproError


class TestRegistry:
    def test_all_documented_points_registered(self):
        """The crash-site inventory the failover suite enumerates; a new
        point must be added here (and classified there) deliberately."""
        assert set(crash_points()) == {
            "wal-append",
            "post-append-pre-apply",
            "snapshot-write",
            "ship",
            "promote",
            "gateway-accept",
            "gateway-enqueue",
            "gateway-drain",
            "arena-flush",
        }

    def test_descriptions_are_nonempty(self):
        for name, desc in crash_points().items():
            assert desc, name

    def test_reregistration_same_description_is_idempotent(self):
        desc = crash_points()["wal-append"]
        assert register_crash_point("wal-append", desc) == "wal-append"

    def test_reregistration_different_description_collides(self):
        with pytest.raises(ReproError, match="already registered"):
            register_crash_point("wal-append", "somewhere else entirely")

    def test_unknown_point_in_plan_raises(self):
        with pytest.raises(ReproError, match="unknown crash point"):
            FaultPlan().crash("not-a-point")


class TestFire:
    def test_noop_without_plan(self):
        fire("wal-append", path="/nowhere")  # must not raise

    def test_first_hit_crashes_by_default(self):
        plan = FaultPlan().crash("wal-append")
        with inject(plan):
            with pytest.raises(InjectedCrash) as err:
                fire("wal-append", path="/x")
        assert err.value.point == "wal-append"
        assert err.value.hit == 1
        assert err.value.ctx == {"path": "/x"}
        assert plan.fired() == ["wal-append"]

    def test_hit_counting_is_deterministic(self):
        plan = FaultPlan().crash("wal-append", hit=3)
        with inject(plan):
            fire("wal-append")
            fire("wal-append")
            with pytest.raises(InjectedCrash):
                fire("wal-append")
            fire("wal-append")  # trigger is spent: later hits survive
        assert [p for p, _ in plan.hits] == ["wal-append"] * 4

    def test_match_filters_hits(self):
        plan = FaultPlan().crash("wal-append", match=at_path("shard-01"))
        with inject(plan):
            fire("wal-append", path="/d/shard-00/wal.csv")
            with pytest.raises(InjectedCrash):
                fire("wal-append", path="/d/shard-01/wal.csv")

    def test_custom_exception_type(self):
        plan = FaultPlan().crash("wal-append", exc=OSError)
        with inject(plan):
            with pytest.raises(OSError, match="injected crash"):
                fire("wal-append")

    def test_observation_mode_records_every_hit(self):
        """An empty plan is the discovery tool: nothing crashes, every
        fire lands in .hits -- how the failover suite maps the crash
        schedule of a workload before scheduling kills."""
        plan = FaultPlan()
        with inject(plan):
            fire("wal-append", path="a", version=1)
            fire("ship", path="b")
        assert [p for p, _ in plan.hits] == ["wal-append", "ship"]
        assert plan.hits[0][1] == {"path": "a", "version": 1}
        assert plan.fired() == []

    def test_injected_crash_is_not_a_repro_error(self):
        """Recovery code must see an injected crash as arbitrary process
        death, never as a validation verdict it might catch."""
        assert not issubclass(InjectedCrash, ReproError)

    def test_plans_do_not_nest(self):
        with inject(FaultPlan()):
            with pytest.raises(ReproError, match="already installed"):
                with inject(FaultPlan()):
                    pass

    def test_plan_uninstalls_after_block(self):
        plan = FaultPlan().crash("wal-append")
        with inject(plan):
            with pytest.raises(InjectedCrash):
                fire("wal-append")
        fire("wal-append")  # plan gone: silent again

    def test_hit_must_be_positive(self):
        with pytest.raises(ReproError, match="hit must be"):
            FaultPlan().crash("wal-append", hit=0)

    def test_two_triggers_independent_counters(self):
        plan = (
            FaultPlan()
            .crash("wal-append", match=at_path("a"), hit=1)
            .crash("wal-append", match=at_path("b"), hit=2)
        )
        with inject(plan):
            with pytest.raises(InjectedCrash):
                fire("wal-append", path="a")
            fire("wal-append", path="b")
            with pytest.raises(InjectedCrash):
                fire("wal-append", path="b")
        assert plan.fired() == ["wal-append", "wal-append"]
