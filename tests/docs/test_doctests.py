"""The public serving + analytics surface carries *runnable* examples.

Every module named here must pass its doctests and actually contain at
least one ``>>>`` example -- the same set the CI docs job runs via
``pytest --doctest-modules``.  Keeping the runner inside tier-1 means a
drifted docstring fails the ordinary test suite, not just the docs job.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

#: the documented-surface contract: (module, at least these names carry
#: a runnable example)
SURFACE = {
    "repro.serving.service": ("GraphService",),
    "repro.serving.cache": ("CachedResult", "ResultCache"),
    "repro.queries.engine": ("EngineBase", "QueryEngine"),
    "repro.analytics.engine": (),  # module-level example
    "repro.graphblas._kernels.parallel": ("set_kernel_executor",),
    "repro.faults": (),  # module-level example
    "repro.storage": (),  # module-level example
    "repro.replication.service": ("ReplicatedGraphService",),
    "repro.replication.shipper": ("DirectoryWalShipper",),
    "repro.sharding.router": ("ShardedGraphService",),
    "repro.sharding.partition": ("shard_of",),
    "repro.sharding.merge": ("merge_topk_entries", "merge_partition_partials"),
    "repro.obs.trace": (),  # module-level example
    "repro.obs.metrics": (),  # module-level example
    "repro.obs.kernels": (),  # module-level example
}


@pytest.mark.parametrize("module_name", sorted(SURFACE))
def test_module_doctests_pass_and_exist(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"doctest failures in {module_name}"
    assert results.attempted > 0, f"{module_name} lost its runnable examples"


@pytest.mark.parametrize(
    "module_name,names",
    [(m, ns) for m, ns in SURFACE.items() if ns],
)
def test_named_objects_carry_examples(module_name, names):
    module = importlib.import_module(module_name)
    finder = doctest.DocTestFinder(exclude_empty=True)
    documented = {t.name for t in finder.find(module) if t.examples}
    for name in names:
        assert any(
            d == f"{module_name}.{name}" or d.startswith(f"{module_name}.{name}.")
            for d in documented
        ), f"{module_name}.{name} has no >>> example"
