"""Docs stay true: README quickstart runs, references resolve.

* the first ```python block of ``README.md`` executes **verbatim** (the
  acceptance criterion -- no doctoring, no elisions);
* every ``repro.*`` dotted name mentioned in ``README.md`` / ``DESIGN.md``
  imports (module) or resolves (attribute);
* every repo-relative file path mentioned there exists;
* every markdown link target in ``README.md`` exists.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DOCS = ("README.md", "DESIGN.md")


def _read(name: str) -> str:
    return (ROOT / name).read_text()


def test_readme_exists_and_fronts_the_repo():
    text = _read("README.md")
    assert "Elekes" in text and "DESIGN.md" in text
    for section in ("Quickstart", "Running the tests", "Benchmarks", "Environment"):
        assert section in text, f"README lost its {section} section"
    for knob in ("REPRO_WORKERS", "REPRO_PARALLEL_CUTOFF"):
        assert knob in text


def test_readme_quickstart_executes_verbatim(capsys):
    text = _read("README.md")
    match = re.search(r"```python\n(.*?)```", text, re.S)
    assert match, "README has no ```python quickstart block"
    code = match.group(1)
    assert code.count("\n") <= 12, "quickstart outgrew its ~10 lines"
    exec(compile(code, "README-quickstart", "exec"), {})
    out = capsys.readouterr().out
    assert len(out.splitlines()) == 3  # the three print(...) reads


@pytest.mark.parametrize("doc", DOCS)
def test_dotted_module_references_resolve(doc):
    text = _read(doc)
    names = sorted(set(re.findall(r"\brepro(?:\.[A-Za-z_][A-Za-z_0-9]*)+", text)))
    assert names, f"{doc} mentions no repro modules?"
    for name in names:
        parts = name.split(".")
        obj, consumed = None, 0
        for i in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:i]))
                consumed = i
                break
            except ImportError:
                continue
        assert obj is not None, f"{doc}: cannot import any prefix of {name}"
        for attr in parts[consumed:]:
            assert hasattr(obj, attr), f"{doc}: {name} does not resolve"
            obj = getattr(obj, attr)


@pytest.mark.parametrize("doc", DOCS)
def test_file_paths_exist(doc):
    text = _read(doc)
    paths = set(
        re.findall(r"\b(?:src|tests|benchmarks|examples)/[\w./-]+\.\w+", text)
    )
    assert paths, f"{doc} mentions no repo files?"
    for path in sorted(paths):
        assert (ROOT / path).exists(), f"{doc} references missing file {path}"


def test_readme_markdown_links_resolve():
    text = _read("README.md")
    for target in re.findall(r"\]\(([^)#]+?)\)", text):
        if "://" in target:
            continue
        assert (ROOT / target).exists(), f"README links to missing {target}"


def test_design_documents_the_analytics_layer():
    text = _read("DESIGN.md")
    assert "repro.analytics" in text
    for term in ("dirty", "incremental", "computed_version", "ComponentsMaintainer"):
        assert term in text, f"DESIGN.md analytics section lost {term!r}"
