"""No undocumented telemetry: every span and metric name used in src/
must appear (backticked) in DESIGN.md's Observability catalogue."""

from __future__ import annotations

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src" / "repro"
DESIGN = ROOT / "DESIGN.md"

#: tracer span starts: tracer.span("name"...), span_if(tr, "name"...),
#: and post-hoc tracer.record("name", ...)
SPAN_RE = re.compile(
    r'(?:\.span\(|span_if\([^,]*,\s*|\w\.record\(\s*)"([a-z_]+)"'
)
#: typed metric series (the repro_* namespace is reserved for telemetry)
METRIC_RE = re.compile(r'"(repro_[a-z0-9_]+)"')
#: OpMetrics latency reservoirs started via timed("op")
TIMED_RE = re.compile(r'timed\(\s*"([a-z_]+)"\s*\)')


def _src_names(pattern: re.Pattern) -> set[str]:
    names: set[str] = set()
    for path in SRC.rglob("*.py"):
        names.update(pattern.findall(path.read_text()))
    return names


def _catalogue() -> set[str]:
    """Backticked tokens inside DESIGN.md's Observability section."""
    text = DESIGN.read_text()
    m = re.search(r"^## Observability$(.*?)(?=^## |\Z)", text, re.S | re.M)
    assert m, "DESIGN.md has no '## Observability' section"
    section = re.sub(r"```.*?```", "", m.group(1), flags=re.S)
    return set(re.findall(r"`([^`\n]+)`", section))


class TestNoUndocumentedTelemetry:
    def test_every_span_name_documented(self):
        spans = _src_names(SPAN_RE)
        # regex sanity: the taxonomy's core spans must have been extracted
        assert {"submit", "batch", "wal", "scatter", "shard",
                "refresh", "commit", "query", "recover"} <= spans
        missing = spans - _catalogue()
        assert not missing, f"spans missing from DESIGN.md catalogue: {sorted(missing)}"

    def test_every_metric_name_documented(self):
        metrics = _src_names(METRIC_RE)
        assert {"repro_wal_bytes_total", "repro_batch_size",
                "repro_engine_staleness"} <= metrics
        missing = metrics - _catalogue()
        assert not missing, f"metrics missing from DESIGN.md catalogue: {sorted(missing)}"

    def test_every_latency_op_documented(self):
        ops = _src_names(TIMED_RE)
        assert {"submit", "wal", "apply", "query", "snapshot"} <= ops
        missing = ops - _catalogue()
        assert not missing, f"ops missing from DESIGN.md catalogue: {sorted(missing)}"

    def test_parameterised_families_documented(self):
        """The two f-string latency families are documented by shape."""
        cat = _catalogue()
        assert "refresh[<tool>]" in cat
        assert "load[<tool>]" in cat
