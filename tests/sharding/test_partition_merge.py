"""Unit coverage for the partition function, graph split, and merge maths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.graph import SocialGraph
from repro.queries import Q1Batch, Q2Batch
from repro.sharding import (
    merge_partition_partials,
    merge_topk_entries,
    merge_vertex_partials,
    partition_graph,
    shard_of,
    shard_of_array,
)
from tests.conftest import build_paper_graph, datagen_stream


class TestShardOf:
    def test_scalar_and_array_agree(self):
        ids = np.array([0, 1, 42, 10**12, 2**63 - 1], dtype=np.int64)
        for n in (1, 2, 3, 4, 7):
            assert shard_of_array(ids, n).tolist() == [
                shard_of(int(i), n) for i in ids
            ]

    def test_range_and_determinism(self):
        for n in (1, 2, 4):
            owners = {shard_of(i, n) for i in range(200)}
            assert owners <= set(range(n))
            assert shard_of(123, n) == shard_of(123, n)

    def test_sequential_ids_spread(self):
        """The splitmix64 mix decorrelates sequential external ids; a naive
        ``id % K`` would be fooled by strided id allocation."""
        counts = np.bincount(shard_of_array(np.arange(0, 40_000, 4), 4), minlength=4)
        assert counts.min() > 0.8 * counts.mean()


class TestPartitionGraph:
    def test_single_shard_is_identity(self):
        g = build_paper_graph()
        shards, post_shard, comment_shard = partition_graph(g, 1)
        assert shards[0] is g
        assert set(post_shard.values()) == {0} and set(comment_shard.values()) == {0}

    @pytest.mark.parametrize("n", [2, 4])
    def test_split_replicates_users_and_partitions_content(self, n):
        fresh, _ = datagen_stream(13)
        g = fresh()
        shards, post_shard, comment_shard = partition_graph(g, n)
        want_users = g.users.external_array().tolist()
        total_posts, total_comments, total_likes = 0, 0, 0
        for i, sg in enumerate(shards):
            assert sg.users.external_array().tolist() == want_users
            assert sg.stats()["friendships"] == g.stats()["friendships"]
            for p in sg.posts.external_array().tolist():
                assert post_shard[p] == i == shard_of(p, n)
            for c in sg.comments.external_array().tolist():
                assert comment_shard[c] == i
            s = sg.stats()
            total_posts += s["posts"]
            total_comments += s["comments"]
            total_likes += s["likes"]
        full = g.stats()
        assert (total_posts, total_comments, total_likes) == (
            full["posts"], full["comments"], full["likes"],
        )

    def test_per_shard_queries_cover_disjoint_exact_scores(self):
        """Each shard's batch Q1/Q2 scores equal the full graph's scores
        restricted to the shard's content -- the exactness the top-k merge
        builds on."""
        fresh, _ = datagen_stream(19)
        g = fresh()
        shards, _, _ = partition_graph(g, 3)
        full_q1 = {ext: s for ext, s, _ in _all_entries_q1(g)}
        full_q2 = {ext: s for ext, s, _ in _all_entries_q2(g)}
        seen_posts, seen_comments = set(), set()
        for sg in shards:
            for ext, score, _ in _all_entries_q1(sg):
                assert full_q1[ext] == score
                seen_posts.add(ext)
            for ext, score, _ in _all_entries_q2(sg):
                assert full_q2[ext] == score
                seen_comments.add(ext)
        assert seen_posts == set(full_q1) and seen_comments == set(full_q2)


def _all_entries_q1(g):
    q = Q1Batch(g, k=g.num_posts or 1)
    return q.evaluate_entries()


def _all_entries_q2(g):
    q = Q2Batch(g, k=g.num_comments or 1, algorithm="unionfind")
    return q.evaluate_entries()


class TestChangeStreamExport:
    def test_roundtrip_rebuilds_identical_graph(self):
        fresh, stream = datagen_stream(29, removal_fraction=0.0)
        g = fresh()
        for cs in stream[:2]:
            g.apply(cs)
        from repro.model.changes import ChangeSet

        rebuilt = SocialGraph(storage=g.storage)
        rebuilt.apply(ChangeSet(list(g.to_change_stream())))
        assert rebuilt.stats() == g.stats()
        assert rebuilt.users.external_array().tolist() == g.users.external_array().tolist()
        assert rebuilt.posts.external_array().tolist() == g.posts.external_array().tolist()
        assert rebuilt.comments.external_array().tolist() == g.comments.external_array().tolist()
        np.testing.assert_array_equal(rebuilt.post_timestamps, g.post_timestamps)
        np.testing.assert_array_equal(rebuilt.comment_timestamps, g.comment_timestamps)
        assert Q1Batch(rebuilt).evaluate() == Q1Batch(g).evaluate()
        assert (
            Q2Batch(rebuilt, algorithm="unionfind").evaluate()
            == Q2Batch(g, algorithm="unionfind").evaluate()
        )


class TestMergeFunctions:
    def test_topk_contest_ordering(self):
        # score desc, then timestamp desc, then external id asc
        a = [(11, 9, 2), (14, 1, 9)]
        b = [(12, 9, 3), (13, 9, 2)]
        top, rs = merge_topk_entries([a, b], k=3)
        assert top == [(12, 9), (11, 9), (13, 9)]
        assert rs == "12|11|13"

    def test_topk_empty_partials(self):
        assert merge_topk_entries([[], []], k=3) == ([], "")

    def test_vertex_score_then_id(self):
        top, rs = merge_vertex_partials([[(5, 2.5)], [(1, 2.5), (9, 7.0)]], k=3)
        assert top == [(9, 7.0), (1, 2.5), (5, 2.5)]
        assert rs == "9|1|5"

    def test_partition_min_label_join_sums_counts(self):
        a = [(0, 0, 101, 2), (7, 7, 108, 1)]
        b = [(0, 0, 101, 3)]
        c = [(7, 7, 108, 2)]
        top, rs = merge_partition_partials([a, b, c], k=2)
        assert top == [(101, 5), (108, 3)]
        assert rs == "101|108"

    def test_partition_size_tie_breaks_toward_smaller_min_member(self):
        a = [(4, 4, 205, 2)]
        b = [(2, 2, 203, 2)]
        top, _ = merge_partition_partials([a, b], k=2)
        assert top == [(203, 2), (205, 2)]
