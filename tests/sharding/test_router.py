"""Router unit behaviour: construction, validation, batching, reads, env."""

from __future__ import annotations

import pytest

from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
)
from repro.queries.engine import make_engine
from repro.serving import GraphService
from repro.sharding import SHARDABLE_TOOLS, ShardedGraphService, default_shards
from repro.util.validation import ReproError
from tests.conftest import build_paper_graph, datagen_stream, paper_update

KW = dict(tools=("graphblas-incremental",), max_batch=10**9, max_delay_ms=1e9)


class TestConstruction:
    def test_nmf_tools_rejected(self):
        with pytest.raises(ReproError, match="mergeable-result"):
            ShardedGraphService(shards=2, tools=("nmf-batch",))

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ReproError, match="shards must be >= 1"):
            ShardedGraphService(shards=0)

    def test_env_knob_is_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert default_shards() == 3
        svc = ShardedGraphService(**KW)
        try:
            assert svc.num_shards == 3
        finally:
            svc.close()
        monkeypatch.setenv("REPRO_SHARDS", "zero")
        with pytest.raises(ReproError, match="bad REPRO_SHARDS"):
            default_shards()
        monkeypatch.setenv("REPRO_SHARDS", "0")
        with pytest.raises(ReproError, match=">= 1"):
            default_shards()

    def test_dirty_data_dir_refused(self, tmp_path):
        svc = ShardedGraphService(shards=2, data_dir=tmp_path, **KW)
        svc.close()
        with pytest.raises(ReproError, match="already holds sharded"):
            ShardedGraphService(shards=2, data_dir=tmp_path, **KW)

    def test_unsharded_state_in_data_dir_refused(self, tmp_path):
        """A directory holding plain GraphService state must not be adopted:
        appending router frames into the old WAL would interleave two
        version histories."""
        svc = GraphService(data_dir=tmp_path, **KW)
        svc.submit(AddUser(1))
        svc.flush()
        svc.close()
        with pytest.raises(ReproError, match="unsharded.*GraphService state"):
            ShardedGraphService(shards=2, data_dir=tmp_path, **KW)
        # the refusal left the original state recoverable
        rec = GraphService.recover(tmp_path, **KW)
        try:
            assert rec.version == 1
        finally:
            rec.close()

    def test_failed_construction_does_not_poison_data_dir(self, tmp_path):
        """router.json is written only once every shard constructed, and a
        failed attempt removes the shard directories it created -- so a
        corrected retry succeeds instead of hitting the dirty-dir guard."""
        with pytest.raises(ReproError, match="unknown analytics tool"):
            ShardedGraphService(
                shards=2, data_dir=tmp_path, analytics=("bogus",), **KW
            )
        assert not (tmp_path / "router.json").exists()
        svc = ShardedGraphService(shards=2, data_dir=tmp_path, **KW)
        try:
            svc.submit(AddUser(1))
            assert svc.flush() == 1
        finally:
            svc.close()

    def test_recover_shard_count_pinned(self, tmp_path):
        svc = ShardedGraphService(shards=2, data_dir=tmp_path, **KW)
        svc.submit(AddUser(1))
        svc.flush()
        svc.close()
        with pytest.raises(ReproError, match="partitioned with shards=2"):
            ShardedGraphService.recover(tmp_path, shards=4, **KW)
        rec = ShardedGraphService.recover(tmp_path, **KW)
        try:
            assert rec.num_shards == 2 and rec.version == 1
        finally:
            rec.close()

    def test_recover_without_state_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no sharded service state"):
            ShardedGraphService.recover(tmp_path)

    def test_paper_example_served_sharded(self):
        svc = ShardedGraphService(build_paper_graph(), shards=2, **KW)
        unsharded = GraphService(build_paper_graph(), **KW)
        try:
            for q in ("Q1", "Q2"):
                assert svc.query(q).top == unsharded.query(q).top
            svc.submit(list(paper_update()))
            svc.flush()
            unsharded.submit(list(paper_update()))
            unsharded.flush()
            for q in ("Q1", "Q2"):
                assert svc.query(q).top == unsharded.query(q).top
        finally:
            svc.close()
            unsharded.close()


class TestValidation:
    def _svc(self):
        return ShardedGraphService(shards=2, max_batch=10**9, max_delay_ms=1e9, **{
            k: v for k, v in KW.items() if k == "tools"
        })

    def test_router_gate_rejects_at_the_edge(self):
        svc = self._svc()
        try:
            with pytest.raises(ReproError, match="unknown user"):
                svc.submit(AddPost(10, 0, 999))
            svc.submit(AddUser(1))
            with pytest.raises(ReproError, match="duplicate user"):
                svc.submit(AddUser(1))  # still pending, caught via the gate
            svc.flush()
            with pytest.raises(ReproError, match="duplicate user"):
                svc.submit(AddUser(1))  # applied now, caught via shard 0
            with pytest.raises(ReproError, match="unknown parent"):
                svc.submit(AddComment(20, 1, 1, 555))
            with pytest.raises(ReproError, match="unknown comment"):
                svc.submit(AddLike(1, 555))
        finally:
            svc.close()

    def test_rejected_set_rolls_back_whole(self):
        """All-or-nothing: ids introduced by a rejected set must not leak
        into the pending-id tracking."""
        svc = self._svc()
        try:
            svc.submit(AddUser(1))
            with pytest.raises(ReproError, match="unknown parent"):
                svc.submit([AddUser(2), AddComment(30, 1, 2, 777)])
            # user 2 must not have leaked; referencing it still fails
            with pytest.raises(ReproError, match="unknown user"):
                svc.submit(AddFriendship(1, 2))
            svc.submit(AddUser(2))  # and re-adding it is not a duplicate
            assert svc.flush() == 1
        finally:
            svc.close()

    def test_intra_batch_references_route_together(self):
        """Fig. 3b's insert-comment-then-like-it pattern inside ONE submit:
        the like must land on the comment's shard even though the comment
        is not applied anywhere yet when the like is validated."""
        svc = self._svc()
        try:
            svc.submit([AddUser(1), AddUser(2)])
            svc.submit(
                [
                    AddPost(10, 0, 1),
                    AddComment(20, 1, 2, 10),
                    AddLike(1, 20),
                    AddLike(2, 20),
                    AddFriendship(1, 2),
                ]
            )
            svc.flush()
            assert svc.query("Q1").result_string == "10"
            assert svc.query("Q2").top[0] == (20, 4)  # {u1,u2} component, 2^2
        finally:
            svc.close()


class TestReadsAndOps:
    def test_micro_batching_at_the_router(self):
        svc = ShardedGraphService(
            shards=2, tools=("graphblas-incremental",), max_batch=3, max_delay_ms=1e9
        )
        try:
            svc.submit(AddUser(1))
            svc.submit(AddUser(2))
            assert svc.version == 0  # below max_batch: still pending
            svc.submit(AddUser(3))  # trips the threshold
            assert svc.version == 1
            assert [s.version for s in svc._shards] == [1, 1]
        finally:
            svc.close()

    def test_merged_result_fields(self):
        svc = ShardedGraphService(build_paper_graph(), shards=2, **KW)
        try:
            r = svc.query("Q1")
            assert (r.query, r.tool) == ("Q1", "graphblas-incremental")
            assert r.version == 0 and r.computed_version == 0
            assert r.ids == tuple(int(x) for x in r.result_string.split("|"))
        finally:
            svc.close()

    def test_stats_and_repr(self):
        svc = ShardedGraphService(shards=2, **KW)
        try:
            svc.submit(AddUser(1))
            svc.flush()
            s = svc.stats()
            assert s["version"] == 1 and s["shards"] == 2
            assert s["shard_versions"] == [1, 1]
            assert len(s["per_shard"]) == 2
            assert "scatter" in s["ops"]
            assert "shards=2" in repr(svc)
        finally:
            svc.close()

    def test_snapshot_covers_every_shard(self, tmp_path):
        from repro.serving.persistence import SnapshotStore

        svc = ShardedGraphService(shards=2, data_dir=tmp_path, **KW)
        try:
            svc.submit(AddUser(1))
            svc.flush()
            assert svc.snapshot() == 1
            for i in range(2):
                assert 1 in SnapshotStore(tmp_path / f"shard-{i:02d}").versions()
        finally:
            svc.close()

    def test_closed_and_context_manager(self):
        with ShardedGraphService(shards=2, **KW) as svc:
            svc.submit(AddUser(1))
        with pytest.raises(ReproError, match="closed"):
            svc.query("Q1")
        with pytest.raises(ReproError, match="closed"):
            svc.submit(AddUser(2))

    def test_auto_flush_applies_overdue_batches(self):
        import time

        svc = ShardedGraphService(
            shards=2,
            tools=("graphblas-incremental",),
            max_batch=10**9,
            max_delay_ms=10.0,
            auto_flush=True,
        )
        try:
            svc.submit(AddUser(1))
            deadline = time.time() + 5.0
            while svc.version == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert svc.version == 1
        finally:
            svc.close()


class TestMergeProtocolSurface:
    def test_nmf_engines_are_unshardable(self):
        """The NMF baselines predate the protocol (no ``partial`` hook);
        EngineBase subclasses that forget to implement it get the
        explanatory default instead."""
        from repro.queries.engine import EngineBase

        e = make_engine("nmf-batch", "Q1")
        assert not hasattr(e, "partial")
        with pytest.raises(ReproError, match="mergeable-result"):
            EngineBase().partial()
        with pytest.raises(ReproError, match="mergeable-result"):
            EngineBase.merge_partials([], 3)

    def test_unpartitioned_analytics_partial_raises(self):
        from repro.analytics import make_analytics_engine
        from repro.model.graph import SocialGraph

        eng = make_analytics_engine("degree")
        eng.load(SocialGraph())
        eng.initial()
        with pytest.raises(ReproError, match="no partition"):
            eng.partial()

    def test_bad_partition_tuple_rejected(self):
        from repro.analytics import make_analytics_engine

        with pytest.raises(ReproError, match="bad partition"):
            make_analytics_engine("degree", partition=(2, 2))

    def test_graphservice_exposes_engine_accessors(self):
        fresh, _ = datagen_stream(3)
        svc = GraphService(fresh(), **KW)
        try:
            eng = svc.engine("Q1")
            assert eng.partial() == eng.last_entries
            with pytest.raises(ReproError, match="no engine"):
                svc.engine("Q1", "nmf-batch")
        finally:
            svc.close()

    def test_shardable_tools_constant(self):
        assert SHARDABLE_TOOLS == ("graphblas-batch", "graphblas-incremental")
