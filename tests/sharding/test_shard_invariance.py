"""The sharding tentpole's acceptance property: shard invariance.

For identical change streams -- removals included -- a
:class:`~repro.sharding.ShardedGraphService` over K ∈ {1, 2, 4} shards
must serve Q1/Q2/analytics results **bit-identical** to each other and to
the unsharded :class:`~repro.serving.GraphService`, at every applied
batch.  This is the distributed analogue of the repo's incremental ≡
batch property: partitioning + scatter-gather merge must not be able to
change a single byte of any served result.

Every invariance property here runs as a **cross-backend conformance
suite**: parametrized over ``backend ∈ {inproc, process}``, so the
process-per-shard handles (one forked worker per shard, pipe RPC) are
held to the same oracle as the in-process ones.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.serving import GraphService
from repro.sharding import ShardedGraphService, shard_of
from repro.sharding.handle import BACKENDS
from tests.conftest import datagen_stream, graph_and_updates, random_graph_and_stream

SHARD_COUNTS = (1, 2, 4)
TOOLS = ("graphblas-incremental",)
ANALYTICS = ("components", "degree")
QUERIES = ("Q1", "Q2", "components", "degree")

SVC_KW = dict(
    tools=TOOLS, analytics=ANALYTICS, max_batch=10**9, max_delay_ms=1e9
)


def _read(svc, q):
    r = svc.query(q)
    return (r.top, r.result_string, r.version, r.computed_version)


@pytest.mark.parametrize("backend", BACKENDS)
@given(graph_and_updates(removals=True))
@settings(max_examples=12, deadline=None)
def test_all_shard_counts_identical_to_unsharded_every_batch(backend, case):
    seed, _, _ = case
    services = {}
    for n in SHARD_COUNTS:
        _, g, stream = random_graph_and_stream(seed, len(case[2]), removals=True)
        services[n] = (
            ShardedGraphService(g, shards=n, backend=backend, **SVC_KW),
            stream,
        )
    _, g, stream = random_graph_and_stream(seed, len(case[2]), removals=True)
    unsharded = GraphService(g, **SVC_KW)
    try:
        for q in QUERIES:
            want = _read(unsharded, q)
            for n in SHARD_COUNTS:
                assert _read(services[n][0], q) == want, (n, q, "initial")
        for i in range(len(stream)):
            unsharded.submit(stream[i])
            unsharded.flush()
            for n in SHARD_COUNTS:
                svc, sh_stream = services[n]
                svc.submit(sh_stream[i])
                svc.flush()
            for q in QUERIES:
                want = _read(unsharded, q)
                for n in SHARD_COUNTS:
                    assert _read(services[n][0], q) == want, (n, q, i)
    finally:
        unsharded.close()
        for svc, _ in services.values():
            svc.close()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("removal_fraction", [0.0, 0.3])
@pytest.mark.parametrize("shards", [2, 4])
def test_datagen_scale_invariance(shards, removal_fraction, backend):
    """Same property on a datagen-scale workload (heavy-tailed likes, so
    popular comments really do gather likers from several shards)."""
    fresh, stream = datagen_stream(
        31, removal_fraction=removal_fraction, total_inserts=200, num_change_sets=5
    )
    sharded = ShardedGraphService(fresh(), shards=shards, backend=backend, **SVC_KW)
    unsharded = GraphService(fresh(), **SVC_KW)
    try:
        for cs in stream:
            unsharded.submit(list(cs))
            unsharded.flush()
            sharded.submit(list(cs))
            sharded.flush()
            for q in QUERIES:
                assert _read(sharded, q) == _read(unsharded, q), q
        # the workload genuinely crossed shards: content landed on several
        owners = {
            shard_of(p, shards)
            for p in unsharded.graph.posts.external_array().tolist()
        }
        assert len(owners) > 1, "workload never exercised multiple shards"
    finally:
        sharded.close()
        unsharded.close()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "analytics", [("pagerank",), ("cdlp",), ("triangles", "lcc", "kcore")]
)
def test_dirty_policy_analytics_shard_invariant(analytics, backend):
    """Dirty-threshold engines recompute on the *same* schedule on every
    shard (friendship/user deltas are replicated), so even their stale
    results -- and staleness tags -- merge bit-identically."""
    fresh, stream = datagen_stream(17, removal_fraction=0.2, total_inserts=150)
    kw = dict(
        tools=TOOLS,
        analytics=analytics,
        analytics_threshold=0.05,
        max_batch=10**9,
        max_delay_ms=1e9,
    )
    sharded = ShardedGraphService(fresh(), shards=3, backend=backend, **kw)
    unsharded = GraphService(fresh(), **kw)
    try:
        saw_stale = False
        for cs in stream:
            unsharded.submit(list(cs))
            unsharded.flush()
            sharded.submit(list(cs))
            sharded.flush()
            for name in analytics:
                want = _read(unsharded, name)
                assert _read(sharded, name) == want, name
                saw_stale = saw_stale or unsharded.query(name).staleness > 0
        assert saw_stale, "threshold never left a stale window; weak test"
    finally:
        sharded.close()
        unsharded.close()


def test_single_shard_is_the_callers_graph():
    """shards=1 must not replay or copy: the shard serves the caller's
    graph object itself, so it is trivially bit-identical to GraphService.
    (Object identity only exists in-process, so this pins backend.)"""
    fresh, _ = datagen_stream(5)
    g = fresh()
    svc = ShardedGraphService(g, shards=1, backend="inproc", **SVC_KW)
    try:
        assert svc._shards[0].graph is g
    finally:
        svc.close()


def test_partition_is_total_and_consistent():
    # pins backend="inproc": the assertions reach into shard graph objects
    fresh, stream = datagen_stream(23, removal_fraction=0.0, total_inserts=120)
    svc = ShardedGraphService(fresh(), shards=4, backend="inproc", **SVC_KW)
    try:
        for cs in stream:
            svc.submit(list(cs))
        svc.flush()
        users_everywhere = [
            s.graph.users.external_array().tolist() for s in svc._shards
        ]
        # users + friendships replicated: identical id maps on every shard
        assert all(u == users_everywhere[0] for u in users_everywhere[1:])
        friend_counts = {
            i: s.graph.stats()["friendships"] for i, s in enumerate(svc._shards)
        }
        assert len(set(friend_counts.values())) == 1
        # content partitioned: disjoint, covering, and routed by hash
        all_posts = [
            p for s in svc._shards for p in s.graph.posts.external_array().tolist()
        ]
        assert len(all_posts) == len(set(all_posts))
        for i, s in enumerate(svc._shards):
            for p in s.graph.posts.external_array().tolist():
                assert shard_of(p, 4) == i
        # every comment lives on its root post's shard
        for i, s in enumerate(svc._shards):
            g = s.graph
            roots = g.comment_root_posts()
            post_ext = g.posts.external_array()
            for ci in range(g.num_comments):
                assert shard_of(int(post_ext[roots[ci]]), 4) == i
    finally:
        svc.close()
