"""Fault injection: shard crashes mid-stream, router-orchestrated recovery.

The sharded write path has exactly one divergence window: between the
router WAL's commit of a frame and the last shard's apply of its
sub-batch.  These tests crash inside that window -- a shard dying after
its own WAL append but before apply, a shard dying *before* its WAL
append, a torn router WAL tail -- and assert that
:meth:`ShardedGraphService.recover` reconverges every shard to the router
WAL's last committed version, serving results identical to a service that
never crashed, with ``computed_version`` staleness tags monotone across
the crash boundary.

Crashes are scheduled through :mod:`repro.faults` crash points
(``wal-append``, ``post-append-pre-apply``) aimed at one shard via
:func:`at_path` -- the production code marks the killable sites, the
tests only pick *when* to die.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, InjectedCrash, at_path, inject
from repro.serving import GraphService
from repro.sharding import ShardedGraphService
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

TOOLS = ("graphblas-incremental",)
ANALYTICS = ("components",)
KW = dict(tools=TOOLS, analytics=ANALYTICS, max_batch=10**9, max_delay_ms=1e9)
QUERIES = ("Q1", "Q2", "components")


def _oracle(fresh, stream, upto):
    svc = GraphService(fresh(), **KW)
    for cs in stream[:upto]:
        svc.submit(list(cs))
        svc.flush()
    return svc


def _drive(svc, stream):
    for cs in stream:
        svc.submit(list(cs))
        svc.flush()


class TestKillAndRecover:
    def test_recover_converges_and_keeps_serving(self, tmp_path):
        fresh, stream = datagen_stream(41, removal_fraction=0.3, total_inserts=180)
        svc = ShardedGraphService(
            fresh(), shards=3, data_dir=tmp_path, snapshot_every=2, **KW
        )
        _drive(svc, stream[:4])
        assert svc.version == 4
        del svc  # kill: no close(); every applied frame is durable

        rec = ShardedGraphService.recover(tmp_path, **KW)
        oracle = _oracle(fresh, stream, 4)
        try:
            assert rec.version == 4
            assert [s.version for s in rec._shards] == [4, 4, 4]
            for q in QUERIES:
                assert rec.query(q).result_string == oracle.query(q).result_string
            # a recovered router is a first-class service
            _drive(rec, stream[4:])
            _drive(oracle, stream[4:])
            for q in QUERIES:
                assert rec.query(q).top == oracle.query(q).top
        finally:
            rec.close()
            oracle.close()

    def test_second_recovery_after_continued_serving(self, tmp_path):
        fresh, stream = datagen_stream(43, removal_fraction=0.2, total_inserts=150)
        svc = ShardedGraphService(fresh(), shards=2, data_dir=tmp_path, **KW)
        _drive(svc, stream[:3])
        del svc
        rec = ShardedGraphService.recover(tmp_path, **KW)
        _drive(rec, stream[3:])
        v = rec.version
        del rec
        rec2 = ShardedGraphService.recover(tmp_path, **KW)
        oracle = _oracle(fresh, stream, len(stream))
        try:
            assert rec2.version == v == len(stream)
            for q in QUERIES:
                assert rec2.query(q).top == oracle.query(q).top
        finally:
            rec2.close()
            oracle.close()


class TestMidScatterCrash:
    """Crash one shard mid-scatter; the others may already have applied."""

    @pytest.mark.parametrize("victim_idx", [0, 1, 2])
    def test_shard_wal_append_dies(self, tmp_path, victim_idx):
        """The victim never logs the frame: it recovers one version behind
        and is caught up from the *router* WAL."""
        fresh, stream = datagen_stream(47, removal_fraction=0.3, total_inserts=150)
        svc = ShardedGraphService(
            fresh(), shards=3, data_dir=tmp_path, concurrent_scatter=False, **KW
        )
        _drive(svc, stream[:3])

        plan = FaultPlan().crash(
            "wal-append", match=at_path(f"shard-{victim_idx:02d}"), exc=OSError
        )
        with inject(plan):
            with pytest.raises(OSError):
                svc.submit(list(stream[3]))
                svc.flush()
        assert plan.fired() == ["wal-append"]
        with pytest.raises(ReproError, match="fail-stopped"):
            svc.query("Q1")
        versions = [s.version for s in svc._shards]
        assert versions[victim_idx] == 3 and max(versions) <= 4
        del svc

        rec = ShardedGraphService.recover(tmp_path, **KW)
        oracle = _oracle(fresh, stream, 4)
        try:
            assert rec.version == 4
            assert [s.version for s in rec._shards] == [4, 4, 4]
            for q in QUERIES:
                assert rec.query(q).result_string == oracle.query(q).result_string
        finally:
            rec.close()
            oracle.close()

    def test_crash_after_shard_wal_append_before_apply(self, tmp_path):
        """ISSUE scenario: kill after WAL append, before snapshot/apply.
        The victim's own WAL already holds the frame, so its *own* replay
        finishes the batch -- no router intervention needed, but the
        router must tolerate shards that are NOT behind."""
        fresh, stream = datagen_stream(53, removal_fraction=0.2, total_inserts=150)
        svc = ShardedGraphService(
            fresh(), shards=3, data_dir=tmp_path, concurrent_scatter=False, **KW
        )
        _drive(svc, stream[:3])

        plan = FaultPlan().crash(
            "post-append-pre-apply", match=at_path("shard-01")
        )
        with inject(plan):
            with pytest.raises(InjectedCrash):
                svc.submit(list(stream[3]))
                svc.flush()
        assert plan.fired() == ["post-append-pre-apply"]
        del svc

        rec = ShardedGraphService.recover(tmp_path, **KW)
        oracle = _oracle(fresh, stream, 4)
        try:
            assert rec.version == 4
            assert [s.version for s in rec._shards] == [4, 4, 4]
            for q in QUERIES:
                assert rec.query(q).result_string == oracle.query(q).result_string
        finally:
            rec.close()
            oracle.close()

    def test_torn_router_wal_tail_is_dropped(self, tmp_path):
        """Crash mid-append of the router WAL: the torn frame never reached
        any shard and recovery serves the last committed version."""
        fresh, stream = datagen_stream(59, removal_fraction=0.0, total_inserts=120)
        svc = ShardedGraphService(fresh(), shards=2, data_dir=tmp_path, **KW)
        _drive(svc, stream[:3])
        del svc
        with open(tmp_path / "wal.csv", "a", newline="") as fh:
            fh.write("BEGIN,4,2\nU,999999,\n")  # no COMMIT: torn tail

        rec = ShardedGraphService.recover(tmp_path, **KW)
        oracle = _oracle(fresh, stream, 3)
        try:
            assert rec.version == 3
            for q in QUERIES:
                assert rec.query(q).top == oracle.query(q).top
            _drive(rec, stream[3:])  # appending after repair() stays sound
            assert rec.version == len(stream)
        finally:
            rec.close()
            oracle.close()


class TestStalenessAcrossRecovery:
    def test_computed_version_monotone_across_crash(self, tmp_path):
        """Dirty-policy tags stay monotone through crash + recovery: the
        recovered engines recompute at the recovered version, which can
        only move the tag forward."""
        fresh, stream = datagen_stream(61, removal_fraction=0.0, total_inserts=160)
        kw = dict(
            tools=TOOLS,
            analytics=("components", "pagerank"),
            analytics_threshold=1e9,  # pagerank never recomputes: max staleness
            max_batch=10**9,
            max_delay_ms=1e9,
        )
        svc = ShardedGraphService(fresh(), shards=2, data_dir=tmp_path, **kw)
        tags = []
        for cs in stream[:4]:
            svc.submit(list(cs))
            svc.flush()
            r = svc.query("pagerank")
            assert r.version == svc.version
            tags.append(r.computed_version)
            assert svc.query("components").staleness == 0  # incremental: exact
        assert svc.query("pagerank").staleness > 0  # went stale pre-crash
        del svc

        rec = ShardedGraphService.recover(tmp_path, **kw)
        try:
            r = rec.query("pagerank")
            tags.append(r.computed_version)
            assert r.staleness == 0  # recovery recomputes from scratch
            for cs in stream[4:]:
                rec.submit(list(cs))
                rec.flush()
                tags.append(rec.query("pagerank").computed_version)
            assert tags == sorted(tags), f"non-monotone tags: {tags}"
        finally:
            rec.close()
