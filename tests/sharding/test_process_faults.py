"""Process-boundary fault injection for the process-per-shard backend.

The PR 5/7 fault harness proved the router's recovery story with crash
points firing on the router's own threads.  Here the same schedules are
serialized *into the shard worker processes*: a crash point fires inside
the child, the worker ships the failure (and its fault-plan events) back
over the RPC pipe, the router fail-stops, and
``ShardedGraphService.recover`` must rebuild to the never-crashed oracle
with monotone versions.  A hard SIGKILL -- process death with no reply
envelope at all -- must land in exactly the same place.
"""

from __future__ import annotations

import gc

import pytest

from repro.faults import FaultPlan, InjectedCrash, at_path, inject
from repro.serving import GraphService
from repro.sharding import ShardCrashed, ShardedGraphService
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

QUERIES = ("Q1", "Q2", "components")
SVC_KW = dict(
    tools=("graphblas-incremental",),
    analytics=("components",),
    max_batch=10**9,
    max_delay_ms=1e9,
)


def _read(svc, q):
    r = svc.query(q)
    return (r.top, r.result_string, r.version, r.computed_version)


def _reads(svc):
    return {q: _read(svc, q) for q in QUERIES}


def _apply(svc, change_sets):
    for cs in change_sets:
        svc.submit(list(cs))
        svc.flush()


@pytest.fixture
def workload():
    return datagen_stream(
        41, removal_fraction=0.2, total_inserts=150, num_change_sets=6
    )


def _oracle(fresh, stream, upto):
    """A never-crashed unsharded service after ``upto`` change sets."""
    svc = GraphService(fresh(), **SVC_KW)
    _apply(svc, stream[:upto])
    return svc


def test_crash_point_inside_worker_fail_stop_then_recover(tmp_path, workload):
    fresh, stream = workload
    svc = ShardedGraphService(
        fresh(), shards=3, backend="process", data_dir=tmp_path, **SVC_KW
    )
    _apply(svc, stream[:3])
    v_before = svc.version

    plan = FaultPlan().crash("wal-append", match=at_path("shard-02"))
    with inject(plan):
        with pytest.raises(InjectedCrash) as err:
            svc.submit(list(stream[3]))
            svc.flush()
    # the schedule fired inside the worker that owns shard-02's WAL, and
    # the reply envelope carried the evidence back into this plan object
    assert plan.fired() == ["wal-append"]
    assert "shard-02" in str(err.value.ctx.get("path", ""))
    assert any("shard-02" in str(ctx.get("path", "")) for _, ctx in plan.hits)

    # fail-stopped: every subsequent operation refuses
    with pytest.raises(ReproError):
        svc.flush()
    del svc
    gc.collect()  # reaps the abandoned workers via handle finalizers

    rec = ShardedGraphService.recover(
        tmp_path, backend="process", **SVC_KW
    )
    oracle = _oracle(fresh, stream, 4)  # the batch was router-WAL-committed
    try:
        assert rec.version > v_before  # monotone across the crash
        assert rec.stats()["shard_versions"] == [rec.version] * 3
        assert _reads(rec) == _reads(oracle)
        # the recovered fleet keeps serving and keeps matching the oracle
        for cs in stream[4:]:
            rec.submit(list(cs))
            rec.flush()
            oracle.submit(list(cs))
            oracle.flush()
            assert _reads(rec) == _reads(oracle)
    finally:
        rec.close()
        oracle.close()


def test_post_append_crash_in_worker_recovers_committed_batch(
    tmp_path, workload
):
    """Crash between the shard WAL append and the graph mutation: the
    frame is durable in the child, so recovery must surface the batch."""
    fresh, stream = workload
    svc = ShardedGraphService(
        fresh(), shards=2, backend="process", data_dir=tmp_path, **SVC_KW
    )
    _apply(svc, stream[:2])

    plan = FaultPlan().crash(
        "post-append-pre-apply", match=at_path("shard-01")
    )
    with inject(plan):
        with pytest.raises(InjectedCrash):
            svc.submit(list(stream[2]))
            svc.flush()
    assert plan.fired() == ["post-append-pre-apply"]
    del svc
    gc.collect()

    rec = ShardedGraphService.recover(tmp_path, backend="process", **SVC_KW)
    oracle = _oracle(fresh, stream, 3)
    try:
        assert rec.stats()["shard_versions"] == [rec.version] * 2
        assert _reads(rec) == _reads(oracle)
    finally:
        rec.close()
        oracle.close()


def test_sigkill_worker_fail_stop_then_recover(tmp_path, workload):
    """Hard process death: no crash point, no error envelope -- just EOF
    on the pipes.  The router must fail-stop via ShardCrashed and recover
    to the oracle."""
    fresh, stream = workload
    svc = ShardedGraphService(
        fresh(), shards=3, backend="process", data_dir=tmp_path, **SVC_KW
    )
    _apply(svc, stream[:3])
    v_before = svc.version

    svc._shards[1].kill()
    with pytest.raises(ShardCrashed):
        svc.submit(list(stream[3]))
        svc.flush()
    with pytest.raises(ReproError):
        svc.submit(list(stream[4]))
    del svc
    gc.collect()

    rec = ShardedGraphService.recover(tmp_path, backend="process", **SVC_KW)
    # the surviving shards applied the batch and the router WAL committed
    # it, so recovery replays the killed shard up to the same version
    oracle = _oracle(fresh, stream, 4)
    try:
        assert rec.version > v_before
        assert rec.stats()["shard_versions"] == [rec.version] * 3
        assert _reads(rec) == _reads(oracle)
        for cs in stream[4:]:
            rec.submit(list(cs))
            rec.flush()
            oracle.submit(list(cs))
            oracle.flush()
            assert _reads(rec) == _reads(oracle)
    finally:
        rec.close()
        oracle.close()


def test_fault_plan_events_identical_across_backends(tmp_path, workload):
    """The envelope absorption makes an aimed plan observationally
    identical whether its crash point fires on a router thread (inproc)
    or inside a forked worker (process)."""
    fresh, stream = workload
    observed = {}
    for backend in ("inproc", "process"):
        svc = ShardedGraphService(
            fresh(), shards=2, backend=backend,
            data_dir=tmp_path / backend, **SVC_KW
        )
        _apply(svc, stream[:2])
        plan = FaultPlan().crash("wal-append", match=at_path("shard-01"))
        with inject(plan):
            with pytest.raises(InjectedCrash):
                svc.submit(list(stream[2]))
                svc.flush()
        observed[backend] = (
            plan.fired(),
            [point for point, _ in plan.hits],
        )
        del svc
        gc.collect()
    assert observed["inproc"] == observed["process"]
