"""Unit coverage for the ShardHandle seam itself.

The conformance suite (test_shard_invariance) proves both backends serve
identical bytes; these tests pin the seam's mechanics -- RPC surface,
boot failure propagation, wire-format pickling of the fault vocabulary,
trace grafting, lifecycle/idempotence -- independent of the router.
"""

from __future__ import annotations

import pickle

import pytest

from repro.faults import FaultPlan, InjectedCrash, at_path
from repro.model.changes import AddFriendship, AddUser
from repro.obs.trace import Tracer, set_tracer
from repro.serving import GraphService
from repro.sharding import ShardedGraphService
from repro.sharding.handle import (
    InProcessShardHandle,
    ProcessShardHandle,
    default_shard_backend,
)
from repro.util.validation import ReproError

SVC_KW = dict(
    tools=("graphblas-incremental",), max_batch=10**9, max_delay_ms=1e9
)


class _Builder:
    """Build a small GraphService inside the worker (or inline)."""

    def __call__(self):
        return GraphService(**SVC_KW)


class _Boom:
    def __call__(self):
        raise ReproError("shard construction exploded")


@pytest.fixture
def handle():
    h = ProcessShardHandle(0, _Builder())
    yield h
    h.close()


def test_rpc_surface_round_trips(handle):
    assert handle.version == 0
    assert handle.apply_batch([AddUser(1), AddUser(2)]) == 1
    assert handle.apply_batch([AddFriendship(1, 2)]) == 2
    assert handle.version == 2
    result, partial = handle.result_and_partial("Q1")
    assert result.version == 2
    top, rendered = handle.merge_partials("Q1", None, [partial], 3)
    assert tuple(top) == result.top and rendered == result.result_string
    stats = handle.stats()
    assert stats["version"] == 2
    owned = handle.owned_ids()
    assert owned["users"] == [1, 2] and owned["posts"] == []
    assert "repro_" in handle.metrics_text(labels={"shard": "0"})


def test_worker_errors_cross_the_pipe_typed(handle):
    # no data_dir -> snapshot refuses inside the worker; the ReproError
    # arrives here as a ReproError, not a stringly-typed shadow
    with pytest.raises(ReproError, match="snapshot"):
        handle.snapshot()
    # the worker survives a request that errored
    assert handle.version == 0


def test_boot_error_propagates_and_reaps():
    with pytest.raises(ReproError, match="exploded"):
        ProcessShardHandle(0, _Boom())
    # the autouse leak fixture asserts the worker is gone


def test_closed_handle_refuses():
    h = ProcessShardHandle(0, _Builder())
    h.close()
    h.close()  # idempotent
    with pytest.raises(ReproError):
        h.apply_batch([])


def test_inproc_handle_passes_unknown_attributes_through():
    svc = GraphService(**SVC_KW)
    h = InProcessShardHandle(svc)
    try:
        assert h.graph is svc.graph  # diagnostic pokes keep working
        assert h.version == svc.version
    finally:
        h.close()


def test_default_backend_reads_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_PROCS", raising=False)
    assert default_shard_backend() == "inproc"
    monkeypatch.setenv("REPRO_SHARD_PROCS", "1")
    assert default_shard_backend() == "process"
    monkeypatch.setenv("REPRO_SHARD_PROCS", "0")
    assert default_shard_backend() == "inproc"
    monkeypatch.setenv("REPRO_SHARD_PROCS", "banana")
    with pytest.raises(ReproError):
        default_shard_backend()


def test_router_honours_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_PROCS", "1")
    svc = ShardedGraphService(shards=2, **SVC_KW)
    try:
        assert svc.backend == "process"
        assert all(isinstance(h, ProcessShardHandle) for h in svc._shards)
    finally:
        svc.close()


# -- wire format: the fault vocabulary must survive pickling ------------


def test_injected_crash_pickles_with_context():
    exc = InjectedCrash("wal-append", 2, {"path": "shard-01/wal.csv"})
    back = pickle.loads(pickle.dumps(exc))
    assert (back.point, back.hit, back.ctx) == (exc.point, exc.hit, exc.ctx)
    assert "wal-append" in str(back)


def test_at_path_matcher_pickles():
    m = pickle.loads(pickle.dumps(at_path("shard-01")))
    assert m({"path": "/x/shard-01/wal.csv"})
    assert not m({"path": "/x/shard-00/wal.csv"})


def test_fault_plan_round_trips_counters():
    plan = FaultPlan().crash("wal-append", hit=3, match=at_path("shard-00"))
    plan._fire("wal-append", {"path": "shard-00/wal"})
    copy = pickle.loads(pickle.dumps(plan))
    # counters continue where the original left off
    assert copy._triggers[0].seen == 1
    assert copy.hits == plan.hits
    copy._fire("wal-append", {"path": "shard-00/wal"})
    with pytest.raises(InjectedCrash):
        copy._fire("wal-append", {"path": "shard-00/wal"})
    assert copy.fired() == ["wal-append"]
    # the original absorbs the copy's events, as the router does per RPC
    new_hits, trigger_state = copy.events_since(len(plan.hits))
    plan.absorb(new_hits, trigger_state)
    assert plan.fired() == ["wal-append"]
    assert [p for p, _ in plan.hits].count("wal-append") == 3


# -- trace grafting -----------------------------------------------------


def test_worker_spans_graft_into_one_connected_tree():
    tr = Tracer()
    set_tracer(tr)
    try:
        svc = ShardedGraphService(shards=2, backend="process", **SVC_KW)
        svc.submit([AddUser(1), AddUser(2), AddUser(3)])
        svc.flush()
        svc.query("Q1")
        svc.close()
        spans = tr.finished()
        by_id = {s["span_id"] for s in spans}
        # no dangling parents: every grafted child found a local anchor
        assert all(
            s["parent_id"] is None or s["parent_id"] in by_id for s in spans
        )
        shard_ids = {
            s["span_id"] for s in spans if s["name"] == "shard"
        }
        assert len(shard_ids) == 2
        # each worker's "batch" span hangs under its router-side "shard"
        grafted = [s for s in spans if s["parent_id"] in shard_ids]
        assert {s["name"] for s in grafted} == {"batch"}
        # span ids stay unique after the id-remapping graft
        assert len(by_id) == len(spans)
    finally:
        set_tracer(None)
