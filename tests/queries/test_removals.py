"""The removal extension (paper future work): unlike / unfriend support.

Covers exact hand-computed scenarios on the paper's example graph plus the
central property: incremental ≡ batch under *mixed* insert/remove streams.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.model import (
    AddLike,
    AddUser,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
    SocialGraph,
)
from repro.queries import Q1Batch, Q1Incremental, Q2Batch, Q2Incremental

from tests.conftest import (
    C1,
    C2,
    C3,
    C4,
    P1,
    P2,
    U1,
    U2,
    U3,
    U4,
    build_paper_graph,
    graph_and_updates,
    paper_update,
    random_graph_and_stream,
)


class TestModelRemovals:
    def test_remove_like(self, paper_graph):
        assert paper_graph.remove_like(U2, C1) == (0, 1)
        assert paper_graph.likes.nvals == 4
        assert paper_graph.remove_like(U2, C1) is None  # idempotent

    def test_remove_friendship_symmetric(self, paper_graph):
        assert paper_graph.remove_friendship(U3, U2) == (1, 2)
        assert paper_graph.friends.nvals == 2
        dense = paper_graph.friends.to_dense()
        assert np.array_equal(dense, dense.T)

    def test_remove_absent_friendship(self, paper_graph):
        assert paper_graph.remove_friendship(U1, U2) is None

    def test_delta_removed_fields(self, paper_graph):
        d = paper_graph.apply(
            ChangeSet([RemoveLike(U2, C1), RemoveFriendship(U3, U4)])
        )
        assert d.has_removals and not d.is_empty
        assert list(zip(*d.removed_likes)) == [(0, 1)]
        assert list(zip(*d.removed_friendships)) == [(2, 3)]

    def test_add_then_remove_cancels(self, paper_graph):
        d = paper_graph.apply(
            ChangeSet([AddLike(U2, C2), RemoveLike(U2, C2)])
        )
        assert d.new_likes[0].size == 0
        assert d.removed_likes[0].size == 0
        assert paper_graph.likes.nvals == 5  # unchanged

    def test_remove_then_readd_cancels(self, paper_graph):
        d = paper_graph.apply(
            ChangeSet([RemoveLike(U2, C1), AddLike(U2, C1)])
        )
        assert not d.has_removals
        assert d.new_likes[0].size == 0
        assert paper_graph.likes.nvals == 5

    def test_removed_friends_incidence(self, paper_graph):
        d = paper_graph.apply(ChangeSet([RemoveFriendship(U2, U3)]))
        inc = d.removed_friends_incidence()
        assert inc.shape == (4, 1) and inc.nvals == 2


class TestMatrixRemoveCoo:
    def test_batch_removal(self):
        from repro.graphblas import INT64, Matrix

        m = Matrix.from_coo([0, 0, 1], [0, 1, 1], [1, 2, 3], 2, 2)
        m.remove_coo([0, 1, 1], [1, 0, 1])  # (1,0) absent -> ignored
        assert dict(((r, c), v) for r, c, v in m.items()) == {(0, 0): 1}

    def test_remove_on_empty(self):
        from repro.graphblas import INT64, Matrix

        m = Matrix.sparse(INT64, 2, 2)
        m.remove_coo([0], [0])
        assert m.nvals == 0


class TestQ1Removals:
    def test_unlike_decrements_score(self, paper_graph):
        q = Q1Incremental(paper_graph)
        q.initial()
        d = paper_graph.apply(ChangeSet([RemoveLike(U3, C1)]))
        top = q.update(d)
        # p1 loses one like: 25 -> 24
        assert top == [(P1, 24), (P2, 10)]
        assert Q1Batch(paper_graph).scores().to_dense().tolist() == [24, 10]

    def test_removal_can_change_leader(self):
        g = SocialGraph()
        g.add_user(1)
        g.add_post(10, 0, 1)
        g.add_post(11, 1, 1)
        g.add_comment(20, 2, 1, 10)
        g.add_comment(21, 3, 1, 11)
        g.add_like(1, 20)  # post 10: 11 points, post 11: 10 points
        q = Q1Incremental(g)
        assert q.initial()[0] == (10, 11)
        d = g.apply(ChangeSet([RemoveLike(1, 20)]))
        top = q.update(d)
        # tie at 10; newer post (11, ts=1) wins the tie-break
        assert top == [(11, 10), (10, 10)]


class TestQ2Removals:
    def test_unfriend_splits_component(self):
        """After the Fig. 3b update c2 is one 4-component (16); removing the
        u3-u4 friendship splits it into {u1, u4} and {u2, u3} -> 4 + 4 = 8."""
        g = build_paper_graph()
        g.apply(paper_update())
        q = Q2Incremental(g)
        q.initial()
        assert q.scores.get(1) == 16
        d = g.apply(ChangeSet([RemoveFriendship(U3, U4)]))
        q.update(d)
        assert q.scores.get(1) == 8
        assert Q2Batch(g).scores().get(1) == 8

    def test_unlike_shrinks_subgraph(self):
        g = build_paper_graph()
        q = Q2Incremental(g)
        q.initial()
        # c2 = {u1} + {u3, u4} = 5; removing u3's like leaves {u1} + {u4} = 2
        d = g.apply(ChangeSet([RemoveLike(U3, C2)]))
        q.update(d)
        assert q.scores.get(1) == 2
        assert Q2Batch(g).scores().get(1) == 2

    @pytest.mark.parametrize("algorithm", ["fastsv", "unionfind", "incremental"])
    def test_topk_after_removal(self, algorithm):
        g = build_paper_graph()
        q = Q2Incremental(g, algorithm=algorithm)
        assert q.initial() == [(C2, 5), (C1, 4), (C3, 0)]
        # drop c2 to 2: leadership flips to c1
        d = g.apply(ChangeSet([RemoveLike(U3, C2)]))
        assert q.update(d) == [(C1, 4), (C2, 2), (C3, 0)]

    def test_removal_affects_only_shared_comments(self):
        g = build_paper_graph()
        q = Q2Incremental(g)
        q.initial()
        d = g.apply(ChangeSet([RemoveFriendship(U2, U3)]))
        affected = q._affected_comments(d)
        # u2 and u3 both like only c1
        assert affected.tolist() == [0]


# ---------------------------------------------------------------------------
# the central property, now with removals in the stream
# ---------------------------------------------------------------------------


@given(graph_and_updates(removals=True))
@settings(max_examples=30, deadline=None)
def test_q1_incremental_equals_batch_with_removals(case):
    _, g, change_sets = case
    q = Q1Incremental(g)
    inc = [q.initial()]
    batch = [Q1Batch(g).evaluate()]
    for cs in change_sets:
        delta = g.apply(cs)
        inc.append(q.update(delta))
        batch.append(Q1Batch(g).evaluate())
    assert inc == batch


@given(graph_and_updates(removals=True))
@settings(max_examples=25, deadline=None)
@pytest.mark.parametrize("algorithm", ["unionfind", "incremental"])
def test_q2_incremental_equals_batch_with_removals(algorithm, case):
    _, g, change_sets = case
    q = Q2Incremental(g, algorithm=algorithm)
    inc = [q.initial()]
    batch = [Q2Batch(g, algorithm="unionfind").evaluate()]
    for cs in change_sets:
        delta = g.apply(cs)
        inc.append(q.update(delta))
        batch.append(Q2Batch(g, algorithm="unionfind").evaluate())
    assert inc == batch


@given(graph_and_updates(removals=True))
@settings(max_examples=15, deadline=None)
def test_scores_vectors_exact_with_removals(case):
    _, g, change_sets = case
    q1 = Q1Incremental(g)
    q2 = Q2Incremental(g, algorithm="unionfind")
    q1.initial()
    q2.initial()
    for cs in change_sets:
        delta = g.apply(cs)
        q1.update(delta)
        q2.update(delta)
    np.testing.assert_array_equal(
        q1.scores.to_dense(), Q1Batch(g).scores().to_dense()
    )
    np.testing.assert_array_equal(
        q2.scores.to_dense(), Q2Batch(g, algorithm="unionfind").scores().to_dense()
    )


class TestNmfRemovals:
    def test_nmf_tools_agree_with_graphblas_under_removals(self):
        from repro.queries.engine import make_engine

        for query in ("Q1", "Q2"):
            outputs = {}
            for tool in ("graphblas-incremental", "nmf-batch", "nmf-incremental"):
                _, g, change_sets = random_graph_and_stream(99, 3, removals=True)
                e = make_engine(tool, query)
                e.load(g)
                seq = [e.initial()] + [e.update(cs) for cs in change_sets]
                outputs[tool] = seq
            vals = list(outputs.values())
            assert vals[0] == vals[1] == vals[2], (query, outputs)


class TestDatagenRemovals:
    def test_removal_fraction_generates_removals(self):
        from repro.datagen import generate_benchmark_input
        from repro.model.changes import RemoveFriendship as RF, RemoveLike as RL

        g, css = generate_benchmark_input(1, seed=42, removal_fraction=0.5)
        removals = [c for cs in css for c in cs if isinstance(c, (RL, RF))]
        assert removals, "expected removal operations in the stream"
        for cs in css:
            g.apply(cs)  # all removals reference existing edges

    def test_zero_fraction_is_insert_only(self):
        from repro.datagen import generate_benchmark_input
        from repro.model.changes import RemoveFriendship as RF, RemoveLike as RL

        _, css = generate_benchmark_input(1, seed=42, removal_fraction=0.0)
        assert not [c for cs in css for c in cs if isinstance(c, (RL, RF))]

    def test_loader_roundtrip_with_removals(self, tmp_path):
        from repro.model import load_change_sets, save_change_sets

        sets = [ChangeSet([RemoveLike(1, 2), RemoveFriendship(3, 4), AddUser(9)])]
        save_change_sets(tmp_path, sets)
        back = load_change_sets(tmp_path)
        assert back[0].changes == sets[0].changes
