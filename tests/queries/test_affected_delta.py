"""Property: delta-targeted affected-comment detection == incidence SpGEMM.

Q2's step 1-5 detection was reformulated from ``Likes ⊕.⊗ NewFriends`` +
``select(==2)`` (O(nnz(Likes)) per batch) to per-pair like-set intersection
off the maintained likes-transpose index (O(deg(a)+deg(b)) per pair).  The
two must produce the identical ``ac`` set on arbitrary change streams,
removals included -- this is the acceptance property of the rebuild-free
update path PR.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import generate_change_sets, generate_graph
from repro.model import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
    SocialGraph,
)
from repro.queries.q2 import (
    affected_comments_delta,
    affected_comments_incidence,
)

from tests.conftest import build_paper_graph, paper_update


def test_paper_example():
    g = build_paper_graph()
    delta = g.apply(paper_update())
    got = affected_comments_delta(g, delta)
    want = affected_comments_incidence(g, delta)
    assert got.tolist() == want.tolist()
    # Fig. 3b: new comment c4 (idx 3), liked comments c2 (idx 1), c4, and
    # the u1-u4 friendship joins likers of c2
    assert got.tolist() == [1, 3]


@pytest.mark.parametrize("seed", [2, 9, 31])
@pytest.mark.parametrize("removal_fraction", [0.0, 0.4])
@pytest.mark.parametrize("storage", ["dynamic", "matrix"])
def test_datagen_streams(seed, removal_fraction, storage):
    g = generate_graph(1, seed=seed, storage=storage)
    stream = generate_change_sets(
        g,
        total_inserts=220,
        num_change_sets=10,
        seed=seed + 7,
        removal_fraction=removal_fraction,
    )
    saw_friendships = 0
    for cs in stream:
        delta = g.apply(cs)
        saw_friendships += delta.new_friendships[0].size
        saw_friendships += delta.removed_friendships[0].size
        got = affected_comments_delta(g, delta)
        want = affected_comments_incidence(g, delta)
        assert got.tolist() == want.tolist()
    assert saw_friendships > 0  # the property actually exercised step 1-5


_edge_ops = st.lists(
    st.tuples(
        st.sampled_from(["like", "unlike", "friend", "unfriend"]),
        st.integers(0, 4),
        st.integers(0, 3),
    ),
    max_size=30,
)


@given(ops_seq=_edge_ops)
@settings(max_examples=50, deadline=None)
def test_random_streams(ops_seq):
    g = SocialGraph()
    g.apply(
        ChangeSet(
            [AddUser(100 + i) for i in range(5)]
            + [AddPost(10, 1, 100)]
            + [AddComment(20 + i, 2 + i, 100 + i % 5, 10) for i in range(4)]
        )
    )
    changes = []
    for kind, u, x in ops_seq:
        if kind == "like":
            changes.append(AddLike(100 + u, 20 + x))
        elif kind == "unlike":
            changes.append(RemoveLike(100 + u, 20 + x))
        elif kind == "friend" and u != x:
            changes.append(AddFriendship(100 + u, 100 + x))
        elif kind == "unfriend" and u != x:
            changes.append(RemoveFriendship(100 + u, 100 + x))
    half = max(1, len(changes) // 2)
    for lo in range(0, len(changes), half):
        delta = g.apply(ChangeSet(changes[lo : lo + half]))
        got = affected_comments_delta(g, delta)
        want = affected_comments_incidence(g, delta)
        assert got.tolist() == want.tolist()
        assert got.dtype == np.int64
