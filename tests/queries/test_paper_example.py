"""The paper's worked example (Fig. 3): exact scores asserted.

These are the strongest fidelity tests in the suite: every number is stated
in the paper's text or figures.

* Fig. 3a initial: Q1 p1 = 25, p2 = 10; Q2 c1 = 4 (2²), c2 = 5 (1²+2²).
* Fig. 3b updated: Q1 p1 = 37 (scores+ = 12); Q2 c2 = 16 (4²), c4 = 1 (1²).
* Fig. 4b affected set after the update: ac = {c2, c4}.
"""

import numpy as np
import pytest

from repro.queries import Q1Batch, Q1Incremental, Q2Batch, Q2Incremental

from tests.conftest import C1, C2, C3, C4, P1, P2, build_paper_graph, paper_update


class TestInitialEvaluation:
    def test_q1_scores(self, paper_graph):
        scores = Q1Batch(paper_graph).scores().to_dense()
        assert scores.tolist() == [25, 10]

    def test_q1_top3(self, paper_graph):
        assert Q1Batch(paper_graph).evaluate() == [(P1, 25), (P2, 10)]

    def test_q2_scores(self, paper_graph):
        scores = Q2Batch(paper_graph).scores().to_dense()
        assert scores.tolist() == [4, 5, 0]

    def test_q2_top3(self, paper_graph):
        assert Q2Batch(paper_graph).evaluate() == [(C2, 5), (C1, 4), (C3, 0)]

    @pytest.mark.parametrize("algorithm", ["fastsv", "unionfind"])
    def test_q2_algorithms_agree(self, paper_graph, algorithm):
        assert Q2Batch(paper_graph, algorithm=algorithm).scores().to_dense().tolist() == [4, 5, 0]


class TestUpdatedEvaluation:
    def test_q1_batch_after_update(self, paper_graph, paper_change_set):
        paper_graph.apply(paper_change_set)
        scores = Q1Batch(paper_graph).scores().to_dense()
        assert scores.tolist() == [37, 10]

    def test_q2_batch_after_update(self, paper_graph, paper_change_set):
        paper_graph.apply(paper_change_set)
        scores = Q2Batch(paper_graph).scores().to_dense()
        assert scores.tolist() == [4, 16, 0, 1]


class TestIncrementalQ1:
    def test_initial_matches_batch(self, paper_graph):
        q = Q1Incremental(paper_graph)
        assert q.initial() == [(P1, 25), (P2, 10)]

    def test_update_scores_plus_is_12(self, paper_graph, paper_change_set):
        """Fig. 4a: the update increments p1's score by exactly 12."""
        q = Q1Incremental(paper_graph)
        q.initial()
        delta = paper_graph.apply(paper_change_set)
        top = q.update(delta)
        assert top == [(P1, 37), (P2, 10)]
        assert q.scores.to_dense().tolist() == [37, 10]

    def test_update_before_initial_raises(self, paper_graph, paper_change_set):
        q = Q1Incremental(paper_graph)
        delta = paper_graph.apply(paper_change_set)
        with pytest.raises(RuntimeError):
            q.update(delta)


class TestIncrementalQ2:
    @pytest.mark.parametrize("algorithm", ["fastsv", "unionfind", "incremental"])
    def test_full_sequence(self, algorithm):
        g = build_paper_graph()
        q = Q2Incremental(g, algorithm=algorithm)
        assert q.initial() == [(C2, 5), (C1, 4), (C3, 0)]
        delta = g.apply(paper_update())
        assert q.update(delta) == [(C2, 16), (C1, 4), (C4, 1)]

    def test_affected_comments_is_paper_ac_set(self, paper_graph, paper_change_set):
        """Fig. 4b step 5: ac = Δcomments ∪ Δlikes-targets ∪ {2} = {c2, c4}."""
        q = Q2Incremental(paper_graph)
        q.initial()
        delta = paper_graph.apply(paper_change_set)
        affected = q._affected_comments(delta)
        assert affected.tolist() == [1, 3]  # internal idx of c2 and c4

    def test_update_before_initial_raises(self, paper_graph, paper_change_set):
        q = Q2Incremental(paper_graph)
        delta = paper_graph.apply(paper_change_set)
        with pytest.raises(RuntimeError):
            q.update(delta)


class TestFig4bStep1Matrix:
    def test_ac_matrix_values(self, paper_graph, paper_change_set):
        """Step 1-2: AC = Likes' ⊕.⊗ NewFriends has a 2 exactly at (c2, e0)."""
        from repro.graphblas import ops, semiring

        delta = paper_graph.apply(paper_change_set)
        incidence = delta.new_friends_incidence()
        ac = paper_graph.likes.mxm(incidence, semiring.get("plus_times"))
        # the u1-u4 friendship: both like c2 (after the u2 like was added,
        # likers of c2 = {u1, u2, u3, u4})
        kept = ac.select(ops.valueeq, 2)
        assert [(r, c) for r, c, _ in kept.items()] == [(1, 0)]
