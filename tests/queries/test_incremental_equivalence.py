"""The central correctness property of the paper's contribution:

    incremental evaluation ≡ batch re-evaluation, after every change set,
    for both queries, on randomised graphs and randomised update streams.

This is the property-based analogue of the contest's correctness check.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    SocialGraph,
)
from repro.queries import Q1Batch, Q1Incremental, Q2Batch, Q2Incremental


@st.composite
def graph_and_updates(draw):
    """A small random SocialGraph plus a random insert stream."""
    rng_seed = draw(st.integers(0, 2**16))
    n_users = draw(st.integers(1, 6))
    n_posts = draw(st.integers(1, 4))
    n_comments = draw(st.integers(0, 8))
    rng = np.random.default_rng(rng_seed)

    g = SocialGraph()
    users = [100 + i for i in range(n_users)]
    for u in users:
        g.add_user(u)
    posts = [200 + i for i in range(n_posts)]
    for i, p in enumerate(posts):
        g.add_post(p, i, users[int(rng.integers(n_users))])
    submissions = list(posts)
    comments = []
    ts = 100
    for i in range(n_comments):
        cid = 300 + i
        parent = submissions[int(rng.integers(len(submissions)))]
        g.add_comment(cid, ts, users[int(rng.integers(n_users))], parent)
        submissions.append(cid)
        comments.append(cid)
        ts += 1
    # random initial likes / friendships
    for _ in range(int(rng.integers(0, 10))):
        if comments:
            g.add_like(users[int(rng.integers(n_users))], comments[int(rng.integers(len(comments)))])
    for _ in range(int(rng.integers(0, 6))):
        a, b = rng.integers(0, n_users, 2)
        if a != b:
            g.add_friendship(users[int(a)], users[int(b)])

    # update stream: 1-3 change sets of 1-6 changes
    n_sets = draw(st.integers(1, 3))
    change_sets = []
    next_user, next_post, next_comment = 150, 250, 350
    for _ in range(n_sets):
        cs = ChangeSet()
        for _ in range(int(rng.integers(1, 7))):
            kind = int(rng.integers(0, 5))
            if kind == 0:
                cs.append(AddUser(next_user))
                users.append(next_user)
                next_user += 1
            elif kind == 1:
                cs.append(AddPost(next_post, ts, users[int(rng.integers(len(users)))]))
                submissions.append(next_post)
                next_post += 1
                ts += 1
            elif kind == 2:
                parent = submissions[int(rng.integers(len(submissions)))]
                cs.append(AddComment(next_comment, ts, users[int(rng.integers(len(users)))], parent))
                submissions.append(next_comment)
                comments.append(next_comment)
                next_comment += 1
                ts += 1
            elif kind == 3 and comments:
                cs.append(
                    AddLike(
                        users[int(rng.integers(len(users)))],
                        comments[int(rng.integers(len(comments)))],
                    )
                )
            elif kind == 4 and len(users) >= 2:
                a, b = rng.integers(0, len(users), 2)
                if a != b:
                    cs.append(AddFriendship(users[int(a)], users[int(b)]))
        change_sets.append(cs)
    return rng_seed, g, change_sets


def clone_changes(change_sets):
    return [ChangeSet(list(cs.changes)) for cs in change_sets]


@given(graph_and_updates())
@settings(max_examples=40, deadline=None)
def test_q1_incremental_equals_batch(case):
    _, g_inc, change_sets = case
    # replay the same construction twice via CSV-free cloning: rebuild from
    # a snapshot by applying to two graphs would mutate one; instead run the
    # incremental engine first, capturing batch results on the same graph.
    q = Q1Incremental(g_inc)
    inc_results = [q.initial()]
    batch_results = [Q1Batch(g_inc).evaluate()]
    for cs in clone_changes(change_sets):
        delta = g_inc.apply(cs)
        inc_results.append(q.update(delta))
        batch_results.append(Q1Batch(g_inc).evaluate())
    assert inc_results == batch_results


@given(graph_and_updates())
@settings(max_examples=30, deadline=None)
@pytest.mark.parametrize("algorithm", ["fastsv", "unionfind", "incremental"])
def test_q2_incremental_equals_batch(algorithm, case):
    _, g, change_sets = case
    q = Q2Incremental(g, algorithm=algorithm)
    inc_results = [q.initial()]
    batch_results = [Q2Batch(g, algorithm="unionfind").evaluate()]
    for cs in clone_changes(change_sets):
        delta = g.apply(cs)
        inc_results.append(q.update(delta))
        batch_results.append(Q2Batch(g, algorithm="unionfind").evaluate())
    assert inc_results == batch_results


@given(graph_and_updates())
@settings(max_examples=20, deadline=None)
def test_q2_scores_vector_matches_batch_exactly(case):
    """Beyond top-3: the maintained full scores vector equals batch scores."""
    _, g, change_sets = case
    q = Q2Incremental(g, algorithm="unionfind")
    q.initial()
    for cs in clone_changes(change_sets):
        delta = g.apply(cs)
        q.update(delta)
    batch = Q2Batch(g, algorithm="unionfind").scores().to_dense()
    maintained = q.scores.to_dense()
    np.testing.assert_array_equal(maintained, batch)


@given(graph_and_updates())
@settings(max_examples=20, deadline=None)
def test_q1_scores_vector_matches_batch_exactly(case):
    _, g, change_sets = case
    q = Q1Incremental(g)
    q.initial()
    for cs in clone_changes(change_sets):
        delta = g.apply(cs)
        q.update(delta)
    batch = Q1Batch(g).scores().to_dense()
    maintained = q.scores.to_dense()
    np.testing.assert_array_equal(maintained, batch)
