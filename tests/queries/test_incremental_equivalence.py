"""The central correctness property of the paper's contribution:

    incremental evaluation ≡ batch re-evaluation, after every change set,
    for both queries, on randomised graphs and randomised update streams.

This is the property-based analogue of the contest's correctness check.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.queries import Q1Batch, Q1Incremental, Q2Batch, Q2Incremental
from tests.conftest import clone_changes, graph_and_updates


@given(graph_and_updates())
@settings(max_examples=40, deadline=None)
def test_q1_incremental_equals_batch(case):
    _, g_inc, change_sets = case
    # replay the same construction twice via CSV-free cloning: rebuild from
    # a snapshot by applying to two graphs would mutate one; instead run the
    # incremental engine first, capturing batch results on the same graph.
    q = Q1Incremental(g_inc)
    inc_results = [q.initial()]
    batch_results = [Q1Batch(g_inc).evaluate()]
    for cs in clone_changes(change_sets):
        delta = g_inc.apply(cs)
        inc_results.append(q.update(delta))
        batch_results.append(Q1Batch(g_inc).evaluate())
    assert inc_results == batch_results


@given(graph_and_updates())
@settings(max_examples=30, deadline=None)
@pytest.mark.parametrize("algorithm", ["fastsv", "unionfind", "incremental"])
def test_q2_incremental_equals_batch(algorithm, case):
    _, g, change_sets = case
    q = Q2Incremental(g, algorithm=algorithm)
    inc_results = [q.initial()]
    batch_results = [Q2Batch(g, algorithm="unionfind").evaluate()]
    for cs in clone_changes(change_sets):
        delta = g.apply(cs)
        inc_results.append(q.update(delta))
        batch_results.append(Q2Batch(g, algorithm="unionfind").evaluate())
    assert inc_results == batch_results


@given(graph_and_updates())
@settings(max_examples=20, deadline=None)
def test_q2_scores_vector_matches_batch_exactly(case):
    """Beyond top-3: the maintained full scores vector equals batch scores."""
    _, g, change_sets = case
    q = Q2Incremental(g, algorithm="unionfind")
    q.initial()
    for cs in clone_changes(change_sets):
        delta = g.apply(cs)
        q.update(delta)
    batch = Q2Batch(g, algorithm="unionfind").scores().to_dense()
    maintained = q.scores.to_dense()
    np.testing.assert_array_equal(maintained, batch)


@given(graph_and_updates())
@settings(max_examples=20, deadline=None)
def test_q1_scores_vector_matches_batch_exactly(case):
    _, g, change_sets = case
    q = Q1Incremental(g)
    q.initial()
    for cs in clone_changes(change_sets):
        delta = g.apply(cs)
        q.update(delta)
    batch = Q1Batch(g).scores().to_dense()
    maintained = q.scores.to_dense()
    np.testing.assert_array_equal(maintained, batch)
