"""Top-k selection and the monotone incremental tracker."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queries.topk import TopKTracker, top_k


class TestTopK:
    def test_orders_by_score_desc(self):
        out = top_k(np.array([1, 5, 3]), np.array([0, 0, 0]), np.array([10, 11, 12]))
        assert out == [(11, 5), (12, 3), (10, 1)]

    def test_ties_broken_by_timestamp_desc(self):
        out = top_k(np.array([5, 5]), np.array([1, 2]), np.array([10, 11]))
        assert out == [(11, 5), (10, 5)]

    def test_full_ties_broken_by_id_asc(self):
        out = top_k(np.array([5, 5]), np.array([1, 1]), np.array([11, 10]))
        assert out == [(10, 5), (11, 5)]

    def test_k_larger_than_n(self):
        out = top_k(np.array([1]), np.array([0]), np.array([9]), k=3)
        assert out == [(9, 1)]

    def test_zero_scores_included(self):
        out = top_k(np.array([0, 0]), np.array([1, 2]), np.array([5, 6]))
        assert out == [(6, 0), (5, 0)]

    def test_empty(self):
        assert top_k(np.zeros(0), np.zeros(0), np.zeros(0)) == []


class TestTracker:
    def test_initial_offers(self):
        t = TopKTracker(2)
        t.offer_many([(1, 10, 0), (2, 20, 0), (3, 5, 0)])
        assert t.top() == [(2, 20), (1, 10)]

    def test_monotone_update_promotes(self):
        t = TopKTracker(2)
        t.offer_many([(1, 10, 0), (2, 20, 0), (3, 5, 0)])
        t.top()
        t.offer(3, 30, 0)
        assert t.top() == [(3, 30), (2, 20)]

    def test_lower_offer_ignored(self):
        t = TopKTracker(1)
        t.offer(1, 10, 0)
        t.offer(1, 5, 0)  # scores never decrease; stale offer dropped
        assert t.top() == [(1, 10)]

    def test_result_string(self):
        t = TopKTracker(3)
        t.offer_many([(7, 1, 0), (8, 3, 0), (9, 2, 0)])
        assert t.result_string() == "8|9|7"

    def test_tie_break_in_tracker(self):
        t = TopKTracker(2)
        t.offer(1, 5, 100)
        t.offer(2, 5, 200)  # newer wins
        assert t.top() == [(2, 5), (1, 5)]


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 30), st.integers(0, 5)),
        min_size=1,
        max_size=50,
    )
)
def test_tracker_equals_batch_under_monotone_stream(stream):
    """Feeding monotone score updates gives the same top-3 as a full sort.

    Build per-entity max score (scores only grow), then compare the
    tracker's result with the batch top_k over the final state.
    """
    # make the stream monotone per entity: score = running max
    best: dict[int, tuple[int, int]] = {}
    t = TopKTracker(3)
    for ext, score, ts in stream:
        cur = best.get(ext)
        ts = ext % 4  # fixed timestamp per entity (entities don't move in time)
        if cur is None or score > cur[0]:
            best[ext] = (score, ts)
        t.offer(ext, best[ext][0], ts)
        t.top()  # prune aggressively mid-stream: must never lose the answer

    ids = sorted(best)
    scores = np.array([best[i][0] for i in ids])
    tss = np.array([best[i][1] for i in ids])
    exts = np.array(ids)
    assert t.top() == top_k(scores, tss, exts, k=3)
