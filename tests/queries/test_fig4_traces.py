"""Fig. 4 algorithm traces: every intermediate the paper draws, asserted.

Fig. 4 of the paper walks Alg. 1, Alg. 2 and the Q2 batch/incremental
pipelines through the Fig. 3 example graph, showing each intermediate
vector and matrix.  These tests recompute every one of those intermediates
through the public GraphBLAS API and assert the exact values printed in the
figure, panel by panel.

Index conventions (insertion order of :func:`tests.conftest.build_paper_graph`):
users u1..u4 -> 0..3, posts p1,p2 -> 0,1, comments c1,c2,c3 -> 0,1,2 and the
inserted c4 -> 3.
"""

import numpy as np

from repro.graphblas import monoid, ops, semiring
from repro.graphblas.types import BOOL, INT64
from repro.graphblas.vector import Vector
from repro.lagraph.fastsv import fastsv
from repro.queries import Q1Incremental, Q2Incremental
from repro.queries.q1 import _likes_count, _scores_from

from tests.conftest import build_paper_graph, paper_update

PLUS = monoid.plus_monoid
PLUS_TIMES = semiring.get("plus_times")
LOR = monoid.lor_monoid


class TestFig4aInitial:
    """Upper half of Fig. 4a: Alg. 1 on the initial graph."""

    def test_rootpost_matrix(self, paper_graph):
        # p1 roots c1 and c2; p2 roots c3 (2 x 3 boolean matrix)
        assert paper_graph.root_post.to_dense().tolist() == [[1, 1, 0], [0, 0, 1]]

    def test_likes_count_vector(self, paper_graph):
        # c1 <- {u2, u3}; c2 <- {u1, u3, u4}; c3 <- {}
        lc = _likes_count(paper_graph)
        assert lc.to_dense().tolist() == [2, 3, 0]
        # c3 has no likes: the sparse vector must not store it
        assert lc.nvals == 2

    def test_line6_row_wise_sum(self, paper_graph):
        total = paper_graph.root_post.reduce_vector(PLUS, dtype=INT64)
        assert total.to_dense().tolist() == [2, 1]

    def test_line7_mul10(self, paper_graph):
        total = paper_graph.root_post.reduce_vector(PLUS, dtype=INT64)
        replies = total.apply(ops.times.bind_second(np.int64(10)))
        assert replies.to_dense().tolist() == [20, 10]

    def test_line8_likes_score(self, paper_graph):
        likes_score = paper_graph.root_post.mxv(_likes_count(paper_graph), PLUS_TIMES)
        # p1 collects c1's 2 likes + c2's 3 likes = 5; p2 collects 0
        assert likes_score.get(0) == 5
        assert likes_score.get(1, 0) == 0

    def test_line9_total_scores(self, paper_graph):
        scores = _scores_from(paper_graph.root_post, _likes_count(paper_graph))
        assert scores.to_dense().tolist() == [25, 10]


class TestFig4aUpdate:
    """Lower half of Fig. 4a: Alg. 2 on the six-element update."""

    def _delta(self):
        g = build_paper_graph()
        q = Q1Incremental(g)
        q.initial()
        delta = g.apply(paper_update())
        return g, q, delta

    def test_delta_rootpost(self):
        g, _, delta = self._delta()
        # exactly one new rootPost edge: p1 -> c4 (internal (0, 3))
        drp = delta.delta_root_post()
        assert drp.shape == (2, 4)
        assert [(r, c) for r, c, _ in drp.items()] == [(0, 3)]

    def test_line9_10_replies_increment(self):
        _, _, delta = self._delta()
        total = delta.delta_root_post().reduce_vector(PLUS, dtype=INT64)
        replies_plus = total.apply(ops.times.bind_second(np.int64(10)))
        # sum = [1, .], mul10 = [10, .] -- p2 stays structurally absent
        assert replies_plus.get(0) == 10
        assert replies_plus.get(1) is None

    def test_likes_count_plus(self):
        _, _, delta = self._delta()
        like_c, like_u = delta.new_likes
        # Fig. 4b Δlikes: (c2, u2) and (c4, u4) -> internal (1, 1), (3, 3)
        assert sorted(zip(like_c.tolist(), like_u.tolist())) == [(1, 1), (3, 3)]

    def test_line11_likes_score_increment(self):
        g, _, delta = self._delta()
        like_c, _ = delta.new_likes
        counts = np.bincount(like_c, minlength=4)
        lcp = Vector.from_coo(
            np.flatnonzero(counts), counts[np.flatnonzero(counts)], 4, dtype=INT64
        )
        likes_plus = g.root_post.mxv(lcp, PLUS_TIMES)
        # p1 gains 1 like via c2 and 1 via c4 = 2; p2 gains nothing
        assert likes_plus.get(0) == 2
        assert likes_plus.get(1) is None

    def test_line12_13_score_increment_and_total(self):
        _, q, delta = self._delta()
        q.update(delta)
        # scores+ = [12, .]; scores' = scores ⊕ scores+ = [37, 10]
        assert q.scores.to_dense().tolist() == [37, 10]

    def test_line14_delta_scores_masked(self):
        """Δscores<scores+> keeps only the changed entry (p1 -> 37)."""
        g, q, delta = self._delta()
        q.update(delta)
        # recompute the masked assignment exactly as Alg. 2 line 14 does
        scores_plus = Vector.from_coo([0], [12], 2, dtype=INT64)
        delta_scores = Vector.sparse(INT64, 2)
        delta_scores.assign(q.scores, mask=scores_plus)
        assert [(i, v) for i, v in delta_scores.items()] == [(0, 37)]

    def test_top3_after_update(self):
        _, q, delta = self._delta()
        from tests.conftest import P1, P2

        assert q.update(delta) == [(P1, 37), (P2, 10)]


class TestFig4bInitial:
    """Upper half of Fig. 4b: Q2 batch trace."""

    def test_likes_matrix_layout(self, paper_graph):
        # rows = comments, cols = users; c1 <- {u2,u3}, c2 <- {u1,u3,u4}
        expected = [
            [0, 1, 1, 0],
            [1, 0, 1, 1],
            [0, 0, 0, 0],
        ]
        assert paper_graph.likes.to_dense().tolist() == expected

    def test_friends_matrix_symmetric(self, paper_graph):
        f = paper_graph.friends.to_dense()
        # u2-u3 and u3-u4, stored in both directions
        expected = np.zeros((4, 4), dtype=f.dtype)
        for a, b in ((1, 2), (2, 3)):
            expected[a, b] = expected[b, a] = 1
        assert (f == expected).all()

    def test_step1_extract_tuples_groups_likers(self, paper_graph):
        rows, cols, _ = paper_graph.likes.to_coo()
        per_comment = {}
        for c, u in zip(rows.tolist(), cols.tolist()):
            per_comment.setdefault(c, set()).add(u)
        assert per_comment == {0: {1, 2}, 1: {0, 2, 3}}

    def test_step2_3_c1_subgraph_single_component(self, paper_graph):
        # c1's likers {u2, u3} with the u2-u3 edge: one component of size 2
        sub = paper_graph.friends.extract([1, 2], [1, 2])
        labels = fastsv(sub).to_dense()
        assert labels[0] == labels[1]

    def test_step2_3_c2_subgraph_two_components(self, paper_graph):
        # c2's likers {u1, u3, u4}: u1 alone, u3-u4 joined -> sizes 1 and 2
        sub = paper_graph.friends.extract([0, 2, 3], [0, 2, 3])
        labels = fastsv(sub).to_dense()
        assert labels[0] != labels[1]
        assert labels[1] == labels[2]

    def test_step4_squared_component_sizes(self, paper_graph):
        sub = paper_graph.friends.extract([0, 2, 3], [0, 2, 3])
        _, counts = np.unique(fastsv(sub).to_dense(), return_counts=True)
        assert int(np.sum(counts**2)) == 5  # 1² + 2²


class TestFig4bUpdate:
    """Lower half of Fig. 4b: the nine incremental steps."""

    def _updated(self):
        g = build_paper_graph()
        q = Q2Incremental(g)
        q.initial()
        delta = g.apply(paper_update())
        return g, q, delta

    def test_new_friends_incidence_shape(self):
        g, _, delta = self._updated()
        inc = delta.new_friends_incidence()
        # one new friendship (u1-u4): a |users'| x 1 incidence column
        assert inc.shape == (4, 1)
        assert sorted(r for r, _, _ in inc.items()) == [0, 3]

    def test_step1_ac_matrix(self):
        """AC = Likes' ⊕.⊗ NewFriends counts likers among the pair."""
        g, _, delta = self._updated()
        ac = g.likes.mxm(delta.new_friends_incidence(), PLUS_TIMES)
        vals = {(r, c): v for r, c, v in ac.items()}
        # c2: both u1 and u4 like it -> 2; c4: only u4 -> 1; c1, c3: absent
        assert vals == {(1, 0): 2, (3, 0): 1}

    def test_step2_select_eq2(self):
        g, _, delta = self._updated()
        ac = g.likes.mxm(delta.new_friends_incidence(), PLUS_TIMES)
        ac2 = ac.select(ops.valueeq, 2)
        assert [(r, c) for r, c, _ in ac2.items()] == [(1, 0)]

    def test_step3_4_row_wise_or_extract(self):
        g, _, delta = self._updated()
        ac = g.likes.mxm(delta.new_friends_incidence(), PLUS_TIMES)
        hit = ac.select(ops.valueeq, 2).reduce_vector(LOR, dtype=BOOL)
        assert hit.to_coo()[0].tolist() == [1]

    def test_step5_ac_set_is_union(self):
        _, q, delta = self._updated()
        # ac = Δcomments {c4} ∪ Δlikes {c2, c4} ∪ friends-hits {c2}
        assert q._affected_comments(delta).tolist() == [1, 3]

    def test_step6_9_rescored_values(self):
        g, q, delta = self._updated()
        q.update(delta)
        # c2 -> 4² = 16 (one merged component), c4 -> 1² = 1
        assert q.scores.to_dense().tolist() == [4, 16, 0, 1]

    def test_friends_prime_component_of_four(self):
        """Fig. 4b: Friends' CC yields a single component {u1..u4}."""
        g, _, _ = self._updated()
        labels = fastsv(g.friends).to_dense()
        assert len(set(labels.tolist())) == 1
