"""QueryEngine facade and the tool factory."""

import pytest

from repro.model import ChangeSet
from repro.queries import QueryEngine, make_engine, TOOL_NAMES
from repro.util.validation import ReproError

from tests.conftest import build_paper_graph, paper_update


class TestFactory:
    @pytest.mark.parametrize("tool", TOOL_NAMES)
    @pytest.mark.parametrize("query", ["Q1", "Q2"])
    def test_all_tools(self, tool, query):
        e = make_engine(tool, query)
        e.load(build_paper_graph())
        first = e.initial()
        assert isinstance(first, str) and "|" in first
        e.close()

    def test_unknown_tool(self):
        with pytest.raises(ReproError):
            make_engine("magic", "Q1")

    def test_unknown_query(self):
        with pytest.raises(ReproError):
            QueryEngine("Q9", "batch")

    def test_unknown_variant(self):
        with pytest.raises(ReproError):
            QueryEngine("Q1", "lazy")


class TestPhaseProtocol:
    def test_initial_before_load_raises(self):
        e = QueryEngine("Q1", "batch")
        with pytest.raises(ReproError):
            e.initial()

    def test_update_before_load_raises(self):
        e = QueryEngine("Q1", "incremental")
        with pytest.raises(ReproError):
            e.update(ChangeSet())

    def test_update_applies_to_graph(self):
        e = QueryEngine("Q2", "batch")
        g = build_paper_graph()
        e.load(g)
        e.initial()
        e.update(paper_update())
        assert g.num_comments == 4

    def test_incremental_engine_sequence(self):
        e = QueryEngine("Q2", "incremental", q2_algorithm="incremental")
        e.load(build_paper_graph())
        assert e.initial() == "22|21|23"
        assert e.update(paper_update()) == "22|21|24"

    def test_batch_algorithm_coerced(self):
        # "incremental" is meaningless for the batch variant -> fastsv
        e = QueryEngine("Q2", "batch", q2_algorithm="incremental")
        assert e._batch_algorithm() == "fastsv"
