"""IntArrayList: list semantics + O(1) array views."""

import numpy as np
import pytest

from repro.util.buffers import IntArrayList


def test_append_and_len():
    b = IntArrayList()
    assert len(b) == 0
    for i in range(100):  # crosses several doublings
        b.append(i * 3)
    assert len(b) == 100
    assert b.tolist() == [i * 3 for i in range(100)]


def test_construct_from_iterable():
    b = IntArrayList([5, 6, 7])
    assert b.tolist() == [5, 6, 7]
    assert list(b) == [5, 6, 7]


def test_indexing():
    b = IntArrayList([10, 20, 30])
    assert b[0] == 10 and b[2] == 30
    assert b[-1] == 30 and b[-3] == 10
    assert b[1:] == [20, 30]
    with pytest.raises(IndexError):
        b[3]
    with pytest.raises(IndexError):
        b[-4]


def test_array_view_is_readonly_and_stable():
    b = IntArrayList([1, 2])
    view = b.array()
    assert view.dtype == np.int64
    with pytest.raises(ValueError):
        view[0] = 9
    b.append(3)
    # old views are immutable-length snapshots; new view sees the append
    assert view.tolist() == [1, 2]
    assert b.array().tolist() == [1, 2, 3]


def test_view_survives_growth():
    b = IntArrayList(range(8))
    view = b.array()
    for i in range(50):
        b.append(i)
    assert view.tolist() == list(range(8))


def test_equality():
    assert IntArrayList([1, 2]) == [1, 2]
    assert IntArrayList([1, 2]) == IntArrayList([1, 2])
    assert IntArrayList([1]) != [1, 2]
