"""Executors: chunking, the three execution vehicles, initializer plumbing."""

import os

import pytest

from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_evenly,
    make_executor,
)
from repro.util.validation import ReproError

# module-level functions so the process pool can pickle them
_STATE = {}


def _init(value):
    _STATE["v"] = value


def _work(chunk):
    return [x * _STATE.get("v", 1) for x in chunk]


def _square(chunk):
    return [x * x for x in chunk]


class TestChunking:
    def test_even_split(self):
        chunks = chunk_evenly(list(range(10)), 3)
        assert [len(c) for c in chunks] in ([4, 3, 3], [3, 3, 4], [3, 4, 3])
        assert sum(chunks, []) == list(range(10))

    def test_fewer_items_than_chunks(self):
        chunks = chunk_evenly([1, 2], 8)
        assert chunks == [[1], [2]]

    def test_empty(self):
        assert chunk_evenly([], 4) == []

    def test_single_chunk(self):
        assert chunk_evenly([1, 2, 3], 1) == [[1, 2, 3]]

    def test_ndarray_chunks_are_views(self):
        """Array inputs must slice, not materialise Python lists."""
        import numpy as np

        arr = np.arange(1000, dtype=np.int64)
        chunks = chunk_evenly(arr, 7)
        assert all(isinstance(c, np.ndarray) for c in chunks)
        # views share the source buffer: zero-copy chunking
        assert all(c.base is arr for c in chunks)
        assert np.array_equal(np.concatenate(chunks), arr)

    def test_range_chunks_stay_ranges(self):
        chunks = chunk_evenly(range(10), 3)
        assert all(isinstance(c, range) for c in chunks)
        assert [x for c in chunks for x in c] == list(range(10))

    def test_even_bounds_match_chunking(self):
        from repro.parallel import even_bounds

        bounds = even_bounds(10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        chunks = chunk_evenly(list(range(10)), 3)
        assert [len(c) for c in chunks] == [
            int(bounds[i + 1] - bounds[i]) for i in range(3)
        ]


class TestSerial:
    def test_map(self):
        ex = SerialExecutor()
        assert ex.map_chunks(_square, [[1, 2], [3]]) == [[1, 4], [9]]

    def test_initializer_runs_inline(self):
        ex = SerialExecutor()
        out = ex.map_chunks(_work, [[1, 2]], initializer=_init, initargs=(10,))
        assert out == [[10, 20]]


class TestThread:
    def test_map(self):
        with ThreadExecutor(4) as ex:
            assert ex.map_chunks(_square, [[1], [2], [3]]) == [[1], [4], [9]]

    def test_empty_chunks(self):
        assert ThreadExecutor(2).map_chunks(_square, []) == []

    def test_invalid_workers(self):
        with pytest.raises(ReproError):
            ThreadExecutor(0)


class TestProcess:
    def test_map_with_initializer(self):
        with ProcessExecutor(2) as ex:
            out = ex.map_chunks(_work, [[1, 2], [3]], initializer=_init, initargs=(7,))
        assert out == [[7, 14], [21]]

    def test_results_ordered(self):
        with ProcessExecutor(4) as ex:
            out = ex.map_chunks(_square, [[i] for i in range(8)])
        assert out == [[i * i] for i in range(8)]

    def test_empty(self):
        assert ProcessExecutor(2).map_chunks(_square, []) == []

    def test_invalid_workers(self):
        with pytest.raises(ReproError):
            ProcessExecutor(0)


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread", 2), ThreadExecutor)
        assert isinstance(make_executor("process", 2), ProcessExecutor)

    def test_unknown(self):
        with pytest.raises(ReproError):
            make_executor("gpu")


class TestParallelQ2Agreement:
    def test_q2_same_scores_parallel_and_serial(self):
        from repro.datagen import generate_graph
        from repro.queries import Q2Batch

        g = generate_graph(1, seed=42)
        serial = Q2Batch(g, algorithm="unionfind").scores()
        with ProcessExecutor(4) as ex:
            ex.MIN_PARALLEL_ITEMS = 0  # force the parallel path
            parallel = Q2Batch(g, algorithm="unionfind", executor=ex).scores()
        assert serial.isequal(parallel)

    def test_q2_thread_executor_agreement(self):
        from repro.datagen import generate_graph
        from repro.queries import Q2Batch

        g = generate_graph(1, seed=42)
        serial = Q2Batch(g, algorithm="unionfind").scores()
        with ThreadExecutor(4) as ex:
            threaded = Q2Batch(g, algorithm="unionfind", executor=ex).scores()
        assert serial.isequal(threaded)
