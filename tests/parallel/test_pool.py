"""ForkJoinExecutor and PersistentWorkerPool: correctness and lifecycle.

These are the OpenMP-substitution executors (see repro.parallel.pool); the
Q2-agreement tests are the load-bearing ones -- every executor must compute
identical scores.
"""

import os

import numpy as np
import pytest

from repro.parallel import (
    ForkJoinExecutor,
    PersistentWorkerPool,
    make_executor,
)
from repro.util.validation import ReproError

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based executors are POSIX-only"
)

_STATE = {}


def _init_arrays(a, b, label):
    _STATE["a"] = a
    _STATE["b"] = b
    _STATE["label"] = label


def _sum_indexed(chunk):
    # touches the primed (possibly mmap'd) arrays
    return int(_STATE["a"][chunk].sum() + _STATE["b"][chunk].sum())


def _square(chunk):
    return [x * x for x in chunk]


def _boom(chunk):
    raise ValueError("worker exploded")


class TestForkJoin:
    def test_map(self):
        ex = ForkJoinExecutor(4)
        assert ex.map_chunks(_square, [[1, 2], [3], [4, 5]]) == [[1, 4], [9], [16, 25]]

    def test_order_preserved_many_chunks(self):
        ex = ForkJoinExecutor(3)
        chunks = [[i] for i in range(20)]
        assert ex.map_chunks(_square, chunks) == [[i * i] for i in range(20)]

    def test_initializer_in_parent_inherited(self):
        a = np.arange(10, dtype=np.int64)
        b = np.ones(10, dtype=np.int64)
        ex = ForkJoinExecutor(2)
        out = ex.map_chunks(
            _sum_indexed,
            [np.array([0, 1]), np.array([9])],
            initializer=_init_arrays,
            initargs=(a, b, "x"),
        )
        assert out == [0 + 1 + 2, 9 + 1]

    def test_empty(self):
        assert ForkJoinExecutor(2).map_chunks(_square, []) == []

    def test_worker_exception_raises(self):
        with pytest.raises(ReproError, match="died"):
            ForkJoinExecutor(2).map_chunks(_boom, [[1], [2]])

    def test_invalid_workers(self):
        with pytest.raises(ReproError):
            ForkJoinExecutor(0)

    def test_large_results_no_pipe_deadlock(self):
        """Results far beyond the 64 KiB pipe buffer must stream through."""
        ex = ForkJoinExecutor(4)
        chunks = [list(range(20_000)) for _ in range(8)]
        out = ex.map_chunks(_square, chunks)
        assert len(out) == 8
        assert out[0][:3] == [0, 1, 4]


class TestPersistentPool:
    def test_map_with_array_state(self):
        a = np.arange(1000, dtype=np.int64)
        b = np.zeros(1000, dtype=np.int64)
        with PersistentWorkerPool(4) as pool:
            chunks = [np.arange(i, i + 10) for i in range(0, 1000, 10)]
            out = pool.map_chunks(
                _sum_indexed, chunks, initializer=_init_arrays, initargs=(a, b, "q")
            )
            expected = [int(a[c].sum()) for c in chunks]
            assert out == expected

    def test_reprime_on_state_change(self):
        with PersistentWorkerPool(2) as pool:
            for scale in (1, 2, 3):
                a = np.full(100, scale, dtype=np.int64)
                b = np.zeros(100, dtype=np.int64)
                chunks = [np.arange(0, 50), np.arange(50, 100)]
                out = pool.map_chunks(
                    _sum_indexed, chunks, initializer=_init_arrays, initargs=(a, b, "")
                )
                assert out == [50 * scale, 50 * scale]

    def test_same_state_not_reprimed(self):
        a = np.ones(10, dtype=np.int64)
        b = np.zeros(10, dtype=np.int64)
        with PersistentWorkerPool(2) as pool:
            chunks = [np.array([0, 1]), np.array([2, 3])]
            pool.map_chunks(_sum_indexed, chunks, initializer=_init_arrays, initargs=(a, b, ""))
            v1 = pool._version
            pool.map_chunks(_sum_indexed, chunks, initializer=_init_arrays, initargs=(a, b, ""))
            assert pool._version == v1

    def test_worker_exception_raises(self):
        with PersistentWorkerPool(2) as pool:
            with pytest.raises(ReproError, match="worker failure"):
                pool.map_chunks(_boom, [[1], [2]])
            # the pool survives a failed region and stays usable
            assert pool.map_chunks(_square, [[2], [3]]) == [[4], [9]]

    def test_start_idempotent(self):
        pool = PersistentWorkerPool(2).start()
        pids = [pid for pid, _, _ in pool._children]
        pool.start()
        assert [pid for pid, _, _ in pool._children] == pids
        pool.close()

    def test_close_then_restart(self):
        pool = PersistentWorkerPool(2)
        assert pool.map_chunks(_square, [[1]]) == [[1]]
        pool.close()
        assert pool._children == []
        assert pool.map_chunks(_square, [[5]]) == [[25]]
        pool.close()

    def test_non_array_initargs_ride_inline(self):
        a = np.arange(4, dtype=np.int64)
        b = np.zeros(4, dtype=np.int64)
        with PersistentWorkerPool(2) as pool:
            pool.map_chunks(
                _sum_indexed,
                [np.array([0]), np.array([1])],
                initializer=_init_arrays,
                initargs=(a, b, "tag"),
            )  # "tag" must reach the initializer (no np.save of strings)

    def test_invalid_workers(self):
        with pytest.raises(ReproError):
            PersistentWorkerPool(0)

    def test_factory(self):
        pool = make_executor("persistent", 2)
        assert isinstance(pool, PersistentWorkerPool)
        pool.close()


class TestQ2AgreementAllExecutors:
    @pytest.mark.parametrize("kind", ["forkjoin", "persistent"])
    def test_q2_scores_match_serial(self, kind):
        from repro.datagen import generate_benchmark_input
        from repro.queries.q2 import score_comments

        graph, _ = generate_benchmark_input(1, seed=42)
        comments = list(range(graph.num_comments))
        serial = score_comments(graph, comments, algorithm="unionfind")
        ex = make_executor(kind, 4)
        ex.MIN_PARALLEL_ITEMS = 0  # force the parallel path at this size
        try:
            parallel = score_comments(
                graph, comments, algorithm="unionfind", executor=ex
            )
        finally:
            ex.close()
        assert parallel == serial
