"""Benchmark framework: phases, aggregation, reporting, the runner sweep."""

import io

import pytest

from repro.benchmark import (
    BenchmarkConfig,
    PhaseTimes,
    ascii_loglog_chart,
    format_fig5_table,
    format_table2,
    geometric_mean,
    results_to_csv,
    run_benchmark,
    run_once,
)
from repro.benchmark.runner import FIG5_TOOLS, BenchmarkResult, ToolSpec, main
from repro.datagen.table2 import TABLE2
from repro.queries.engine import make_engine
from repro.util.validation import ReproError

from tests.conftest import build_paper_graph, paper_update


class TestGeometricMean:
    def test_basic(self):
        assert abs(geometric_mean([1.0, 4.0]) - 2.0) < 1e-12

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_zero_clamped(self):
        assert geometric_mean([0.0, 1.0]) > 0.0


class TestPhases:
    def test_run_once_collects_everything(self):
        pt = run_once(
            lambda: make_engine("graphblas-incremental", "Q1"),
            build_paper_graph(),
            [paper_update()],
        )
        assert pt.initialization >= 0
        assert pt.load >= 0
        assert pt.initial >= 0
        assert len(pt.updates) == 1
        assert pt.results == ["11|12", "11|12"]

    def test_aggregates(self):
        pt = PhaseTimes(initialization=1, load=2, initial=3, updates=[4, 5])
        assert pt.load_and_initial == 5
        assert pt.update_and_reevaluation == 9


class TestToolSpec:
    def test_all_fig5_tools_constructible(self):
        for spec in FIG5_TOOLS:
            e = spec.make("Q1")
            e.close()

    def test_fig5_has_six_lines(self):
        assert len(FIG5_TOOLS) == 6
        labels = [t.label for t in FIG5_TOOLS]
        assert "GraphBLAS Batch" in labels and "NMF Incremental" in labels


class TestRunBenchmark:
    def _tiny_config(self, **kw):
        defaults = dict(
            queries=("Q1",),
            tools=(
                ToolSpec("GrB Batch", "graphblas-batch"),
                ToolSpec("GrB Incr", "graphblas-incremental"),
                ToolSpec("NMF Batch", "nmf-batch"),
            ),
            scale_factors=(1,),
            runs=2,
            seed=42,
            num_change_sets=3,
        )
        defaults.update(kw)
        return BenchmarkConfig(**defaults)

    def test_sweep_shape(self):
        results = run_benchmark(self._tiny_config())
        assert len(results) == 3  # 1 query x 1 sf x 3 tools
        for r in results:
            assert r.runs == 2
            assert r.load_and_initial > 0
            assert r.update_and_reevaluation > 0

    def test_cross_tool_verification_runs(self):
        """All tools must produce identical result strings (verified inside)."""
        run_benchmark(self._tiny_config(queries=("Q1", "Q2")))

    def test_verification_catches_mismatch(self):
        class LyingEngine:
            def __init__(self):
                self.n = 0

            def load(self, graph):
                pass

            def initial(self):
                return "lie"

            def update(self, cs):
                return "lie"

            def close(self):
                pass

        class LyingSpec(ToolSpec):
            def make(self, query):
                return LyingEngine()

        cfg = self._tiny_config(
            tools=(
                ToolSpec("GrB Batch", "graphblas-batch"),
                LyingSpec("Liar", "graphblas-batch"),
            )
        )
        with pytest.raises(ReproError):
            run_benchmark(cfg)

    def test_progress_callback(self):
        seen = []
        run_benchmark(self._tiny_config(runs=1), progress=seen.append)
        assert len(seen) == 3


class TestReporting:
    def _results(self):
        return [
            BenchmarkResult("ToolA", "Q1", 1, 2, 0.5, 0.1),
            BenchmarkResult("ToolA", "Q1", 2, 2, 1.0, 0.2),
            BenchmarkResult("ToolB", "Q1", 1, 2, 0.25, 0.4),
            BenchmarkResult("ToolB", "Q1", 2, 2, 0.5, 0.8),
        ]

    def test_fig5_table(self):
        out = format_fig5_table(self._results(), "Q1", "load_and_initial")
        assert "ToolA" in out and "ToolB" in out
        assert "0.5000" in out

    def test_chart_renders_all_series(self):
        series = {
            "ToolA": [(1.0, 0.5), (2.0, 1.0)],
            "ToolB": [(1.0, 0.25), (2.0, 0.5)],
        }
        chart = ascii_loglog_chart(series, title="t")
        assert "ToolA" in chart and "log scale" in chart

    def test_chart_empty(self):
        assert "(no data)" in ascii_loglog_chart({}, title="x")

    def test_csv(self):
        csv = results_to_csv(self._results())
        lines = csv.splitlines()
        assert lines[0].startswith("tool,query")
        assert len(lines) == 5

    def test_table2_format(self):
        achieved = {1: {"nodes": 1274, "edges": 2520, "inserts": 67}}
        out = format_table2(achieved, TABLE2)
        assert "1274" in out and "2533" in out


class TestCli:
    def test_table2_report(self, capsys):
        assert main(["--report", "table2", "--max-sf", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_fig5_small(self, capsys, tmp_path):
        csv_path = tmp_path / "r.csv"
        rc = main(
            [
                "--report", "fig5",
                "--max-sf", "1",
                "--runs", "1",
                "--queries", "Q1",
                "--serial-only",
                "--csv", str(csv_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Load and initial evaluation" in out
        assert csv_path.exists()
