"""TTC 2018 contest log format: render, parse, aggregate, verify."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmark.phases import PhaseTimes
from repro.benchmark.ttc_format import (
    TTC_HEADER,
    TTCRecord,
    aggregate_times,
    parse,
    render_run,
    verify_elements,
)
from repro.util.validation import ReproError


def sample_times() -> PhaseTimes:
    return PhaseTimes(
        initialization=0.001,
        load=0.25,
        initial=0.5,
        updates=[0.01, 0.02],
        results=["1|2|3", "4|2|3", "4|5|3"],
    )


class TestRender:
    def test_header_fields(self):
        assert TTC_HEADER.count(";") == 7

    def test_phase_lines_in_order(self):
        lines = render_run("GrB", "Q1", "sf4", 0, sample_times())
        phases = [l.split(";")[5] for l in lines]
        assert phases == [
            "Initialization",
            "Load",
            "Initial",
            "Initial",  # Elements record
            "Update",
            "Update",
            "Update",
            "Update",
        ]

    def test_time_is_nanoseconds(self):
        lines = render_run("GrB", "Q1", "sf4", 0, sample_times())
        load = next(l for l in lines if ";Load;" in l)
        assert load.endswith(";Time;250000000")

    def test_iteration_numbers(self):
        lines = render_run("GrB", "Q2", "sf1", 3, sample_times())
        updates = [l.split(";") for l in lines if l.split(";")[5] == "Update"]
        assert [u[4] for u in updates] == ["1", "1", "2", "2"]
        assert all(u[3] == "3" for u in updates)

    def test_elements_carry_result_strings(self):
        lines = render_run("GrB", "Q1", "sf4", 0, sample_times())
        elems = [l.split(";")[7] for l in lines if ";Elements;" in l]
        assert elems == ["1|2|3", "4|2|3", "4|5|3"]

    def test_without_results(self):
        lines = render_run("GrB", "Q1", "sf4", 0, sample_times(), with_results=False)
        assert not any(";Elements;" in l for l in lines)


class TestParse:
    def test_roundtrip(self):
        lines = render_run("GrB", "Q1", "sf4", 0, sample_times())
        records = parse("\n".join([TTC_HEADER] + lines))
        assert len(records) == len(lines)
        assert records[0].phase == "Initialization"
        assert records[1].time_seconds == pytest.approx(0.25)

    def test_header_optional(self):
        lines = render_run("GrB", "Q1", "sf4", 0, sample_times())
        assert len(parse("\n".join(lines))) == len(lines)

    def test_wrong_field_count_raises(self):
        with pytest.raises(ReproError, match="line 1"):
            parse("a;b;c")

    def test_unknown_phase_raises(self):
        with pytest.raises(ReproError, match="unknown phase"):
            parse("T;Q1;sf1;0;0;Teardown;Time;5")

    def test_unknown_metric_raises(self):
        with pytest.raises(ReproError, match="unknown metric"):
            parse("T;Q1;sf1;0;0;Load;Watts;5")

    def test_non_integer_run_raises(self):
        with pytest.raises(ReproError, match="line 1"):
            parse("T;Q1;sf1;x;0;Load;Time;5")

    def test_time_seconds_guard(self):
        rec = TTCRecord("T", "Q1", "sf1", 0, 0, "Initial", "Elements", "1|2")
        with pytest.raises(ReproError):
            rec.time_seconds


class TestAggregate:
    def test_fig5_groups(self):
        lines = []
        for run in range(3):
            lines += render_run("GrB", "Q1", "sf4", run, sample_times())
        agg = aggregate_times(parse("\n".join(lines)))
        assert agg[("GrB", "Q1", "sf4", "load_and_initial")] == pytest.approx(0.75)
        assert agg[("GrB", "Q1", "sf4", "update_and_reevaluation")] == pytest.approx(
            0.03, rel=1e-6
        )

    def test_initialization_excluded(self):
        """Fig. 5 excludes the Initialization phase from both panels."""
        t = PhaseTimes(initialization=100.0, load=0.1, initial=0.1, updates=[0.1])
        agg = aggregate_times(parse("\n".join(render_run("T", "Q1", "sf1", 0, t))))
        assert agg[("T", "Q1", "sf1", "load_and_initial")] == pytest.approx(0.2)

    def test_geometric_mean_across_runs(self):
        a = PhaseTimes(load=0.1, initial=0.0, updates=[])
        b = PhaseTimes(load=0.4, initial=0.0, updates=[])
        lines = render_run("T", "Q1", "sf1", 0, a) + render_run("T", "Q1", "sf1", 1, b)
        agg = aggregate_times(parse("\n".join(lines)))
        # geomean(0.1, 0.4) = 0.2
        assert agg[("T", "Q1", "sf1", "load_and_initial")] == pytest.approx(0.2)


class TestVerifyElements:
    def test_accepts_matching_tools(self):
        lines = render_run("A", "Q1", "sf1", 0, sample_times()) + render_run(
            "B", "Q1", "sf1", 0, sample_times()
        )
        verify_elements(parse("\n".join(lines)))  # no raise

    def test_rejects_mismatch(self):
        bad = sample_times()
        bad.results = ["9|9|9", "4|2|3", "4|5|3"]
        lines = render_run("A", "Q1", "sf1", 0, sample_times()) + render_run(
            "B", "Q1", "sf1", 0, bad
        )
        with pytest.raises(ReproError, match="result mismatch"):
            verify_elements(parse("\n".join(lines)))

    def test_different_views_do_not_clash(self):
        q1 = sample_times()
        q2 = sample_times()
        q2.results = ["7|8|9", "7|8|9", "7|8|9"]
        lines = render_run("A", "Q1", "sf1", 0, q1) + render_run("A", "Q2", "sf1", 0, q2)
        verify_elements(parse("\n".join(lines)))


class TestPropertyRoundtrip:
    @given(
        load=st.floats(0, 10),
        initial=st.floats(0, 10),
        updates=st.lists(st.floats(0, 1), max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_times_to_ns(self, load, initial, updates):
        t = PhaseTimes(load=load, initial=initial, updates=updates)
        records = parse("\n".join(render_run("T", "Q1", "sf1", 0, t)))
        times = [r for r in records if r.metric == "Time"]
        assert times[1].time_seconds == pytest.approx(load, abs=1e-9)
        assert times[2].time_seconds == pytest.approx(initial, abs=1e-9)
        for rec, u in zip(times[3:], updates):
            assert rec.time_seconds == pytest.approx(u, abs=1e-9)
