"""IncrementalCC: dynamic connected components with Σ size² maintenance."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lagraph import IncrementalCC
from repro.lagraph.cc_numpy import connected_components_numpy, sum_squared_component_sizes


class TestBasics:
    def test_empty(self):
        cc = IncrementalCC()
        assert cc.num_vertices == 0
        assert cc.num_components == 0
        assert cc.sum_squared_sizes == 0

    def test_isolated_vertices(self):
        cc = IncrementalCC()
        for v in range(4):
            cc.add_vertex(v)
        assert cc.num_components == 4
        assert cc.sum_squared_sizes == 4

    def test_add_vertex_idempotent(self):
        cc = IncrementalCC()
        cc.add_vertex(1)
        cc.add_vertex(1)
        assert cc.num_vertices == 1

    def test_merge_updates_score(self):
        cc = IncrementalCC()
        cc.add_edge(0, 1)
        assert cc.sum_squared_sizes == 4
        cc.add_edge(2, 3)
        assert cc.sum_squared_sizes == 8
        assert cc.add_edge(1, 2)  # merge -> 16
        assert cc.sum_squared_sizes == 16

    def test_redundant_edge_no_change(self):
        cc = IncrementalCC()
        cc.add_edge(0, 1)
        assert not cc.add_edge(0, 1)
        assert not cc.add_edge(1, 0)
        assert cc.sum_squared_sizes == 4

    def test_same_component_queries(self):
        cc = IncrementalCC()
        cc.add_edge(0, 1)
        cc.add_vertex(2)
        assert cc.same_component(0, 1)
        assert not cc.same_component(0, 2)
        assert not cc.same_component(0, 99)  # unknown vertex

    def test_sizes(self):
        cc = IncrementalCC()
        cc.add_edge(0, 1)
        cc.add_vertex(5)
        assert sorted(cc.sizes()) == [1, 2]

    def test_arbitrary_hashable_ids(self):
        cc = IncrementalCC()
        cc.add_edge("alice", "bob")
        assert cc.same_component("alice", "bob")

    def test_labels(self):
        cc = IncrementalCC()
        cc.add_edge(3, 7)
        labels = cc.labels([3, 7])
        assert labels[0] == labels[1]


@given(
    st.integers(1, 20),
    st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60),
)
def test_matches_batch_union_find(n, raw_edges):
    """After any insertion sequence, Σ size² equals the batch recomputation."""
    edges = [(a % n, b % n) for a, b in raw_edges if a % n != b % n]
    cc = IncrementalCC()
    for v in range(n):
        cc.add_vertex(v)
    for a, b in edges:
        cc.add_edge(a, b)
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    labels = connected_components_numpy(n, src, dst)
    assert cc.sum_squared_sizes == sum_squared_component_sizes(labels)
    assert cc.num_components == len(set(labels.tolist()))


@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40))
def test_score_monotone_under_inserts(raw_edges):
    """Σ size² never decreases under edge insertion (the top-k invariant)."""
    cc = IncrementalCC()
    for v in range(10):
        cc.add_vertex(v)
    prev = cc.sum_squared_sizes
    for a, b in raw_edges:
        if a != b:
            cc.add_edge(a, b)
            assert cc.sum_squared_sizes >= prev
            prev = cc.sum_squared_sizes
