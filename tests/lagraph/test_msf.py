"""Minimum spanning forest vs networkx, plus invariants."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas import FP64, Matrix, ops
from repro.lagraph import minimum_spanning_forest
from repro.util.validation import DimensionMismatch


def weighted_matrix(g: nx.Graph, n: int) -> Matrix:
    edges = list(g.edges(data="weight"))
    if not edges:
        return Matrix.sparse(FP64, n, n)
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    return Matrix.from_coo(
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        np.concatenate([w, w]),
        n, n, dtype=FP64, dup_op=ops.min,
    )


def random_weighted(n: int, p: float, seed: int) -> nx.Graph:
    g = nx.gnp_random_graph(n, p, seed=seed)
    rng = np.random.default_rng(seed)
    for u, v in g.edges:
        # distinct weights -> unique MSF, exact comparison possible
        g[u][v]["weight"] = float(rng.permutation(10_000)[0] + (u * n + v) * 1e-6)
    return g


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_total_weight_matches(self, seed):
        n = 30
        g = random_weighted(n, 0.1, seed)
        ours = minimum_spanning_forest(weighted_matrix(g, n))
        theirs = nx.minimum_spanning_edges(g, data=True)
        assert sum(w for _, _, w in ours) == pytest.approx(
            sum(d["weight"] for _, _, d in theirs)
        )

    def test_exact_edges_with_distinct_weights(self):
        n = 20
        g = random_weighted(n, 0.2, seed=3)
        # force distinct weights
        for i, (u, v) in enumerate(g.edges):
            g[u][v]["weight"] = float(i * 7 % 97) + (u + v) * 1e-3
        ours = {(u, v) for u, v, _ in minimum_spanning_forest(weighted_matrix(g, n))}
        theirs = {
            (min(u, v), max(u, v))
            for u, v in nx.minimum_spanning_tree(g).edges
        }
        assert ours == theirs


class TestInvariants:
    def test_path_graph_keeps_all_edges(self):
        g = nx.path_graph(6)
        for u, v in g.edges:
            g[u][v]["weight"] = 1.0
        msf = minimum_spanning_forest(weighted_matrix(g, 6))
        assert len(msf) == 5

    def test_cycle_drops_heaviest(self):
        g = nx.Graph()
        g.add_weighted_edges_from([(0, 1, 1.0), (1, 2, 2.0), (2, 0, 9.0)])
        msf = minimum_spanning_forest(weighted_matrix(g, 3))
        assert msf == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_forest_of_components(self):
        # two disjoint triangles -> 2 + 2 edges
        g = nx.Graph()
        g.add_weighted_edges_from(
            [(0, 1, 1), (1, 2, 2), (2, 0, 3), (3, 4, 1), (4, 5, 2), (5, 3, 3)]
        )
        msf = minimum_spanning_forest(weighted_matrix(g, 6))
        assert len(msf) == 4

    def test_edge_count_is_n_minus_components(self):
        n = 25
        g = random_weighted(n, 0.08, seed=9)
        msf = minimum_spanning_forest(weighted_matrix(g, n))
        n_components = nx.number_connected_components(g)
        assert len(msf) == n - n_components

    def test_empty_and_edgeless(self):
        assert minimum_spanning_forest(Matrix.sparse(FP64, 0, 0)) == []
        assert minimum_spanning_forest(Matrix.sparse(FP64, 5, 5)) == []

    def test_non_square_rejected(self):
        with pytest.raises(DimensionMismatch):
            minimum_spanning_forest(Matrix.sparse(FP64, 2, 3))

    def test_deterministic_under_ties(self):
        g = nx.complete_graph(8)
        for u, v in g.edges:
            g[u][v]["weight"] = 1.0  # all ties
        a = minimum_spanning_forest(weighted_matrix(g, 8))
        b = minimum_spanning_forest(weighted_matrix(g, 8))
        assert a == b
        assert len(a) == 7


class TestProperty:
    @given(
        n=st.integers(2, 14),
        density=st.floats(0.05, 0.5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_weight_matches_networkx_property(self, n, density, seed):
        g = random_weighted(n, density, seed % 100)
        msf = minimum_spanning_forest(weighted_matrix(g, n))
        expected = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True)
        )
        assert sum(w for _, _, w in msf) == pytest.approx(expected)
        # acyclicity: a forest has no repeated component closure
        if msf:  # nx.is_forest raises on the empty graph
            assert nx.is_forest(nx.Graph((u, v) for u, v, _ in msf))
