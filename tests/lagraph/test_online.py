"""Property tests for the online algorithm layer (lagraph.online).

The incremental maintainers must agree exactly with their batch oracles:
``ComponentsMaintainer.labels()`` with ``fastsv`` (bit-identical canonical
labels) and ``DegreeMaintainer.scores()`` with a fresh ``bincount`` --
across arbitrary interleavings of vertex growth and edge insertions, and
(for degree) removals.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graphblas.matrix import Matrix
from repro.graphblas.types import BOOL
from repro.lagraph import fastsv
from repro.lagraph.online import (
    ONLINE_ALGORITHMS,
    ComponentsMaintainer,
    DegreeMaintainer,
)


def _sym_matrix(n: int, edges: set[tuple[int, int]]) -> Matrix:
    if not edges:
        return Matrix.sparse(BOOL, n, n)
    a = np.asarray([e[0] for e in edges] + [e[1] for e in edges], dtype=np.int64)
    b = np.asarray([e[1] for e in edges] + [e[0] for e in edges], dtype=np.int64)
    return Matrix.from_coo(a, b, True, n, n, dtype=BOOL)


@st.composite
def growth_streams(draw):
    """A sequence of batches; each grows the vertex set and adds edges."""
    n_batches = draw(st.integers(1, 6))
    batches, n = [], draw(st.integers(1, 5))
    for _ in range(n_batches):
        n += draw(st.integers(0, 4))
        k = draw(st.integers(0, 6))
        edges = [
            tuple(sorted(draw(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)))))
            for _ in range(k)
        ]
        edges = [(a, b) for a, b in edges if a != b]
        batches.append((n, edges))
    return batches


@given(growth_streams())
def test_components_maintainer_matches_fastsv(batches):
    m = ComponentsMaintainer()
    m.rebuild(_sym_matrix(0, set()))
    seen: set[tuple[int, int]] = set()
    for n, edges in batches:
        seen.update(edges)
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        assert m.on_delta(
            n, (arr[:, 0], arr[:, 1]), (np.zeros(0, np.int64), np.zeros(0, np.int64))
        )
        adj = _sym_matrix(n, seen)
        np.testing.assert_array_equal(m.labels(), fastsv(adj).to_dense())
        # top_components agrees with a label scan
        labels = m.labels()
        _, counts = np.unique(labels, return_counts=True)
        sizes = sorted(counts.tolist(), reverse=True)
        assert [s for _, s in m.top_components(3)] == sizes[:3]


@given(growth_streams(), st.random_module())
def test_degree_maintainer_matches_bincount(batches, _rng):
    m = DegreeMaintainer()
    m.rebuild(_sym_matrix(0, set()))
    seen: set[tuple[int, int]] = set()
    for i, (n, edges) in enumerate(batches):
        # GraphDelta pairs are deduplicated; mirror that contract here
        new = list(dict.fromkeys(e for e in edges if e not in seen))
        # alternate: every other batch also removes one existing edge
        removed = [next(iter(seen))] if (i % 2 and seen) else []
        seen.update(new)
        seen.difference_update(removed)
        to_arr = lambda pairs: np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        a, r = to_arr(new), to_arr(removed)
        assert m.on_delta(n, (a[:, 0], a[:, 1]), (r[:, 0], r[:, 1]))
        expect = np.zeros(n, dtype=np.int64)
        for x, y in seen:
            expect[x] += 1
            expect[y] += 1
        np.testing.assert_array_equal(m.scores(), expect)


def test_components_maintainer_refuses_removals():
    m = ComponentsMaintainer()
    m.rebuild(_sym_matrix(3, {(0, 1)}))
    e = (np.asarray([0]), np.asarray([1]))
    assert not m.on_delta(3, (np.zeros(0, np.int64),) * 2, e)


def test_components_rebuild_resets_state():
    m = ComponentsMaintainer()
    m.rebuild(_sym_matrix(4, {(0, 1), (2, 3)}))
    assert m.num_components == 2
    m.rebuild(_sym_matrix(2, set()))
    assert m.num_components == 2
    np.testing.assert_array_equal(m.labels(), [0, 1])


@pytest.mark.parametrize("name", sorted(ONLINE_ALGORITHMS))
def test_every_algorithm_computes_on_empty_and_small(name):
    spec = ONLINE_ALGORITHMS[name]
    assert spec.compute(Matrix.sparse(BOOL, 0, 0)).size == 0
    out = spec.compute(_sym_matrix(4, {(0, 1), (1, 2)}))
    assert out.shape == (4,)
    if spec.make_maintainer is not None:
        maint = spec.make_maintainer()
        maint.rebuild(_sym_matrix(4, {(0, 1), (1, 2)}))
        if spec.kind == "vertex":
            np.testing.assert_array_equal(maint.scores(), out)
        else:
            np.testing.assert_array_equal(maint.labels(), out)
