"""FastSV connected components: unit tests plus networkx cross-validation."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphblas import BOOL, Matrix, ops
from repro.lagraph import connected_components_numpy, fastsv
from repro.lagraph.cc_numpy import component_sizes, sum_squared_component_sizes
from repro.util.validation import DimensionMismatch


def adjacency_from_edges(n: int, edges) -> Matrix:
    if not edges:
        return Matrix.sparse(BOOL, n, n)
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return Matrix.from_coo(
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        True,
        n,
        n,
        dtype=BOOL,
        dup_op=ops.lor,
    )


class TestFastSVBasics:
    def test_empty_graph(self):
        f = fastsv(Matrix.sparse(BOOL, 5, 5))
        assert f.to_dense().tolist() == [0, 1, 2, 3, 4]

    def test_zero_vertices(self):
        assert fastsv(Matrix.sparse(BOOL, 0, 0)).size == 0

    def test_single_edge(self):
        f = fastsv(adjacency_from_edges(3, [(0, 2)]))
        assert f.to_dense().tolist() == [0, 1, 0]

    def test_path_graph(self):
        f = fastsv(adjacency_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]))
        assert f.to_dense().tolist() == [0] * 5

    def test_two_components(self):
        f = fastsv(adjacency_from_edges(5, [(0, 1), (3, 4)]))
        assert f.to_dense().tolist() == [0, 0, 2, 3, 3]

    def test_labels_are_component_minimum(self):
        f = fastsv(adjacency_from_edges(4, [(2, 3), (1, 3)]))
        assert f.to_dense().tolist() == [0, 1, 1, 1]

    def test_non_square_rejected(self):
        with pytest.raises(DimensionMismatch):
            fastsv(Matrix.sparse(BOOL, 2, 3))

    def test_self_loop_harmless(self):
        f = fastsv(adjacency_from_edges(2, [(0, 0), (0, 1)]))
        assert f.to_dense().tolist() == [0, 0]


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        n = 40
        g = nx.gnp_random_graph(n, 0.05, seed=seed)
        edges = list(g.edges)
        f = fastsv(adjacency_from_edges(n, edges)).to_dense()
        groups: dict[int, set[int]] = {}
        for v in range(n):
            groups.setdefault(int(f[v]), set()).add(v)
        assert {frozenset(s) for s in groups.values()} == {
            frozenset(c) for c in nx.connected_components(g)
        }

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_union_find(self, seed):
        rng = np.random.default_rng(seed)
        n = 60
        m = 50
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        edges = list(zip(src[keep].tolist(), dst[keep].tolist()))
        f1 = fastsv(adjacency_from_edges(n, edges)).to_dense()
        f2 = connected_components_numpy(n, src[keep], dst[keep])
        assert np.array_equal(f1, f2)


@given(
    st.integers(2, 25),
    st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=40),
)
def test_fastsv_equals_unionfind_property(n, raw_edges):
    edges = [(a % n, b % n) for a, b in raw_edges if a % n != b % n]
    f1 = fastsv(adjacency_from_edges(n, edges)).to_dense()
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    f2 = connected_components_numpy(n, src, dst)
    assert np.array_equal(f1, f2)


class TestComponentSizes:
    def test_sizes(self):
        labels = np.array([0, 0, 2, 2, 2, 5])
        assert sorted(component_sizes(labels).tolist()) == [1, 2, 3]

    def test_sum_squared(self):
        labels = np.array([0, 0, 2, 2, 2, 5])
        assert sum_squared_component_sizes(labels) == 4 + 9 + 1

    def test_empty(self):
        assert component_sizes(np.zeros(0, np.int64)).size == 0
        assert sum_squared_component_sizes(np.zeros(0, np.int64)) == 0
