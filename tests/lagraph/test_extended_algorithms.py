"""Extended LAGraph algorithms, each cross-checked against networkx.

networkx is installed offline and is used purely as a *test oracle*: the
library under test never imports it.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas import BOOL, FP64, Matrix
from repro.lagraph import (
    betweenness_centrality,
    cdlp,
    kcore_decompose,
    kcore_subgraph,
    ktruss,
    local_clustering_coefficient,
    sssp_bellman_ford,
    triangles_per_vertex,
)
from repro.util.validation import DimensionMismatch, ReproError


def undirected_matrix(g: nx.Graph, n: int) -> Matrix:
    rows, cols = [], []
    for u, v in g.edges():
        rows += [u, v]
        cols += [v, u]
    if not rows:
        return Matrix.sparse(BOOL, n, n)
    return Matrix.from_coo(rows, cols, True, n, n, dtype=BOOL)


def weighted_matrix(edges, n: int) -> Matrix:
    rows = [e[0] for e in edges]
    cols = [e[1] for e in edges]
    vals = [e[2] for e in edges]
    return Matrix.from_coo(rows, cols, vals, n, n, dtype=FP64)


@st.composite
def random_graph(draw, max_n=10):
    n = draw(st.integers(2, max_n))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=2 * n,
        )
    )
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return n, g


# ---------------------------------------------------------------------------
# SSSP
# ---------------------------------------------------------------------------


class TestSSSP:
    def test_line_graph(self):
        w = weighted_matrix([(0, 1, 2.0), (1, 2, 3.0)], 3)
        d = sssp_bellman_ford(w, 0)
        assert {int(i): float(x) for i, x in d.items()} == {0: 0.0, 1: 2.0, 2: 5.0}

    def test_unreachable_has_no_entry(self):
        w = weighted_matrix([(0, 1, 1.0)], 3)
        d = sssp_bellman_ford(w, 0)
        assert d.get(2) is None

    def test_shorter_path_wins(self):
        w = weighted_matrix([(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)], 3)
        d = sssp_bellman_ford(w, 0)
        assert float(d[1]) == 2.0

    def test_negative_edge_ok(self):
        w = weighted_matrix([(0, 1, 5.0), (1, 2, -3.0)], 3)
        d = sssp_bellman_ford(w, 0)
        assert float(d[2]) == 2.0

    def test_negative_cycle_raises(self):
        w = weighted_matrix([(0, 1, 1.0), (1, 0, -2.0)], 2)
        with pytest.raises(ReproError):
            sssp_bellman_ford(w, 0)

    def test_non_square_rejected(self):
        with pytest.raises(DimensionMismatch):
            sssp_bellman_ford(Matrix.sparse(FP64, 2, 3), 0)

    @given(random_graph())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_unit_weights(self, ng):
        n, g = ng
        rows, cols, vals = [], [], []
        for u, v in g.edges():
            rows += [u, v]
            cols += [v, u]
            vals += [1.0, 1.0]
        w = (
            Matrix.from_coo(rows, cols, vals, n, n, dtype=FP64)
            if rows
            else Matrix.sparse(FP64, n, n)
        )
        got = {int(i): float(x) for i, x in sssp_bellman_ford(w, 0).items()}
        want = nx.single_source_shortest_path_length(g, 0)
        assert got == {k: float(v) for k, v in want.items()}


# ---------------------------------------------------------------------------
# CDLP
# ---------------------------------------------------------------------------


class TestCDLP:
    def test_two_cliques_get_two_labels(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        a = undirected_matrix(g, 6)
        labels = cdlp(a)
        lab = {int(i): int(v) for i, v in labels.items()}
        assert lab[0] == lab[1] == lab[2]
        assert lab[3] == lab[4] == lab[5]
        assert lab[0] != lab[3]

    def test_isolated_vertex_keeps_own_label(self):
        a = Matrix.sparse(BOOL, 3, 3)
        lab = {int(i): int(v) for i, v in cdlp(a).items()}
        assert lab == {0: 0, 1: 1, 2: 2}

    def test_full_vector_returned(self):
        g = nx.path_graph(5)
        labels = cdlp(undirected_matrix(g, 5))
        assert labels.nvals == 5

    def test_star_converges_to_smallest(self):
        # Star centred on 0: leaves adopt 0's label via the frequency tie
        # rule (single neighbour), centre adopts the smallest leaf label.
        g = nx.star_graph(4)
        lab = {int(i): int(v) for i, v in cdlp(undirected_matrix(g, 5)).items()}
        # All leaves see only the centre; they must share the centre's label
        # trajectory, and the graph stabilises to <= 2 distinct labels.
        assert len(set(lab[i] for i in (1, 2, 3, 4))) == 1


# ---------------------------------------------------------------------------
# k-core
# ---------------------------------------------------------------------------


class TestKCore:
    def test_triangle_with_tail(self):
        g = nx.Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        core = {int(i): int(v) for i, v in kcore_decompose(undirected_matrix(g, 4)).items()}
        assert core == {0: 2, 1: 2, 2: 2, 3: 1}

    def test_isolated_vertices_core_zero(self):
        a = Matrix.sparse(BOOL, 3, 3)
        core = {int(i): int(v) for i, v in kcore_decompose(a).items()}
        assert core == {0: 0, 1: 0, 2: 0}

    def test_subgraph_extraction(self):
        g = nx.Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        sub, kept = kcore_subgraph(undirected_matrix(g, 4), 2)
        assert sorted(kept.tolist()) == [0, 1, 2]
        assert sub.nvals == 6  # the triangle, both directions

    def test_empty_kcore(self):
        g = nx.path_graph(3)
        _, kept = kcore_subgraph(undirected_matrix(g, 3), 5)
        assert kept.size == 0

    @given(random_graph())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, ng):
        n, g = ng
        got = {int(i): int(v) for i, v in kcore_decompose(undirected_matrix(g, n)).items()}
        want = nx.core_number(g)
        assert got == {k: int(v) for k, v in want.items()}


# ---------------------------------------------------------------------------
# LCC / triangles per vertex
# ---------------------------------------------------------------------------


class TestLCC:
    def test_triangle_graph(self):
        g = nx.complete_graph(3)
        a = undirected_matrix(g, 3)
        tri = {int(i): int(v) for i, v in triangles_per_vertex(a).items()}
        assert tri == {0: 1, 1: 1, 2: 1}
        lcc = {int(i): float(v) for i, v in local_clustering_coefficient(a).items()}
        assert lcc == {0: 1.0, 1: 1.0, 2: 1.0}

    def test_path_has_zero_lcc(self):
        g = nx.path_graph(4)
        lcc = local_clustering_coefficient(undirected_matrix(g, 4))
        assert all(float(v) == 0.0 for _, v in lcc.items())

    @given(random_graph())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, ng):
        n, g = ng
        a = undirected_matrix(g, n)
        got = {int(i): float(v) for i, v in local_clustering_coefficient(a).items()}
        want = nx.clustering(g)
        for i in range(n):
            assert got[i] == pytest.approx(want[i])

    @given(random_graph())
    @settings(max_examples=30, deadline=None)
    def test_triangle_counts_match_networkx(self, ng):
        n, g = ng
        a = undirected_matrix(g, n)
        got = {int(i): int(v) for i, v in triangles_per_vertex(a).items()}
        want = nx.triangles(g)
        dense = {i: got.get(i, 0) for i in range(n)}
        assert dense == want


# ---------------------------------------------------------------------------
# Betweenness
# ---------------------------------------------------------------------------


class TestBetweenness:
    def test_path_centre_dominates(self):
        g = nx.path_graph(5)
        a = undirected_matrix(g, 5)
        bc = {int(i): float(v) for i, v in betweenness_centrality(a).items()}
        want = nx.betweenness_centrality(g, normalized=False)
        # networkx halves undirected counts; our directed-sweep counts both
        # orientations, so compare doubled.
        for i in range(5):
            assert bc[i] == pytest.approx(2.0 * want[i])

    def test_star_centre(self):
        g = nx.star_graph(4)
        a = undirected_matrix(g, 5)
        bc = {int(i): float(v) for i, v in betweenness_centrality(a).items()}
        want = nx.betweenness_centrality(g, normalized=False)
        for i in range(5):
            assert bc[i] == pytest.approx(2.0 * want[i])

    def test_sampled_sources_subset(self):
        g = nx.path_graph(4)
        a = undirected_matrix(g, 4)
        bc = betweenness_centrality(a, sources=[0])
        # From source 0 only, vertex 1 lies on paths to 2 and 3; vertex 2 on
        # the path to 3.
        vals = {int(i): float(v) for i, v in bc.items()}
        assert vals[1] == pytest.approx(2.0)
        assert vals[2] == pytest.approx(1.0)

    @given(random_graph(max_n=8))
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx(self, ng):
        n, g = ng
        a = undirected_matrix(g, n)
        got = {int(i): float(v) for i, v in betweenness_centrality(a).items()}
        want = nx.betweenness_centrality(g, normalized=False)
        for i in range(n):
            assert got[i] == pytest.approx(2.0 * want[i], abs=1e-9)


# ---------------------------------------------------------------------------
# k-truss
# ---------------------------------------------------------------------------


class TestKTruss:
    def test_triangle_survives_3truss(self):
        g = nx.Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        t = ktruss(undirected_matrix(g, 4), 3)
        # The tail edge (2,3) closes no triangle and must be gone.
        kept = {(int(r), int(c)) for r, c, _ in t.items()}
        assert kept == {(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)}

    def test_k4_survives_4truss(self):
        g = nx.complete_graph(4)
        t = ktruss(undirected_matrix(g, 4), 4)
        assert t.nvals == 12  # all 6 edges, both directions

    def test_cascading_removal(self):
        # Two triangles sharing an edge: 4-truss demands every edge in >= 2
        # triangles, only the shared edge qualifies initially -> cascade to
        # empty.
        g = nx.Graph([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
        t = ktruss(undirected_matrix(g, 4), 4)
        assert t.nvals == 0

    def test_k_below_3_rejected(self):
        with pytest.raises(ReproError):
            ktruss(Matrix.sparse(BOOL, 2, 2), 2)

    def test_supports_recorded(self):
        g = nx.complete_graph(4)
        t = ktruss(undirected_matrix(g, 4), 3)
        assert all(int(v) == 2 for _, _, v in t.items())
