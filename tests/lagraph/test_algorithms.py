"""BFS, PageRank and triangle counting vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graphblas import BOOL, Matrix
from repro.lagraph import bfs_levels, bfs_parents, pagerank, triangle_count
from repro.util.validation import DimensionMismatch, IndexOutOfBounds


def sym_matrix(g: nx.Graph, n: int) -> Matrix:
    edges = list(g.edges)
    if not edges:
        return Matrix.sparse(BOOL, n, n)
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    from repro.graphblas import ops

    return Matrix.from_coo(
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        True,
        n,
        n,
        dtype=BOOL,
        dup_op=ops.lor,
    )


class TestBfs:
    @pytest.mark.parametrize("seed", range(5))
    def test_levels_match_networkx(self, seed):
        n = 35
        g = nx.gnp_random_graph(n, 0.08, seed=seed)
        lv = bfs_levels(sym_matrix(g, n), 0).to_dense(fill=-1)
        expected = nx.single_source_shortest_path_length(g, 0)
        for v in range(n):
            assert lv[v] == expected.get(v, -1)

    def test_parents_consistent_with_levels(self):
        g = nx.path_graph(6)
        a = sym_matrix(g, 6)
        lv = bfs_levels(a, 0)
        pa = bfs_parents(a, 0)
        assert pa[0] == 0
        for v in range(1, 6):
            # parent is one level closer to the source
            assert lv[int(pa[v])] == lv[v] - 1

    def test_unreachable_absent(self):
        a = sym_matrix(nx.Graph([(0, 1)]), 4)
        lv = bfs_levels(a, 0)
        assert 2 not in lv and 3 not in lv

    def test_source_validated(self):
        with pytest.raises(IndexOutOfBounds):
            bfs_levels(Matrix.sparse(BOOL, 3, 3), 5)

    def test_non_square(self):
        with pytest.raises(DimensionMismatch):
            bfs_levels(Matrix.sparse(BOOL, 2, 3), 0)


class TestPagerank:
    def test_matches_networkx_directed(self):
        n = 40
        g = nx.gnp_random_graph(n, 0.1, seed=9, directed=True)
        edges = list(g.edges)
        src = np.array([e[0] for e in edges], dtype=np.int64)
        dst = np.array([e[1] for e in edges], dtype=np.int64)
        a = Matrix.from_coo(src, dst, True, n, n, dtype=BOOL)
        pr = pagerank(a, tol=1e-12).to_dense()
        expected = nx.pagerank(g, alpha=0.85, tol=1e-12)
        assert max(abs(pr[v] - expected[v]) for v in range(n)) < 1e-8

    def test_sums_to_one(self):
        a = sym_matrix(nx.path_graph(5), 5)
        assert abs(pagerank(a).to_dense().sum() - 1.0) < 1e-9

    def test_dangling_mass_redistributed(self):
        # 0 -> 1, 1 dangles
        a = Matrix.from_coo([0], [1], True, 2, 2, dtype=BOOL)
        pr = pagerank(a, tol=1e-14).to_dense()
        assert abs(pr.sum() - 1.0) < 1e-9
        assert pr[1] > pr[0]

    def test_empty(self):
        assert pagerank(Matrix.sparse(BOOL, 0, 0)).size == 0


class TestTriangles:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        n = 30
        g = nx.gnp_random_graph(n, 0.15, seed=seed)
        assert triangle_count(sym_matrix(g, n)) == sum(nx.triangles(g).values()) // 3

    def test_k4(self):
        assert triangle_count(sym_matrix(nx.complete_graph(4), 4)) == 4

    def test_triangle_free(self):
        assert triangle_count(sym_matrix(nx.cycle_graph(4), 4)) == 0
