"""Strongly connected components vs networkx, plus invariants."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas import BOOL, Matrix, ops
from repro.lagraph import fastsv, scc
from repro.util.validation import DimensionMismatch


def digraph_matrix(g: nx.DiGraph, n: int) -> Matrix:
    edges = list(g.edges)
    if not edges:
        return Matrix.sparse(BOOL, n, n)
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return Matrix.from_coo(src, dst, True, n, n, dtype=BOOL, dup_op=ops.lor)


def grouping(labels: np.ndarray) -> set[frozenset[int]]:
    groups: dict[int, set[int]] = {}
    for v, lab in enumerate(labels.tolist()):
        groups.setdefault(lab, set()).add(v)
    return {frozenset(s) for s in groups.values()}


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_digraphs(self, seed):
        n = 25
        g = nx.gnp_random_graph(n, 0.08, seed=seed, directed=True)
        labels = scc(digraph_matrix(g, n)).to_dense()
        expected = {frozenset(c) for c in nx.strongly_connected_components(g)}
        assert grouping(labels) == expected

    def test_two_cycles_and_bridge(self):
        # 0->1->2->0 and 3->4->3, bridge 2->3: two SCCs
        g = nx.DiGraph([(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)])
        labels = scc(digraph_matrix(g, 5)).to_dense()
        assert labels.tolist() == [0, 0, 0, 3, 3]

    def test_dag_all_singletons(self):
        g = nx.DiGraph([(0, 1), (1, 2), (0, 2)])
        labels = scc(digraph_matrix(g, 4)).to_dense()
        assert labels.tolist() == [0, 1, 2, 3]

    def test_full_cycle_single_component(self):
        n = 12
        g = nx.DiGraph([(i, (i + 1) % n) for i in range(n)])
        labels = scc(digraph_matrix(g, n)).to_dense()
        assert set(labels.tolist()) == {0}


class TestLabelConvention:
    def test_label_is_min_member(self):
        g = nx.DiGraph([(5, 3), (3, 5), (1, 2), (2, 1)])
        labels = scc(digraph_matrix(g, 6)).to_dense()
        assert labels[5] == 3 and labels[3] == 3
        assert labels[1] == 1 and labels[2] == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_symmetric_matrix_equals_fastsv(self, seed):
        """On undirected (symmetric) inputs, SCC == connected components."""
        n = 20
        g = nx.gnp_random_graph(n, 0.1, seed=seed)
        src = np.array([e[0] for e in g.edges], dtype=np.int64)
        dst = np.array([e[1] for e in g.edges], dtype=np.int64)
        if src.size == 0:
            return
        a = Matrix.from_coo(
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
            True, n, n, dtype=BOOL, dup_op=ops.lor,
        )
        assert scc(a).to_dense().tolist() == fastsv(a).to_dense().tolist()


class TestEdgeCases:
    def test_empty_graph(self):
        assert scc(Matrix.sparse(BOOL, 0, 0)).size == 0

    def test_no_edges(self):
        labels = scc(Matrix.sparse(BOOL, 4, 4)).to_dense()
        assert labels.tolist() == [0, 1, 2, 3]

    def test_self_loops(self):
        a = Matrix.from_coo([0, 1], [0, 1], True, 2, 2, dtype=BOOL)
        assert scc(a).to_dense().tolist() == [0, 1]

    def test_non_square_rejected(self):
        with pytest.raises(DimensionMismatch):
            scc(Matrix.sparse(BOOL, 2, 3))


class TestProperty:
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11)),
            max_size=50,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_property(self, edges):
        n = 12
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        labels = scc(digraph_matrix(g, n)).to_dense()
        expected = {frozenset(c) for c in nx.strongly_connected_components(g)}
        assert grouping(labels) == expected
        # label convention: every label is its group's minimum
        for group in grouping(labels):
            assert labels[min(group)] == min(group)
