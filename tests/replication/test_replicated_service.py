"""ReplicatedGraphService: routing, staleness policy, backoff, failover."""

from __future__ import annotations

import pytest

from repro.model.changes import AddUser
from repro.replication import ReplicatedGraphService, default_replicas
from repro.replication.service import _META_FILE
from repro.serving.persistence import FencedError
from repro.util.timer import WallClock
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

KW = dict(tools=("graphblas-incremental",), analytics=("components",),
          max_batch=10**9, max_delay_ms=1e9)
QUERIES = ("Q1", "Q2", "components")


def _drive(svc, stream):
    for cs in stream:
        svc.submit(list(cs))
        svc.flush()


class TestKnob:
    def test_default_replicas_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICAS", raising=False)
        assert default_replicas() == 1
        monkeypatch.setenv("REPRO_REPLICAS", "3")
        assert default_replicas() == 3
        monkeypatch.setenv("REPRO_REPLICAS", "zero")
        with pytest.raises(ReproError, match="bad REPRO_REPLICAS"):
            default_replicas()
        monkeypatch.setenv("REPRO_REPLICAS", "-1")
        with pytest.raises(ReproError, match="must be >= 0"):
            default_replicas()


class TestReads:
    def test_replica_reads_match_leader_and_round_robin(self, tmp_path):
        fresh, stream = datagen_stream(47, removal_fraction=0.3,
                                       total_inserts=150)
        svc = ReplicatedGraphService(fresh(), replicas=2, data_dir=tmp_path,
                                     **KW)
        oracle_results = {}
        _drive(svc, stream[:3])
        for q in QUERIES:
            oracle_results[q] = svc._leader.query(q)
        sources = set()
        for _ in range(4):
            for q in QUERIES:
                r = svc.query(q)
                assert r.version == svc.version == 3
                assert r.result_string == oracle_results[q].result_string
                assert r.top == oracle_results[q].top
                sources.add(r.source)
        assert sources == {"node-01", "node-02"}  # both replicas serve
        svc.close()

    def test_bounded_staleness_and_monotone_reads(self, tmp_path):
        fresh, stream = datagen_stream(53, removal_fraction=0.2,
                                       total_inserts=150)
        svc = ReplicatedGraphService(fresh(), replicas=2, data_dir=tmp_path,
                                     max_staleness=2, **KW)
        served = []
        for cs in stream:
            _drive(svc, [cs])
            r = svc.query("Q1")
            assert svc.version - r.version <= 2  # the staleness contract
            served.append(r.version)
        assert served == sorted(served), f"non-monotone reads: {served}"
        svc.close()

    def test_zero_replicas_degenerates_to_leader(self, tmp_path):
        fresh, stream = datagen_stream(59, total_inserts=100)
        svc = ReplicatedGraphService(fresh(), replicas=0, data_dir=tmp_path,
                                     **KW)
        _drive(svc, stream[:2])
        r = svc.query("Q1")
        assert r.source == "leader"
        assert r.version == 2
        snap = svc.stats()["metrics"]
        assert any("repro_leader_read_fallbacks_total" in str(k) for k in snap)
        svc.close()


class TestDegradation:
    def test_dead_replica_backs_off_and_leader_serves(self, tmp_path):
        fresh, stream = datagen_stream(61, total_inserts=100)
        svc = ReplicatedGraphService(fresh(), replicas=1, data_dir=tmp_path,
                                     **KW)
        _drive(svc, stream[:2])
        svc._replicas[0].service._failed = True  # the replica process died
        r = svc.query("Q1")
        assert r.source == "leader"  # graceful degradation
        state = svc._backoff["node-01"]
        assert state["failures"] == 1
        assert state["retry_at"] > WallClock.now()
        # while in backoff the replica is not even tried
        r2 = svc.query("Q1")
        assert r2.source == "leader"
        assert svc._backoff["node-01"]["failures"] == 1
        svc.close()

    def test_backoff_doubles_and_caps(self, tmp_path, monkeypatch):
        fresh, stream = datagen_stream(67, total_inserts=100)
        svc = ReplicatedGraphService(fresh(), replicas=1, data_dir=tmp_path,
                                     backoff_base_s=1.0, backoff_cap_s=4.0,
                                     **KW)
        _drive(svc, stream[:2])
        svc._replicas[0].service._failed = True
        clock = {"t": 1000.0}
        monkeypatch.setattr(WallClock, "now", staticmethod(lambda: clock["t"]))
        waits = []
        for _ in range(4):
            svc.query("Q1")
            waits.append(svc._backoff["node-01"]["retry_at"] - clock["t"])
            clock["t"] = svc._backoff["node-01"]["retry_at"] + 0.001
        assert waits == [1.0, 2.0, 4.0, 4.0]  # doubling, then capped
        svc.close()

    def test_recovered_replica_serves_again_and_resets_backoff(
        self, tmp_path, monkeypatch
    ):
        fresh, stream = datagen_stream(71, total_inserts=100)
        svc = ReplicatedGraphService(fresh(), replicas=1, data_dir=tmp_path,
                                     backoff_base_s=1.0, **KW)
        _drive(svc, stream[:2])
        svc._replicas[0].service._failed = True
        clock = {"t": 1000.0}
        monkeypatch.setattr(WallClock, "now", staticmethod(lambda: clock["t"]))
        assert svc.query("Q1").source == "leader"
        # the replica comes back; once backoff expires it serves again
        svc._replicas[0].service._failed = False
        clock["t"] = svc._backoff["node-01"]["retry_at"] + 0.001
        assert svc.query("Q1").source == "node-01"
        assert svc._backoff["node-01"]["failures"] == 0
        svc.close()

    def test_slow_replica_times_out_to_leader(self, tmp_path, monkeypatch):
        fresh, stream = datagen_stream(73, total_inserts=100)
        svc = ReplicatedGraphService(fresh(), replicas=1, data_dir=tmp_path,
                                     read_timeout_s=0.5, **KW)
        _drive(svc, stream[:2])
        clock = {"t": 1000.0}

        def slow_now():
            clock["t"] += 0.4  # every clock read costs 0.4s: reads blow 0.5s
            return clock["t"]

        monkeypatch.setattr(WallClock, "now", staticmethod(slow_now))
        r = svc.query("Q1")
        assert r.source == "leader"
        snap = svc.stats()["metrics"]
        assert any("repro_replica_errors_total" in str(k) for k in snap)
        svc.close()


class TestFailover:
    def test_promote_elects_most_caught_up_and_fences_zombie(self, tmp_path):
        fresh, stream = datagen_stream(79, removal_fraction=0.2,
                                       total_inserts=150)
        svc = ReplicatedGraphService(fresh(), replicas=2, data_dir=tmp_path,
                                     **KW)
        _drive(svc, stream[:3])
        old_leader = svc._leader
        assert svc.promote() == 3  # residual WAL fully drained
        assert svc.epoch == 1
        assert svc.stats()["leader"] == "node-01"  # lowest index won the tie
        # the deposed leader is a fenced zombie: its next write is rejected
        with pytest.raises((FencedError, ReproError)):
            old_leader.submit([AddUser(9300)])
            old_leader.flush()
        # the fleet keeps serving and writing under the new regime
        _drive(svc, stream[3:])
        oracle = {}
        for q in QUERIES:
            oracle[q] = svc._leader.query(q).result_string
        for q in QUERIES:
            assert svc.query(q).result_string == oracle[q]
        assert svc.query("Q1").source == "node-02"  # the surviving replica
        svc.close()

    def test_promote_explicit_index(self, tmp_path):
        fresh, stream = datagen_stream(83, total_inserts=100)
        svc = ReplicatedGraphService(fresh(), replicas=2, data_dir=tmp_path,
                                     **KW)
        _drive(svc, stream[:2])
        svc.promote(index=1)
        assert svc.stats()["leader"] == "node-02"
        svc.close()

    def test_promote_without_replicas_raises(self, tmp_path):
        fresh, _ = datagen_stream(89, total_inserts=60)
        svc = ReplicatedGraphService(fresh(), replicas=0, data_dir=tmp_path,
                                     **KW)
        with pytest.raises(ReproError, match="no replicas"):
            svc.promote()
        svc.close()


class TestRecovery:
    def test_recover_resumes_fleet_and_epoch(self, tmp_path):
        fresh, stream = datagen_stream(97, removal_fraction=0.2,
                                       total_inserts=150)
        svc = ReplicatedGraphService(fresh(), replicas=1, data_dir=tmp_path,
                                     **KW)
        _drive(svc, stream[:2])
        svc.promote()
        _drive(svc, [stream[2]])
        v, epoch = svc.version, svc.epoch
        svc.close()

        rec = ReplicatedGraphService.recover(tmp_path, **KW)
        try:
            assert rec.version == v == 3
            assert rec.epoch == epoch == 1
            assert rec.stats()["leader"] == "node-01"
            _drive(rec, stream[3:])
            r = rec.query("Q1")
            assert r.version == len(stream)
        finally:
            rec.close()

    def test_fresh_ctor_refuses_existing_state(self, tmp_path):
        fresh, _ = datagen_stream(101, total_inserts=60)
        svc = ReplicatedGraphService(fresh(), replicas=1, data_dir=tmp_path,
                                     **KW)
        svc.close()
        assert (tmp_path / _META_FILE).exists()
        with pytest.raises(ReproError, match="recover"):
            ReplicatedGraphService(fresh(), replicas=1, data_dir=tmp_path,
                                   **KW)

    def test_recover_refuses_fleet_resize(self, tmp_path):
        fresh, _ = datagen_stream(103, total_inserts=60)
        svc = ReplicatedGraphService(fresh(), replicas=2, data_dir=tmp_path,
                                     **KW)
        svc.close()
        with pytest.raises(ReproError, match="rebuild"):
            ReplicatedGraphService.recover(tmp_path, replicas=1, **KW)


class TestTelemetry:
    def test_lag_in_stats_metrics_and_prometheus(self, tmp_path):
        fresh, stream = datagen_stream(107, total_inserts=100)
        svc = ReplicatedGraphService(fresh(), replicas=1, data_dir=tmp_path,
                                     **KW)
        _drive(svc, stream[:3])
        st = svc.stats()
        assert st["replicas"]["node-01"]["lag"] == 3  # no read happened yet
        assert any("repro_replication_lag" in str(k) for k in st["metrics"])
        text = svc.metrics_text()
        assert "repro_replication_lag" in text
        assert 'replica="node-01"' in text
        svc.query("Q1")
        assert svc.stats()["replicas"]["node-01"]["lag"] == 0
        text = svc.metrics_text()
        assert "repro_replica_reads_total" in text
        svc.close()
