"""Replica + DirectoryWalShipper: bootstrap, tailing, epochs, re-seeding."""

from __future__ import annotations

import pytest

from repro.model.changes import AddUser, ChangeSet
from repro.replication import DirectoryWalShipper, Replica
from repro.serving import GraphService
from repro.serving.persistence import FencedError
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

KW = dict(tools=("graphblas-incremental",), analytics=("components",),
          max_batch=10**9, max_delay_ms=1e9)
QUERIES = ("Q1", "Q2", "components")


def _leader(tmp_path, fresh):
    d = tmp_path / "leader"
    return GraphService(fresh(), data_dir=d, **KW), d


class TestShipper:
    def test_bootstrap_requires_a_snapshot(self, tmp_path):
        with pytest.raises(ReproError, match="no snapshot"):
            DirectoryWalShipper(tmp_path).bootstrap()

    def test_bootstrap_and_poll(self, tmp_path):
        fresh, stream = datagen_stream(11, removal_fraction=0.2,
                                       total_inserts=100)
        leader, d = _leader(tmp_path, fresh)
        leader.submit(list(stream[0]))
        leader.flush()
        shipper = DirectoryWalShipper(d)
        version, graph, epoch = shipper.bootstrap()
        assert (version, epoch) == (0, 0)  # the baseline snapshot
        frames = shipper.poll(version)
        assert [(v, e) for v, _, e in frames] == [(1, 0)]
        assert shipper.poll(1) == []
        leader.close()

    def test_poll_never_ships_a_torn_frame(self, tmp_path):
        fresh, _ = datagen_stream(13, total_inserts=60)
        leader, d = _leader(tmp_path, fresh)
        leader.submit([AddUser(9001)])
        leader.flush()
        leader.close()
        with open(d / "wal.csv", "a", newline="") as fh:
            fh.write("BEGIN,2,1,0\nU,9002,\n")  # crash mid-append: no COMMIT
        frames = DirectoryWalShipper(d).poll(0)
        assert [v for v, _, _ in frames] == [1]


class TestReplicaTailing:
    def test_replica_serves_identical_results(self, tmp_path):
        fresh, stream = datagen_stream(17, removal_fraction=0.3,
                                       total_inserts=150)
        leader, d = _leader(tmp_path, fresh)
        rep = Replica(DirectoryWalShipper(d), data_dir=tmp_path / "r0", **KW)
        for cs in stream:
            leader.submit(list(cs))
            leader.flush()
            rep.catch_up()
            assert rep.version == leader.version
            for q in QUERIES:
                got, want = rep.query(q), leader.query(q)
                assert got.result_string == want.result_string
                assert got.top == want.top
                assert got.source == "r0"
                assert want.source is None
        leader.close()
        rep.close()

    def test_catch_up_is_incremental_and_idempotent(self, tmp_path):
        fresh, stream = datagen_stream(19, removal_fraction=0.2,
                                       total_inserts=120)
        leader, d = _leader(tmp_path, fresh)
        rep = Replica(DirectoryWalShipper(d), data_dir=tmp_path / "r0", **KW)
        for cs in stream[:3]:
            leader.submit(list(cs))
            leader.flush()
        assert rep.catch_up() == 3
        assert rep.catch_up() == 0  # nothing new: a strict no-op
        assert rep.version == 3
        leader.close()
        rep.close()

    def test_apply_frame_skips_already_applied(self, tmp_path):
        fresh, stream = datagen_stream(23, removal_fraction=0.2,
                                       total_inserts=100)
        leader, d = _leader(tmp_path, fresh)
        leader.submit(list(stream[0]))
        leader.flush()
        rep = Replica(DirectoryWalShipper(d), data_dir=tmp_path / "r0", **KW)
        rep.catch_up()
        before = {q: rep.query(q).result_string for q in QUERIES}
        # re-deliver the whole history (a catch-up race): all no-ops
        for v, batch, epoch in rep.shipper.poll(0):
            assert rep.apply_frame(v, batch, epoch) is False
        assert rep.version == 1
        assert {q: rep.query(q).result_string for q in QUERIES} == before
        leader.close()
        rep.close()

    def test_gap_triggers_reseed(self, tmp_path):
        """Retargeting to a source whose WAL starts past us (the
        freshly-promoted-leader shape) re-bootstraps instead of failing."""
        fresh, stream = datagen_stream(29, removal_fraction=0.2,
                                       total_inserts=120)
        leader, d = _leader(tmp_path, fresh)
        rep = Replica(DirectoryWalShipper(d), data_dir=tmp_path / "r0", **KW)
        # a second source whose WAL only reaches back to its v3 snapshot
        d2 = tmp_path / "leader2"
        leader2 = GraphService(fresh(), data_dir=d2, **KW)
        for cs in stream[:3]:
            leader2.submit(list(cs))
            leader2.flush()
        leader2.snapshot()  # snapshot at v3...
        leader2._wal.close()
        (d2 / "wal.csv").unlink()  # ...and the log before it is gone
        for cs in stream[3:5]:
            leader2.submit(list(cs))
            leader2.flush()
        rep.shipper.retarget(d2)
        rep.catch_up()  # v4 is a gap from v0: re-seed at v3, then tail
        assert rep.version == leader2.version == 5
        for q in QUERIES:
            assert rep.query(q).result_string == leader2.query(q).result_string
        leader.close()
        leader2.close()
        rep.close()


class TestReplicaEpochs:
    def test_stale_epoch_frame_is_rejected(self, tmp_path):
        fresh, _ = datagen_stream(31, total_inserts=60)
        leader, d = _leader(tmp_path, fresh)
        rep = Replica(DirectoryWalShipper(d), data_dir=tmp_path / "r0", **KW)
        rep.epoch = 2  # the replica has seen epoch 2 leadership
        leader.submit([AddUser(9001)])
        leader.flush()  # frame carries epoch 0 < 2: zombie
        with pytest.raises(FencedError, match="zombie"):
            rep.catch_up()
        leader.close()
        rep.close()

    def test_higher_epoch_is_adopted_in_band(self, tmp_path):
        fresh, _ = datagen_stream(37, total_inserts=60)
        leader, d = _leader(tmp_path, fresh)
        leader._wal.epoch = 3  # a promoted leader stamps its epoch
        rep = Replica(DirectoryWalShipper(d), data_dir=tmp_path / "r0", **KW)
        leader.submit([AddUser(9001)])
        leader.flush()
        rep.catch_up()
        assert rep.epoch == 3
        assert rep.service._wal.epoch == 3  # the regime change is durable
        leader.close()
        rep.close()


class TestPromotion:
    def test_promote_fences_drains_and_adopts(self, tmp_path):
        fresh, stream = datagen_stream(41, removal_fraction=0.2,
                                       total_inserts=120)
        leader, d = _leader(tmp_path, fresh)
        rep = Replica(DirectoryWalShipper(d), data_dir=tmp_path / "r0", **KW)
        for cs in stream[:3]:
            leader.submit(list(cs))
            leader.flush()
        # the replica is behind when the failover starts
        assert rep.version == 0
        svc = rep.promote(1)
        assert svc is rep.service
        assert rep.version == 3  # residual WAL drained: nothing lost
        assert rep.epoch == 1
        # the old leader is now a zombie: its next append is rejected
        with pytest.raises((FencedError, ReproError)):
            leader.submit([AddUser(9100)])
            leader.flush()
        # the new leader serves and takes writes under the new epoch
        svc.submit(list(stream[3]))
        svc.flush()
        assert svc.version == 4
        frames = DirectoryWalShipper(tmp_path / "r0").poll(3)
        assert [(v, e) for v, _, e in frames] == [(4, 1)]
        rep.close()

    def test_promote_epoch_must_advance(self, tmp_path):
        fresh, _ = datagen_stream(43, total_inserts=60)
        leader, d = _leader(tmp_path, fresh)
        rep = Replica(DirectoryWalShipper(d), data_dir=tmp_path / "r0", **KW)
        with pytest.raises(ReproError, match="must exceed"):
            rep.promote(0)
        leader.close()
        rep.close()
