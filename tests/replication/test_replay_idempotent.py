"""Property: WAL replay is idempotent and version-monotone.

Replication's correctness rests on frames being safely re-deliverable:
a catch-up race, a retried poll after a ``ship`` crash, or a re-seeded
replica re-reading the log must all be unable to double-apply a change.
These properties pin that down over randomized streams *with removal
frames* -- the case where double-apply would not just skew counts but
try to remove absent edges.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings

from repro.model.changes import RemoveFriendship, RemoveLike
from repro.replication import DirectoryWalShipper, Replica
from repro.serving import GraphService
from tests.conftest import clone_changes, datagen_stream, graph_and_updates

KW = dict(tools=("graphblas-incremental",), analytics=("components",),
          max_batch=10**9, max_delay_ms=1e9)
QUERIES = ("Q1", "Q2", "components")


def _reads(svc):
    return {q: (svc.query(q).result_string, svc.query(q).top) for q in QUERIES}


@given(graph_and_updates(removals=True))
@settings(max_examples=10, deadline=None)
def test_full_redelivery_is_a_noop(case):
    _, g, change_sets = case
    with tempfile.TemporaryDirectory() as td:
        leader = GraphService(g, data_dir=Path(td) / "leader", **KW)
        for cs in clone_changes(change_sets):
            leader.submit(cs)
            leader.flush()
        rep = Replica(DirectoryWalShipper(Path(td) / "leader"),
                      data_dir=Path(td) / "r0", **KW)
        rep.catch_up()
        assert rep.version == leader.version
        before = _reads(rep)

        frames = rep.shipper.poll(0)
        # the log itself is version-monotone and gap-free
        assert [v for v, _, _ in frames] == list(range(1, leader.version + 1))
        for v, batch, epoch in frames:
            assert rep.apply_frame(v, batch, epoch) is False  # strict no-op
            assert rep.version == leader.version  # never regresses
        assert _reads(rep) == before
        assert rep.catch_up() == 0
        leader.close()
        rep.close()


@given(graph_and_updates(removals=True))
@settings(max_examples=10, deadline=None)
def test_redelivery_interleaved_with_live_tailing(case):
    """Re-delivering the prefix mid-stream must not disturb the tail."""
    _, g, change_sets = case
    half = max(1, len(change_sets) // 2)
    with tempfile.TemporaryDirectory() as td:
        leader = GraphService(g, data_dir=Path(td) / "leader", **KW)
        stream = clone_changes(change_sets)
        for cs in stream[:half]:
            leader.submit(cs)
            leader.flush()
        rep = Replica(DirectoryWalShipper(Path(td) / "leader"),
                      data_dir=Path(td) / "r0", **KW)
        rep.catch_up()
        for v, batch, epoch in rep.shipper.poll(0):  # a catch-up race
            assert rep.apply_frame(v, batch, epoch) is False
        for cs in stream[half:]:
            leader.submit(cs)
            leader.flush()
        rep.catch_up()
        # empty change sets are no-op batches, so the version can trail
        # len(stream); replica == leader is the actual contract
        assert rep.version == leader.version
        assert _reads(rep) == _reads(leader)
        leader.close()
        rep.close()


def test_removal_frames_redeliver_as_noops(tmp_path):
    """Deterministic pin on the removal case: the stream is guaranteed to
    carry Remove* changes (hypothesis examples only usually do)."""
    fresh, stream = datagen_stream(139, removal_fraction=0.5,
                                   total_inserts=150)
    kinds = {type(c) for cs in stream for c in cs}
    assert {RemoveLike, RemoveFriendship} & kinds, "stream has no removals"
    leader = GraphService(fresh(), data_dir=tmp_path / "leader", **KW)
    for cs in stream:
        leader.submit(list(cs))
        leader.flush()
    rep = Replica(DirectoryWalShipper(tmp_path / "leader"),
                  data_dir=tmp_path / "r0", **KW)
    rep.catch_up()
    before = _reads(rep)
    for v, batch, epoch in rep.shipper.poll(0):
        assert rep.apply_frame(v, batch, epoch) is False
    assert rep.version == leader.version
    assert _reads(rep) == before
    leader.close()
    rep.close()
