"""The failover property: kill the leader at every crash point, promote,
lose nothing.

For each registered crash point on the leader's write path the suite
drives a replicated fleet mid-stream, kills the leader exactly there (a
:class:`FaultPlan` aimed at ``node-00`` -- replicas fire the same points
on their own WALs, so path matching is what makes the kill surgical),
promotes a replica, resumes the client's retry loop, and asserts:

* no committed write is lost -- the promoted leader drains the old
  leader's WAL to exactly ``last_version()``;
* results are bit-identical to a service that never crashed;
* served ``version`` tags stay monotone across the failover;
* the deposed leader is fenced -- a zombie write raises instead of
  forking history.

``tests/faults/test_faults.py`` pins the registry inventory; here every
point must be *classified* (leader-path or replica-path), so adding a
crash point without deciding its failover story fails the suite.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, InjectedCrash, at_path, crash_points, inject
from repro.model.changes import AddUser
from repro.replication import ReplicatedGraphService
from repro.serving import GraphService
from repro.serving.persistence import ChangeLog, FencedError
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

KW = dict(tools=("graphblas-incremental",), analytics=("components",),
          max_batch=10**9, max_delay_ms=1e9)
QUERIES = ("Q1", "Q2", "components")

#: points on the leader's write path: the kill-and-promote property runs
#: once per entry
LEADER_POINTS = ("wal-append", "post-append-pre-apply", "snapshot-write")
#: points on the replica/failover path, each with its own scenario below
REPLICA_POINTS = ("ship", "promote")
#: points on the gateway admission/drain path -- outside the replication
#: durability domain; their crash scenarios (ticket not burned, drain
#: retryable, queue preserved) live in tests/gateway/test_gateway_core.py
GATEWAY_POINTS = ("gateway-accept", "gateway-enqueue", "gateway-drain")
#: points on the arena-storage flush path -- they only fire under a
#: file-backed backend (``REPRO_STORAGE=mmap``/``sqlite``), so the heap
#: fleet here would never reach them; their crash-then-recover scenario
#: lives in tests/storage/test_storage_faults.py
STORAGE_POINTS = ("arena-flush",)


def test_every_crash_point_is_classified():
    """A new crash point must be placed in exactly one bucket here --
    and thereby get a failover scenario -- before the suite passes."""
    import repro.gateway  # noqa: F401 - registers the gateway-* points
    import repro.storage  # noqa: F401 - registers arena-flush

    buckets = (set(LEADER_POINTS), set(REPLICA_POINTS), set(GATEWAY_POINTS),
               set(STORAGE_POINTS))
    assert set(crash_points()) == set().union(*buckets)
    assert sum(len(b) for b in buckets) == len(set().union(*buckets))


def test_observation_mode_maps_the_crash_schedule(tmp_path):
    """An empty plan records where a workload *would* die: the discovery
    pass that tells the property test its points are actually exercised."""
    fresh, stream = datagen_stream(109, total_inserts=100)
    plan = FaultPlan()
    with inject(plan):
        svc = ReplicatedGraphService(fresh(), replicas=1, data_dir=tmp_path,
                                     snapshot_every=2, **KW)
        for cs in stream[:2]:
            svc.submit(list(cs))
            svc.flush()
        svc.query("Q1")
        svc.close()
    points = {p for p, _ in plan.hits}
    assert {"wal-append", "post-append-pre-apply",
            "snapshot-write", "ship"} <= points
    assert plan.fired() == []  # observation only: nothing crashed
    assert all("path" in ctx for _, ctx in plan.hits)  # at_path targetable


class TestKillLeaderAtEveryPoint:
    @pytest.mark.parametrize("point", LEADER_POINTS)
    def test_promote_loses_nothing_and_matches_oracle(self, tmp_path, point):
        fresh, stream = datagen_stream(127, removal_fraction=0.3,
                                       total_inserts=150)
        svc = ReplicatedGraphService(fresh(), replicas=2,
                                     data_dir=tmp_path / "fleet",
                                     snapshot_every=2, **KW)
        served = []

        def drive(css):
            for cs in css:
                svc.submit(list(cs))
                svc.flush()
                served.append(svc.query("Q1").version)

        drive(stream[:2])
        plan = FaultPlan().crash(point, match=at_path("node-00"))
        crashed = False
        with inject(plan):
            try:
                drive(stream[2:])
            except InjectedCrash:
                crashed = True
        assert crashed, f"{point} never fired on the leader"
        assert plan.fired() == [point]

        # the ground truth a failover must preserve: the old leader's
        # committed (fsynced) WAL frontier
        old_leader = svc._leader
        committed = ChangeLog(tmp_path / "fleet" / "node-00").last_version()
        assert committed >= 2

        assert svc.promote() == committed  # drained: nothing committed lost
        assert svc.epoch == 1
        assert svc.stats()["leader"] == "node-01"

        # the zombie cannot fork history: fenced (or already fail-stopped)
        with pytest.raises((FencedError, ReproError)):
            old_leader.submit([AddUser(987654)])
            old_leader.flush()

        # the client retries everything past the committed frontier
        drive(stream[committed:])
        assert svc.version == len(stream)
        assert served == sorted(served), f"non-monotone reads: {served}"

        oracle = GraphService(fresh(), **KW)
        for cs in stream:
            oracle.submit(list(cs))
            oracle.flush()
        try:
            for q in QUERIES:
                want = oracle.query(q)
                via_fleet = svc.query(q)
                via_leader = svc._leader.query(q)
                assert via_fleet.result_string == want.result_string
                assert via_fleet.top == want.top
                assert via_leader.result_string == want.result_string
        finally:
            oracle.close()
            svc.close()


class TestReplicaPathCrashes:
    def test_ship_crash_backs_off_and_the_fleet_still_serves(self, tmp_path):
        """A replica dying inside its shipper poll is a *read-path* fault:
        the front backs it off and the read lands elsewhere, lossless."""
        fresh, stream = datagen_stream(131, total_inserts=100)
        svc = ReplicatedGraphService(fresh(), replicas=2, data_dir=tmp_path,
                                     **KW)
        for cs in stream[:2]:
            svc.submit(list(cs))
            svc.flush()
        plan = FaultPlan().crash("ship")
        with inject(plan):
            r = svc.query("Q1")
        assert plan.fired() == ["ship"]
        assert r.source == "node-02"  # node-01 died polling; next took over
        assert r.version == 2
        assert svc._backoff["node-01"]["failures"] == 1
        assert r.result_string == svc._leader.query("Q1").result_string
        svc.close()

    def test_promote_crash_leaves_fleet_intact_and_retryable(self, tmp_path):
        """Dying at the promote entry point (before the fence) must leave
        the old regime fully live: leader writable, both replicas in the
        fleet, epoch unchanged -- and the retry must simply work."""
        fresh, stream = datagen_stream(137, removal_fraction=0.2,
                                       total_inserts=120)
        svc = ReplicatedGraphService(fresh(), replicas=2, data_dir=tmp_path,
                                     **KW)
        for cs in stream[:3]:
            svc.submit(list(cs))
            svc.flush()
        with inject(FaultPlan().crash("promote")):
            with pytest.raises(InjectedCrash):
                svc.promote()
        assert svc.epoch == 0
        assert len(svc._replicas) == 2
        assert svc.stats()["leader"] == "node-00"
        svc.submit(list(stream[3]))  # the unfenced leader still writes
        svc.flush()
        assert svc.promote() == 4  # the retry succeeds and drains fully
        assert svc.stats()["leader"] == "node-01"
        for cs in stream[4:]:
            svc.submit(list(cs))
            svc.flush()
        assert svc.query("Q1").version == len(stream)
        svc.close()
