"""Deadline-aware replicated reads (satellite 2): the budget is absolute.

Per-attempt ``read_timeout_s`` used to be the only bound, so a retry
loop over K replicas could wait K * timeout -- far past any caller
budget.  Now an absolute deadline caps the *total*: effective per-attempt
timeout is ``min(read_timeout_s, deadline - now)``, no attempt starts
past the deadline, an exhausted budget raises ``DeadlineExceeded``
instead of degrading to the leader, and a replica whose attempt failed
only because the deadline squeezed its timeout is not punished with
backoff.  All clock movement here is an injected frozen clock.
"""

from __future__ import annotations

import pytest

from repro.model.changes import AddUser
from repro.replication import ReplicatedGraphService
from repro.util.timer import WallClock
from repro.util.validation import DeadlineExceeded

KW = dict(tools=("graphblas-incremental",), max_batch=10**9,
          max_delay_ms=1e9)


@pytest.fixture
def clock(monkeypatch):
    class _Clock:
        t = 1000.0

        @classmethod
        def tick(cls, dt):
            cls.t += dt

    monkeypatch.setattr(WallClock, "now", staticmethod(lambda: _Clock.t))
    return _Clock


def _fleet(tmp_path, clock, replicas=2, **kw):
    svc = ReplicatedGraphService(replicas=replicas, data_dir=tmp_path,
                                 **{**KW, **kw})
    svc.submit([AddUser(1), AddUser(2)])
    svc.flush()
    return svc


class TestDeadlinePropagation:
    def test_pre_expired_deadline_sheds_before_any_attempt(self, tmp_path,
                                                           clock):
        svc = _fleet(tmp_path, clock)
        try:
            with pytest.raises(DeadlineExceeded, match="before any attempt"):
                svc.query("Q1", deadline=clock.t - 0.001)
            # no replica was touched, so none went into backoff
            assert all(s["failures"] == 0 for s in svc._backoff.values())
        finally:
            svc.close()

    def test_read_without_deadline_unchanged(self, tmp_path, clock):
        svc = _fleet(tmp_path, clock)
        try:
            assert svc.query("Q1").version == 1
        finally:
            svc.close()

    def test_total_wait_capped_not_per_attempt(self, tmp_path, clock,
                                               monkeypatch):
        # every replica attempt burns 0.6s of simulated time; with
        # read_timeout_s=1.0 and 2 replicas the old per-attempt regime
        # would happily wait 1.2s+leader -- a 0.5s budget must stop
        # after the first squeezed attempt instead
        svc = _fleet(tmp_path, clock, read_timeout_s=1.0)
        try:
            attempts = []
            for rep in svc._replicas:
                real_query = rep.query

                def slow_query(q, tool=None, _rep=rep, _real=real_query):
                    attempts.append(_rep.name)
                    clock.tick(0.6)  # slower than the squeezed timeout
                    return _real(q, tool)

                monkeypatch.setattr(rep, "query", slow_query)
            start = clock.t
            with pytest.raises(DeadlineExceeded, match="budget"):
                svc.query("Q1", deadline=start + 0.5)
            # attempt 1's effective timeout is min(1.0, 0.5) = 0.5s and
            # its 0.6s cost overruns it; by then the budget is spent, so
            # no second attempt starts -- total simulated wait is bounded
            # by budget + one attempt, never n_replicas * read_timeout_s
            assert clock.t - start <= 0.5 + 0.6
            assert len(attempts) == 1
        finally:
            svc.close()

    def test_budget_exhaustion_never_falls_back_to_leader(self, tmp_path,
                                                          clock, monkeypatch):
        svc = _fleet(tmp_path, clock, read_timeout_s=0.2)
        try:
            for rep in svc._replicas:
                def dead_query(q, tool=None):
                    raise OSError("replica socket gone")

                monkeypatch.setattr(rep, "query", dead_query)
            leader_reads = []
            real_leader_query = svc._leader.query
            monkeypatch.setattr(
                svc._leader, "query",
                lambda q, tool=None: leader_reads.append(q)
                or real_leader_query(q, tool),
            )
            # without a deadline, dead replicas degrade to the leader
            assert svc.query("Q1").source == "leader"
            assert leader_reads == ["Q1"]
            # with the budget already spent, shed instead of degrading
            with pytest.raises(DeadlineExceeded):
                svc.query("Q1", deadline=clock.t)
            assert leader_reads == ["Q1"]  # leader untouched the 2nd time
        finally:
            svc.close()

    def test_squeezed_attempt_does_not_backoff_replica(self, tmp_path, clock,
                                                       monkeypatch):
        # the replica takes 0.3s -- within read_timeout_s=1.0, so it is
        # healthy; only the caller's 0.2s budget made it "too slow"
        svc = _fleet(tmp_path, clock, replicas=1, read_timeout_s=1.0)
        try:
            rep = svc._replicas[0]
            real_query = rep.query

            def busy_query(q, tool=None):
                clock.tick(0.3)
                return real_query(q, tool)

            monkeypatch.setattr(rep, "query", busy_query)
            with pytest.raises(DeadlineExceeded):
                svc.query("Q1", deadline=clock.t + 0.2)
            state = svc._backoff[rep.name]
            assert state["failures"] == 0
            assert state["retry_at"] == 0.0
            # and the replica serves the very next unhurried read
            assert svc.query("Q1").source == rep.name
        finally:
            svc.close()

    def test_genuinely_slow_attempt_still_backs_off(self, tmp_path, clock,
                                                    monkeypatch):
        # 1.5s elapsed > read_timeout_s=1.0: slow regardless of deadline,
        # so the failure counts and backoff engages as before
        svc = _fleet(tmp_path, clock, replicas=1, read_timeout_s=1.0)
        try:
            rep = svc._replicas[0]
            real_query = rep.query

            def glacial_query(q, tool=None):
                clock.tick(1.5)
                return real_query(q, tool)

            monkeypatch.setattr(rep, "query", glacial_query)
            r = svc.query("Q1", deadline=clock.t + 5.0)
            assert r.source == "leader"  # budget left: degrade, not shed
            assert svc._backoff[rep.name]["failures"] == 1
            assert svc._backoff[rep.name]["retry_at"] > clock.t
        finally:
            svc.close()
