"""Property: the two SocialGraph storage strategies are indistinguishable.

A Matrix-backed (legacy log-flush) and a DynamicMatrix-backed (rebuild-free)
graph driven through the same change stream -- inserts, removals, duplicate
and cancelling ops -- must expose identical canonical COO for all four
relations and identical Q1/Q2 top-k at every step.  This is the oracle that
lets the serving path default to the dynamic storage.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import generate_change_sets, generate_graph
from repro.model import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
    SocialGraph,
)
from repro.queries import Q1Batch, Q2Batch

RELATIONS = ("root_post", "likes", "friends", "commented")


def assert_graphs_equal(a: SocialGraph, b: SocialGraph) -> None:
    for name in RELATIONS:
        ma, mb = getattr(a, name), getattr(b, name)
        assert ma.shape == mb.shape, name
        for x, y in zip(ma.to_coo(), mb.to_coo()):
            assert np.array_equal(x, y), name
    # the dynamic strategy's likes-transpose index must mirror likes exactly
    for g in (a, b):
        likes_t = getattr(g, "_likes_t", None)
        if likes_t is not None:
            lt = likes_t.view()
            assert lt.isequal(g.likes.T)
    assert Q1Batch(a).result_string() == Q1Batch(b).result_string()
    assert (
        Q2Batch(a, algorithm="unionfind").result_string()
        == Q2Batch(b, algorithm="unionfind").result_string()
    )


def _run_datagen_equivalence(storage, seed, removal_fraction):
    dyn = generate_graph(1, seed=seed, storage=storage)
    mat = generate_graph(1, seed=seed, storage="matrix")
    stream = generate_change_sets(
        dyn,
        total_inserts=200,
        num_change_sets=8,
        seed=seed + 1,
        removal_fraction=removal_fraction,
    )
    assert_graphs_equal(dyn, mat)
    for cs in stream:
        d1 = dyn.apply(cs)
        d2 = mat.apply(cs)
        # the deltas the incremental engines consume must agree too
        for field in ("new_likes", "new_friendships", "removed_likes",
                      "removed_friendships", "new_root_post_edges"):
            p1, p2 = getattr(d1, field), getattr(d2, field)
            assert sorted(zip(*map(np.ndarray.tolist, p1))) == sorted(
                zip(*map(np.ndarray.tolist, p2))
            ), field
        assert_graphs_equal(dyn, mat)


@pytest.mark.parametrize("seed", [3, 11, 23])
@pytest.mark.parametrize("removal_fraction", [0.0, 0.35])
def test_datagen_streams_agree(seed, removal_fraction):
    _run_datagen_equivalence("dynamic", seed, removal_fraction)


@pytest.mark.parametrize("backend", ["mmap", "sqlite"])
def test_file_backed_arenas_agree_with_matrix_oracle(backend):
    """The out-of-core backends run the same equivalence gauntlet the
    heap arena does -- one grid point each; the wider sweep lives in
    tests/storage/test_backend_conformance.py."""
    _run_datagen_equivalence(backend, seed=3, removal_fraction=0.35)


# -- hypothesis: adversarial tiny streams (duplicates, cancelling ops) -----

_edge_ops = st.lists(
    st.tuples(
        st.sampled_from(["like", "unlike", "friend", "unfriend"]),
        st.integers(0, 3),   # user slot
        st.integers(0, 2),   # comment slot / second user slot
    ),
    max_size=40,
)


def _seed_pair() -> tuple[SocialGraph, SocialGraph]:
    pair = []
    for storage in ("dynamic", "matrix"):
        g = SocialGraph(storage=storage)
        cs = ChangeSet(
            [AddUser(100 + i) for i in range(4)]
            + [AddPost(10, 1, 100)]
            + [AddComment(20 + i, 2 + i, 100 + i % 4, 10) for i in range(3)]
        )
        g.apply(cs)
        pair.append(g)
    return pair[0], pair[1]


@given(ops_seq=_edge_ops)
@settings(max_examples=50, deadline=None)
def test_random_edge_ops_agree(ops_seq):
    dyn, mat = _seed_pair()
    changes = []
    for kind, u, x in ops_seq:
        if kind == "like":
            changes.append(AddLike(100 + u, 20 + x))
        elif kind == "unlike":
            changes.append(RemoveLike(100 + u, 20 + x))
        elif kind == "friend" and u % 4 != x:
            changes.append(AddFriendship(100 + u, 100 + x))
        elif kind == "unfriend" and u % 4 != x:
            changes.append(RemoveFriendship(100 + u, 100 + x))
    # split into a few change sets so flush boundaries are exercised
    third = max(1, len(changes) // 3)
    for lo in range(0, len(changes), third):
        cs = ChangeSet(changes[lo : lo + third])
        dyn.apply(cs)
        mat.apply(cs)
        assert_graphs_equal(dyn, mat)


def test_unknown_storage_rejected():
    from repro.util.validation import ReproError

    with pytest.raises(ReproError, match="unknown storage"):
        SocialGraph(storage="hologram")
