"""Regression tests: flush-on-read must not destroy matrix caches.

Before the rebuild-free update path, ``Matrix.resize`` cleared the cached
``indptr``/transpose even when the dimensions were unchanged, and
``SocialGraph._flush`` ran a resize of every relation on *every* property
access -- so a read-only workload recomputed O(nnz) derived state per read.
These tests pin the fix: object identity of the caches across reads that
change nothing, and correct refresh when something does change.
"""

import numpy as np

from repro.graphblas import ops
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import INT64
from tests.conftest import build_paper_graph, paper_update


def small_matrix() -> Matrix:
    rng = np.random.default_rng(11)
    return Matrix.from_coo(
        rng.integers(0, 6, 15), rng.integers(0, 5, 15), rng.integers(1, 9, 15),
        6, 5, dtype=INT64, dup_op=ops.plus,
    )


class TestMatrixResize:
    def test_same_dims_is_noop(self):
        m = small_matrix()
        ip = m.indptr
        t = m.T
        m.resize(6, 5)
        assert m.indptr is ip
        assert m.T is t

    def test_grow_extends_indptr_in_place(self):
        m = small_matrix()
        ip = m.indptr
        m.resize(9, 5)
        assert m.indptr.size == 10
        assert m.indptr[:7].tolist() == ip[:7].tolist()
        assert (m.indptr[7:] == ip[-1]).all()
        # and the extended cache equals a cold rebuild
        fresh = Matrix.from_coo(*m.to_coo(), 9, 5, dtype=INT64)
        assert m.indptr.tolist() == fresh.indptr.tolist()

    def test_grow_drops_transpose(self):
        m = small_matrix()
        t = m.T
        m.resize(6, 8)
        assert m.T is not t
        assert m.T.shape == (8, 6)

    def test_shrink_still_filters(self):
        m = small_matrix()
        m.indptr
        m.resize(3, 3)
        assert m.shape == (3, 3)
        r, c, _ = m.to_coo()
        assert (r < 3).all() and (c < 3).all()


class TestSocialGraphFlush:
    def test_repeated_reads_preserve_identity(self):
        g = build_paper_graph()
        likes = g.likes
        ip = likes.indptr
        t = likes.T
        for _ in range(3):
            assert g.likes is likes
            assert g.likes.indptr is ip
            assert g.likes.T is t
            # reads of the *other* relations must not clobber likes' caches
            g.root_post, g.friends, g.commented
            assert likes.indptr is ip and likes.T is t

    def test_update_refreshes_values(self):
        g = build_paper_graph()
        likes = g.likes
        stale_ip = likes.indptr
        nvals = likes.nvals
        g.apply(paper_update())
        fresh = g.likes
        assert fresh.nvals == nvals + 2
        assert fresh.indptr is not stale_ip
        # spliced view equals a cold canonical rebuild
        r, c, v = fresh.to_coo()
        rebuilt = Matrix.from_coo(r, c, v, fresh.nrows, fresh.ncols, dtype=fresh.dtype)
        assert fresh.isequal(rebuilt)
        assert fresh.indptr.tolist() == rebuilt.indptr.tolist()

    def test_both_storages_preserve_caches(self):
        for storage in ("dynamic", "matrix"):
            g = build_paper_graph_with(storage)
            likes = g.likes
            ip = likes.indptr
            assert g.likes.indptr is ip


def build_paper_graph_with(storage: str):
    from repro.model import SocialGraph

    src = build_paper_graph()
    if storage == src.storage:
        return src
    g = SocialGraph(storage=storage)
    for uid, name in ((101, "u1"), (102, "u2"), (103, "u3"), (104, "u4")):
        g.add_user(uid, name)
    g.add_post(11, 10, 101)
    g.add_post(12, 11, 102)
    g.add_comment(21, 20, 102, 11)
    g.add_comment(22, 21, 101, 21)
    g.add_comment(23, 22, 103, 12)
    g.add_friendship(102, 103)
    g.add_friendship(103, 104)
    for u, c in ((102, 21), (103, 21), (101, 22), (103, 22), (104, 22)):
        g.add_like(u, c)
    return g
