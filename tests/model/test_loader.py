"""CSV round-trips for graphs and change sequences."""

import pytest

from repro.model import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    load_change_sets,
    load_graph,
    save_change_sets,
    save_graph,
)
from repro.util.validation import ReproError

from tests.conftest import build_paper_graph, paper_update


class TestGraphRoundtrip:
    def test_counts_preserved(self, tmp_path):
        g = build_paper_graph()
        save_graph(tmp_path, g)
        back = load_graph(tmp_path)
        assert back.stats() == g.stats()

    def test_matrices_preserved(self, tmp_path):
        g = build_paper_graph()
        save_graph(tmp_path, g)
        back = load_graph(tmp_path)
        assert back.root_post.isequal(g.root_post)
        assert back.likes.isequal(g.likes)
        assert back.friends.isequal(g.friends)
        assert back.commented.isequal(g.commented)

    def test_attributes_preserved(self, tmp_path):
        g = build_paper_graph()
        save_graph(tmp_path, g)
        back = load_graph(tmp_path)
        assert back.post_timestamps.tolist() == g.post_timestamps.tolist()
        assert back.comment_timestamps.tolist() == g.comment_timestamps.tolist()
        assert back._user_names == g._user_names

    def test_queries_identical_after_roundtrip(self, tmp_path):
        from repro.queries import Q1Batch, Q2Batch

        g = build_paper_graph()
        save_graph(tmp_path, g)
        back = load_graph(tmp_path)
        assert Q1Batch(back).evaluate() == Q1Batch(g).evaluate()
        assert Q2Batch(back).evaluate() == Q2Batch(g).evaluate()


class TestChangeSetRoundtrip:
    def test_roundtrip(self, tmp_path):
        sets = [paper_update(), ChangeSet([AddUser(999, "x"), AddPost(888, 5, 999)])]
        save_change_sets(tmp_path, sets)
        back = load_change_sets(tmp_path)
        assert len(back) == 2
        assert back[0].changes == sets[0].changes
        assert back[1].changes == sets[1].changes

    def test_file_ordering(self, tmp_path):
        sets = [ChangeSet([AddUser(i)]) for i in range(12)]
        save_change_sets(tmp_path, sets)
        back = load_change_sets(tmp_path)
        assert [cs.changes[0].user_id for cs in back] == list(range(12))

    def test_unknown_tag_raises(self, tmp_path):
        (tmp_path / "change01.csv").write_text("Z,1,2\n")
        with pytest.raises(ReproError):
            load_change_sets(tmp_path)

    def test_empty_directory(self, tmp_path):
        assert load_change_sets(tmp_path) == []
