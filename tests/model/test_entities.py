"""IdMap and entity bookkeeping."""

import pytest

from repro.model import EntityKind, IdMap
from repro.util.validation import ReproError


class TestIdMap:
    def test_add_sequential_indices(self):
        m = IdMap(EntityKind.USER)
        assert m.add(100) == 0
        assert m.add(50) == 1
        assert len(m) == 2

    def test_duplicate_rejected(self):
        m = IdMap(EntityKind.POST)
        m.add(1)
        with pytest.raises(ReproError):
            m.add(1)

    def test_lookup_roundtrip(self):
        m = IdMap(EntityKind.COMMENT)
        m.add(42)
        assert m.index(42) == 0
        assert m.external(0) == 42

    def test_unknown_raises(self):
        m = IdMap(EntityKind.USER)
        with pytest.raises(ReproError):
            m.index(7)

    def test_contains(self):
        m = IdMap(EntityKind.USER)
        m.add(5)
        assert 5 in m and 6 not in m

    def test_externals_and_array(self):
        m = IdMap(EntityKind.USER)
        for ext in (9, 8, 7):
            m.add(ext)
        assert m.externals([2, 0]) == [7, 9]
        assert m.external_array().tolist() == [9, 8, 7]
