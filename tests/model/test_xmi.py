"""XMI serialisation: roundtrips, contest-artefact structure, error paths."""

import xml.etree.ElementTree as ET

import pytest

from repro.model import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
    SocialGraph,
)
from repro.model.xmi import (
    CHANGES_NS,
    MODEL_NS,
    load_change_sets_xmi,
    load_graph_xmi,
    save_change_sets_xmi,
    save_graph_xmi,
)
from repro.queries import Q1Batch, Q2Batch
from repro.util.validation import ReproError

from tests.conftest import build_paper_graph, paper_update


def graphs_equal(a: SocialGraph, b: SocialGraph) -> bool:
    if a.stats() != b.stats():
        return False
    for attr in ("root_post", "likes", "friends", "commented"):
        if not getattr(a, attr).isequal(getattr(b, attr)):
            return False
    return True


class TestGraphRoundtrip:
    def test_paper_graph(self, tmp_path, paper_graph):
        path = tmp_path / "initial.xmi"
        save_graph_xmi(path, paper_graph)
        assert graphs_equal(load_graph_xmi(path), paper_graph)

    def test_queries_agree_after_roundtrip(self, tmp_path, paper_graph):
        path = tmp_path / "initial.xmi"
        save_graph_xmi(path, paper_graph)
        loaded = load_graph_xmi(path)
        assert Q1Batch(loaded).result_string() == Q1Batch(paper_graph).result_string()
        assert Q2Batch(loaded).result_string() == Q2Batch(paper_graph).result_string()

    def test_generated_graph(self, tmp_path):
        """A realistic graph survives the roundtrip *semantically*.

        XMI nests comments under their submission, so interleaved insertion
        order (and with it the internal index assignment) is not preserved;
        the model itself -- and therefore every query answer -- must be.
        """
        from repro.datagen import generate_benchmark_input

        graph, _ = generate_benchmark_input(1, seed=42)
        path = tmp_path / "sf1.xmi"
        save_graph_xmi(path, graph)
        loaded = load_graph_xmi(path)
        assert loaded.stats() == graph.stats()
        assert Q1Batch(loaded).result_string() == Q1Batch(graph).result_string()
        assert Q2Batch(loaded).result_string() == Q2Batch(graph).result_string()

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.xmi"
        save_graph_xmi(path, SocialGraph())
        loaded = load_graph_xmi(path)
        assert loaded.num_users == 0
        assert loaded.num_posts == 0


class TestDocumentStructure:
    def test_root_element_namespaced(self, tmp_path, paper_graph):
        path = tmp_path / "g.xmi"
        save_graph_xmi(path, paper_graph)
        root = ET.parse(path).getroot()
        assert root.tag == f"{{{MODEL_NS}}}SocialNetworkRoot"
        assert root.get("{http://www.omg.org/XMI}version") == "2.0"

    def test_comments_nested_under_posts(self, tmp_path, paper_graph):
        path = tmp_path / "g.xmi"
        save_graph_xmi(path, paper_graph)
        root = ET.parse(path).getroot()
        posts = root.findall("posts")
        assert len(posts) == 2
        # p1 contains c1, which contains c2 (the reply tree is the XML tree)
        p1 = next(p for p in posts if p.get("id") == "11")
        c1 = p1.findall("comments")
        assert [c.get("id") for c in c1] == ["21"]
        assert [c.get("id") for c in c1[0].findall("comments")] == ["22"]

    def test_friends_written_both_directions(self, tmp_path, paper_graph):
        path = tmp_path / "g.xmi"
        save_graph_xmi(path, paper_graph)
        root = ET.parse(path).getroot()
        by_id = {u.get("id"): u.get("friends", "") for u in root.findall("users")}
        assert "u103" in by_id["102"].split()
        assert "u102" in by_id["103"].split()

    def test_liked_by_idrefs(self, tmp_path, paper_graph):
        path = tmp_path / "g.xmi"
        save_graph_xmi(path, paper_graph)
        root = ET.parse(path).getroot()
        c2 = root.find("posts/comments/comments")
        assert sorted(c2.get("likedBy").split()) == ["u101", "u103", "u104"]


class TestGraphErrors:
    def test_wrong_root_tag(self, tmp_path):
        bad = tmp_path / "bad.xmi"
        bad.write_text("<wrong/>")
        with pytest.raises(ReproError, match="SocialNetworkRoot"):
            load_graph_xmi(bad)

    def test_missing_required_attribute(self, tmp_path):
        bad = tmp_path / "bad.xmi"
        bad.write_text(
            f'<socialmedia:SocialNetworkRoot xmlns:socialmedia="{MODEL_NS}">'
            "<users name='x'/></socialmedia:SocialNetworkRoot>"
        )
        with pytest.raises(ReproError, match="missing required @id"):
            load_graph_xmi(bad)

    def test_malformed_reference(self, tmp_path):
        bad = tmp_path / "bad.xmi"
        bad.write_text(
            f'<socialmedia:SocialNetworkRoot xmlns:socialmedia="{MODEL_NS}">'
            "<users id='1' name='x'/>"
            "<posts id='2' timestamp='0' submitter='user-one'/>"
            "</socialmedia:SocialNetworkRoot>"
        )
        with pytest.raises(ReproError, match="malformed"):
            load_graph_xmi(bad)


class TestChangeSetRoundtrip:
    def test_paper_update(self, tmp_path):
        save_change_sets_xmi(tmp_path, [paper_update()])
        loaded = load_change_sets_xmi(tmp_path)
        assert len(loaded) == 1
        assert list(loaded[0]) == list(paper_update())

    def test_all_change_kinds(self, tmp_path):
        cs = ChangeSet(
            [
                AddUser(7, "grace"),
                AddPost(8, 100, 7),
                AddComment(9, 101, 7, 8),
                AddLike(7, 9),
                AddFriendship(7, 1),
                RemoveLike(7, 9),
                RemoveFriendship(7, 1),
            ]
        )
        save_change_sets_xmi(tmp_path, [cs])
        (loaded,) = load_change_sets_xmi(tmp_path)
        assert list(loaded) == list(cs)

    def test_multiple_files_numeric_order(self, tmp_path):
        sets = [ChangeSet([AddUser(i, f"u{i}")]) for i in range(1, 12)]
        save_change_sets_xmi(tmp_path, sets)
        loaded = load_change_sets_xmi(tmp_path)
        assert len(loaded) == 11
        assert [list(cs)[0].user_id for cs in loaded] == list(range(1, 12))

    def test_replay_equals_original(self, tmp_path):
        """Applying XMI-roundtripped changes reproduces the updated graph."""
        g1, g2 = build_paper_graph(), build_paper_graph()
        save_change_sets_xmi(tmp_path, [paper_update()])
        g1.apply(paper_update())
        for cs in load_change_sets_xmi(tmp_path):
            g2.apply(cs)
        assert graphs_equal(g1, g2)


class TestChangeSetErrors:
    def _write(self, tmp_path, body: str):
        p = tmp_path / "change01.xmi"
        p.write_text(
            f'<changes:ModelChangeSet xmlns:changes="{CHANGES_NS}" '
            f'xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">'
            f"{body}</changes:ModelChangeSet>"
        )
        return tmp_path

    def test_unknown_change_type(self, tmp_path):
        d = self._write(tmp_path, "<changes xsi:type='changes:Exploded'/>")
        with pytest.raises(ReproError, match="unknown change type"):
            load_change_sets_xmi(d)

    def test_unknown_element_kind(self, tmp_path):
        d = self._write(
            tmp_path, "<changes xsi:type='changes:ElementAdded' element='Blob'/>"
        )
        with pytest.raises(ReproError, match="unknown added element"):
            load_change_sets_xmi(d)

    def test_unknown_reference(self, tmp_path):
        d = self._write(
            tmp_path,
            "<changes xsi:type='changes:ReferenceAdded' reference='follows'/>",
        )
        with pytest.raises(ReproError, match="unknown added reference"):
            load_change_sets_xmi(d)

    def test_wrong_root(self, tmp_path):
        p = tmp_path / "change01.xmi"
        p.write_text("<nope/>")
        with pytest.raises(ReproError, match="ModelChangeSet"):
            load_change_sets_xmi(tmp_path)


class TestCsvXmiEquivalence:
    """The CSV and XMI loaders are interchangeable representations."""

    def test_same_graph_both_formats(self, tmp_path, paper_graph):
        from repro.model.loader import load_graph, save_graph

        save_graph(tmp_path / "csv", paper_graph)
        save_graph_xmi(tmp_path / "g.xmi", paper_graph)
        assert graphs_equal(load_graph(tmp_path / "csv"), load_graph_xmi(tmp_path / "g.xmi"))

    def test_same_changes_both_formats(self, tmp_path):
        from repro.model.loader import load_change_sets, save_change_sets

        sets = [paper_update(), ChangeSet([AddUser(500, "eve"), AddFriendship(500, 101)])]
        save_change_sets(tmp_path / "csv", sets)
        save_change_sets_xmi(tmp_path / "xmi", sets)
        assert [list(cs) for cs in load_change_sets(tmp_path / "csv")] == [
            list(cs) for cs in load_change_sets_xmi(tmp_path / "xmi")
        ]
