"""SocialGraph: matrices, growth, change application, delta contents."""

import numpy as np
import pytest

from repro.model import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    SocialGraph,
)
from repro.util.validation import ReproError

from tests.conftest import C1, C2, C3, C4, P1, P2, U1, U2, U3, U4, build_paper_graph, paper_update


class TestConstruction:
    def test_counts(self, paper_graph):
        assert paper_graph.num_users == 4
        assert paper_graph.num_posts == 2
        assert paper_graph.num_comments == 3

    def test_root_post_matrix(self, paper_graph):
        rp = paper_graph.root_post
        assert rp.shape == (2, 3)
        # p1 roots c1, c2; p2 roots c3 (internal idx order = insertion order)
        assert rp.to_dense().tolist() == [[True, True, False], [False, False, True]]

    def test_likes_matrix(self, paper_graph):
        likes = paper_graph.likes
        assert likes.shape == (3, 4)
        assert likes.nvals == 5

    def test_friends_symmetric(self, paper_graph):
        f = paper_graph.friends
        assert f.shape == (4, 4)
        dense = f.to_dense()
        assert np.array_equal(dense, dense.T)
        assert f.nvals == 4  # two undirected edges

    def test_commented_matrix(self, paper_graph):
        # only c2 is a reply (to c1)
        cm = paper_graph.commented
        assert cm.nvals == 1
        assert cm[1, 0] == True  # noqa: E712

    def test_root_derivation_through_chain(self):
        g = SocialGraph()
        g.add_user(1)
        g.add_post(10, 1, 1)
        g.add_comment(20, 2, 1, 10)
        g.add_comment(21, 3, 1, 20)
        g.add_comment(22, 4, 1, 21)  # depth 3
        assert g.comment_root_posts().tolist() == [0, 0, 0]

    def test_timestamps(self, paper_graph):
        assert paper_graph.post_timestamps.tolist() == [10, 11]
        assert paper_graph.comment_timestamps.tolist() == [20, 21, 22]


class TestValidation:
    def test_unknown_parent(self):
        g = SocialGraph()
        g.add_user(1)
        with pytest.raises(ReproError):
            g.add_comment(20, 1, 1, 999)

    def test_submission_namespace_shared(self):
        g = SocialGraph()
        g.add_user(1)
        g.add_post(10, 1, 1)
        with pytest.raises(ReproError):
            g.add_comment(10, 2, 1, 10)  # id collides with post

    def test_self_friendship_rejected(self):
        g = SocialGraph()
        g.add_user(1)
        with pytest.raises(ReproError):
            g.add_friendship(1, 1)

    def test_duplicate_like_ignored(self, paper_graph):
        assert paper_graph.add_like(U2, C1) is None
        assert paper_graph.likes.nvals == 5

    def test_duplicate_friendship_ignored(self, paper_graph):
        assert paper_graph.add_friendship(U3, U2) is None  # reversed dup
        assert paper_graph.friends.nvals == 4


class TestApply:
    def test_delta_counts(self, paper_graph, paper_change_set):
        d = paper_graph.apply(paper_change_set)
        assert d.n_comments_before == 3 and d.n_comments_after == 4
        assert d.n_users_before == d.n_users_after == 4
        assert d.new_comment_idx.tolist() == [3]
        assert not d.is_empty

    def test_delta_edges(self, paper_graph, paper_change_set):
        d = paper_graph.apply(paper_change_set)
        # new rootPost edge: p1 (idx 0) -> c4 (idx 3)
        assert list(zip(*d.new_root_post_edges)) == [(0, 3)]
        # new likes: u2 -> c2 and u4 -> c4
        assert sorted(zip(*d.new_likes)) == [(1, 1), (3, 3)]
        # new friendship: u1-u4 -> internal (0, 3)
        assert list(zip(*d.new_friendships)) == [(0, 3)]

    def test_delta_matrices(self, paper_graph, paper_change_set):
        d = paper_graph.apply(paper_change_set)
        drp = d.delta_root_post()
        assert drp.shape == (2, 4) and drp.nvals == 1
        inc = d.new_friends_incidence()
        assert inc.shape == (4, 1) and inc.nvals == 2

    def test_graph_matrices_updated(self, paper_graph, paper_change_set):
        paper_graph.apply(paper_change_set)
        assert paper_graph.root_post.shape == (2, 4)
        assert paper_graph.likes.nvals == 7
        assert paper_graph.friends.nvals == 6

    def test_empty_change_set(self, paper_graph):
        d = paper_graph.apply(ChangeSet())
        assert d.is_empty

    def test_intra_set_references(self):
        """A change set may like a comment it just created (Fig. 3b)."""
        g = SocialGraph()
        g.add_user(1)
        g.add_post(10, 1, 1)
        cs = ChangeSet([AddComment(20, 2, 1, 10), AddLike(1, 20)])
        d = g.apply(cs)
        assert d.new_likes[0].tolist() == [1 - 1]  # comment idx 0

    def test_duplicate_like_in_changeset_not_in_delta(self, paper_graph):
        d = paper_graph.apply(ChangeSet([AddLike(U2, C1)]))  # already exists
        assert d.new_likes[0].size == 0


class TestStats:
    def test_paper_example_counts(self, paper_graph):
        s = paper_graph.stats()
        assert s["nodes"] == 9
        # 3 rootPost + 1 commented + 5 likes + 2 friendships
        assert s["edges"] == 11

    def test_repr(self, paper_graph):
        assert "SocialGraph" in repr(paper_graph)


class TestChangeSet:
    def test_summary_and_count(self, paper_change_set):
        assert paper_change_set.count(AddLike) == 2
        assert "AddLike=2" in paper_change_set.summary()
        assert len(paper_change_set) == 4

    def test_append_extend_iter(self):
        cs = ChangeSet()
        cs.append(AddUser(1)).extend([AddUser(2)])
        assert [c.user_id for c in cs] == [1, 2]
