"""Storage backends threaded end-to-end through the serving layer.

``GraphService(storage=...)`` / ``REPRO_STORAGE`` must select the arena
backend for the service-built graph, snapshots of file-backed graphs
must carry their arenas and restore through the adoption fast path on
:meth:`GraphService.recover`, the ``repro_storage_bytes`` gauge must
report per-backend bytes, and a sharded service over mmap-backed shards
must stay bit-identical to the unsharded heap service.
"""

from __future__ import annotations

import json

import pytest

from repro.serving import GraphService
from repro.serving.persistence import SnapshotStore
from repro.sharding import ShardedGraphService
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

KW = dict(tools=("graphblas-incremental",), max_batch=10**9, max_delay_ms=1e9)
QUERIES = ("Q1", "Q2")


def _results(svc):
    return {q: svc.query(q).result_string for q in QUERIES}


@pytest.mark.parametrize("backend", ["mmap", "sqlite"])
class TestServiceFileBacked:
    def test_snapshot_carries_arenas_and_recover_adopts(self, backend, tmp_path):
        fresh, stream = datagen_stream(31, removal_fraction=0.25,
                                       total_inserts=120)
        svc = GraphService(storage=backend, data_dir=tmp_path,
                           snapshot_every=0, **KW)
        assert svc.graph.backend == backend
        for g_cs in fresh().to_change_stream():
            svc.submit([g_cs])
        for cs in stream[:2]:
            svc.submit(list(cs))
        svc.flush()
        version = svc.snapshot()
        want = _results(svc)

        snap = tmp_path / f"snapshot-{version:010d}"
        meta = json.loads((snap / "meta.json").read_text())
        assert meta["arenas"] == backend
        assert (snap / "arenas" / "likes").is_dir()
        # friends.csv is still written (heap loaders read it) but the
        # adopted graph gets its edges from the arena files
        assert (snap / "friends.csv").exists()

        svc.close()
        rec = GraphService.recover(tmp_path, storage=backend, **KW)
        assert rec.graph.backend == backend
        assert _results(rec) == want
        rec.close()

    def test_recovered_service_keeps_serving_writes(self, backend, tmp_path):
        """Adoption restores mutable state (key sets, free lists), not a
        read-only view: post-recovery updates must apply cleanly and
        match a service that never crashed."""
        fresh, stream = datagen_stream(33, removal_fraction=0.3,
                                       total_inserts=100)
        oracle = GraphService(fresh(), **KW)

        disk = tmp_path / "svc"
        filed = GraphService(storage=backend, data_dir=disk, **KW)
        for ch in fresh().to_change_stream():
            filed.submit([ch])
        filed.flush()
        filed.snapshot()
        filed.close()

        rec = GraphService.recover(disk, storage=backend, **KW)
        for cs in stream:
            rec.submit(list(cs))
            oracle.submit(list(cs))
            rec.flush()
            oracle.flush()
        assert _results(rec) == _results(oracle)
        rec.close()
        oracle.close()

    def test_heap_reader_can_load_arena_snapshot(self, backend, tmp_path):
        """The CSV serialisation stays authoritative: a heap-configured
        loader ignores the arenas and replays edges from the CSVs."""
        fresh, _ = datagen_stream(35, total_inserts=80)
        svc = GraphService(storage=backend, data_dir=tmp_path, **KW)
        for ch in fresh().to_change_stream():
            svc.submit([ch])
        svc.flush()
        version = svc.snapshot()
        want = _results(svc)
        svc.close()

        rec = GraphService.recover(tmp_path, storage="heap", **KW)
        assert rec.graph.backend == "heap"
        assert rec.version == version
        assert _results(rec) == want
        rec.close()

    def test_storage_bytes_gauge_reported(self, backend, tmp_path):
        fresh, _ = datagen_stream(37, total_inserts=60)
        svc = GraphService(storage=backend, data_dir=tmp_path, **KW)
        for ch in fresh().to_change_stream():
            svc.submit([ch])
        svc.flush()
        stats = svc.stats()
        gauge = stats["metrics"]["repro_storage_bytes"]
        value = gauge if not isinstance(gauge, dict) else next(iter(gauge.values()))
        assert value > 0
        assert stats["storage"]["backend"] == backend
        assert stats["storage"]["bytes"] == value
        text = svc.metrics_text()
        assert "repro_storage_bytes" in text
        assert f'backend="{backend}"' in text
        svc.close()


class TestStorageSelection:
    def test_env_knob_steers_service_built_graph(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "mmap")
        svc = GraphService(data_dir=tmp_path, **KW)
        assert svc.graph.backend == "mmap"
        # arenas live inside the service's data dir, not a tempdir
        assert str(svc.graph._storage_dir).startswith(str(tmp_path))
        svc.close()

    def test_storage_with_prebuilt_graph_raises(self):
        from repro.model.graph import SocialGraph

        g = SocialGraph()
        g.add_user(1)
        with pytest.raises(ReproError, match="pre-built graph"):
            GraphService(g, storage="mmap", **KW)

    def test_no_data_dir_uses_owned_tempdir(self):
        from pathlib import Path

        svc = GraphService(storage="mmap", **KW)
        d = Path(svc.graph._storage_dir)
        assert d.is_dir()
        svc.graph.close()
        assert not d.exists()  # close() reclaims the owned tempdir
        svc.close()


def test_sharded_mmap_matches_unsharded_heap(tmp_path, monkeypatch):
    """Shard-invariance spot-check out-of-core: with REPRO_STORAGE=mmap
    the partitioner builds mmap-backed shard graphs (storage_spec
    inheritance), and every served result stays bit-identical to the
    unsharded heap service."""
    kw = dict(KW, analytics=("components",))
    queries = QUERIES + ("components",)
    fresh, stream = datagen_stream(41, removal_fraction=0.25,
                                   total_inserts=120)
    heap_svc = GraphService(fresh(), **kw)

    monkeypatch.setenv("REPRO_STORAGE", "mmap")
    g = fresh()
    assert g.backend == "mmap"
    sharded = ShardedGraphService(g, shards=2, backend="inproc", **kw)

    for cs in stream:
        heap_svc.submit(list(cs))
        sharded.submit(list(cs))
        heap_svc.flush()
        sharded.flush()
        for q in queries:
            assert (
                sharded.query(q).result_string
                == heap_svc.query(q).result_string
            ), q
    sharded.close()
    heap_svc.close()
