"""Crash safety of the arena-storage flush path (``arena-flush`` point).

A flush that dies before its bytes are durable must leave the *previous*
flushed state readable (the meta write is the commit point), and a
service whose snapshot dies mid-arena-flush must recover through the
prior snapshot + WAL replay to results identical to a run that never
crashed -- the acceptance scenario for ``REPRO_STORAGE=mmap``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultPlan, InjectedCrash, inject
from repro.serving import GraphService
from repro.serving.persistence import SnapshotStore
from repro.storage import make_store
from tests.conftest import datagen_stream

KW = dict(tools=("graphblas-incremental",), max_batch=10**9, max_delay_ms=1e9)
QUERIES = ("Q1", "Q2")


def _results(svc):
    return {q: svc.query(q).result_string for q in QUERIES}


@pytest.mark.parametrize("backend", ["mmap", "sqlite"])
class TestStoreFlushCrash:
    def test_crashed_flush_keeps_previous_meta(self, backend, tmp_path):
        store = make_store(backend, directory=tmp_path, name="a")
        arr = store.new("cols", 3, np.int64)
        arr[:] = [1, 2, 3]
        store.put_meta({"gen": 1})
        store.flush()

        arr[:] = [7, 8, 9]
        store.put_meta({"gen": 2})
        with inject(FaultPlan().crash("arena-flush")):
            with pytest.raises(InjectedCrash):
                store.flush()
        # commit point never reached: generation 1 is what readers see
        assert store.get_meta() == {"gen": 1}
        store.close()

    def test_crashed_flush_is_retryable(self, backend, tmp_path):
        store = make_store(backend, directory=tmp_path, name="a")
        store.new("cols", 2, np.int64)
        store.put_meta({"gen": 1})
        with inject(FaultPlan().crash("arena-flush")):
            with pytest.raises(InjectedCrash):
                store.flush()
        store.flush()
        assert store.get_meta() == {"gen": 1}
        store.close()


@pytest.mark.parametrize("backend", ["mmap", "sqlite"])
def test_service_crash_during_arena_flush_recovers(backend, tmp_path):
    """Kill the arena flush inside a periodic snapshot and recover: the
    surviving v-older snapshot plus the WAL tail must converge to the
    same results as an uninterrupted twin service."""
    fresh, stream = datagen_stream(53, removal_fraction=0.25,
                                   total_inserts=120, num_change_sets=4)
    oracle = GraphService(fresh(), **KW)

    disk = tmp_path / "svc"
    svc = GraphService(storage=backend, data_dir=disk, **KW)
    for ch in fresh().to_change_stream():
        svc.submit([ch])
    svc.flush()
    svc.snapshot()  # the good snapshot recovery will fall back to

    svc.submit(list(stream[0]))
    svc.flush()
    with inject(FaultPlan().crash("arena-flush")):
        with pytest.raises(InjectedCrash):
            svc.snapshot()
    # the crashed snapshot published nothing
    published = SnapshotStore(disk, sweep=False).versions()
    assert svc.version not in published
    assert svc.version - 1 in published
    svc.close()

    rec = GraphService.recover(disk, storage=backend, **KW)
    assert rec._recovered_from[1] >= 1  # the WAL tail really replayed
    for cs in stream:
        oracle.submit(list(cs))
    oracle.flush()
    for cs in stream[1:]:
        rec.submit(list(cs))
    rec.flush()
    assert _results(rec) == _results(oracle)

    # and the recovered service can flush/snapshot again cleanly
    assert rec.snapshot() == rec.version
    rec.close()
    oracle.close()


def test_published_snapshot_survives_later_crashes(tmp_path):
    """Copy-on-snapshot (never hardlink): arena files inside a published
    snapshot must be unaffected by later live-arena writes and flushes,
    crashed or not."""
    fresh, stream = datagen_stream(59, total_inserts=80)
    disk = tmp_path / "svc"
    svc = GraphService(storage="mmap", data_dir=disk, **KW)
    for ch in fresh().to_change_stream():
        svc.submit([ch])
    svc.flush()
    version = svc.snapshot()
    snap = disk / f"snapshot-{version:010d}"
    before = {
        p.relative_to(snap): p.read_bytes()
        for p in sorted((snap / "arenas").rglob("*"))
        if p.is_file()
    }

    svc.submit(list(stream[0]))
    svc.flush()
    with inject(FaultPlan().crash("arena-flush")):
        with pytest.raises(InjectedCrash):
            svc.snapshot()
    svc.graph.flush_storage()  # a successful live flush, post-crash

    after = {
        p.relative_to(snap): p.read_bytes()
        for p in sorted((snap / "arenas").rglob("*"))
        if p.is_file()
    }
    assert before == after
    svc.close()
