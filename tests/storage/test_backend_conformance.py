"""Backend conformance: heap / mmap / sqlite arenas are bit-identical.

The same :class:`~repro.graphblas.dynamic.DynamicMatrix` mutation streams
-- inserts, removals, duplicate writes, row growth, matrix resize,
compaction -- run against all three stores, and every observable
(``to_coo``, frozen Matrix, free lists, relocation counter) must match
the heap reference exactly.  The durable backends additionally round-trip
through ``flush_storage`` + :meth:`DynamicMatrix.open` and through
``snapshot_to`` / ``adopt_from`` and must come back indistinguishable,
*including* the ability to keep mutating afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas.dynamic import DynamicMatrix
from repro.graphblas.types import FP64, INT64
from repro.storage import BACKENDS, make_store
from repro.util.validation import ReproError

ALL = sorted(BACKENDS)
DURABLE = [b for b in ALL if BACKENDS[b]]


def _store(backend, tmp_path, name="conf"):
    return make_store(backend, directory=tmp_path, name=name)


def _mixed_stream(dm: DynamicMatrix) -> None:
    """A deterministic gauntlet: bulk insert, overwrite, remove (block
    shrink + free-list recycling), row growth past several capacity
    classes, and a matrix resize."""
    rng = np.random.default_rng(7)
    rows = rng.integers(0, dm.nrows, 400)
    cols = rng.integers(0, dm.ncols, 400)
    dm.assign_coo(rows, cols, rng.integers(1, 100, 400))
    # overwrite half the stream (duplicate coordinates, accum=None)
    dm.assign_coo(rows[:200], cols[:200], 7)
    dm.remove_coo(rows[::3], cols[::3])
    # one hot row through multiple doublings
    dm.assign_coo(
        np.zeros(50, np.int64), np.arange(50, dtype=np.int64) * 2 % dm.ncols,
        3,
    )
    dm.resize(dm.nrows + 5, dm.ncols + 5)
    dm.set_element(dm.nrows - 1, dm.ncols - 1, 11)


def _assert_same(a: DynamicMatrix, b: DynamicMatrix) -> None:
    """Bit-identical observables -- including internal layout state that
    any later mutation's placement decisions depend on."""
    assert a.shape == b.shape
    assert a.nvals == b.nvals
    for x, y in zip(a.to_coo(), b.to_coo()):
        assert np.array_equal(x, y)
    assert a.freeze().isequal(b.freeze())
    assert a._used == b._used
    assert a._free == b._free
    assert a.relocations == b.relocations
    assert a._cols.size == b._cols.size  # identical growth trajectory


class TestMatrixConformance:
    @pytest.mark.parametrize("backend", ALL)
    def test_mixed_stream_matches_heap(self, backend, tmp_path):
        ref = DynamicMatrix(INT64, 30, 40)
        _mixed_stream(ref)
        dut = DynamicMatrix(INT64, 30, 40, store=_store(backend, tmp_path))
        _mixed_stream(dut)
        _assert_same(ref, dut)
        dut.store.close()

    @pytest.mark.parametrize("backend", ALL)
    def test_compact_then_mutate_matches(self, backend, tmp_path):
        ref = DynamicMatrix(INT64, 30, 40)
        dut = DynamicMatrix(INT64, 30, 40, store=_store(backend, tmp_path))
        for dm in (ref, dut):
            _mixed_stream(dm)
            dm.compact()
            dm.assign_coo(
                np.arange(10, dtype=np.int64),
                np.arange(10, dtype=np.int64) + 20,
                5,
            )
        _assert_same(ref, dut)
        dut.store.close()

    @pytest.mark.parametrize("backend", ALL)
    def test_removal_only_stream(self, backend, tmp_path):
        """Removals exercise swap-with-last deletes and block downsizing
        -- the paths most sensitive to free-list divergence."""
        rows = np.repeat(np.arange(8, dtype=np.int64), 8)
        cols = np.tile(np.arange(8, dtype=np.int64), 8)
        ref = DynamicMatrix(FP64, 8, 8)
        dut = DynamicMatrix(FP64, 8, 8, store=_store(backend, tmp_path))
        for dm in (ref, dut):
            dm.assign_coo(rows, cols, 1.5)
            dm.remove_coo(rows[::2], cols[::2])
            dm.remove_coo(rows[1::4], cols[1::4])
        _assert_same(ref, dut)
        dut.store.close()


class TestDurableMatrixRoundTrip:
    @pytest.mark.parametrize("backend", DURABLE)
    def test_flush_open_is_bit_identical(self, backend, tmp_path):
        dm = DynamicMatrix(INT64, 30, 40, store=_store(backend, tmp_path))
        _mixed_stream(dm)
        assert dm.flush_storage()
        reopened = DynamicMatrix.open(_store(backend, tmp_path))
        _assert_same(dm, reopened)
        dm.store.close()
        reopened.store.close()

    @pytest.mark.parametrize("backend", DURABLE)
    def test_reopened_matrix_keeps_mutating_identically(self, backend, tmp_path):
        """The restored free lists/used counter must place future blocks
        exactly where the original would have."""
        ref = DynamicMatrix(INT64, 30, 40)
        _mixed_stream(ref)
        dm = DynamicMatrix(INT64, 30, 40, store=_store(backend, tmp_path))
        _mixed_stream(dm)
        dm.flush_storage()
        dm.store.close()
        reopened = DynamicMatrix.open(_store(backend, tmp_path))
        for m in (ref, reopened):
            m.assign_coo(
                np.arange(20, dtype=np.int64) % m.nrows,
                np.arange(20, dtype=np.int64),
                9,
            )
            m.remove_coo(np.array([0, 1]), np.array([0, 2]))
        _assert_same(ref, reopened)
        reopened.store.close()

    @pytest.mark.parametrize("backend", DURABLE)
    def test_snapshot_adopt_round_trip(self, backend, tmp_path):
        dm = DynamicMatrix(INT64, 20, 20, store=_store(backend, tmp_path, "a"))
        _mixed_stream(dm)
        dm.flush_storage()
        dm.store.snapshot_to(tmp_path / "snap")
        frozen_coo = [x.copy() for x in dm.to_coo()]
        # post-snapshot mutation must not bleed into the adopted copy
        dm.set_element(0, 0, 999)
        dm.flush_storage()

        other = _store(backend, tmp_path, "b")
        other.adopt_from(tmp_path / "snap")
        adopted = DynamicMatrix.open(other)
        assert adopted.get(0, 0) != 999
        for x, y in zip(adopted.to_coo(), frozen_coo):
            assert np.array_equal(x, y)
        dm.store.close()
        other.close()

    @pytest.mark.parametrize("backend", DURABLE)
    def test_open_without_flush_raises(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        store.new("cols", 0, np.int64)
        with pytest.raises(ReproError):
            DynamicMatrix.open(store)
        store.close()

    def test_flush_storage_is_noop_on_heap(self):
        dm = DynamicMatrix(INT64, 2, 2)
        assert dm.flush_storage() is False

    @pytest.mark.parametrize("backend", ALL)
    def test_memory_stats_names_backend(self, backend, tmp_path):
        dm = DynamicMatrix(INT64, 4, 4, store=_store(backend, tmp_path))
        dm.set_element(1, 1, 1)
        stats = dm.memory_stats()
        assert stats["backend"] == backend
        assert stats["store_bytes"] > 0
        dm.store.close()


# -- hypothesis: compact() must never change observable content ------------
#
# The satellite regression for the hand-listed copy-tuple bug: compact()
# now derives what to carry over from __slots__, so a new attribute can't
# silently vanish across compaction.  The property runs on every backend:
# compact -> mutate -> freeze must equal the never-compacted twin.

_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "remove", "compact"]),
        st.integers(0, 5),
        st.integers(0, 5),
        st.integers(1, 9),
    ),
    max_size=30,
)


@given(ops_seq=_ops, backend=st.sampled_from(ALL))
@settings(max_examples=40, deadline=None)
def test_compact_is_invisible(ops_seq, backend, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("hyp")
    plain = DynamicMatrix(INT64, 6, 6)
    compacted = DynamicMatrix(INT64, 6, 6, store=_store(backend, tmp))
    for kind, i, j, v in ops_seq:
        if kind == "set":
            plain.set_element(i, j, v)
            compacted.set_element(i, j, v)
        elif kind == "remove":
            plain.remove_element(i, j)
            compacted.remove_element(i, j)
        else:
            compacted.compact()  # only the DUT compacts
    assert plain.freeze().isequal(compacted.freeze())
    for x, y in zip(plain.to_coo(), compacted.to_coo()):
        assert np.array_equal(x, y)
    # post-compact mutations must still land correctly
    plain.set_element(5, 5, 3)
    compacted.set_element(5, 5, 3)
    assert plain.freeze().isequal(compacted.freeze())
    compacted.store.close()
