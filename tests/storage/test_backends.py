"""repro.storage: store-level contracts of the three arena backends.

Unit-level checks of the :class:`~repro.storage.ArenaStorage` protocol --
allocation/resize semantics, meta staging vs. flush commit, durable
round-trips, snapshot/adopt, byte accounting -- plus the SQL-oracle
property unique to the sqlite backend: the ``entries`` table must mirror
the logical matrix so an *external* SQL client can cross-check the arena
layout without importing any of it.
"""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

from repro.storage import BACKENDS, make_store, resolve_storage
from repro.storage.heap import HeapArena
from repro.storage.mmapfile import MmapArena
from repro.storage.sqlite import SqliteArena
from repro.util.validation import ReproError


def _store(backend, tmp_path):
    return make_store(backend, directory=tmp_path, name="t")


class TestResolveStorage:
    def test_default_is_dynamic_heap(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE", raising=False)
        assert resolve_storage(None) == ("dynamic", "heap")
        assert resolve_storage("dynamic") == ("dynamic", "heap")

    def test_env_steers_default_and_dynamic(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "mmap")
        assert resolve_storage(None) == ("dynamic", "mmap")
        assert resolve_storage("dynamic") == ("dynamic", "mmap")

    def test_env_can_select_matrix(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "matrix")
        assert resolve_storage(None) == ("matrix", None)
        # ...but only for *defaulted* graphs: explicit specs stay pinned
        assert resolve_storage("dynamic") == ("dynamic", "heap")

    def test_explicit_backend_ignores_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "sqlite")
        assert resolve_storage("heap") == ("dynamic", "heap")
        assert resolve_storage("matrix") == ("matrix", None)

    def test_unknown_spec_raises(self):
        with pytest.raises(ReproError, match="unknown storage"):
            resolve_storage("zram")

    def test_make_store_needs_directory_for_file_backends(self):
        for backend, needs_dir in BACKENDS.items():
            if needs_dir:
                with pytest.raises(ReproError, match="needs a directory"):
                    make_store(backend)

    def test_make_store_types(self, tmp_path):
        assert isinstance(make_store("heap"), HeapArena)
        assert isinstance(_store("mmap", tmp_path), MmapArena)
        assert isinstance(_store("sqlite", tmp_path), SqliteArena)
        with pytest.raises(ReproError, match="unknown storage backend"):
            make_store("zram", directory=tmp_path)


class TestAllocationSemantics:
    """new/resize must behave identically across backends: exact sizes,
    fill applied past ``keep``, prefix preserved, shrink allowed."""

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_new_size_and_fill(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        arr = store.new("start", 5, np.int64, fill=-1)
        assert arr.size == 5 and arr.dtype == np.int64
        assert (np.asarray(arr) == -1).all()
        zero = store.new("cols", 3, np.int64)
        assert (np.asarray(zero) == 0).all()
        store.close()

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_resize_grow_preserves_prefix_fills_tail(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        arr = store.new("a", 4, np.int64)
        arr[:] = [1, 2, 3, 4]
        arr = store.resize("a", arr, 8, keep=2, fill=-1)
        assert arr.size == 8
        assert arr[:2].tolist() == [1, 2]
        assert arr[2:].tolist() == [-1] * 6
        store.close()

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_resize_shrink(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        arr = store.new("a", 6, np.float64)
        arr[:] = np.arange(6)
        arr = store.resize("a", arr, 2, keep=6)
        assert arr.tolist() == [0.0, 1.0]
        store.close()

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_zero_size_array_roundtrips(self, backend, tmp_path):
        """mmap cannot map an empty file; the slice trick must hide that."""
        store = _store(backend, tmp_path)
        arr = store.new("a", 0, np.int64)
        assert arr.size == 0
        arr = store.resize("a", arr, 4, keep=0)
        assert arr.size == 4
        store.close()

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_nbytes_nonzero_after_alloc(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        store.new("a", 100, np.int64)
        assert store.nbytes() >= 100 * 8
        store.close()


class TestHeapNotDurable:
    def test_flags(self):
        store = HeapArena()
        assert store.backend == "heap" and not store.persistent

    def test_snapshot_and_adopt_raise(self, tmp_path):
        store = HeapArena()
        with pytest.raises(ReproError, match="not durable"):
            store.snapshot_to(tmp_path)
        with pytest.raises(ReproError, match="not durable"):
            store.adopt_from(tmp_path)

    def test_open_unknown_array_raises(self):
        with pytest.raises(ReproError, match="no array"):
            HeapArena().open_array("nope", np.int64)


@pytest.mark.parametrize("backend", ["mmap", "sqlite"])
class TestDurableRoundTrip:
    def test_flush_requires_staged_meta(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        store.new("a", 2, np.int64)
        with pytest.raises(ReproError, match="flush before put_meta"):
            store.flush()
        store.close()

    def test_meta_not_visible_until_flush(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        store.new("a", 2, np.int64)
        store.put_meta({"n": 1})
        assert store.get_meta() is None  # staged, not committed
        store.flush()
        assert store.get_meta() == {"n": 1}
        store.close()

    def test_arrays_restore_bit_exactly(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        a = store.new("cols", 7, np.int64)
        a[:] = [5, -3, 0, 9, 2, 2, 7]
        v = store.new("vals", 7, np.float64)
        v[:] = np.linspace(-1, 1, 7)
        store.put_meta({"arena": 7})
        store.flush()
        store.close()

        fresh = _store(backend, tmp_path)
        assert fresh.get_meta() == {"arena": 7}
        assert np.array_equal(fresh.open_array("cols", np.int64), np.asarray(a))
        assert np.array_equal(fresh.open_array("vals", np.float64), np.asarray(v))
        fresh.close()

    def test_open_unknown_array_raises(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        store.new("a", 1, np.int64)
        store.put_meta({})
        store.flush()
        with pytest.raises(ReproError, match="no array"):
            store.open_array("missing", np.int64)
        store.close()

    def test_snapshot_then_adopt_into_second_store(self, backend, tmp_path):
        src = make_store(backend, directory=tmp_path, name="src")
        arr = src.new("cols", 4, np.int64)
        arr[:] = [4, 3, 2, 1]
        src.put_meta({"v": 42})
        src.flush()
        snap = tmp_path / "snap"
        src.snapshot_to(snap)

        # mutate + flush the source *after* the snapshot: the snapshot
        # must not alias the live files (the hardlink trap)
        arr[:] = 0
        src.put_meta({"v": 43})
        src.flush()

        dst = make_store(backend, directory=tmp_path, name="dst")
        dst.adopt_from(snap)
        assert dst.get_meta() == {"v": 42}
        assert dst.open_array("cols", np.int64).tolist() == [4, 3, 2, 1]
        src.close()
        dst.close()

    def test_adopt_from_empty_dir_raises(self, backend, tmp_path):
        store = _store(backend, tmp_path)
        (tmp_path / "empty").mkdir()
        with pytest.raises(ReproError):
            store.adopt_from(tmp_path / "empty")
        store.close()


class TestMmapSpecifics:
    def test_file_extent_is_exact(self, tmp_path):
        """The arrays must report the same sizes heap would, or the
        matrix's doubling arithmetic diverges between backends."""
        store = _store("mmap", tmp_path)
        arr = store.new("cols", 5, np.int64)
        assert arr.size == 5
        assert (tmp_path / "t" / "cols.bin").stat().st_size == 5 * 8
        arr = store.resize("cols", arr, 12, keep=5)
        assert arr.size == 12
        assert (tmp_path / "t" / "cols.bin").stat().st_size == 12 * 8
        store.close()

    def test_snapshot_of_unflushed_arena_raises(self, tmp_path):
        store = _store("mmap", tmp_path)
        store.new("a", 2, np.int64)
        with pytest.raises(ReproError, match="unflushed"):
            store.snapshot_to(tmp_path / "snap")
        store.close()

    def test_new_drops_stale_file_content(self, tmp_path):
        store = _store("mmap", tmp_path)
        arr = store.new("a", 3, np.int64)
        arr[:] = 7
        store.close()
        fresh = _store("mmap", tmp_path)
        assert fresh.new("a", 3, np.int64).tolist() == [0, 0, 0]
        fresh.close()


class TestSqliteOracle:
    def test_entries_mirror_queryable_by_external_sql(self, tmp_path):
        """Build a tiny arena layout by hand, flush, and read the logical
        matrix back with a *plain sqlite3 connection* -- no repro code."""
        store = _store("sqlite", tmp_path)
        # rows: 0 -> cols {2, 5}; 1 -> empty; 2 -> col {0}; row 1's stale
        # slots (freed block) must not leak into the mirror
        start = store.new("start", 3, np.int64, fill=-1)
        length = store.new("len", 3, np.int64)
        cap = store.new("cap", 3, np.int64)
        cols = store.new("cols", 8, np.int64)
        vals = store.new("vals", 8, np.float64)
        start[:] = [0, 4, 6]
        length[:] = [2, 0, 1]
        cap[:] = [4, 2, 2]
        cols[:4] = [2, 5, 99, 99]
        vals[:4] = [1.0, 2.5, -9, -9]
        cols[6] = 0
        vals[6] = 3.0
        store.put_meta({"nrows": 3})
        store.flush()
        store.close()

        conn = sqlite3.connect(tmp_path / "t.db")
        got = conn.execute(
            "SELECT row, col, val FROM entries ORDER BY row, col"
        ).fetchall()
        conn.close()
        assert got == [(0, 2, 1.0), (0, 5, 2.5), (2, 0, 3.0)]

    def test_dtype_mismatch_on_open_raises(self, tmp_path):
        store = _store("sqlite", tmp_path)
        store.new("a", 2, np.int64)
        store.put_meta({})
        store.flush()
        with pytest.raises(ReproError, match="stored as"):
            store.open_array("a", np.float64)
        store.close()
