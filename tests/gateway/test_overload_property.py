"""The overload contract, as a deterministic simulation.

ISSUE acceptance property: at 4x sustained admission capacity the
gateway sheds excess load with 429-class verdicts while

* p99 latency of **admitted** requests stays within 2x the uncontended
  p99 (admission control keeps the served path fast instead of letting
  the queue absorb the overload),
* queue depth never exceeds its bound,
* zero admitted writes are lost (ticket count == applied count ==
  service version after drain),

and the whole schedule -- every admit/shed decision, every breaker or
drain transition -- reproduces bit-identically, because the only clock
is the simulation's.

The simulation: one tick per offered request, the clock advancing by the
inter-arrival gap; each tick pumps whatever is queued, charging a fixed
simulated service time per applied envelope.  No threads, no sleeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultPlan, InjectedCrash, inject
from repro.gateway import Gateway, RateLimited
from repro.model import AddUser
from repro.serving.ingest import QueueFull


class _Clock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt


class SimService:
    """Applies instantly (the sim charges service time on the clock)."""

    def __init__(self):
        self.version = 0
        self.applied = []
        self._failed = False

    def submit(self, changes):
        self.applied.append(list(changes))
        self.version += 1
        return self.version

    def query(self, query, tool=None, deadline=None):  # pragma: no cover
        class R:
            version = self.version
            query = "Q1"
            tool = "sim"
            top = ()
            result_string = ""
        return R()

    def flush(self):
        return self.version

    def metrics_text(self, labels=None):
        return ""

    def close(self):
        pass


CAPACITY = 100.0        # admitted requests/second (token rate)
SERVICE_TIME = 0.001    # simulated seconds to apply one envelope
QUEUE_LIMIT = 8
N_OFFERED = 2000


def run_sim(load_factor: float, drain_crash_hit: int = 0):
    """Offer ``load_factor * CAPACITY`` req/s; return the event log."""
    clock = _Clock()
    service = SimService()
    gw = Gateway(
        service,
        queue_limit=QUEUE_LIMIT,
        classes={"default": (CAPACITY, 1.0)},
        clock=clock,
    )
    gap = 1.0 / (CAPACITY * load_factor)
    events = []            # (t, kind, detail) -- the determinism oracle
    latencies = []
    max_depth = 0

    def pump():
        nonlocal max_depth
        max_depth = max(max_depth, gw.queue_depth)
        applied = gw.pump_once(max_batch=QUEUE_LIMIT)
        if applied:
            clock.tick(SERVICE_TIME * applied)

    for i in range(N_OFFERED):
        t_submit = clock()
        try:
            ticket = gw.submit(
                [AddUser(i)],
                on_applied=lambda v, t0=t_submit: (
                    latencies.append(clock() - t0 + SERVICE_TIME),
                    events.append((round(clock(), 9), "apply", v)),
                ),
            )
            events.append((round(clock(), 9), "admit", ticket))
        except RateLimited as exc:
            events.append((round(clock(), 9), "shed-429-rate",
                           round(exc.retry_after, 9)))
        except QueueFull:
            events.append((round(clock(), 9), "shed-429-queue", None))
        pump()
        clock.tick(gap)

    # leave a tail of admitted-but-unpumped envelopes so drain has real
    # work to flush (and the gateway-drain crash point actually fires)
    for j in range(4):
        clock.tick(2.0 / CAPACITY)  # mint a token (with fp headroom)
        t_submit = clock()
        ticket = gw.submit(
            [AddUser(N_OFFERED + j)],
            on_applied=lambda v, t0=t_submit: (
                latencies.append(clock() - t0 + SERVICE_TIME),
                events.append((round(clock(), 9), "apply", v)),
            ),
        )
        events.append((round(clock(), 9), "admit", ticket))

    plan = FaultPlan()
    if drain_crash_hit:
        plan.crash("gateway-drain", hit=drain_crash_hit)
    try:
        with inject(plan):
            gw.drain()
    except InjectedCrash:
        events.append((round(clock(), 9), "drain-crash", gw.queue_depth))
        gw.drain()  # retry completes -- admitted writes must survive
    events.append((round(clock(), 9), "drained", gw.stats()["applied"]))
    return {
        "events": events,
        "latencies": latencies,
        "max_depth": max_depth,
        "stats": gw.stats(),
        "service_version": service.version,
    }


class TestOverloadProperty:
    def test_sheds_and_keeps_admitted_fast_at_4x(self):
        calm = run_sim(load_factor=0.5)
        hot = run_sim(load_factor=4.0)

        admitted = [e for e in hot["events"] if e[1] == "admit"]
        shed = [e for e in hot["events"] if e[1].startswith("shed-429")]
        # ~3/4 of offered load must shed with a 429-class verdict
        assert len(shed) > 0.6 * N_OFFERED
        assert len(admitted) + len(shed) == N_OFFERED + 4  # + drain tail
        # every shed carried a retry hint, never a lost write
        for ev in shed:
            if ev[1] == "shed-429-rate":
                assert ev[2] > 0

        # the served path stays fast: p99 admitted within 2x uncontended
        p99_calm = float(np.percentile(np.asarray(calm["latencies"]), 99))
        p99_hot = float(np.percentile(np.asarray(hot["latencies"]), 99))
        assert p99_hot <= 2.0 * p99_calm

        # bounded queue, honestly reported
        assert hot["max_depth"] <= QUEUE_LIMIT
        assert hot["stats"]["queue_depth"] == 0

    @pytest.mark.parametrize("load", [0.5, 1.0, 4.0])
    def test_zero_admitted_writes_lost(self, load):
        out = run_sim(load_factor=load)
        admitted = sum(1 for e in out["events"] if e[1] == "admit")
        applied = sum(1 for e in out["events"] if e[1] == "apply")
        # version continuity after drain: every ticket ever issued is a
        # distinct applied version on the service, nothing dropped
        assert admitted == applied
        assert out["stats"]["applied"] == admitted
        assert out["service_version"] == admitted

    @pytest.mark.parametrize("crash_hit", [0, 1])
    def test_schedule_reproduces_bit_identically(self, crash_hit):
        a = run_sim(load_factor=4.0, drain_crash_hit=crash_hit)
        b = run_sim(load_factor=4.0, drain_crash_hit=crash_hit)
        assert a["events"] == b["events"]
        assert a["latencies"] == b["latencies"]
        assert a["stats"]["shed"] == b["stats"]["shed"]
        assert a["stats"]["breaker"]["transitions"] == \
            b["stats"]["breaker"]["transitions"]

    def test_crash_mid_drain_loses_nothing(self):
        out = run_sim(load_factor=4.0, drain_crash_hit=1)
        kinds = [e[1] for e in out["events"]]
        admitted = kinds.count("admit")
        assert out["service_version"] == admitted
        assert out["stats"]["state"] == "closed"
