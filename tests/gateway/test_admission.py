"""TokenBucket and CircuitBreaker: exact decisions under an injected clock.

No wall-clock sleeps anywhere: every admission decision is asserted at
the precise clock instant it flips, which is the determinism contract
the gateway's overload behaviour is built on.
"""

from __future__ import annotations

import pytest

from repro.gateway.admission import CircuitBreaker, TokenBucket
from repro.util.validation import ReproError


class _Clock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt


class TestTokenBucket:
    def test_burst_then_shed(self):
        clock = _Clock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]

    def test_nth_refill_admits_exactly(self):
        # rate 2/s: after the burst drains, one token exists at exactly
        # +0.5s -- the acquire at 0.499 sheds, the one at 0.5 admits
        clock = _Clock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        clock.tick(0.499)
        assert not bucket.try_acquire()
        clock.tick(0.001)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = _Clock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.tick(60.0)
        assert [bucket.try_acquire() for _ in range(3)] == [True, True, False]

    def test_retry_after_is_exact(self):
        clock = _Clock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.tick(0.1)
        assert bucket.retry_after() == pytest.approx(0.15)

    def test_clock_regression_does_not_mint_tokens(self):
        clock = _Clock(t=10.0)
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        clock.t = 0.0  # clock steps backwards: no refill, no crash
        assert not bucket.try_acquire()
        clock.t = 11.0
        assert bucket.try_acquire()

    def test_invalid_config(self):
        with pytest.raises(ReproError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ReproError):
            TokenBucket(rate=1.0, burst=0.0)


class TestCircuitBreaker:
    def _breaker(self, clock, **kw):
        kw.setdefault("window", 4)
        kw.setdefault("trip_ratio", 0.5)
        kw.setdefault("min_samples", 4)
        kw.setdefault("cooldown_s", 1.0)
        return CircuitBreaker(clock=clock, **kw)

    def test_trips_at_exact_failure(self):
        clock = _Clock()
        br = self._breaker(clock)
        br.record_success()
        br.record_success()
        br.record_failure()
        assert br.state == CircuitBreaker.CLOSED  # 1/3 < ratio, under min
        br.record_failure()  # 2/4 == trip_ratio with min_samples met
        assert br.state == CircuitBreaker.OPEN
        assert br.transitions == [("closed", "open")]

    def test_open_refuses_until_cooldown(self):
        clock = _Clock()
        br = self._breaker(clock, min_samples=1, window=1, cooldown_s=2.0)
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert not br.allow()
        assert br.retry_after() == pytest.approx(2.0)
        clock.tick(1.999)
        assert not br.allow()
        clock.tick(0.001)
        assert br.allow()  # the probe
        assert br.state == CircuitBreaker.HALF_OPEN

    def test_half_open_single_probe(self):
        clock = _Clock()
        br = self._breaker(clock, min_samples=1, window=1)
        br.record_failure()
        clock.tick(1.0)
        assert br.allow()
        assert not br.allow()  # second caller: probe slot is taken
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED
        assert br.allow()

    def test_failed_probe_reopens_and_rearms_cooldown(self):
        clock = _Clock()
        br = self._breaker(clock, min_samples=1, window=1, cooldown_s=1.0)
        br.record_failure()
        clock.tick(1.0)
        assert br.allow()
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert br.retry_after() == pytest.approx(1.0)  # re-armed from now
        assert br.transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
        ]

    def test_abandoned_probe_releases_slot_without_verdict(self):
        # a probe shed on its deadline proves nothing: the breaker stays
        # half-open and the next caller gets the probe slot
        clock = _Clock()
        br = self._breaker(clock, min_samples=1, window=1)
        br.record_failure()
        clock.tick(1.0)
        assert br.allow()
        br.record_abandon()
        assert br.state == CircuitBreaker.HALF_OPEN
        assert br.allow()
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED

    def test_success_probe_clears_window(self):
        # the pre-trip failures must not count against the fresh circuit
        clock = _Clock()
        br = self._breaker(clock, min_samples=2, window=4, trip_ratio=0.5)
        br.record_failure()
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        clock.tick(1.0)
        assert br.allow()
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED
        # one fresh failure is below min_samples in the *cleared* window;
        # with the stale pre-trip failures retained it would re-trip here
        br.record_failure()
        assert br.state == CircuitBreaker.CLOSED

    def test_transition_sequence_is_reproducible(self):
        def run():
            clock = _Clock()
            br = self._breaker(clock, min_samples=1, window=1, cooldown_s=0.5)
            log = []
            br._on_transition = lambda a, b: log.append((a, b, clock.t))
            br.record_failure()
            clock.tick(0.5)
            br.allow()
            br.record_failure()
            clock.tick(0.5)
            br.allow()
            br.record_success()
            return log, br.transitions

        assert run() == run()

    def test_invalid_config(self):
        with pytest.raises(ReproError):
            CircuitBreaker(trip_ratio=0.0)
        with pytest.raises(ReproError):
            CircuitBreaker(window=2, min_samples=3)
