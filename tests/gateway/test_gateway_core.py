"""Gateway core pipeline: admission, pump, drain, subscriptions, faults.

Runs against a fake in-memory service (exact control over versions and
failures) plus a real :class:`GraphService` where end-to-end wiring
matters.  All clocks injected; crash schedules via FaultPlan.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, InjectedCrash, inject
from repro.gateway import Draining, Gateway, RateLimited
from repro.gateway.admission import CircuitOpen
from repro.model import AddUser
from repro.serving import GraphService
from repro.serving.ingest import QueueFull
from repro.util.validation import DeadlineExceeded, ReproError


class _Clock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt


class _Result:
    def __init__(self, version, query="Q1", tool="fake"):
        self.query = query
        self.tool = tool
        self.version = version
        self.computed_version = version
        self.top = ((1, 2),)
        self.result_string = f"v{version}"


class FakeService:
    """Engine-owning service surface with scriptable read failures."""

    def __init__(self):
        self.version = 0
        self.applied = []
        self.read_errors = 0  # next N queries raise ReproError
        self._seen_users = set()
        self._failed = False

    def submit(self, changes):
        items = list(changes)
        ids = {c.user_id for c in items}
        if ids & self._seen_users:
            raise ReproError("duplicate user id")
        self._seen_users |= ids
        self.applied.append(items)
        self.version += 1
        return self.version

    def query(self, query, tool=None, deadline=None):
        if self.read_errors > 0:
            self.read_errors -= 1
            raise ReproError("engine read failed")
        return _Result(self.version, query, tool or "fake")

    def flush(self):
        return self.version

    def metrics_text(self, labels=None):
        lab = ",".join(f'{k}="{v}"' for k, v in sorted((labels or {}).items()))
        lab = "{" + lab + "}" if lab else ""
        return f"# TYPE fake_version gauge\nfake_version{lab} {self.version}\n"

    def close(self):
        pass


def _gw(svc=None, clock=None, **kw):
    kw.setdefault("queue_limit", 4)
    return Gateway(svc or FakeService(), clock=clock or _Clock(), **kw)


class TestSubmitAdmission:
    def test_tickets_are_sequential_and_applied_in_order(self):
        gw = _gw()
        assert [gw.submit([AddUser(i)]) for i in range(3)] == [1, 2, 3]
        assert gw.queue_depth == 3
        assert gw.pump_once() == 3
        assert gw.queue_depth == 0
        assert [c[0].user_id for c in gw.service.applied] == [0, 1, 2]

    def test_queue_full_at_exact_boundary(self):
        gw = _gw(queue_limit=2)
        gw.submit([AddUser(0)])
        gw.submit([AddUser(1)])
        with pytest.raises(QueueFull) as exc:
            gw.submit([AddUser(2)])
        assert exc.value.pending == 2
        assert exc.value.limit == 2
        assert exc.value.retry_after > 0
        # shedding lost nothing admitted: both queued envelopes apply
        assert gw.pump_once() == 2
        gw.submit([AddUser(2)])  # and the queue accepts again

    def test_rate_limit_sheds_nth_request_exactly(self):
        clock = _Clock()
        gw = _gw(clock=clock, classes={"default": (2.0, 2.0)})
        gw.submit([AddUser(0)])
        gw.submit([AddUser(1)])
        with pytest.raises(RateLimited) as exc:
            gw.submit([AddUser(2)])
        assert exc.value.retry_after == pytest.approx(0.5)
        clock.tick(0.5)  # exactly one token minted
        gw.submit([AddUser(2)])
        with pytest.raises(RateLimited):
            gw.submit([AddUser(3)])

    def test_client_classes_have_independent_buckets(self):
        clock = _Clock()
        gw = _gw(clock=clock, classes={
            "default": (1.0, 1.0), "batch": (1.0, 2.0),
        })
        gw.submit([AddUser(0)], client="interactive")  # unknown -> default
        with pytest.raises(RateLimited):
            gw.submit([AddUser(1)], client="interactive")
        gw.submit([AddUser(1)], client="batch")
        gw.submit([AddUser(2)], client="batch")

    def test_service_rejection_fails_envelope_not_pump(self):
        gw = _gw()
        errors = []
        gw.submit([AddUser(0)])
        gw.submit([AddUser(0)], on_error=errors.append)  # duplicate id
        gw.submit([AddUser(1)])
        # the fake rejects the 2nd envelope; pump still applies 1st + 3rd
        assert gw.pump_once() == 2
        assert len(errors) == 1
        assert gw.stats()["rejected"] == 1

    def test_on_applied_callback_sees_service_version(self):
        gw = _gw()
        seen = []
        gw.submit([AddUser(0)], on_applied=seen.append)
        gw.submit([AddUser(1)], on_applied=seen.append)
        gw.pump_once()
        assert seen == [1, 2]


class TestReadPath:
    def test_read_serves_and_closes_breaker_loop(self):
        gw = _gw()
        gw.submit([AddUser(0)])
        gw.pump_once()
        assert gw.read("Q1").version == 1

    def test_breaker_trips_on_error_rate_then_probes(self):
        clock = _Clock()
        gw = _gw(clock=clock, breaker_window=4, breaker_min_samples=2,
                 breaker_trip_ratio=0.5, breaker_cooldown_s=1.0)
        gw.service.read_errors = 2
        for _ in range(2):
            with pytest.raises(ReproError):
                gw.read("Q1")
        assert gw.breaker.state == "open"
        with pytest.raises(CircuitOpen) as exc:
            gw.read("Q1")
        assert exc.value.retry_after == pytest.approx(1.0)
        clock.tick(1.0)
        assert gw.read("Q1").version == 0  # the probe succeeds
        assert gw.breaker.state == "closed"

    def test_deadline_shed_is_not_a_breaker_failure(self, monkeypatch):
        clock = _Clock(t=100.0)
        gw = _gw(clock=clock, breaker_window=4, breaker_min_samples=1,
                 breaker_trip_ratio=0.5)

        def expired_query(query, tool=None, deadline=None):
            raise DeadlineExceeded("too late")

        monkeypatch.setattr(gw.service, "query", expired_query)
        for _ in range(8):
            with pytest.raises(DeadlineExceeded):
                gw.read("Q1", deadline=clock() - 1.0)
        assert gw.breaker.state == "closed"
        shed = gw.stats()["shed"]
        assert shed['kind="read",reason="deadline"'] == 8

    def test_default_deadline_is_stamped_from_clock(self):
        clock = _Clock(t=50.0)
        seen = {}
        gw = _gw(clock=clock, default_deadline_s=0.25)

        def capture(query, tool=None, deadline=None):
            seen["deadline"] = deadline
            return _Result(0)

        gw.service.query = capture
        gw.read("Q1")
        assert seen["deadline"] == pytest.approx(50.25)
        gw.read("Q1", deadline=51.0)  # explicit beats default
        assert seen["deadline"] == 51.0


class TestDrain:
    def test_drain_flushes_queue_then_refuses(self):
        gw = _gw()
        gw.submit([AddUser(0)])
        gw.submit([AddUser(1)])
        stats = gw.drain()
        assert stats["state"] == "closed"
        assert stats["applied"] == 2
        assert stats["queue_depth"] == 0
        with pytest.raises(Draining):
            gw.submit([AddUser(2)])
        with pytest.raises(Draining):
            gw.read("Q1")

    def test_crash_mid_drain_preserves_queue_and_is_retryable(self):
        gw = _gw(queue_limit=8)
        for i in range(6):
            gw.submit([AddUser(i)])
        plan = FaultPlan().crash("gateway-drain", hit=1)
        with inject(plan):
            with pytest.raises(InjectedCrash):
                gw.drain()
        # killed before the first pump: every admitted envelope survives
        assert gw.state == "draining"
        assert gw.queue_depth == 6
        stats = gw.drain()  # retry completes the flush
        assert stats["state"] == "closed"
        assert stats["applied"] == 6
        assert gw.service.version == 6

    def test_crash_points_accept_and_enqueue(self):
        gw = _gw()
        with inject(FaultPlan().crash("gateway-accept", hit=2)):
            gw.submit([AddUser(0)])
            with pytest.raises(InjectedCrash):
                gw.submit([AddUser(1)])
        with inject(FaultPlan().crash("gateway-enqueue", hit=1)):
            with pytest.raises(InjectedCrash):
                gw.submit([AddUser(1)])
        # the enqueue crash happened before the append: ticket not burned
        assert gw.queue_depth == 1
        assert gw.submit([AddUser(1)]) == 2

    def test_drain_schedule_reproduces_bit_identically(self):
        def run():
            gw = _gw(queue_limit=8)
            for i in range(4):
                gw.submit([AddUser(i)])
            plan = FaultPlan().crash("gateway-drain", hit=1)
            try:
                with inject(plan):
                    gw.drain()
            except InjectedCrash:
                pass
            gw.drain()
            return [(p, dict(ctx)) for p, ctx in plan.hits], gw.stats()["applied"]

        assert run() == run()


class TestSubscriptions:
    def test_publish_on_commit_with_versions(self):
        gw = _gw()
        sub = gw.subscribe("Q1", buffer=8)
        gw.submit([AddUser(0)])
        gw.pump_once()
        gw.submit([AddUser(1)])
        gw.pump_once()
        events = sub.poll()
        assert [e["version"] for e in events] == [1, 2]
        assert sub.poll() == []

    def test_slow_subscriber_drops_oldest_never_blocks(self):
        gw = _gw(queue_limit=64)
        sub = gw.subscribe("Q1", buffer=2)
        for i in range(5):
            gw.submit([AddUser(i)])
            gw.pump_once()
        assert sub.dropped == 3
        assert [e["version"] for e in sub.poll()] == [4, 5]
        snap = gw.registry.snapshot()
        assert snap["repro_gateway_sub_dropped_total"] == 3

    def test_unsubscribe_stops_publishing(self):
        gw = _gw()
        sub = gw.subscribe("Q1")
        gw.unsubscribe(sub)
        gw.submit([AddUser(0)])
        gw.pump_once()
        assert sub.poll() == []
        assert gw.stats()["subscribers"] == 0

    def test_drain_closes_subscribers_after_final_flush(self):
        gw = _gw()
        sub = gw.subscribe("Q1", buffer=8)
        gw.submit([AddUser(0)])
        drained = []
        sub.notify = lambda: drained.append([e["version"] for e in sub.poll()])
        gw.drain()
        assert drained == [[1]]
        assert sub.closed


class TestAgainstRealService:
    def test_end_to_end_with_graphservice(self):
        svc = GraphService(tools=("graphblas-incremental",), max_batch=1)
        gw = Gateway(svc, queue_limit=16)
        sub = gw.subscribe("Q1")
        for i in range(3):
            gw.submit([AddUser(i)])
        assert gw.pump_once() == 3
        assert gw.read("Q1").version == 3
        assert [e["version"] for e in sub.poll()] == [1, 2, 3]
        stats = gw.drain(close_service=True)
        assert stats["applied"] == 3
        assert stats["service_version"] == 3

    def test_fail_stopped_service_propagates_from_pump(self):
        svc = GraphService(tools=("graphblas-incremental",), max_batch=1)
        try:
            gw = Gateway(svc, queue_limit=16)
            gw.submit([AddUser(1)])
            gw.pump_once()
            svc._failed = True  # simulate a crashed apply (fail-stop)
            gw.submit([AddUser(2)])
            with pytest.raises(ReproError):
                gw.pump_once()
        finally:
            svc._failed = False
            svc.close()
