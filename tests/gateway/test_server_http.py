"""GatewayServer over a real socket: wire mapping of the admission verdicts.

One live server per test class (stdlib ``urllib``/``socket`` clients, no
test-only HTTP deps).  These are integration checks of the *translation*
layer -- status codes, Retry-After, WebSocket framing; every admission
semantics detail is covered deterministically in test_gateway_core.
"""

from __future__ import annotations

import base64
import json
import os
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.gateway import Gateway, GatewayServer
from repro.gateway.server import _ws_accept_key
from repro.model import AddFriendship, AddUser
from repro.model.loader import change_to_row
from repro.serving import GraphService


def _get(url, headers=None):
    req = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=5) as r:
            return r.status, dict(r.headers), r.read()
    except urllib.error.HTTPError as e:
        return e.code, dict(e.headers), e.read()


def _post(url, doc=None, headers=None):
    data = json.dumps(doc).encode() if doc is not None else b""
    req = urllib.request.Request(url, data=data, method="POST",
                                 headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=5) as r:
            return r.status, dict(r.headers), r.read()
    except urllib.error.HTTPError as e:
        return e.code, dict(e.headers), e.read()


def _rows(changes):
    return {"changes": [change_to_row(c) for c in changes]}


def _wait_version(base, v, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, _, body = _get(base + "/read?query=Q1")
        if status == 200 and json.loads(body)["version"] >= v:
            return json.loads(body)
        time.sleep(0.01)
    raise AssertionError(f"version {v} not served within {timeout}s")


@pytest.fixture(scope="class")
def live():
    svc = GraphService(tools=("graphblas-incremental",), max_batch=1)
    gw = Gateway(svc, queue_limit=256)
    server = GatewayServer.run_in_thread(gw, pump_interval_s=0.005)
    yield server, gw, server.url
    if gw.state != "closed":
        server.shutdown()
    else:
        server.shutdown(drain=False)
    svc.close()


@pytest.mark.usefixtures("live")
class TestHTTP:
    def test_submit_read_roundtrip(self, live):
        _server, _gw, base = live
        status, _, body = _post(base + "/submit",
                                _rows([AddUser(1), AddUser(2),
                                       AddFriendship(1, 2)]))
        assert status == 202
        assert json.loads(body)["ticket"] >= 1
        result = _wait_version(base, 1)
        assert result["query"] == "Q1"

    def test_malformed_submit_is_400(self, live):
        _server, _gw, base = live
        status, _, body = _post(base + "/submit", {"changes": [["?", 1]]})
        assert status == 400
        status, _, _ = _post(base + "/submit", {"nope": []})
        assert status == 400

    def test_unknown_route_and_method(self, live):
        _server, _gw, base = live
        assert _get(base + "/nope")[0] == 404
        assert _get(base + "/drain")[0] == 405

    def test_health_ready_stats(self, live):
        _server, _gw, base = live
        assert _get(base + "/health")[0] == 200
        assert _get(base + "/ready")[0] == 200
        status, _, body = _get(base + "/stats")
        assert status == 200
        assert json.loads(body)["state"] == "accepting"

    def test_metrics_exposition_parses(self, live):
        from repro.obs.metrics import parse_exposition

        _server, _gw, base = live
        status, headers, body = _get(base + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        parsed = parse_exposition(body.decode())
        names = {name for name, _ in parsed["series"]}
        assert any(n.startswith("repro_gateway_") for n in names)
        assert any(n == "repro_op_latency_seconds_count" for n in names)

    def test_deadline_header_maps_to_504(self, live):
        _server, gw, base = live
        # a deadline of 0ms is already expired on arrival -> shed as 504
        status, _, body = _get(base + "/read?query=Q1",
                               headers={"X-Deadline-Ms": "0"})
        assert status == 504
        assert "deadline" in json.loads(body)["error"]

    def test_keep_alive_serves_sequential_requests(self, live):
        _server, _gw, base = live
        host, port = base.removeprefix("http://").split(":")
        with socket.create_connection((host, int(port)), timeout=5) as s:
            for _ in range(2):
                s.sendall(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
                data = b""
                while b"\r\n\r\n" not in data:
                    data += s.recv(4096)
                head, _, body = data.partition(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.1 200")
                length = int(
                    [ln.split(b":")[1] for ln in head.split(b"\r\n")
                     if ln.lower().startswith(b"content-length")][0])
                while len(body) < length:
                    body += s.recv(4096)


class TestRateLimitWire:
    def test_429_with_retry_after(self):
        svc = GraphService(tools=("graphblas-incremental",), max_batch=1)
        gw = Gateway(svc, queue_limit=8, classes={"default": (1.0, 1.0)})
        server = GatewayServer.run_in_thread(gw)
        try:
            base = server.url
            assert _post(base + "/submit", _rows([AddUser(1)]))[0] == 202
            status, headers, body = _post(base + "/submit",
                                          _rows([AddUser(2)]))
            assert status == 429
            assert float(headers["Retry-After"]) > 0
            assert json.loads(body)["retry_after"] > 0
        finally:
            server.shutdown()
            svc.close()


class TestWebSocket:
    def test_accept_key_is_rfc6455(self):
        # the worked example from RFC 6455 section 1.3
        assert (_ws_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
                == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=")

    def test_subscribe_streams_commits_then_drain_closes(self):
        svc = GraphService(tools=("graphblas-incremental",), max_batch=1)
        gw = Gateway(svc, queue_limit=64)
        server = GatewayServer.run_in_thread(gw, pump_interval_s=0.005)
        try:
            base = server.url
            key = base64.b64encode(os.urandom(16)).decode()
            s = socket.create_connection(("127.0.0.1", server.port), timeout=5)
            s.sendall((
                "GET /subscribe?query=Q1&buffer=16 HTTP/1.1\r\nHost: x\r\n"
                "Upgrade: websocket\r\nConnection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n").encode())
            handshake = s.recv(4096)
            assert handshake.startswith(b"HTTP/1.1 101")
            assert _ws_accept_key(key).encode() in handshake

            _post(base + "/submit", _rows([AddUser(1)]))
            _post(base + "/submit", _rows([AddUser(2)]))

            s.settimeout(5)
            buf = b""
            events = []
            while len(events) < 2:
                buf += s.recv(65536)
                while len(buf) >= 2:
                    length = buf[1] & 0x7F
                    head = 2
                    if length == 126:
                        length = int.from_bytes(buf[2:4], "big")
                        head = 4
                    if len(buf) < head + length:
                        break
                    if buf[0] & 0x0F == 0x1:
                        events.append(json.loads(buf[head:head + length]))
                    buf = buf[head + length:]
            assert [e["version"] for e in events] == [1, 2]
            s.close()
        finally:
            server.shutdown()
            svc.close()

    def test_drain_over_http_flips_ready(self):
        svc = GraphService(tools=("graphblas-incremental",), max_batch=1)
        gw = Gateway(svc, queue_limit=8)
        server = GatewayServer.run_in_thread(gw)
        try:
            base = server.url
            _post(base + "/submit", _rows([AddUser(1)]))
            status, _, body = _post(base + "/drain")
            assert status == 200
            stats = json.loads(body)
            assert stats["state"] == "closed"
            assert stats["applied"] == 1
            assert _get(base + "/ready")[0] == 503
            assert _get(base + "/health")[0] == 200
            assert _post(base + "/submit", _rows([AddUser(2)]))[0] == 503
        finally:
            server.shutdown(drain=False)
            svc.close()
