"""Multi-node metrics exposition: merge without label collisions.

The bug this satellite fixes: concatenating per-node Prometheus
expositions repeats ``# TYPE`` lines and -- without base labels --
collides identical ``(name, labels)`` series from different nodes.
``merge_expositions`` + ``node=``/``shard=`` base labels are the fix;
``parse_exposition`` is the strict round-trip oracle.
"""

from __future__ import annotations

import pytest

from repro.gateway import Gateway
from repro.model import AddUser
from repro.obs.metrics import (
    MetricsRegistry,
    merge_expositions,
    parse_exposition,
    render_prometheus,
)
from repro.sharding import ShardedGraphService


class TestParseExposition:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").inc(3)
        reg.gauge("repro_depth", shard="0").set(7)
        text = render_prometheus(reg, labels={"node": "n1"})
        parsed = parse_exposition(text)
        assert parsed["types"] == {"repro_x_total": "counter",
                                   "repro_depth": "gauge"}
        assert parsed["series"][("repro_x_total", 'node="n1"')] == 3.0
        assert parsed["series"][("repro_depth", 'shard="0",node="n1"')] == 7.0

    def test_rejects_duplicate_series(self):
        text = "# TYPE a gauge\na 1\na 2\n"
        with pytest.raises(ValueError, match="duplicate series"):
            parse_exposition(text)

    def test_rejects_retype(self):
        text = "# TYPE a gauge\na 1\n# TYPE a counter\n"
        with pytest.raises(ValueError, match="re-typed"):
            parse_exposition(text)

    def test_rejects_garbage_line(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_exposition("not a series\n")


class TestMergeExpositions:
    def test_single_type_line_per_metric(self):
        a = '# TYPE m gauge\nm{node="a"} 1\n'
        b = '# TYPE m gauge\nm{node="b"} 2\n'
        merged = merge_expositions([a, b])
        assert merged.count("# TYPE m gauge") == 1
        parsed = parse_exposition(merged)
        assert parsed["series"] == {("m", 'node="a"'): 1.0,
                                    ("m", 'node="b"'): 2.0}

    def test_collision_without_base_labels_is_an_error(self):
        part = "# TYPE m gauge\nm 1\n"
        with pytest.raises(ValueError, match="label collision"):
            merge_expositions([part, part])

    def test_family_conflict_is_an_error(self):
        with pytest.raises(ValueError, match="exported as"):
            merge_expositions(["# TYPE m gauge\nm 1\n",
                               "# TYPE m counter\nm 2\n"])

    def test_untyped_extras_survive(self):
        merged = merge_expositions(["plain_series 4\n"])
        assert "# TYPE plain_series untyped" in merged
        assert parse_exposition(merged)["series"][("plain_series", "")] == 4.0


class TestStackedExposition:
    """The real thing: gateway over a 2-shard service, one exposition."""

    def test_gateway_over_sharded_service_parses_clean(self):
        svc = ShardedGraphService(
            shards=2, tools=("graphblas-incremental",), max_batch=1
        )
        gw = Gateway(svc, queue_limit=16)
        try:
            for i in range(4):
                gw.submit([AddUser(i)])
            gw.pump_once()
            gw.read("Q1")
            text = gw.metrics_text()
            # strict parse: would raise on any repeated # TYPE or series
            parsed = parse_exposition(text)
            names = {name for name, _ in parsed["series"]}
            assert any(n.startswith("repro_gateway_") for n in names)
            # both shards' series are present, disambiguated by labels
            shard_labels = {
                labels for name, labels in parsed["series"]
                if name == "repro_op_latency_seconds_count"
            }
            assert any('shard="0"' in lab for lab in shard_labels)
            assert any('shard="1"' in lab for lab in shard_labels)
            assert any('node="gateway"' in lab for lab in shard_labels)
            # every non-gateway series is namespaced under node="service"
            for name, labels in parsed["series"]:
                assert 'node="gateway"' in labels or 'node="service"' in labels
        finally:
            gw.drain(close_service=True)

    def test_per_op_series_do_not_collide_across_layers(self):
        # gateway op names (admit/pump/read) are disjoint from service op
        # names (submit/wal/apply/query/...) *and* carry distinct node
        # labels; either alone would prevent collisions, both are policy
        svc = ShardedGraphService(
            shards=2, tools=("graphblas-incremental",), max_batch=1
        )
        gw = Gateway(svc, queue_limit=16)
        try:
            gw.submit([AddUser(0)])
            gw.pump_once()
            parsed = parse_exposition(gw.metrics_text())
            gateway_ops = {
                lab for name, lab in parsed["series"]
                if name == "repro_op_latency_seconds_count"
                and 'node="gateway"' in lab
            }
            assert any('op="admit"' in lab for lab in gateway_ops)
            assert any('op="pump"' in lab for lab in gateway_ops)
        finally:
            gw.drain(close_service=True)
