"""Generator: Table II conformance, determinism, distribution shape."""

import numpy as np
import pytest

from repro.datagen import TABLE2, generate_benchmark_input, generate_graph, scale_factors
from repro.datagen.distributions import (
    sample_pairs_without_replacement,
    sample_zipf,
    zipf_weights,
)
from repro.datagen.table2 import row_for


class TestTable2Constants:
    def test_paper_values(self):
        assert TABLE2[1].nodes == 1274
        assert TABLE2[1].edges == 2533
        assert TABLE2[1].inserts == 67
        assert TABLE2[1024].nodes == 859_000

    def test_scale_factors(self):
        assert scale_factors() == [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]

    def test_row_for_interpolates(self):
        r = row_for(3)
        assert r.scale_factor == 3 and r.nodes > TABLE2[2].nodes


class TestDistributions:
    def test_zipf_weights_normalised(self):
        w = zipf_weights(100, 0.8)
        assert abs(w.sum() - 1.0) < 1e-12
        assert w[0] > w[50] > w[99]

    def test_zipf_empty(self):
        assert zipf_weights(0, 1.0).size == 0
        assert sample_zipf(np.random.default_rng(0), 0, 5, 1.0).size == 0

    def test_sample_zipf_range(self):
        s = sample_zipf(np.random.default_rng(0), 10, 1000, 0.9)
        assert s.min() >= 0 and s.max() < 10
        # heavy tail: index 0 should be the most frequent
        counts = np.bincount(s, minlength=10)
        assert counts[0] == counts.max()

    def test_pairs_unique(self):
        l, r = sample_pairs_without_replacement(
            np.random.default_rng(1), 50, 50, 200, 0.7, 0.7
        )
        keys = set(zip(l.tolist(), r.tolist()))
        assert len(keys) == l.size

    def test_pairs_symmetric_no_self(self):
        a, b = sample_pairs_without_replacement(
            np.random.default_rng(2), 30, 30, 100, 0.7, 0.7, symmetric=True
        )
        assert (a < b).all()

    def test_pairs_dense_corner_returns_fewer(self):
        # only 3 possible symmetric pairs among 3 users
        a, b = sample_pairs_without_replacement(
            np.random.default_rng(3), 3, 3, 100, 0.5, 0.5, symmetric=True
        )
        assert a.size <= 3


class TestGeneratedGraphs:
    @pytest.mark.parametrize("sf", [1, 2, 4])
    def test_node_count_exact(self, sf):
        g = generate_graph(sf, seed=42)
        assert g.stats()["nodes"] == TABLE2[sf].nodes

    @pytest.mark.parametrize("sf", [1, 2, 4])
    def test_edge_count_close(self, sf):
        g = generate_graph(sf, seed=42)
        achieved = g.stats()["edges"]
        target = TABLE2[sf].edges
        assert abs(achieved - target) / target < 0.02

    def test_insert_count_exact(self):
        for sf in (1, 2):
            _, css = generate_benchmark_input(sf, seed=42)
            assert sum(len(cs) for cs in css) == TABLE2[sf].inserts

    def test_deterministic(self):
        g1, c1 = generate_benchmark_input(1, seed=5)
        g2, c2 = generate_benchmark_input(1, seed=5)
        assert g1.stats() == g2.stats()
        assert g1.likes.isequal(g2.likes)
        assert g1.friends.isequal(g2.friends)
        assert all(a.changes == b.changes for a, b in zip(c1, c2))

    def test_seed_changes_output(self):
        g1 = generate_graph(1, seed=5)
        g2 = generate_graph(1, seed=6)
        assert not g1.likes.isequal(g2.likes)

    def test_heavy_tail_likes(self):
        """A few comments must be much more liked than the median (Q2 load)."""
        g = generate_graph(4, seed=42)
        from repro.graphblas import INT64, monoid

        counts = g.likes.reduce_vector(monoid.plus_monoid, dtype=INT64).to_dense()
        liked = counts[counts > 0]
        assert liked.max() >= 10 * max(1, int(np.median(liked)))

    def test_timestamps_strictly_increasing(self):
        g = generate_graph(1, seed=42)
        ts = g.comment_timestamps
        assert (np.diff(ts) > 0).all()

    def test_change_sets_apply_cleanly(self):
        g, css = generate_benchmark_input(1, seed=42)
        for cs in css:
            g.apply(cs)  # raises on dangling references

    def test_updates_reference_existing_hot_entities(self):
        from repro.model.changes import AddLike

        g, css = generate_benchmark_input(2, seed=42)
        likes = [c for cs in css for c in cs if isinstance(c, AddLike)]
        assert likes, "expected like inserts in the update mix"


class TestCli:
    def test_main_writes_csvs(self, tmp_path, capsys):
        from repro.datagen.generator import main

        rc = main(["--scale", "1", "--out", str(tmp_path / "sf1"), "--seed", "1"])
        assert rc == 0
        assert (tmp_path / "sf1" / "users.csv").exists()
        assert (tmp_path / "sf1" / "change01.csv").exists()
        out = capsys.readouterr().out
        assert "SF1" in out

    def test_cli_roundtrip_queries(self, tmp_path):
        from repro.datagen.generator import main
        from repro.model import load_change_sets, load_graph
        from repro.queries import Q1Batch

        main(["--scale", "1", "--out", str(tmp_path / "d"), "--seed", "3"])
        g = load_graph(tmp_path / "d")
        css = load_change_sets(tmp_path / "d")
        assert len(css) == 10
        assert len(Q1Batch(g).evaluate()) == 3
