"""Shared fixtures: the paper's Fig. 3 example graph and hypothesis profiles."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.model import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    SocialGraph,
)

settings.register_profile(
    "ci",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


# External ids of the paper's example entities.
U1, U2, U3, U4 = 101, 102, 103, 104
P1, P2 = 11, 12
C1, C2, C3, C4 = 21, 22, 23, 24


def build_paper_graph() -> SocialGraph:
    """Fig. 3a: the initial example graph.

    Posts p1 (comments c1, c2) and p2 (comment c3); friendships u2-u3 and
    u3-u4; likes: c1 <- {u2, u3}, c2 <- {u1, u3, u4}.
    """
    g = SocialGraph()
    for uid, name in ((U1, "u1"), (U2, "u2"), (U3, "u3"), (U4, "u4")):
        g.add_user(uid, name)
    g.add_post(P1, 10, U1)
    g.add_post(P2, 11, U2)
    g.add_comment(C1, 20, U2, P1)
    g.add_comment(C2, 21, U1, C1)
    g.add_comment(C3, 22, U3, P2)
    g.add_friendship(U2, U3)
    g.add_friendship(U3, U4)
    g.add_like(U2, C1)
    g.add_like(U3, C1)
    g.add_like(U1, C2)
    g.add_like(U3, C2)
    g.add_like(U4, C2)
    return g


def paper_update() -> ChangeSet:
    """Fig. 3b: the six-element update.

    (1) friends u1-u4, (2) like u2 -> c2, (3)-(5) comment c4 under c1
    (rootPost p1 derived), (6) like u4 -> c4.
    """
    return ChangeSet(
        [
            AddFriendship(U1, U4),
            AddLike(U2, C2),
            AddComment(C4, 30, U3, C1),
            AddLike(U4, C4),
        ]
    )


@pytest.fixture
def paper_graph() -> SocialGraph:
    return build_paper_graph()


@pytest.fixture
def paper_change_set() -> ChangeSet:
    return paper_update()
