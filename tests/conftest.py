"""Shared fixtures and generators: the paper's Fig. 3 example graph,
hypothesis profiles, and the change-stream/graph generators every
property suite (queries, serving, analytics, sharding) draws from."""

from __future__ import annotations

import gc
import os
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.datagen import generate_change_sets, generate_graph
from repro.model import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
    SocialGraph,
)

settings.register_profile(
    "ci",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


# External ids of the paper's example entities.
U1, U2, U3, U4 = 101, 102, 103, 104
P1, P2 = 11, 12
C1, C2, C3, C4 = 21, 22, 23, 24


def build_paper_graph() -> SocialGraph:
    """Fig. 3a: the initial example graph.

    Posts p1 (comments c1, c2) and p2 (comment c3); friendships u2-u3 and
    u3-u4; likes: c1 <- {u2, u3}, c2 <- {u1, u3, u4}.
    """
    g = SocialGraph()
    for uid, name in ((U1, "u1"), (U2, "u2"), (U3, "u3"), (U4, "u4")):
        g.add_user(uid, name)
    g.add_post(P1, 10, U1)
    g.add_post(P2, 11, U2)
    g.add_comment(C1, 20, U2, P1)
    g.add_comment(C2, 21, U1, C1)
    g.add_comment(C3, 22, U3, P2)
    g.add_friendship(U2, U3)
    g.add_friendship(U3, U4)
    g.add_like(U2, C1)
    g.add_like(U3, C1)
    g.add_like(U1, C2)
    g.add_like(U3, C2)
    g.add_like(U4, C2)
    return g


def paper_update() -> ChangeSet:
    """Fig. 3b: the six-element update.

    (1) friends u1-u4, (2) like u2 -> c2, (3)-(5) comment c4 under c1
    (rootPost p1 derived), (6) like u4 -> c4.
    """
    return ChangeSet(
        [
            AddFriendship(U1, U4),
            AddLike(U2, C2),
            AddComment(C4, 30, U3, C1),
            AddLike(U4, C4),
        ]
    )


# ---------------------------------------------------------------------------
# suite-wide leak check
#
# The repo now forks child processes in three places (the kernel worker
# pool, per-shard worker processes, the fault suites' crash simulations)
# and fans out over thread pools in two more.  Every test must hand back a
# quiet process: no orphaned/zombie children, no non-daemon threads.  This
# generalises the PR 3 "crashed apply leaves no forked children"
# regression test to the entire suite.
# ---------------------------------------------------------------------------


def _allowed_child_pids() -> set:
    """Children that legitimately outlive a single test: the refcounted
    process-wide kernel executor's fork-once workers."""
    from repro.graphblas._kernels import parallel as _kparallel

    ex = _kparallel._state.get("executor")
    children = getattr(ex, "_children", None) or ()
    return {child[0] for child in children}


def _leaked_children() -> list:
    """(pid, state) of live or zombie children of this process, minus the
    allowed set -- scanned from /proc so no psutil dependency."""
    me = os.getpid()
    allowed = _allowed_child_pids()
    leaked = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) in allowed:
            continue
        try:
            with open(f"/proc/{entry}/stat") as fh:
                stat = fh.read()
        except OSError:  # raced a process exit
            continue
        fields = stat.rsplit(")", 1)[1].split()  # comm may contain spaces
        state, ppid = fields[0], int(fields[1])
        if ppid == me:
            leaked.append((int(entry), "zombie" if state == "Z" else state))
    return leaked


def _leaked_threads() -> list:
    return [
        t
        for t in threading.enumerate()
        if t is not threading.main_thread() and not t.daemon and t.is_alive()
    ]


@pytest.fixture(autouse=True)
def no_process_or_thread_leaks():
    """Assert every test leaves no orphaned children / non-daemon threads.

    Crash-simulation tests abandon services via ``del`` without closing;
    their worker processes and pool threads are reclaimed through
    finalizers, so on a first sighting this polls with ``gc.collect()``
    (triggering ``ProcessShardHandle.__del__`` reaping and executor
    finalizers) before declaring a leak.
    """
    yield
    procs, threads = _leaked_children(), _leaked_threads()
    if procs or threads:
        deadline = time.monotonic() + 5.0
        while (procs or threads) and time.monotonic() < deadline:
            gc.collect()
            time.sleep(0.05)
            procs, threads = _leaked_children(), _leaked_threads()
    assert not procs, f"orphaned child processes survived the test: {procs}"
    assert not threads, (
        "non-daemon threads survived the test: "
        f"{[t.name for t in threads]}"
    )


@pytest.fixture
def paper_graph() -> SocialGraph:
    return build_paper_graph()


@pytest.fixture
def paper_change_set() -> ChangeSet:
    return paper_update()


# ---------------------------------------------------------------------------
# shared change-stream generators
#
# One seeded generator + one hypothesis strategy, shared by the property
# suites under tests/queries, tests/serving, tests/analytics and
# tests/sharding (previously copy-pasted per directory with drift).
# ---------------------------------------------------------------------------


def random_graph_and_stream(
    seed: int, n_sets: int, *, removals: bool = False
) -> tuple[int, SocialGraph, list[ChangeSet]]:
    """A small random SocialGraph plus a random update stream.

    Deterministic in ``(seed, n_sets, removals)``, so calling it twice
    yields structurally identical graphs and streams -- which is how the
    equivalence suites feed the same workload to several engines or
    services.  With ``removals=True`` the stream mixes ``RemoveLike`` /
    ``RemoveFriendship`` of *existing* edges in (the extension's
    non-monotone regime).
    """
    rng = np.random.default_rng(seed)
    g = SocialGraph()
    users = [100 + i for i in range(int(rng.integers(2, 7)))]
    for u in users:
        g.add_user(u)
    posts = [200 + i for i in range(int(rng.integers(1, 4)))]
    for i, p in enumerate(posts):
        g.add_post(p, i, users[int(rng.integers(len(users)))])
    comments: list[int] = []
    submissions = list(posts)
    ts = 50
    for i in range(int(rng.integers(1, 9))):
        cid = 300 + i
        g.add_comment(
            cid,
            ts,
            users[int(rng.integers(len(users)))],
            submissions[int(rng.integers(len(submissions)))],
        )
        comments.append(cid)
        submissions.append(cid)
        ts += 1
    likes: set[tuple[int, int]] = set()
    for _ in range(int(rng.integers(0, 12))):
        u = users[int(rng.integers(len(users)))]
        c = comments[int(rng.integers(len(comments)))]
        if g.add_like(u, c) is not None:
            likes.add((u, c))
    friends: set[tuple[int, int]] = set()
    for _ in range(int(rng.integers(0, 8))):
        a, b = rng.integers(0, len(users), 2)
        if a != b and g.add_friendship(users[int(a)], users[int(b)]) is not None:
            friends.add(
                (min(users[int(a)], users[int(b)]), max(users[int(a)], users[int(b)]))
            )

    change_sets: list[ChangeSet] = []
    next_user, next_post, next_comment = 500, 250, 400
    n_kinds = 7 if removals else 5
    for _ in range(n_sets):
        cs = ChangeSet()
        for _ in range(int(rng.integers(1, 7))):
            kind = int(rng.integers(0, n_kinds))
            if kind == 0:
                cs.append(AddUser(next_user))
                users.append(next_user)
                next_user += 1
            elif kind == 1:
                cs.append(AddPost(next_post, ts, users[int(rng.integers(len(users)))]))
                submissions.append(next_post)
                next_post += 1
                ts += 1
            elif kind == 2:
                cs.append(
                    AddComment(
                        next_comment,
                        ts,
                        users[int(rng.integers(len(users)))],
                        submissions[int(rng.integers(len(submissions)))],
                    )
                )
                comments.append(next_comment)
                submissions.append(next_comment)
                next_comment += 1
                ts += 1
            elif kind == 3:
                u = users[int(rng.integers(len(users)))]
                c = comments[int(rng.integers(len(comments)))]
                if (u, c) not in likes:
                    likes.add((u, c))
                    cs.append(AddLike(u, c))
            elif kind == 4:
                a, b = rng.integers(0, len(users), 2)
                if a != b:
                    key = (
                        min(users[int(a)], users[int(b)]),
                        max(users[int(a)], users[int(b)]),
                    )
                    if key not in friends:
                        friends.add(key)
                        cs.append(AddFriendship(*key))
            elif kind == 5 and likes:
                u, c = sorted(likes)[int(rng.integers(len(likes)))]
                likes.discard((u, c))
                cs.append(RemoveLike(u, c))
            elif kind == 6 and friends:
                a, b = sorted(friends)[int(rng.integers(len(friends)))]
                friends.discard((a, b))
                cs.append(RemoveFriendship(a, b))
        change_sets.append(cs)
    return seed, g, change_sets


@st.composite
def graph_and_updates(draw, *, removals: bool = False, max_sets: int = 3):
    """Hypothesis wrapper over :func:`random_graph_and_stream`.

    Draws ``(seed, graph, change_sets)``; shrinking happens over the seed
    and stream length, the generator itself stays deterministic.
    """
    seed = draw(st.integers(0, 2**16))
    n_sets = draw(st.integers(1, max_sets))
    return random_graph_and_stream(seed, n_sets, removals=removals)


def clone_changes(change_sets: list[ChangeSet]) -> list[ChangeSet]:
    """Fresh ChangeSet shells over the same (frozen) change objects."""
    return [ChangeSet(list(cs.changes)) for cs in change_sets]


def datagen_stream(
    seed: int,
    *,
    removal_fraction: float = 0.3,
    total_inserts: int = 180,
    num_change_sets: int = 6,
    scale_factor: int = 1,
):
    """A datagen-scale workload: ``(fresh_graph, stream)``.

    ``fresh_graph()`` builds a *new* structurally identical initial graph
    on every call (deterministic in ``seed``), so equivalence tests can
    hand the same starting point to several services without sharing
    mutable state; ``stream`` is the matching update sequence.
    """

    def fresh_graph() -> SocialGraph:
        return generate_graph(scale_factor, seed=seed)

    stream = generate_change_sets(
        fresh_graph(),
        total_inserts=total_inserts,
        num_change_sets=num_change_sets,
        seed=seed + 1,
        removal_fraction=removal_fraction,
    )
    return fresh_graph, stream
