"""Kernel profiling hooks: TimedBlock transport, region aggregation,
and the end-to-end path through ``locked_map`` and a real kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphblas._kernels import parallel as kp
from repro.obs.kernels import (
    KernelProfiler,
    TimedBlock,
    get_kernel_profiler,
    set_kernel_profiler,
)
from repro.parallel.executor import make_executor


@pytest.fixture(autouse=True)
def _clean_profiler_slot():
    set_kernel_profiler(None)
    yield
    set_kernel_profiler(None)


class TestKernelProfiler:
    def test_region_aggregation(self):
        p = KernelProfiler()
        p.record_region("mxv", work=100, blocks=2, wall_s=0.01,
                        block_seconds=[0.004, 0.004])
        p.record_region("mxv", work=50, blocks=2, wall_s=0.02,
                        block_seconds=[0.001, 0.003])
        s = p.summary()["mxv"]
        assert s["regions"] == 2
        assert s["work"] == 150
        assert s["blocks"] == 4
        assert abs(s["wall_s"] - 0.03) < 1e-9
        # worst region: [0.001, 0.003] -> 0.003 / 0.002 mean = 1.5
        assert s["max_imbalance"] == 1.5
        assert s["max_block_s"] == 0.004

    def test_clear(self):
        p = KernelProfiler()
        p.record_region("mxm", 1, 1, 0.0, [0.0])
        p.clear()
        assert p.summary() == {}

    def test_timed_block_returns_pair(self):
        tb = TimedBlock(lambda span: span[0] + span[1])
        dt, out = tb((2, 3))
        assert out == 5
        assert dt >= 0.0

    def test_timed_block_pickles(self):
        import pickle

        tb = pickle.loads(pickle.dumps(TimedBlock(_double)))
        assert tb((4,)) [1] == 8


def _double(span):
    return span[0] * 2


class TestSlot:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_KERNELS", raising=False)
        assert get_kernel_profiler() is None

    def test_install_and_disable(self):
        p = KernelProfiler()
        set_kernel_profiler(p)
        assert get_kernel_profiler() is p
        set_kernel_profiler(None)
        assert get_kernel_profiler() is None


class TestLockedMapIntegration:
    def test_locked_map_records_named_regions(self):
        p = KernelProfiler()
        set_kernel_profiler(p)
        ex = make_executor("serial")
        out = kp.locked_map(ex, _double, [(1,), (2,), (3,)],
                            kernel="reduce", work=3)
        assert out == [2, 4, 6]  # results unwrapped, order preserved
        s = p.summary()["reduce"]
        assert s["regions"] == 1
        assert s["blocks"] == 3
        assert s["work"] == 3

    def test_locked_map_unnamed_region_not_recorded(self):
        p = KernelProfiler()
        set_kernel_profiler(p)
        ex = make_executor("serial")
        out = kp.locked_map(ex, _double, [(1,)])
        assert out == [2]
        assert p.summary() == {}

    def test_locked_map_unwrapped_when_disabled(self):
        ex = make_executor("serial")
        out = kp.locked_map(ex, _double, [(1,)], kernel="mxv", work=1)
        assert out == [2]  # no profiler: results flow through untouched

    def test_real_kernel_region_profiles(self):
        """parallel_mxv through a thread executor records an 'mxv' region
        whose block count matches the returned spans."""
        from repro.graphblas.semiring import SEMIRINGS

        p = KernelProfiler()
        set_kernel_profiler(p)
        ex = make_executor("thread", 2)
        kp.set_kernel_executor(ex)
        kp.set_parallel_cutoff(1)
        try:
            n = 64
            rows = np.repeat(np.arange(n, dtype=np.int64), n)
            cols = np.tile(np.arange(n, dtype=np.int64), n)
            vals = np.ones(n * n, dtype=np.int64)
            u = (np.arange(n, dtype=np.int64), np.ones(n, dtype=np.int64), n)
            got = kp.parallel_mxv(
                (rows, cols, vals, n, n), u, SEMIRINGS["plus_times"]
            )
            assert got is not None
            s = p.summary()["mxv"]
            assert s["regions"] == 1
            assert s["work"] == n * n
            assert s["blocks"] >= 2
            assert s["max_imbalance"] >= 1.0
        finally:
            kp.set_parallel_cutoff(None)
            kp.set_kernel_executor(None)
            ex.close()
