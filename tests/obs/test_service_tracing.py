"""End-to-end tracing through the serving stack.

The PR's acceptance property lives here: one micro-batch submitted to a
``ShardedGraphService(shards=2)`` yields ONE connected trace tree
spanning the router, both shards and every engine refresh, exported as
valid Chrome trace-event JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.model.changes import AddComment, AddLike, AddPost, AddUser
from repro.obs import Tracer, set_tracer
from repro.serving.service import GraphService
from repro.sharding.router import ShardedGraphService

TOOLS = ("graphblas-incremental",)


@pytest.fixture(autouse=True)
def _fresh_tracer():
    t = Tracer()
    set_tracer(t)
    yield t
    set_tracer(None)


def _one_batch():
    return [
        AddUser(1),
        AddUser(2),
        AddPost(10, 1, 1),
        AddComment(20, 2, 1, 10),
        AddLike(2, 20),
    ]


def _tree(spans):
    """{span_id: span} plus a child-id adjacency map."""
    by_id = {s["span_id"]: s for s in spans}
    children: dict = {}
    for s in spans:
        if s["parent_id"] is not None:
            children.setdefault(s["parent_id"], []).append(s["span_id"])
    return by_id, children


class TestShardedAcceptance:
    """A single micro-batch -> one connected tree across the whole stack."""

    def test_single_batch_connected_tree(self, _fresh_tracer, tmp_path):
        t = _fresh_tracer
        svc = ShardedGraphService(
            shards=2, tools=TOOLS, analytics=("degree",),
            max_batch=10**9, max_delay_ms=1e9,
            data_dir=tmp_path,  # so the tree includes wal spans
        )
        t.clear()  # construction (initial evaluations) is not the batch
        svc.submit(_one_batch())
        svc.flush()
        svc.query("Q1")
        assert t.open_spans == 0
        spans = t.finished()
        by_id, children = _tree(spans)

        # every parent link resolves in-log
        for s in spans:
            assert s["parent_id"] is None or s["parent_id"] in by_id

        # three roots: the enqueue-only submit, the flush (the whole write
        # path hangs off it), and the query
        roots = [s for s in spans if s["parent_id"] is None]
        assert sorted(s["name"] for s in roots) == ["flush", "query", "submit"]
        flush = next(s for s in roots if s["name"] == "flush")

        # the flush tree is connected and spans router + both shards +
        # every engine refresh
        reach = set()
        stack = [flush["span_id"]]
        while stack:
            sid = stack.pop()
            reach.add(sid)
            stack.extend(children.get(sid, []))
        reached = [by_id[sid] for sid in reach]
        names = sorted(s["name"] for s in reached)
        shard_ids = sorted(
            s["attrs"]["shard"] for s in reached if s["name"] == "shard"
        )
        assert shard_ids == [0, 1]
        # router batch + 2 shard batches, all inside the one submit tree
        assert names.count("batch") == 3
        assert names.count("scatter") == 1
        assert names.count("wal") == 3  # router WAL + one per shard
        # every engine refresh: 2 shards x (Q1, Q2, degree)
        refreshes = [s for s in reached if s["name"] == "refresh"]
        assert len(refreshes) == 6
        assert all(r["attrs"]["status"] == "ok" for r in refreshes)
        tools = {(r["attrs"]["query"], r["attrs"]["tool"]) for r in refreshes}
        assert tools == {
            ("Q1", "graphblas-incremental"),
            ("Q2", "graphblas-incremental"),
            ("degree", "degree"),
        }
        # all spans except the submit and query roots belong to the flush tree
        assert len(reach) == len(spans) - 2

        # exported trace is valid Chrome trace-event JSON
        doc = json.loads(json.dumps(t.chrome_trace()))
        events = doc["traceEvents"]
        assert len(events) == len(spans)
        ids = {ev["args"]["span_id"] for ev in events}
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["dur"] >= 0 and isinstance(ev["ts"], (int, float))
            assert ev["args"].get("parent_id") is None or ev["args"]["parent_id"] in ids
        svc.close()

    def test_trace_dump_on_close(self, _fresh_tracer, tmp_path, monkeypatch):
        out = tmp_path / "trace.json"
        monkeypatch.setenv("REPRO_TRACE", str(out))
        svc = ShardedGraphService(
            shards=2, tools=TOOLS, max_batch=1
        )
        svc.submit([AddUser(1)])
        svc.close()
        with open(out) as fh:
            doc = json.load(fh)
        assert any(ev["name"] == "batch" for ev in doc["traceEvents"])


class TestSingleServiceTaxonomy:
    def test_write_path_span_nesting(self, _fresh_tracer):
        t = _fresh_tracer
        svc = GraphService(tools=TOOLS, max_batch=10**9, max_delay_ms=1e9,
                           concurrent_refresh=False)
        t.clear()
        svc.submit([AddUser(1), AddUser(2)])
        svc.flush()
        spans = t.finished()
        by_name: dict = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        # submit and flush are separate calls, so separate roots
        assert by_name["submit"][0]["parent_id"] is None
        assert by_name["flush"][0]["parent_id"] is None
        # flush > batch > {apply, commit, refresh x2}
        flush_id = by_name["flush"][0]["span_id"]
        batch = by_name["batch"][0]
        assert batch["parent_id"] == flush_id
        assert batch["attrs"] == {"version": 1, "changes": 2}
        for name in ("apply", "commit"):
            assert by_name[name][0]["parent_id"] == batch["span_id"]
        assert len(by_name["refresh"]) == 2  # Q1 + Q2
        for r in by_name["refresh"]:
            assert r["parent_id"] == batch["span_id"]
        assert by_name["submit"][0]["attrs"] == {"changes": 2, "flushed": False}
        svc.close()

    def test_span_log_deterministic_across_runs(self, tmp_path):
        def run():
            t = Tracer()
            set_tracer(t)
            svc = GraphService(
                tools=TOOLS, analytics=("degree",),
                max_batch=10**9, max_delay_ms=1e9, concurrent_refresh=False,
            )
            t.clear()
            svc.submit(_one_batch())
            svc.flush()
            svc.query("Q2")
            svc.close()
            return [
                (s["name"], s["span_id"], s["parent_id"], s["attrs"])
                for s in t.finished()
            ]

        assert run() == run()

    def test_no_tracer_no_spans_service_still_works(self):
        set_tracer(None)
        svc = GraphService(tools=TOOLS, max_batch=1)
        svc.submit([AddUser(1)])
        assert svc.query("Q1").version == 1
        svc.close()
