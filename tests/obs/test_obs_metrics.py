"""MetricsRegistry: typed instruments, snapshots, Prometheus exposition."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, render_prometheus
from repro.serving.metrics import OpMetrics


class TestInstruments:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_wal_bytes_total")
        c.inc()
        c.inc(41)
        assert c.value == 42
        # get-or-create returns the same instrument
        assert reg.counter("repro_wal_bytes_total") is c

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_ingest_queue_depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("repro_shard_changes_total", shard="0").inc(3)
        reg.counter("repro_shard_changes_total", shard="1").inc(7)
        snap = reg.snapshot()["repro_shard_changes_total"]
        assert snap == {'shard="0"': 3, 'shard="1"': 7}

    def test_family_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_batch_size")
        for v in (1, 2, 3, 10):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 16
        assert s["min"] == 1 and s["max"] == 10
        assert s["p50"] == 2.5

    def test_histogram_reservoir_deterministic(self):
        import threading

        a, b = Histogram(threading.Lock(), 64), Histogram(threading.Lock(), 64)
        for i in range(10_000):
            a.observe(float(i))
            b.observe(float(i))
        assert a._samples == b._samples
        assert len(a._samples) < 64
        assert a.count == 10_000  # count/sum stay exact under decimation


class TestSnapshot:
    def test_json_able_and_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("b").set(2)
        reg.counter("a").inc()
        reg.histogram("c").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        json.dumps(snap)  # must not raise

    def test_unlabelled_collapses_to_value(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc(2)
        assert reg.snapshot()["plain"] == 2


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_wal_bytes_total").inc(100)
        reg.gauge("repro_engine_staleness", engine="pagerank").set(3)
        reg.histogram("repro_batch_size").observe(4)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE repro_batch_size summary" in lines
        assert "# TYPE repro_wal_bytes_total counter" in lines
        assert 'repro_engine_staleness{engine="pagerank"} 3' in lines
        assert "repro_wal_bytes_total 100" in lines
        assert 'repro_batch_size{quantile="0.50"} 4.0' in lines
        assert "repro_batch_size_count 1" in lines
        assert text.endswith("\n")

    def test_ops_render_as_latency_summaries(self):
        reg = MetricsRegistry()
        ops = OpMetrics()
        ops.record("query", 0.002)
        text = render_prometheus(reg, ops=ops)
        assert "# TYPE repro_op_latency_seconds summary" in text
        assert 'repro_op_latency_seconds_count{op="query"} 1' in text
        assert 'repro_op_latency_seconds{op="query",quantile="0.99"}' in text

    def test_extras_and_labels(self):
        reg = MetricsRegistry()
        reg.gauge("repro_ingest_queue_depth").set(2)
        text = render_prometheus(
            reg, extras={"repro_cache_hits": 9}, labels={"shard": "1"}
        )
        # base labels append to every series, extras render as gauges
        assert 'repro_ingest_queue_depth{shard="1"} 2' in text
        assert 'repro_cache_hits{shard="1"} 9' in text
