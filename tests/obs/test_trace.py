"""Tracer unit behaviour: span trees, determinism, Chrome export, slots."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import (
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    span_if,
    trace_enabled_from_env,
    trace_output_path,
)


@pytest.fixture(autouse=True)
def _no_process_tracer():
    """Keep the process-wide slot clean around every test here."""
    set_tracer(None)
    yield
    set_tracer(None)


class TestSpans:
    def test_parent_child_nesting(self):
        t = Tracer()
        with t.span("submit") as root:
            assert current_span() is root
            with t.span("batch") as child:
                assert child.parent_id == root.span_id
        assert current_span() is None
        log = t.finished()
        # end order: children before parents
        assert [s["name"] for s in log] == ["batch", "submit"]
        assert log[0]["parent_id"] == log[1]["span_id"]

    def test_explicit_parent_beats_contextvar(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner"):
                s = t.span("detached", parent=outer)
                s.end()
        by_name = {s["name"]: s for s in t.finished()}
        assert by_name["detached"]["parent_id"] == outer.span_id

    def test_ids_monotone_no_rng(self):
        t = Tracer()
        ids = [t.span(f"s").span_id for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]

    def test_end_is_idempotent(self):
        t = Tracer()
        s = t.span("once")
        s.end()
        s.end()
        assert len(t.finished()) == 1
        assert t.open_spans == 0

    def test_attrs_and_error_stamp(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom", version=3) as s:
                s.set(extra=1)
                raise ValueError("x")
        (span,) = t.finished()
        assert span["attrs"] == {"version": 3, "extra": 1, "error": "ValueError"}
        assert t.open_spans == 0

    def test_record_posthoc(self):
        t = Tracer()
        with t.span("batch") as b:
            sid = t.record("refresh", t0=b.t0, duration=0.001, tool="x")
        log = t.finished()
        rec = next(s for s in log if s["name"] == "refresh")
        assert rec["span_id"] == sid
        assert rec["parent_id"] == b.span_id
        assert rec["duration"] == 0.001

    def test_open_spans_counts_live(self):
        t = Tracer()
        a = t.span("a")
        b = t.span("b")
        assert t.open_spans == 2
        b.end()
        a.end()
        assert t.open_spans == 0

    def test_thread_isolation_of_current(self):
        t = Tracer()
        seen = {}

        def worker():
            seen["current"] = current_span()
            with t.span("child-thread"):
                pass

        with t.span("main"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        # the contextvar does not leak across threads: the worker saw no
        # parent and its span is a root
        assert seen["current"] is None
        child = next(s for s in t.finished() if s["name"] == "child-thread")
        assert child["parent_id"] is None


class TestDeterminism:
    def _workload(self):
        t = Tracer()
        with t.span("submit", changes=2):
            with t.span("batch", version=1):
                with t.span("wal"):
                    pass
                t.record("refresh", 0.0, 0.0, tool="a")
                t.record("refresh", 0.0, 0.0, tool="b")
        return [
            (s["name"], s["span_id"], s["parent_id"], s["attrs"])
            for s in t.finished()
        ]

    def test_identical_runs_identical_logs(self):
        assert self._workload() == self._workload()


class TestChromeExport:
    def test_valid_trace_event_json(self, tmp_path):
        t = Tracer()
        with t.span("submit"):
            with t.span("batch", version=1):
                pass
        doc = t.chrome_trace()
        # round-trips as JSON
        doc2 = json.loads(json.dumps(doc))
        events = doc2["traceEvents"]
        assert len(events) == 2
        ids = set()
        for ev in events:
            assert ev["ph"] == "X"
            assert isinstance(ev["ts"], (int, float))
            assert isinstance(ev["dur"], (int, float))
            assert ev["dur"] >= 0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            ids.add(ev["args"]["span_id"])
        # parent links resolve within the document
        for ev in events:
            parent = ev["args"].get("parent_id")
            assert parent is None or parent in ids
        # sorted by start time; outermost span starts first
        assert events[0]["name"] == "submit"

    def test_tids_renumbered_first_seen(self):
        t = Tracer()
        with t.span("only"):
            pass
        (ev,) = t.chrome_trace()["traceEvents"]
        assert ev["tid"] == 0  # never the raw thread ident

    def test_dump_writes_file(self, tmp_path):
        t = Tracer()
        with t.span("s"):
            pass
        path = t.dump(tmp_path / "trace.json")
        with open(path) as fh:
            assert json.load(fh)["traceEvents"][0]["name"] == "s"

    def test_clear(self):
        t = Tracer()
        with t.span("s"):
            pass
        t.clear()
        assert t.finished() == []


class TestProcessSlot:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not trace_enabled_from_env()
        assert get_tracer() is None

    def test_env_values(self, monkeypatch):
        for off in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_TRACE", off)
            assert not trace_enabled_from_env()
            assert trace_output_path() is None
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace_enabled_from_env()
        assert trace_output_path() is None  # in-memory only
        monkeypatch.setenv("REPRO_TRACE", "/tmp/t.json")
        assert trace_enabled_from_env()
        assert trace_output_path() == "/tmp/t.json"

    def test_set_tracer_install_and_disable(self):
        t = Tracer()
        set_tracer(t)
        assert get_tracer() is t
        set_tracer(None)
        assert get_tracer() is None

    def test_span_if_null_path(self):
        from repro.obs.trace import _NULL_SPAN

        s = span_if(None, "anything", attrs=1)
        assert s is _NULL_SPAN
        with s as inner:
            inner.set(x=1)  # all no-ops
        s.end()

    def test_span_if_live_path(self):
        t = Tracer()
        with span_if(t, "real", k=1):
            pass
        (span,) = t.finished()
        assert span["name"] == "real"
        assert span["attrs"] == {"k": 1}
