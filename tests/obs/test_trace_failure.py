"""Trace continuity across failure: crashed applies close their spans,
recovery emits a ``recover`` span carrying replayed-frame counts."""

from __future__ import annotations

import pytest

from repro.obs import Tracer, set_tracer
from repro.serving.service import GraphService
from repro.sharding.router import ShardedGraphService
from repro.util.validation import ReproError
from tests.conftest import datagen_stream

TOOLS = ("graphblas-incremental",)
KW = dict(tools=TOOLS, max_batch=10**9, max_delay_ms=1e9)


@pytest.fixture(autouse=True)
def _fresh_tracer():
    t = Tracer()
    set_tracer(t)
    yield t
    set_tracer(None)


class _Bomb:
    """An engine whose refresh always crashes (PR 5 harness style)."""

    last_top: tuple = ()
    staleness = 0

    def load(self, graph):
        pass

    def initial(self):
        return ""

    def refresh(self, delta):
        raise RuntimeError("injected engine crash")

    def partial(self):  # pragma: no cover - never reached
        return ()

    def close(self):
        pass


class TestCrashedApply:
    def test_spans_closed_and_error_stamped(self, _fresh_tracer):
        t = _fresh_tracer
        fresh, stream = datagen_stream(7, total_inserts=40, num_change_sets=2)
        svc = GraphService(fresh(), **KW)
        # sabotage one engine after construction: the next batch crashes
        # mid-refresh, inside the batch/commit span stack
        svc._engines[("Q1", TOOLS[0])] = _Bomb()
        t.clear()
        with pytest.raises(RuntimeError):
            svc.submit(list(stream[0]))
            svc.flush()
        # fail-stop: the service refuses further work ...
        with pytest.raises(ReproError):
            svc.query("Q1")
        # ... and the tracer was left clean: every span entered on the
        # crashed path was closed on unwind, with the error stamped
        assert t.open_spans == 0
        spans = t.finished()
        errored = {s["name"]: s["attrs"]["error"]
                   for s in spans if "error" in s["attrs"]}
        assert errored.get("batch") == "RuntimeError"
        assert errored.get("commit") == "RuntimeError"
        assert errored.get("flush") == "RuntimeError"
        # the crashed refresh itself is recorded with status="err"
        crashed = [s for s in spans
                   if s["name"] == "refresh" and s["attrs"]["status"] == "err"]
        assert len(crashed) == 1

    def test_sharded_crash_closes_spans(self, _fresh_tracer, tmp_path):
        t = _fresh_tracer
        fresh, stream = datagen_stream(11, total_inserts=40, num_change_sets=2)
        svc = ShardedGraphService(fresh(), shards=2, data_dir=tmp_path, **KW)
        svc._shards[1]._engines[("Q1", TOOLS[0])] = _Bomb()
        t.clear()
        with pytest.raises(RuntimeError):
            svc.submit(list(stream[0]))
            svc.flush()
        assert t.open_spans == 0
        names_with_error = {s["name"] for s in t.finished()
                            if "error" in s["attrs"]}
        # the failure propagated through the scatter stack, closing every
        # level: shard -> scatter -> batch (router) -> flush
        assert {"shard", "scatter", "batch", "flush"} <= names_with_error


class TestRecoverSpan:
    def test_recover_emits_span_with_replay_counts(self, _fresh_tracer, tmp_path):
        t = _fresh_tracer
        fresh, stream = datagen_stream(13, total_inserts=60, num_change_sets=3)
        svc = GraphService(fresh(), data_dir=tmp_path, **KW)
        for cs in stream:
            svc.submit(list(cs))
            svc.flush()
        v = svc.version
        del svc  # crash: all three frames are committed, none snapshotted

        t.clear()
        rec = GraphService.recover(tmp_path, **KW)
        assert rec.version == v
        spans = t.finished()
        recover = next(s for s in spans if s["name"] == "recover")
        # snapshot at v0 (the baseline), all 3 batches replayed from WAL
        assert recover["attrs"] == {"snapshot_version": 0, "replayed": 3}
        assert t.open_spans == 0
        # the recovered service keeps tracing
        t.clear()
        rec.query("Q1")
        assert [s["name"] for s in t.finished()] == ["query"]
        rec.close()

    def test_sharded_recover_span(self, _fresh_tracer, tmp_path):
        t = _fresh_tracer
        fresh, stream = datagen_stream(17, total_inserts=60, num_change_sets=3)
        svc = ShardedGraphService(fresh(), shards=2, data_dir=tmp_path, **KW)
        for cs in stream[:2]:
            svc.submit(list(cs))
            svc.flush()
        del svc

        t.clear()
        rec = ShardedGraphService.recover(tmp_path, tools=TOOLS)
        spans = t.finished()
        recovers = [s for s in spans if s["name"] == "recover"]
        # one router-level recover plus one per shard, nested beneath it
        router = next(s for s in recovers if "shards" in s["attrs"])
        assert router["attrs"]["shards"] == 2
        assert "replayed" in router["attrs"]
        shard_recovers = [s for s in recovers if s is not router]
        assert len(shard_recovers) == 2
        assert all(s["parent_id"] == router["span_id"] for s in shard_recovers)
        assert t.open_spans == 0
        rec.close()
