"""GraphService serving the algorithm layer: registry, reads, staleness."""

from __future__ import annotations

import pytest

from repro.analytics import AnalyticsEngine, make_analytics_engine
from tests.conftest import datagen_stream
from repro.lagraph import fastsv
from repro.serving import GraphService
from repro.util.validation import ReproError

TOOLS = ("components", "degree", "pagerank", "cdlp", "triangles")


def _stream(seed: int = 9, removal_fraction: float = 0.3):
    fresh_graph, sets = datagen_stream(
        seed, removal_fraction=removal_fraction, total_inserts=150
    )
    return fresh_graph(), sets


def test_unknown_analytics_tool_rejected():
    with pytest.raises(ReproError, match="unknown analytics tool"):
        GraphService(analytics=("eigentrust",))


def test_analytics_only_service_is_allowed():
    graph, sets = _stream()
    svc = GraphService(
        graph, queries=(), tools=(), analytics=("components",), max_delay_ms=1e9
    )
    try:
        for cs in sets:
            svc.submit(cs)
        svc.flush()
        assert svc.query("components").version == svc.version
        with pytest.raises(ReproError, match="no cached result"):
            svc.query("Q1")
    finally:
        svc.close()


def test_no_engines_at_all_rejected():
    with pytest.raises(ReproError, match="at least one"):
        GraphService(tools=(), queries=())


def test_half_configured_query_layer_rejected():
    """tools without queries (or vice versa) is a ctor-time error, not a
    primary_tool pointing at an engine that was never registered."""
    with pytest.raises(ReproError, match="configured together"):
        GraphService(tools=(), analytics=("components",))
    with pytest.raises(ReproError, match="configured together"):
        GraphService(queries=(), analytics=("components",))


def test_four_plus_analytics_tools_served_end_to_end():
    """The acceptance scenario: >= 4 analytics tools next to the Fig. 5
    engines, O(1) cached reads, exact results at threshold 0."""
    graph, sets = _stream()
    svc = GraphService(
        graph,
        tools=("graphblas-incremental",),
        analytics=TOOLS,
        analytics_threshold=0.0,
        max_delay_ms=1e9,
    )
    try:
        for cs in sets:
            svc.submit(cs)
            svc.flush()
            for name in TOOLS:
                r = svc.query(name)
                assert r.version == svc.version
                assert r.staleness == 0  # threshold 0: always fresh
                # O(1) read: the same immutable cache object until the
                # next applied batch, no recompute on the read path
                assert svc.query(name) is r

        # served results equal a cold engine evaluated on the final graph
        for name in TOOLS:
            fresh = make_analytics_engine(name, policy="dirty")
            fresh.load(svc.graph)
            fresh.initial()
            assert svc.query(name).top == tuple(fresh.last_top), name
        # per-tool refresh + load metrics exist
        ops = svc.stats()["ops"]
        for name in TOOLS:
            assert f"refresh[{name}]" in ops
            assert f"load[{name}]" in ops
        assert svc.stats()["analytics"] == list(TOOLS)
    finally:
        svc.close()


def test_incremental_cc_identical_to_fastsv_after_every_batch():
    graph, sets = _stream(21)
    svc = GraphService(
        graph, queries=(), tools=(), analytics=("components",), max_delay_ms=1e9
    )
    try:
        import numpy as np

        eng = svc._engines[("components", "components")]
        for cs in sets:
            svc.submit(cs)
            svc.flush()
            np.testing.assert_array_equal(
                eng.labels(), fastsv(svc.graph.friends).to_dense()
            )
    finally:
        svc.close()


def test_stale_reads_carry_computed_version_tag():
    graph, sets = _stream(13, removal_fraction=0.0)
    svc = GraphService(
        graph,
        queries=(),
        tools=(),
        analytics=("pagerank", "components"),
        analytics_threshold=1e9,
        max_delay_ms=1e9,
    )
    try:
        tags = []
        for cs in sets:
            svc.submit(cs)
            svc.flush()
            r = svc.query("pagerank")
            assert r.version == svc.version
            assert r.computed_version is not None
            tags.append(r.computed_version)
            # incremental tools never go stale
            assert svc.query("components").staleness == 0
        # under an untrippable threshold pagerank was computed once, at
        # load time: the final read serves that result with an honest tag
        assert svc.query("pagerank").staleness > 0
        assert tags == sorted(tags)  # monotone across versions
    finally:
        svc.close()


def test_analytics_engine_failure_fail_stops_the_service():
    graph, _ = _stream()
    svc = GraphService(
        graph, queries=(), tools=(), analytics=("degree",), max_delay_ms=1e9
    )
    try:
        eng = svc._engines[("degree", "degree")]

        def boom(delta):
            raise RuntimeError("engine crashed")

        eng.refresh = boom
        from repro.model.changes import AddUser

        with pytest.raises(RuntimeError, match="engine crashed"):
            svc.submit(AddUser(999_999))
            svc.flush()
        with pytest.raises(ReproError, match="fail-stopped"):
            svc.query("degree")
    finally:
        svc.close()
