"""Crash recovery restores analytics engines, staleness tags stay monotone.

The serving layer's recovery convergence property extended to the
analytics registry: a service killed after its stream and rebuilt with
``GraphService.recover`` must serve every analytics tool's result
identically to a service that never crashed -- property-tested over
mixed insert+removal streams -- and the staleness version tags a
dirty-threshold engine emits must never move backwards, including across
the recovery boundary (recovery recomputes, so tags can only jump
forward).
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import datagen_stream
from repro.lagraph import fastsv
from repro.serving import GraphService

TOOLS = ("components", "degree", "pagerank", "cdlp", "triangles")


def _generate(seed: int, removal_fraction: float):
    return datagen_stream(
        seed, removal_fraction=removal_fraction, total_inserts=200, num_change_sets=8
    )


def _drive(svc, stream):
    for cs in stream:
        svc.submit(cs)
        svc.flush()


@pytest.mark.parametrize("seed", [5, 17, 29])
@pytest.mark.parametrize("removal_fraction", [0.0, 0.3])
def test_recover_restores_analytics_results(tmp_path, seed, removal_fraction):
    fresh_graph, stream = _generate(seed, removal_fraction)
    kwargs = dict(
        queries=(),
        tools=(),
        analytics=TOOLS,
        analytics_threshold=0.0,
        max_batch=10_000,
        max_delay_ms=1e9,
    )
    svc = GraphService(
        fresh_graph(), data_dir=tmp_path, snapshot_every=3, **kwargs
    )
    _drive(svc, stream)
    expected = {name: svc.query(name).top for name in TOOLS}
    final_version = svc.version
    del svc  # crash: every applied batch is already WAL-durable

    rec = GraphService.recover(tmp_path, **kwargs)
    try:
        assert rec.version == final_version == len(stream)
        for name in TOOLS:
            r = rec.query(name)
            assert r.top == expected[name], name
            assert r.computed_version == rec.version  # recovery recomputes
        # the uninterrupted-run oracle: same stream, no persistence
        uninterrupted = GraphService(fresh_graph(), **kwargs)
        _drive(uninterrupted, stream)
        for name in TOOLS:
            assert rec.query(name).top == uninterrupted.query(name).top, name
        # incremental CC state rebuilt exactly (FastSV bit-identity)
        eng = rec._engines[("components", "components")]
        np.testing.assert_array_equal(
            eng.labels(), fastsv(rec.graph.friends).to_dense()
        )
        uninterrupted.close()
    finally:
        rec.close()


def test_staleness_tags_monotone_across_recompute_and_recovery(tmp_path):
    """Drive a dirty engine through threshold-trip cycles and one crash;
    the computed_version tag must be non-decreasing the whole way and
    equal to the version exactly at recompute points."""
    fresh_graph, stream = _generate(11, 0.2)
    kwargs = dict(
        queries=(),
        tools=(),
        analytics=("pagerank",),
        analytics_threshold=0.05,  # small: trips several times mid-stream
        max_batch=10_000,
        max_delay_ms=1e9,
    )
    svc = GraphService(fresh_graph(), data_dir=tmp_path, **kwargs)
    tags = []
    recomputes = 0
    for cs in stream[:5]:
        svc.submit(cs)
        svc.flush()
        r = svc.query("pagerank")
        tags.append(r.computed_version)
        if r.staleness == 0:
            assert r.computed_version == r.version
            recomputes += 1
    del svc  # crash

    rec = GraphService.recover(tmp_path, **kwargs)
    try:
        r = rec.query("pagerank")
        assert r.computed_version == rec.version  # fresh at recovery
        tags.append(r.computed_version)
        for cs in stream[5:]:
            rec.submit(cs)
            rec.flush()
            tags.append(rec.query("pagerank").computed_version)
        assert tags == sorted(tags), tags
        assert recomputes > 0
    finally:
        rec.close()
