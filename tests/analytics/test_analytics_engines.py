"""AnalyticsEngine correctness: policies, staleness, batch equivalence.

The two acceptance properties of the analytics subsystem:

* incremental engines (``components``, ``degree``) are **exact at every
  batch** -- components bit-identical to a from-scratch FastSV run;
* dirty-threshold engines **converge to the batch result at each
  recompute point** and honestly report staleness in between.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import ANALYTICS_NAMES, AnalyticsEngine, make_analytics_engine
from tests.conftest import datagen_stream
from repro.lagraph import fastsv
from repro.model.graph import SocialGraph
from repro.util.validation import ReproError

INCREMENTAL = ("components", "degree")
DIRTY = tuple(n for n in ANALYTICS_NAMES if n not in INCREMENTAL)


def _stream(seed: int, removal_fraction: float = 0.3):
    fresh_graph, sets = datagen_stream(seed, removal_fraction=removal_fraction)
    return fresh_graph(), sets


def test_registry_covers_the_required_tools():
    for required in ("components", "pagerank", "cdlp", "triangles", "lcc"):
        assert required in ANALYTICS_NAMES


def test_unknown_name_and_policy_raise():
    with pytest.raises(ReproError, match="unknown analytics tool"):
        make_analytics_engine("betweenness-ish")
    with pytest.raises(ReproError, match="unknown maintenance policy"):
        AnalyticsEngine("pagerank", policy="lazy")
    with pytest.raises(ReproError, match="no incremental maintainer"):
        AnalyticsEngine("pagerank", policy="incremental")
    with pytest.raises(ReproError, match="not loaded"):
        make_analytics_engine("degree").initial()


def test_empty_graph_serves_empty_top():
    g = SocialGraph()
    for name in ANALYTICS_NAMES:
        eng = make_analytics_engine(name)
        eng.load(g)
        assert eng.initial() == ""
        assert eng.last_top == []


@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("name", INCREMENTAL)
def test_incremental_engines_exact_every_batch(name, seed):
    """Incremental policy == dirty policy with threshold 0 (always fresh),
    across mixed insert/removal streams, at every single batch."""
    graph, sets = _stream(seed)
    eng = make_analytics_engine(name, k=5)
    oracle = AnalyticsEngine(name, k=5, policy="dirty", recompute_threshold=0.0)
    eng.load(graph)
    oracle.load(graph)
    eng.initial()
    oracle.initial()
    assert eng.last_top == oracle.last_top
    for cs in sets:
        delta = graph.apply(cs)
        got = eng.refresh(delta)
        want = oracle.refresh(delta)
        assert got == want
        assert eng.last_top == oracle.last_top
        assert eng.staleness == 0 and oracle.staleness == 0


@pytest.mark.parametrize("seed", [3, 11, 23])
def test_components_bit_identical_to_fastsv_every_batch(seed):
    graph, sets = _stream(seed)
    eng = make_analytics_engine("components")
    eng.load(graph)
    eng.initial()
    np.testing.assert_array_equal(eng.labels(), fastsv(graph.friends).to_dense())
    for cs in sets:
        eng.refresh(graph.apply(cs))
        np.testing.assert_array_equal(
            eng.labels(), fastsv(graph.friends).to_dense()
        )


@pytest.mark.parametrize("name", DIRTY)
def test_dirty_engines_converge_at_recompute_points(name):
    """Whenever the threshold trips (staleness back to 0), the served
    result must equal a from-scratch recompute on the current graph; in
    between, the engine keeps serving its last committed result."""
    graph, sets = _stream(7, removal_fraction=0.2)
    eng = make_analytics_engine(name, k=4, recompute_threshold=0.05)
    eng.load(graph)
    eng.initial()
    served_before = eng.last_top
    recomputed = 0
    for cs in sets:
        delta = graph.apply(cs)
        eng.refresh(delta)
        if eng.staleness == 0:
            recomputed += 1
            fresh = AnalyticsEngine(name, k=4, policy="dirty")
            fresh.load(graph)
            fresh.initial()
            assert eng.last_top == fresh.last_top
        else:
            assert eng.last_top == served_before
        served_before = eng.last_top
    assert recomputed > 0, "threshold never tripped; test workload too small"


def test_dirty_engine_serves_stale_below_threshold():
    graph, sets = _stream(5, removal_fraction=0.0)
    eng = make_analytics_engine("pagerank", recompute_threshold=1e9)
    eng.load(graph)
    eng.initial()
    first = eng.last_top
    stale = 0
    for cs in sets:
        delta = graph.apply(cs)
        eng.refresh(delta)
        # once friends-graph work is pending, every refresh ages the result
        if AnalyticsEngine._delta_nnz(delta) or stale:
            stale += 1
        assert eng.staleness == stale
        assert eng.last_top == first  # never recomputes under a huge threshold
    assert eng.recomputes == 1  # only initial()
    # forcing a recompute drops the staleness and matches batch
    eng.recompute_now()
    assert eng.staleness == 0
    fresh = AnalyticsEngine("pagerank", policy="dirty")
    fresh.load(graph)
    fresh.initial()
    assert eng.last_top == fresh.last_top


def test_irrelevant_delta_keeps_dirty_engine_fresh():
    """A batch that never touches users/friendships cannot stale a
    friends-graph tool -- its result is still exact, staleness stays 0."""
    from repro.model.changes import AddLike, AddPost, ChangeSet

    g = SocialGraph()
    for uid in (1, 2):
        g.add_user(uid)
    g.add_friendship(1, 2)
    eng = make_analytics_engine("triangles", recompute_threshold=1e9)
    eng.load(g)
    eng.initial()
    delta = g.apply(ChangeSet([AddPost(50, 1, 1)]))
    eng.refresh(delta)
    assert eng.staleness == 0
    assert eng.recomputes == 1


def test_top_vertices_preselect_matches_full_sort_oracle():
    """The O(n) partition preselect must pick exactly what a full lexsort
    would, across heavy score ties (the preselect's boundary case) and
    float scores."""
    import numpy as np

    g = SocialGraph()
    rng = np.random.default_rng(5)
    ext_ids = rng.permutation(np.arange(1000, 1200)).tolist()
    for uid in ext_ids:
        g.add_user(uid)
    eng = make_analytics_engine("degree", k=5)
    eng.load(g)
    ext = g.users.external_array()
    for scores in (
        rng.integers(0, 3, ext.size),  # massive tie blocks
        np.zeros(ext.size, dtype=np.int64),  # single all-tied block
        rng.random(ext.size),  # floats, ties unlikely
        np.arange(ext.size, dtype=np.int64),  # distinct
    ):
        expect_order = np.lexsort((ext, -scores))[:5]
        expect = [(int(ext[i]), scores[i].item()) for i in expect_order]
        assert eng._top_vertices(scores) == expect


def test_vertex_ranking_orders_by_score_then_external_id():
    g = SocialGraph()
    for uid in (30, 10, 20):  # insertion order != id order
        g.add_user(uid)
    g.add_friendship(30, 10)
    g.add_friendship(30, 20)
    eng = make_analytics_engine("degree")
    eng.load(g)
    assert eng.initial() == "30|10|20"  # deg 2, then deg-1 ties id-ascending
    assert eng.last_top == [(30, 2), (10, 1), (20, 1)]
