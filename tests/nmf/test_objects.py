"""Object model: construction, change application, notifications."""

import pytest

from repro.nmf import ObjectModel
from repro.util.validation import ReproError

from tests.conftest import C1, C2, C3, P1, P2, U1, U2, U3, U4, build_paper_graph, paper_update


@pytest.fixture
def model():
    return ObjectModel.from_social_graph(build_paper_graph())


class TestFromSocialGraph:
    def test_counts(self, model):
        assert len(model.users) == 4
        assert len(model.posts) == 2
        assert len(model.comments) == 3

    def test_references(self, model):
        c2 = model.comments[C2]
        assert c2.post is model.posts[P1]  # rootPost pointer
        assert c2.parent is model.comments[C1]
        assert model.comments[C1].parent is model.posts[P1]

    def test_likes_bidirectional(self, model):
        u3 = model.users[U3]
        c1 = model.comments[C1]
        assert u3 in c1.liked_by
        assert c1 in u3.likes

    def test_friends_symmetric(self, model):
        u2, u3 = model.users[U2], model.users[U3]
        assert u3 in u2.friends and u2 in u3.friends

    def test_comment_tree(self, model):
        p1 = model.posts[P1]
        assert [c.id for c in p1.comments] == [C1]
        assert [c.id for c in model.comments[C1].comments] == [C2]


class TestMutation:
    def test_apply_change_set(self, model):
        model.apply(paper_update())
        assert 24 in model.comments
        c4 = model.comments[24]
        assert c4.post is model.posts[P1]
        assert model.users[U1] in model.users[U4].friends

    def test_duplicate_like_noop(self, model):
        assert model.add_like(U2, C1) is None

    def test_duplicate_friendship_noop(self, model):
        assert model.add_friendship(U3, U2) is None

    def test_duplicate_ids_rejected(self, model):
        with pytest.raises(ReproError):
            model.add_user(U1)
        with pytest.raises(ReproError):
            model.add_post(P1, 0, U1)
        with pytest.raises(ReproError):
            model.add_comment(C1, 0, U1, P1)

    def test_self_friendship_rejected(self, model):
        with pytest.raises(ReproError):
            model.add_friendship(U1, U1)

    def test_unknown_parent(self, model):
        with pytest.raises(ReproError):
            model.add_comment(99, 0, U1, 12345)


class TestNotifications:
    def test_listener_sees_all_inserts(self, model):
        events = []
        model.subscribe(lambda kind, payload: events.append(kind))
        model.apply(paper_update())
        assert events == ["friendship", "like", "comment", "like"]


class TestTraversal:
    def test_all_comments_of(self, model):
        p1 = model.posts[P1]
        assert {c.id for c in model.all_comments_of(p1)} == {C1, C2}
        p2 = model.posts[P2]
        assert {c.id for c in model.all_comments_of(p2)} == {C3}
