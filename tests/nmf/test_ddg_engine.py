"""NmfIncrementalEngine on the DDG: fidelity and the NMF cost model."""

import pytest

from repro.model import AddFriendship, AddLike, AddUser, ChangeSet
from repro.nmf.batch import NmfBatchEngine
from repro.nmf.incremental import NmfIncrementalEngine
from repro.queries import Q1Batch, Q2Batch

from tests.conftest import U1, U2, U3, build_paper_graph, paper_update


def run_engine(engine, graph, change_sets):
    engine.load(graph)
    results = [engine.initial()]
    for cs in change_sets:
        results.append(engine.update(cs))
    return results


class TestResultsMatchGraphBLAS:
    @pytest.mark.parametrize("query", ["Q1", "Q2"])
    def test_paper_example(self, query):
        g = build_paper_graph()
        engine = NmfIncrementalEngine(query)
        engine.load(g)
        initial = engine.initial()
        gb = Q1Batch(g) if query == "Q1" else Q2Batch(g)
        assert initial == gb.result_string()
        updated = engine.update(paper_update())
        g.apply(paper_update())
        gb2 = Q1Batch(g) if query == "Q1" else Q2Batch(g)
        assert updated == gb2.result_string()

    @pytest.mark.parametrize("query", ["Q1", "Q2"])
    def test_generated_stream_matches_batch(self, query):
        from repro.datagen import generate_benchmark_input

        graph_inc, change_sets = generate_benchmark_input(1, seed=11)
        graph_batch, _ = generate_benchmark_input(1, seed=11)
        inc = NmfIncrementalEngine(query)
        batch = NmfBatchEngine(query)
        assert run_engine(inc, graph_inc, change_sets) == run_engine(
            batch, graph_batch, change_sets
        )


class TestDdgStructure:
    def test_q2_builds_node_per_comment(self):
        g = build_paper_graph()
        engine = NmfIncrementalEngine("Q2")
        engine.load(g)
        assert len(engine.ddg) == 3  # c1, c2, c3
        # dependency edges: likes[c] per comment + friends[u] per liker
        # c1: likes + 2 likers; c2: likes + 3 likers; c3: likes only
        assert engine.ddg.num_edges == (1 + 2) + (1 + 3) + 1

    def test_q1_builds_node_per_post(self):
        g = build_paper_graph()
        engine = NmfIncrementalEngine("Q1")
        engine.load(g)
        assert len(engine.ddg) == 2  # p1, p2

    def test_new_comment_defines_new_node(self):
        g = build_paper_graph()
        engine = NmfIncrementalEngine("Q2")
        engine.load(g)
        engine.update(paper_update())
        assert len(engine.ddg) == 4  # + c4


class TestNmfCostModel:
    def test_friendship_dirties_conservatively(self):
        """A friends edge recomputes every comment either user likes --
        including comments where the score cannot change (pruned)."""
        g = build_paper_graph()
        engine = NmfIncrementalEngine("Q2")
        engine.load(g)
        before = engine.ddg.total_recomputations
        # u1-u2: u1 likes {c2}, u2 likes {c1}; neither score changes
        # (u1 and u2 do not co-like any comment)
        engine.update(ChangeSet([AddFriendship(U1, U2)]))
        recomputed = engine.ddg.total_recomputations - before
        assert recomputed == 2  # c1 and c2 both re-evaluated...
        assert engine.ddg.pruned_recomputations >= 2  # ...and both pruned

    def test_like_recomputes_only_that_comment(self):
        g = build_paper_graph()
        engine = NmfIncrementalEngine("Q2")
        engine.load(g)
        before = engine.ddg.total_recomputations
        engine.update(ChangeSet([AddLike(U2, 23)]))  # u2 likes c3
        assert engine.ddg.total_recomputations - before == 1

    def test_user_event_touches_nothing(self):
        g = build_paper_graph()
        engine = NmfIncrementalEngine("Q2")
        engine.load(g)
        before = engine.ddg.total_recomputations
        engine.update(ChangeSet([AddUser(999, "zoe")]))
        assert engine.ddg.total_recomputations == before


class TestErrors:
    def test_update_before_load(self):
        from repro.util.validation import ReproError

        with pytest.raises(ReproError, match="not loaded"):
            NmfIncrementalEngine("Q1").update(ChangeSet())

    def test_unknown_query(self):
        from repro.util.validation import ReproError

        with pytest.raises(ReproError):
            NmfIncrementalEngine("Q3")
