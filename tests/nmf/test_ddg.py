"""The dynamic dependency graph engine: dirtying, pruning, dynamic deps."""

import pytest

from repro.nmf.ddg import DependencyGraph


class TestBasics:
    def test_define_computes_once(self):
        g = DependencyGraph()
        calls = []
        node = g.define("n", lambda t: calls.append(1) or 42)
        assert node.value == 42
        assert calls == [1]

    def test_duplicate_key_rejected(self):
        g = DependencyGraph()
        g.define("n", lambda t: 1)
        with pytest.raises(KeyError):
            g.define("n", lambda t: 2)

    def test_node_lookup_and_contains(self):
        g = DependencyGraph()
        g.define("n", lambda t: 1)
        assert "n" in g and g.node("n").value == 1
        assert "m" not in g
        assert len(g) == 1

    def test_source_interning(self):
        g = DependencyGraph()
        assert g.source("s") is g.source("s")
        assert g.num_sources == 1


class TestPropagation:
    def test_changed_source_recomputes_dependent(self):
        g = DependencyGraph()
        state = {"x": 1}

        def compute(t):
            t.read("x")
            return state["x"]

        node = g.define("n", compute)
        state["x"] = 5
        g.changed("x")
        changed = g.propagate()
        assert node.value == 5
        assert changed == [node]

    def test_unrelated_source_does_not_recompute(self):
        g = DependencyGraph()
        calls = []

        def compute(t):
            t.read("x")
            calls.append(1)
            return 0

        g.define("n", compute)
        g.changed("y")  # never read by anyone
        assert g.propagate() == []
        assert calls == [1]  # only the define-time evaluation

    def test_value_change_pruning(self):
        """Recomputing to an equal value must not report the node changed."""
        g = DependencyGraph()
        state = {"x": 1}

        def compute(t):
            t.read("x")
            return state["x"] // 10  # 1 -> 0, 5 -> 0: unchanged

        node = g.define("n", compute)
        state["x"] = 5
        g.changed("x")
        assert g.propagate() == []
        assert node.value == 0
        assert g.pruned_recomputations == 1

    def test_on_change_callback_fires_only_on_change(self):
        g = DependencyGraph()
        state = {"x": 1}
        seen = []

        def compute(t):
            t.read("x")
            return state["x"] % 2

        g.define("n", compute, on_change=seen.append)
        assert seen == [1]  # define: None -> 1
        state["x"] = 3  # still odd: value unchanged
        g.changed("x")
        g.propagate()
        assert seen == [1]
        state["x"] = 2
        g.changed("x")
        g.propagate()
        assert seen == [1, 0]

    def test_propagate_idempotent_when_clean(self):
        g = DependencyGraph()
        g.define("n", lambda t: 1)
        assert g.propagate() == []
        assert g.propagate() == []

    def test_multiple_dependents_all_recompute(self):
        g = DependencyGraph()
        state = {"x": 1}
        nodes = [
            g.define(f"n{i}", lambda t, i=i: (t.read("x"), state["x"] + i)[1])
            for i in range(5)
        ]
        state["x"] = 10
        g.changed("x")
        changed = g.propagate()
        assert {n.key for n in changed} == {f"n{i}" for i in range(5)}
        assert [n.value for n in nodes] == [10, 11, 12, 13, 14]


class TestDynamicDependencies:
    def test_deps_reregistered_on_recompute(self):
        """A node that stops reading a source must stop reacting to it."""
        g = DependencyGraph()
        state = {"which": "a", "a": 1, "b": 100}

        def compute(t):
            t.read("which")
            key = state["which"]
            t.read(key)
            return state[key]

        node = g.define("n", compute)
        assert node.value == 1
        # switch the read set from {which, a} to {which, b}
        state["which"] = "b"
        g.changed("which")
        g.propagate()
        assert node.value == 100
        # 'a' is no longer a dependency: changing it must do nothing
        state["a"] = -1
        g.changed("a")
        assert g.propagate() == []
        # 'b' is: changing it must propagate
        state["b"] = 200
        g.changed("b")
        g.propagate()
        assert node.value == 200

    def test_edge_count_tracks_registrations(self):
        g = DependencyGraph()
        state = {"n_reads": 3}

        def compute(t):
            for i in range(state["n_reads"]):
                t.read(("s", i))
            return state["n_reads"]

        g.define("n", compute)
        assert g.num_edges == 3
        state["n_reads"] = 1
        g.changed(("s", 0))
        g.propagate()
        assert g.num_edges == 1


class TestConservativeOverapproximation:
    def test_superset_dirtying_prunes(self):
        """The NMF cost model: a friends[] change dirties every comment-score
        node reading it; unaffected ones recompute to equal values and prune.
        """
        g = DependencyGraph()
        likers = {"c1": {"u1", "u2"}, "c2": {"u1"}}
        friends = {"u1": set(), "u2": set()}

        def score(comment):
            def compute(t):
                t.read(("likes", comment))
                total_pairs = 0
                for u in likers[comment]:
                    t.read(("friends", u))
                    total_pairs += sum(f in likers[comment] for f in friends[u])
                return total_pairs

            return compute

        n1 = g.define("c1", score("c1"))
        n2 = g.define("c2", score("c2"))
        # u1-u3 friendship: u3 likes nothing, so neither score changes,
        # but both nodes read friends[u1] and must recompute
        friends["u1"].add("u3")
        g.changed(("friends", "u1"))
        before = g.total_recomputations
        assert g.propagate() == []
        assert g.total_recomputations - before == 2
        assert g.pruned_recomputations >= 2
        # u1-u2 friendship changes c1 (both like it) but not c2
        friends["u1"].add("u2")
        friends["u2"].add("u1")
        g.changed(("friends", "u1"))
        g.changed(("friends", "u2"))
        changed = g.propagate()
        assert [n.key for n in changed] == ["c1"]
        assert n1.value == 2 and n2.value == 0
