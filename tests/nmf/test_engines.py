"""NMF batch/incremental engines: paper-example fidelity + cross-tool equality."""

import pytest

from repro.model import ChangeSet
from repro.nmf.batch import NmfBatchEngine, q1_score, q2_score
from repro.nmf.incremental import NmfIncrementalEngine
from repro.nmf.objects import ObjectModel
from repro.util.validation import ReproError

from tests.conftest import C1, C2, P1, P2, build_paper_graph, paper_update


class TestScoreFunctions:
    def test_q1_by_traversal(self):
        m = ObjectModel.from_social_graph(build_paper_graph())
        assert q1_score(m.posts[P1]) == 25
        assert q1_score(m.posts[P2]) == 10

    def test_q2_by_bfs(self):
        m = ObjectModel.from_social_graph(build_paper_graph())
        assert q2_score(m.comments[C1]) == 4
        assert q2_score(m.comments[C2]) == 5

    def test_q2_no_likes(self):
        m = ObjectModel.from_social_graph(build_paper_graph())
        assert q2_score(m.comments[23]) == 0


@pytest.mark.parametrize("engine_cls", [NmfBatchEngine, NmfIncrementalEngine])
class TestEngines:
    def test_paper_sequence(self, engine_cls):
        e = engine_cls("Q1")
        e.load(build_paper_graph())
        assert e.initial() == "11|12"
        assert e.update(paper_update()) == "11|12"

    def test_paper_sequence_q2(self, engine_cls):
        e = engine_cls("Q2")
        e.load(build_paper_graph())
        assert e.initial() == "22|21|23"
        assert e.update(paper_update()) == "22|21|24"

    def test_unknown_query(self, engine_cls):
        with pytest.raises(ReproError):
            engine_cls("Q3")

    def test_initial_before_load(self, engine_cls):
        with pytest.raises(ReproError):
            engine_cls("Q1").initial()


class TestCrossToolAgreement:
    @pytest.mark.parametrize("query", ["Q1", "Q2"])
    def test_nmf_matches_graphblas_on_random_data(self, query):
        from repro.datagen import generate_benchmark_input
        from repro.queries.engine import make_engine

        outputs = {}
        for tool in ("graphblas-incremental", "nmf-batch", "nmf-incremental"):
            g, css = generate_benchmark_input(1, seed=11)
            e = make_engine(tool, query)
            e.load(g)
            seq = [e.initial()] + [e.update(cs) for cs in css]
            outputs[tool] = seq
        vals = list(outputs.values())
        assert vals[0] == vals[1] == vals[2]
