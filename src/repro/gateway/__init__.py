"""The network front door: admission control over any serving stack.

Layer map position: ``GatewayServer`` (asyncio HTTP + WebSocket shell)
wraps :class:`Gateway` (the transport-agnostic admission pipeline) which
wraps any engine-owning service -- a single
:class:`~repro.serving.service.GraphService`, a
:class:`~repro.sharding.ShardedGraphService`, or a
:class:`~repro.replication.ReplicatedGraphService`.

Split this way so every interesting property is testable without a
socket: rate limits, queue bounds, breaker transitions, deadline
propagation and drain are all exercised deterministically against
:class:`Gateway` with an injected clock (``tests/gateway/``), while the
server shell stays a thin translation layer from wire verbs to pipeline
verbs (429/503/504 and ``Retry-After`` from the typed verdicts).

Run one from the shell::

    python -m repro.gateway            # knobs via REPRO_GATEWAY_* env vars
"""

from repro.gateway.admission import (
    CircuitBreaker,
    CircuitOpen,
    Draining,
    GatewayError,
    RateLimited,
    TokenBucket,
)
from repro.gateway.core import Envelope, Gateway, Subscription
from repro.gateway.server import GatewayServer

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "Draining",
    "Envelope",
    "Gateway",
    "GatewayError",
    "GatewayServer",
    "RateLimited",
    "Subscription",
    "TokenBucket",
]
