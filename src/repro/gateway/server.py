"""Asyncio HTTP/WebSocket shell around the :class:`~repro.gateway.Gateway`.

Stdlib only (``asyncio`` streams, no web framework): the serving stack
must run in the same dependency-frozen container as the benchmarks.  The
shell owns exactly three responsibilities -- parse the wire, translate
typed admission verdicts to status codes, and run the single pump thread
-- everything interesting lives in :mod:`repro.gateway.core`.

Routes::

    POST /submit      body {"changes": [[tag, ...], ...]} (loader rows)
                      -> 202 {"ticket": n} | 429 (+Retry-After) | 503
    GET  /read?query=Q1[&tool=...]
                      -> 200 result | 429 | 503 (breaker) | 504 (deadline)
    GET  /metrics     -> merged Prometheus exposition (gateway + service)
    GET  /stats       -> JSON operational snapshot
    GET  /health      -> 200 while the process lives (state in body)
    GET  /ready       -> 200 iff accepting, else 503 (load balancer knob)
    POST /drain       -> graceful drain; 200 with final stats
    GET  /subscribe?query=Q1[&tool=...&buffer=8]
                      -> RFC 6455 WebSocket; one JSON text frame per
                         committed version (lossy, drop-oldest)

Headers: ``X-Client-Class`` picks the token-bucket class,
``X-Deadline-Ms`` sets a per-request deadline (relative milliseconds,
converted to an absolute instant at parse time so it propagates through
sharded gathers and replica retries unchanged).

Verdict -> status mapping (the overload contract):
``RateLimited``/``QueueFull`` -> 429 with ``Retry-After``;
``CircuitOpen``/``Draining`` -> 503; ``DeadlineExceeded`` -> 504;
any other ``ReproError`` (validation) -> 400.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.gateway.admission import CircuitOpen, Draining, RateLimited
from repro.gateway.core import Gateway
from repro.model.loader import row_to_change
from repro.serving.ingest import QueueFull
from repro.util.validation import DeadlineExceeded, ReproError

__all__ = ["GatewayServer"]

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_REASONS = {
    200: "OK", 202: "Accepted", 101: "Switching Protocols",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _ws_accept_key(key: str) -> str:
    digest = hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def _ws_text_frame(payload: bytes) -> bytes:
    """One FIN text frame, server->client (unmasked per RFC 6455)."""
    n = len(payload)
    if n < 126:
        header = bytes([0x81, n])
    elif n < 1 << 16:
        header = b"\x81\x7e" + n.to_bytes(2, "big")
    else:
        header = b"\x81\x7f" + n.to_bytes(8, "big")
    return header + payload


async def _ws_read_until_close(reader: asyncio.StreamReader) -> None:
    """Consume client frames until a close frame (0x8) or EOF."""
    while True:
        head = await reader.read(2)
        if len(head) < 2:
            return
        opcode = head[0] & 0x0F
        masked = bool(head[1] & 0x80)
        length = head[1] & 0x7F
        if length == 126:
            length = int.from_bytes(await reader.readexactly(2), "big")
        elif length == 127:
            length = int.from_bytes(await reader.readexactly(8), "big")
        if masked:
            await reader.readexactly(4)
        if length:
            await reader.readexactly(length)
        if opcode == 0x8:
            return


class GatewayServer:
    """Serve one :class:`Gateway` over HTTP + WebSocket.

    One background **pump task** drains the ingest queue through a
    single-worker executor (the gateway's pump is single-consumer by
    design); the accept path only ever enqueues.  ``pump_interval_s`` is
    the idle poll bound -- submits wake the pump immediately, the
    interval only caps how stale a quiet queue can get.
    """

    def __init__(
        self,
        gateway: Gateway,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        pump_interval_s: float = 0.01,
        max_body: int = 1 << 20,
    ):
        self.gateway = gateway
        self.host = host
        self.port = port
        self.pump_interval_s = pump_interval_s
        self.max_body = max_body
        self._server: Optional[asyncio.base_events.Server] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._pump_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="gateway-pump"
        )
        self._work: Optional[asyncio.Event] = None
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "GatewayServer":
        self._work = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.ensure_future(self._pump_loop())
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self, drain: bool = True) -> None:
        """Graceful stop: close the listener, drain the gateway, join."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pump_task is not None:
            self._work.set()
            await self._pump_task
            self._pump_task = None
        if drain and self.gateway.state != "closed":
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._pump_pool, self.gateway.drain)
        self._pump_pool.shutdown(wait=True)

    # -- thread helper (tests / benchmarks drive a live server) ---------

    @classmethod
    def run_in_thread(
        cls, gateway: Gateway, host: str = "127.0.0.1", port: int = 0, **kw
    ) -> "GatewayServer":
        """Boot a server on a dedicated event-loop thread; returns once
        the socket is bound (``.url`` is usable).  Stop with
        :meth:`shutdown`."""
        server = cls(gateway, host, port, **kw)
        started = threading.Event()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            server._thread_loop = loop
            loop.run_until_complete(server.start())
            started.set()
            loop.run_forever()
            # drain ran inside stop(); tear the loop down cleanly
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

        server._thread = threading.Thread(
            target=runner, name="gateway-server", daemon=True
        )
        server._thread.start()
        started.wait()
        return server

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop a :meth:`run_in_thread` server from any thread."""
        loop = self._thread_loop
        if loop is None or self._thread is None:
            return
        fut = asyncio.run_coroutine_threadsafe(self.stop(drain=drain), loop)
        fut.result(timeout=timeout)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None

    # ------------------------------------------------------------------
    # pump
    # ------------------------------------------------------------------

    async def _pump_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping:
            if self.gateway.queue_depth and self.gateway.state == "accepting":
                await loop.run_in_executor(
                    self._pump_pool, self.gateway.pump_once
                )
            else:
                try:
                    await asyncio.wait_for(
                        self._work.wait(), timeout=self.pump_interval_s
                    )
                except asyncio.TimeoutError:
                    pass
                self._work.clear()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                parts = urlsplit(target)
                if (
                    parts.path == "/subscribe"
                    and headers.get("upgrade", "").lower() == "websocket"
                ):
                    await self._websocket(reader, writer, parts, headers)
                    return
                keep = headers.get("connection", "keep-alive").lower() != "close"
                status, payload, ctype, extra = await self._dispatch(
                    method, parts, headers, body
                )
                self._write_response(
                    writer, status, payload, ctype, extra, keep_alive=keep
                )
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line or not line.strip():
            return None
        try:
            method, target, _version = line.decode("ascii").split()
        except ValueError:
            return None
        headers: dict = {}
        while True:
            hline = await reader.readline()
            if not hline or hline in (b"\r\n", b"\n"):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.max_body:
            return method, target, headers, None  # 413 downstream
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _write_response(
        self, writer, status, payload, ctype, extra, keep_alive=True
    ) -> None:
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{k}: {v}" for k, v in (extra or {}).items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    @staticmethod
    def _json(status: int, obj, extra: Optional[dict] = None):
        return (
            status,
            json.dumps(obj).encode("utf-8"),
            "application/json",
            extra or {},
        )

    def _deadline_from(self, headers: dict) -> Optional[float]:
        raw = headers.get("x-deadline-ms")
        if not raw:
            return None
        return self.gateway._clock() + float(raw) / 1e3

    async def _dispatch(self, method: str, parts, headers: dict, body):
        path = parts.path
        qs = parse_qs(parts.query)
        client = headers.get("x-client-class", "default")
        loop = asyncio.get_running_loop()
        try:
            if path == "/submit" and method == "POST":
                if body is None:
                    return self._json(413, {"error": "body too large"})
                doc = json.loads(body.decode("utf-8"))
                changes = [row_to_change(row) for row in doc["changes"]]
                ticket = self.gateway.submit(changes, client=client)
                self._work.set()
                return self._json(202, {"ticket": ticket})
            if path == "/read" and method == "GET":
                query = qs.get("query", ["Q1"])[0]
                tool = qs.get("tool", [None])[0]
                deadline = self._deadline_from(headers)
                result = self.gateway.read(
                    query, tool, client=client, deadline=deadline
                )
                return self._json(200, {
                    "query": result.query,
                    "tool": result.tool,
                    "version": result.version,
                    "computed_version": result.computed_version,
                    "top": list(result.top),
                    "result": result.result_string,
                })
            if path == "/metrics" and method == "GET":
                text = self.gateway.metrics_text()
                return (200, text.encode("utf-8"),
                        "text/plain; version=0.0.4", {})
            if path == "/stats" and method == "GET":
                return self._json(200, self.gateway.stats())
            if path == "/health" and method == "GET":
                return self._json(200, {"state": self.gateway.state})
            if path == "/ready" and method == "GET":
                ready = self.gateway.state == "accepting"
                return self._json(200 if ready else 503,
                                  {"ready": ready, "state": self.gateway.state})
            if path == "/drain" and method == "POST":
                stats = await loop.run_in_executor(
                    self._pump_pool, self.gateway.drain
                )
                return self._json(200, stats)
            if path in ("/submit", "/drain", "/read", "/metrics", "/stats",
                        "/health", "/ready"):
                return self._json(405, {"error": f"wrong method {method}"})
            return self._json(404, {"error": f"no route {path!r}"})
        except (RateLimited, QueueFull) as exc:
            retry = getattr(exc, "retry_after", None) or 0.0
            return self._json(429, {"error": str(exc), "retry_after": retry},
                              {"Retry-After": f"{retry:.3f}"})
        except CircuitOpen as exc:
            return self._json(503, {"error": str(exc),
                                    "retry_after": exc.retry_after},
                              {"Retry-After": f"{exc.retry_after:.3f}"})
        except Draining as exc:
            return self._json(503, {"error": str(exc)})
        except DeadlineExceeded as exc:
            return self._json(504, {"error": str(exc)})
        except (ReproError, KeyError, ValueError, json.JSONDecodeError) as exc:
            return self._json(400, {"error": f"{type(exc).__name__}: {exc}"})

    # ------------------------------------------------------------------
    # WebSocket subscriptions
    # ------------------------------------------------------------------

    async def _websocket(self, reader, writer, parts, headers: dict) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            self._write_response(
                writer, 400, b'{"error": "missing Sec-WebSocket-Key"}',
                "application/json", {}, keep_alive=False,
            )
            await writer.drain()
            return
        qs = parse_qs(parts.query)
        query = qs.get("query", ["Q1"])[0]
        tool = qs.get("tool", [None])[0]
        buffer = int(qs.get("buffer", ["8"])[0])
        try:
            sub = self.gateway.subscribe(query, tool, buffer=buffer)
        except (Draining, ReproError) as exc:
            self._write_response(
                writer, 503, json.dumps({"error": str(exc)}).encode(),
                "application/json", {}, keep_alive=False,
            )
            await writer.drain()
            return
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {_ws_accept_key(key)}\r\n\r\n"
        ).encode("latin-1"))
        await writer.drain()

        loop = asyncio.get_running_loop()
        wake = asyncio.Event()
        sub.notify = lambda: loop.call_soon_threadsafe(wake.set)
        closed = asyncio.ensure_future(_ws_read_until_close(reader))
        try:
            while not closed.done() and not self._stopping:
                for event in sub.poll():
                    payload = json.dumps(event).encode("utf-8")
                    writer.write(_ws_text_frame(payload))
                await writer.drain()
                if sub.closed:  # gateway drained: last events are flushed
                    break
                waiter = asyncio.ensure_future(wake.wait())
                await asyncio.wait(
                    [waiter, closed],
                    timeout=self.pump_interval_s * 10,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                waiter.cancel()
                wake.clear()
            for event in sub.poll():  # final flush after drain/close
                writer.write(_ws_text_frame(json.dumps(event).encode("utf-8")))
            writer.write(b"\x88\x00")  # close frame
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            closed.cancel()
            self.gateway.unsubscribe(sub)
