"""``python -m repro.gateway``: boot a gateway from environment knobs.

Composes the serving stack bottom-up from the same env vars the rest of
the repo uses (``REPRO_SHARDS``, ``REPRO_REPLICAS``) plus the gateway's
own ``REPRO_GATEWAY_*`` family, then serves until SIGINT/SIGTERM and
drains gracefully.  This is what the CI ``tier1-gateway`` job boots.

Knobs (all optional):

========================================  =======================================
``REPRO_GATEWAY_HOST`` / ``_PORT``        bind address (default 127.0.0.1:8080)
``REPRO_GATEWAY_QUEUE_LIMIT``             ingest queue bound (default 1024)
``REPRO_GATEWAY_RATE`` / ``_BURST``       default-class token bucket
                                          (unset rate = unlimited)
``REPRO_GATEWAY_DEADLINE_MS``             default per-read deadline
``REPRO_GATEWAY_BREAKER_WINDOW``          breaker sliding window (default 16)
``REPRO_GATEWAY_BREAKER_COOLDOWN_S``      open->half-open cooldown (default 1.0)
``REPRO_SHARDS``                          >1 -> ShardedGraphService
``REPRO_SHARD_PROCS``                     1 -> one worker process per shard
                                          (sharded only; default: threads)
``REPRO_REPLICAS``                        >0 -> replicated (sharded: per shard)
``REPRO_GATEWAY_DATA_DIR``                persistence root (required for
                                          replicas; temp dir otherwise)
``REPRO_GATEWAY_TOOLS``                   comma list (default
                                          graphblas-incremental)
========================================  =======================================
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import sys
import tempfile

from repro.gateway.core import Gateway
from repro.gateway.server import GatewayServer


def _env_int(name: str, default):
    raw = os.environ.get(name)
    return default if raw in (None, "") else int(raw)


def _env_float(name: str, default):
    raw = os.environ.get(name)
    return default if raw in (None, "") else float(raw)


def build_service(data_dir=None):
    """Compose the engine-owning service the env vars describe."""
    shards = _env_int("REPRO_SHARDS", 1)
    replicas = _env_int("REPRO_REPLICAS", 0)
    tools = tuple(
        os.environ.get("REPRO_GATEWAY_TOOLS", "graphblas-incremental").split(",")
    )
    max_batch = _env_int("REPRO_GATEWAY_MAX_BATCH", 64)
    if shards > 1:
        from repro.sharding import ShardedGraphService

        return ShardedGraphService(
            shards=shards, replicas=replicas, tools=tools,
            max_batch=max_batch, data_dir=data_dir,
        )
    if replicas > 0:
        from repro.replication import ReplicatedGraphService

        if data_dir is None:
            raise SystemExit("REPRO_REPLICAS needs REPRO_GATEWAY_DATA_DIR")
        return ReplicatedGraphService(
            replicas=replicas, data_dir=data_dir, tools=tools,
            max_batch=max_batch,
        )
    from repro.serving import GraphService

    return GraphService(tools=tools, max_batch=max_batch, data_dir=data_dir)


def build_gateway(service) -> Gateway:
    rate = _env_float("REPRO_GATEWAY_RATE", None)
    burst = _env_float("REPRO_GATEWAY_BURST", max(rate or 1.0, 1.0))
    deadline_ms = _env_float("REPRO_GATEWAY_DEADLINE_MS", None)
    return Gateway(
        service,
        queue_limit=_env_int("REPRO_GATEWAY_QUEUE_LIMIT", 1024),
        classes={"default": (rate, burst)},
        default_deadline_s=None if deadline_ms is None else deadline_ms / 1e3,
        breaker_window=_env_int("REPRO_GATEWAY_BREAKER_WINDOW", 16),
        breaker_cooldown_s=_env_float("REPRO_GATEWAY_BREAKER_COOLDOWN_S", 1.0),
    )


async def _serve() -> int:
    data_dir = os.environ.get("REPRO_GATEWAY_DATA_DIR")
    ctx = contextlib.nullcontext(data_dir)
    if data_dir is None and _env_int("REPRO_REPLICAS", 0) > 0:
        ctx = tempfile.TemporaryDirectory(prefix="repro-gateway-")
    with ctx as resolved_dir:
        service = build_service(resolved_dir)
        gateway = build_gateway(service)
        server = GatewayServer(
            gateway,
            host=os.environ.get("REPRO_GATEWAY_HOST", "127.0.0.1"),
            port=_env_int("REPRO_GATEWAY_PORT", 8080),
        )
        await server.start()
        print(f"repro-gateway listening on {server.url}", flush=True)

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("repro-gateway draining...", flush=True)
        await server.stop(drain=True)
        service.close()
    return 0


def main() -> int:
    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - second ^C mid-drain
        return 130


if __name__ == "__main__":
    sys.exit(main())
