"""Admission-control primitives: token buckets, circuit breaker, verdicts.

Everything here is **clock-injected and deterministic**: each component
takes a ``clock`` callable (defaulting to
:meth:`repro.util.timer.WallClock.now`) and derives every decision --
token refills, cooldown expiries, retry hints -- from what that callable
returns.  Tests drive a fake clock and assert the *exact* admission
decision sequence (the Nth refill admits, the N+1th sheds), with no
wall-clock sleeps anywhere; see ``tests/gateway/``.

The verdict hierarchy mirrors the wire semantics the gateway maps them
to: :class:`RateLimited` and the shared
:class:`~repro.serving.ingest.QueueFull` become ``429 Too Many Requests``
with a ``Retry-After`` header, :class:`CircuitOpen` and
:class:`Draining` become ``503 Service Unavailable``, and
:class:`~repro.util.validation.DeadlineExceeded` becomes ``504`` --
shed, throttled or degraded, never an unbounded queue.

>>> t = [0.0]
>>> bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: t[0])
>>> bucket.try_acquire(), bucket.try_acquire(), bucket.try_acquire()
(True, True, False)
>>> bucket.retry_after()     # half a second until the next token at 2/s
0.5
>>> t[0] = 0.5; bucket.try_acquire()
True
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Tuple

from repro.util.timer import WallClock
from repro.util.validation import ReproError

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "Draining",
    "GatewayError",
    "RateLimited",
    "TokenBucket",
]


class GatewayError(ReproError):
    """Base class for gateway admission verdicts (all carry wire semantics)."""


class RateLimited(GatewayError):
    """A client class's token bucket is empty: shed with a retry hint."""

    def __init__(self, msg: str, *, retry_after: float):
        super().__init__(msg)
        self.retry_after = retry_after


class CircuitOpen(GatewayError):
    """The read circuit breaker is open (or its half-open probe is taken)."""

    def __init__(self, msg: str, *, retry_after: float):
        super().__init__(msg)
        self.retry_after = retry_after


class Draining(GatewayError):
    """The gateway has stopped accepting: it is flushing in-flight work."""


class TokenBucket:
    """Deterministic token bucket: ``rate`` tokens/second, ``burst`` cap.

    Refill is computed lazily from the injected clock -- there is no
    background thread, so with a frozen clock the bucket is a pure
    function of the acquire sequence (exactly ``burst`` admissions, then
    shed until the clock moves).
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = WallClock.now,
    ):
        if rate <= 0:
            raise ReproError(f"token rate must be > 0, got {rate}")
        if burst < 1:
            raise ReproError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = max(self._last, now)

    @property
    def tokens(self) -> float:
        """Current token balance (after a lazy refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False (and no debit) otherwise."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will have accumulated (0 if already)."""
        self._refill()
        missing = n - self._tokens
        return max(missing, 0.0) / self.rate


class CircuitBreaker:
    """Error-rate circuit breaker with a half-open single probe.

    States and transitions (all recorded in :attr:`transitions`, which is
    what the determinism tests compare bit-for-bit):

    ``closed``
        Outcomes feed a sliding window of the last ``window`` calls; once
        at least ``min_samples`` are in the window and the failure ratio
        reaches ``trip_ratio``, the breaker **opens**.
    ``open``
        Every :meth:`allow` is refused until ``cooldown_s`` has elapsed,
        then the next :meth:`allow` transitions to ``half_open`` and is
        granted as the single probe.
    ``half_open``
        Exactly one in-flight probe: further :meth:`allow` calls are
        refused until the probe reports.  :meth:`record_success` closes
        the breaker (window cleared); :meth:`record_failure` re-opens it
        (cooldown re-armed); :meth:`record_abandon` -- a probe abandoned
        past its deadline, which proves nothing about engine health --
        releases the probe slot and stays half-open.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        *,
        window: int = 16,
        trip_ratio: float = 0.5,
        min_samples: int = 4,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = WallClock.now,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if not 0 < trip_ratio <= 1:
            raise ReproError(f"trip_ratio must be in (0, 1], got {trip_ratio}")
        if min_samples < 1 or window < min_samples:
            raise ReproError(
                f"need window >= min_samples >= 1, got {window}/{min_samples}"
            )
        self.window = window
        self.trip_ratio = trip_ratio
        self.min_samples = min_samples
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._on_transition = on_transition
        self.state = self.CLOSED
        self._outcomes: deque = deque(maxlen=window)
        self._opened_at = 0.0
        self._probe_inflight = False
        #: every (from_state, to_state) in order -- the determinism oracle
        self.transitions: List[Tuple[str, str]] = []

    def _go(self, state: str) -> None:
        if state == self.state:
            return
        self.transitions.append((self.state, state))
        prev, self.state = self.state, state
        if self._on_transition is not None:
            self._on_transition(prev, state)

    def allow(self) -> bool:
        """May a read proceed right now?  (May transition open->half_open.)"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self._go(self.HALF_OPEN)
                self._probe_inflight = True
                return True
            return False
        # half-open: a single probe owns the slot
        if not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next state change could admit a read."""
        if self.state == self.OPEN:
            return max(self._opened_at + self.cooldown_s - self._clock(), 0.0)
        return 0.0

    def record_success(self) -> None:
        if self.state == self.HALF_OPEN:
            self._probe_inflight = False
            self._outcomes.clear()
            self._go(self.CLOSED)
            return
        self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == self.HALF_OPEN:
            self._probe_inflight = False
            self._opened_at = self._clock()
            self._go(self.OPEN)
            return
        if self.state == self.OPEN:
            return
        self._outcomes.append(False)
        failures = sum(1 for ok in self._outcomes if not ok)
        if (
            len(self._outcomes) >= self.min_samples
            and failures / len(self._outcomes) >= self.trip_ratio
        ):
            self._opened_at = self._clock()
            self._go(self.OPEN)

    def record_abandon(self) -> None:
        """A probe/read was abandoned (deadline): no verdict on health."""
        if self.state == self.HALF_OPEN:
            self._probe_inflight = False
