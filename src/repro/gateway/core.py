"""Gateway core: the transport-agnostic admission-control pipeline.

:class:`Gateway` wraps any of the engine-owning services --
:class:`~repro.serving.service.GraphService`,
:class:`~repro.sharding.ShardedGraphService`,
:class:`~repro.replication.ReplicatedGraphService`; they share the same
``submit`` / ``query(..., deadline=)`` / ``metrics_text(labels=)``
surface -- and puts every request through the same pipeline before the
service sees it::

    accept ──► rate limit ──► queue bound ──► enqueue        (writes)
       │        (429)           (429)            │
       │                                     pump_once ──► service.submit
       │                                                      │
       │                                           publish to subscribers
       │
       └──► rate limit ──► breaker ──► deadline ──► service.query   (reads)
              (429)         (503)       (504)

Design invariants, in order of importance:

* **bounded everywhere** -- the ingest queue has a hard ``queue_limit``
  and every subscriber a bounded drop-oldest buffer; under overload the
  gateway sheds (with a ``Retry-After`` hint), it never buffers without
  bound;
* **admitted writes are never lost** -- once :meth:`submit` returns a
  ticket, the envelope survives until a pump applies it (drain flushes
  the queue before closing; a crash mid-drain leaves the queue intact
  and :meth:`drain` is retryable);
* **deterministic** -- the clock is injected, admission decisions are
  pure functions of (clock, request sequence), and crash points
  ``gateway-accept`` / ``gateway-enqueue`` / ``gateway-drain`` let a
  :class:`~repro.faults.FaultPlan` kill the gateway at exact pipeline
  stages;
* **reads past their deadline are shed, not errors** -- they count
  against neither the breaker window nor a half-open probe's verdict
  (see :meth:`~repro.gateway.admission.CircuitBreaker.record_abandon`).

>>> from repro.model.changes import AddUser
>>> from repro.serving import GraphService
>>> svc = GraphService(tools=("graphblas-incremental",), max_batch=1)
>>> gw = Gateway(svc, queue_limit=4)
>>> gw.submit([AddUser(1)])
1
>>> gw.pump_once()
1
>>> gw.read("Q1").version
1
>>> gw.drain()["applied"]
1
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Iterable, List, Optional, Tuple, Union

from repro.faults import fire as _fire_fault
from repro.faults import register_crash_point
from repro.gateway.admission import (
    CircuitBreaker,
    CircuitOpen,
    Draining,
    RateLimited,
    TokenBucket,
)
from repro.model.changes import Change, ChangeSet
from repro.obs.metrics import MetricsRegistry, merge_expositions, render_prometheus
from repro.obs.trace import get_tracer, span_if
from repro.serving.ingest import QueueFull, coerce_changes
from repro.serving.metrics import OpMetrics
from repro.util.timer import WallClock
from repro.util.validation import DeadlineExceeded, ReproError

__all__ = ["Envelope", "Gateway", "Subscription"]

#: the front edge: a request has arrived but no admission decision exists
#: yet -- a crash here models death in the accept loop
GATEWAY_ACCEPT = register_crash_point(
    "gateway-accept",
    "Gateway.submit/read entry, before any admission decision",
)

#: between admission and the queue append: the client was told nothing
#: yet, so a crash here is safe to retry from the client's side
GATEWAY_ENQUEUE = register_crash_point(
    "gateway-enqueue",
    "Gateway.submit, after admission but before the envelope is queued",
)

#: once per drain iteration while the queue flushes -- the failover suite
#: kills the gateway mid-drain and asserts the queue survives
GATEWAY_DRAIN = register_crash_point(
    "gateway-drain",
    "Gateway.drain, before each pump of the remaining queue",
)

#: breaker state encoded for the ``repro_gateway_breaker_state`` gauge
_BREAKER_CODE = {"closed": 0, "half_open": 1, "open": 2}


class Envelope:
    """One admitted write waiting in the ingest queue."""

    __slots__ = ("changes", "client", "ticket", "enqueued_at",
                 "on_applied", "on_error")

    def __init__(self, changes, client, ticket, enqueued_at,
                 on_applied=None, on_error=None):
        self.changes = changes
        self.client = client
        self.ticket = ticket
        self.enqueued_at = enqueued_at
        #: called with the service version after this envelope applies
        self.on_applied = on_applied
        #: called with the exception if the service *rejects* the envelope
        self.on_error = on_error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Envelope<ticket={self.ticket}, client={self.client!r}, "
                f"changes={len(self.changes)}>")


class Subscription:
    """A bounded, lossy stream of versioned top-k results.

    The pump publishes into :attr:`_buf` after every commit it observes;
    when the buffer is full the **oldest** entry is dropped (and counted
    in :attr:`dropped`) so a slow subscriber can never stall the commit
    path or grow memory.  Consumers :meth:`poll` whole buffered batches;
    ``notify`` (if set) is invoked after each publish, outside the
    gateway lock, so an async server can park on an event instead of
    spinning.
    """

    __slots__ = ("query", "tool", "buffer", "dropped", "published",
                 "closed", "notify", "_buf", "_lock")

    def __init__(self, query: str, tool: Optional[str], buffer: int):
        if buffer < 1:
            raise ReproError(f"subscription buffer must be >= 1, got {buffer}")
        self.query = query
        self.tool = tool
        self.buffer = buffer
        self.dropped = 0
        self.published = 0
        self.closed = False
        #: optional post-publish hook (e.g. a threadsafe asyncio wake-up)
        self.notify: Optional[Callable[[], None]] = None
        self._buf: deque = deque()
        self._lock = threading.Lock()

    def _publish(self, event: dict) -> None:
        with self._lock:
            if self.closed:
                return
            if len(self._buf) >= self.buffer:
                self._buf.popleft()
                self.dropped += 1
            self._buf.append(event)
            self.published += 1
        if self.notify is not None:
            self.notify()

    def poll(self) -> List[dict]:
        """Drain and return everything buffered (oldest first)."""
        with self._lock:
            out = list(self._buf)
            self._buf.clear()
        return out

    def close(self) -> None:
        with self._lock:
            self.closed = True
            self._buf.clear()


class Gateway:
    """Admission-controlled front door over one engine-owning service.

    ``classes`` maps client-class names to ``(rate, burst)`` token-bucket
    parameters; requests tag themselves with ``client=`` and unknown
    classes fall back to ``"default"``.  A ``None`` rate disables rate
    limiting for that class.  All time comes from the injected ``clock``.

    The write path is split in two on purpose: :meth:`submit` is the
    cheap, lock-protected admission decision (what the accept loop runs
    inline), :meth:`pump_once` is the single-consumer drain step the
    server runs on its one pump thread -- so service apply cost never
    sits inside the accept path.
    """

    def __init__(
        self,
        service,
        *,
        queue_limit: int = 1024,
        classes: Optional[dict] = None,
        default_deadline_s: Optional[float] = None,
        breaker_window: int = 16,
        breaker_trip_ratio: float = 0.5,
        breaker_min_samples: int = 4,
        breaker_cooldown_s: float = 1.0,
        clock: Callable[[], float] = WallClock.now,
    ):
        if queue_limit < 1:
            raise ReproError(f"queue_limit must be >= 1, got {queue_limit}")
        self.service = service
        self.queue_limit = queue_limit
        self.default_deadline_s = default_deadline_s
        self._clock = clock
        self._lock = threading.Lock()
        self._queue: deque = deque()
        self._tickets = 0
        self._applied = 0
        self._rejected = 0
        self._state = "accepting"  # accepting | draining | closed
        self._subs: List[Subscription] = []
        self._last_published = getattr(service, "version", 0)

        self.registry = MetricsRegistry()
        self._metrics = OpMetrics()

        self._buckets: dict = {}
        for name, (rate, burst) in dict(classes or {"default": (None, 1)}).items():
            self._buckets[name] = (
                None if rate is None else TokenBucket(rate, burst, clock=clock)
            )
        if "default" not in self._buckets:
            self._buckets["default"] = None

        self.breaker = CircuitBreaker(
            window=breaker_window,
            trip_ratio=breaker_trip_ratio,
            min_samples=breaker_min_samples,
            cooldown_s=breaker_cooldown_s,
            clock=clock,
            on_transition=self._on_breaker_transition,
        )
        self.registry.gauge("repro_gateway_breaker_state").set(0)
        self.registry.gauge("repro_gateway_queue_depth").set(0)

    # ------------------------------------------------------------------
    # admission helpers
    # ------------------------------------------------------------------

    def _on_breaker_transition(self, prev: str, state: str) -> None:
        self.registry.gauge("repro_gateway_breaker_state").set(
            _BREAKER_CODE[state]
        )
        self.registry.counter(
            "repro_gateway_breaker_transitions_total",
            transition=f"{prev}->{state}",
        ).inc()

    def _shed(self, kind: str, reason: str) -> None:
        self.registry.counter(
            "repro_gateway_shed_total", kind=kind, reason=reason
        ).inc()

    def _bucket(self, client: str) -> Optional[TokenBucket]:
        return self._buckets.get(client, self._buckets["default"])

    def _rate_check(self, kind: str, client: str) -> None:
        bucket = self._bucket(client)
        if bucket is not None and not bucket.try_acquire():
            self._shed(kind, "rate_limited")
            raise RateLimited(
                f"client class {client!r} over its token budget",
                retry_after=bucket.retry_after(),
            )

    def _deadline_for(self, deadline: Optional[float]) -> Optional[float]:
        if deadline is not None:
            return deadline
        if self.default_deadline_s is not None:
            return self._clock() + self.default_deadline_s
        return None

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def submit(
        self,
        changes: Union[Change, ChangeSet, Iterable[Change]],
        *,
        client: str = "default",
        on_applied: Optional[Callable[[int], None]] = None,
        on_error: Optional[Callable[[BaseException], None]] = None,
    ) -> int:
        """Admit change(s) into the bounded ingest queue; returns a ticket.

        Sheds with :class:`~repro.gateway.admission.RateLimited` (token
        budget), :class:`~repro.serving.ingest.QueueFull` (queue bound,
        with a ``retry_after`` sized to one pump interval) or
        :class:`~repro.gateway.admission.Draining`.  An accepted ticket
        is a durability promise at gateway scope: the envelope will be
        applied before :meth:`drain` completes.
        """
        _fire_fault(GATEWAY_ACCEPT, path="gateway", kind="submit")
        with self._lock:
            with span_if(get_tracer(), "admit", kind="submit", client=client):
                with self._metrics.timed("admit"):
                    if self._state != "accepting":
                        self._shed("submit", "draining")
                        raise Draining(f"gateway is {self._state}")
                    self._rate_check("submit", client)
                    items = coerce_changes(changes)
                    depth = len(self._queue)
                    if depth + 1 > self.queue_limit:
                        self._shed("submit", "queue_full")
                        raise QueueFull(
                            f"gateway ingest queue full: {depth} queued "
                            f">= queue_limit={self.queue_limit}",
                            pending=depth,
                            limit=self.queue_limit,
                            retry_after=self._pump_interval_hint(),
                        )
                    _fire_fault(GATEWAY_ENQUEUE, path="gateway", depth=depth)
                    self._tickets += 1
                    env = Envelope(
                        items, client, self._tickets, self._clock(),
                        on_applied=on_applied, on_error=on_error,
                    )
                    self._queue.append(env)
                    self.registry.counter(
                        "repro_gateway_admitted_total", kind="submit"
                    ).inc()
                    self.registry.gauge("repro_gateway_queue_depth").set(
                        len(self._queue)
                    )
                    return env.ticket

    def _pump_interval_hint(self) -> float:
        """Retry-After hint for a full queue: one observed pump latency."""
        pump = self._metrics.summary().get("pump")
        if pump and pump["count"]:
            return max(pump["mean_ms"] / 1e3, 1e-3)
        return 0.05

    def pump_once(self, max_batch: int = 64) -> int:
        """Apply up to ``max_batch`` queued envelopes to the service.

        The single-consumer step: pops envelopes under the lock, applies
        them outside it (service calls can be slow; the accept path must
        not wait), then publishes the new version to every subscriber.
        A service-side *rejection* (:class:`ReproError` while the service
        is still healthy) fails only that envelope -- its ``on_error``
        fires and the pump continues.  An injected crash or a fail-stopped
        service re-raises: that is process death, not a bad request.
        Returns the number of envelopes applied.
        """
        batch: List[Envelope] = []
        with self._lock:
            while self._queue and len(batch) < max_batch:
                batch.append(self._queue.popleft())
            self.registry.gauge("repro_gateway_queue_depth").set(
                len(self._queue)
            )
        if not batch:
            return 0
        applied = 0
        with span_if(get_tracer(), "pump", envelopes=len(batch)):
            with self._metrics.timed("pump"):
                for env in batch:
                    try:
                        version = self.service.submit(env.changes)
                    except ReproError as exc:
                        if getattr(self.service, "_failed", False):
                            raise  # fail-stop propagates: the engine is gone
                        with self._lock:
                            self._rejected += 1
                        self.registry.counter(
                            "repro_gateway_rejected_total"
                        ).inc()
                        if env.on_error is not None:
                            env.on_error(exc)
                        continue
                    applied += 1
                    with self._lock:
                        self._applied += 1
                    self.registry.histogram(
                        "repro_gateway_queue_wait_seconds"
                    ).observe(max(self._clock() - env.enqueued_at, 0.0))
                    if env.on_applied is not None:
                        env.on_applied(version)
                    # per barrier commit, not per pump: subscribers see
                    # every version the service actually advanced through
                    self._publish_commits()
        return applied

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(
        self,
        query: str,
        tool: Optional[str] = None,
        *,
        client: str = "default",
        deadline: Optional[float] = None,
    ):
        """Admission-controlled read: rate limit, breaker, deadline, serve.

        The deadline (absolute; defaulted from ``default_deadline_s``)
        propagates into the service's ``query`` so a sharded gather or a
        replica retry loop abandons work the moment the budget runs out.
        :class:`~repro.util.validation.DeadlineExceeded` is accounted as
        *shed* -- it releases a half-open probe without a verdict and
        never feeds the breaker's error window.
        """
        _fire_fault(GATEWAY_ACCEPT, path="gateway", kind="read")
        with span_if(get_tracer(), "read", query=query, client=client):
            with self._metrics.timed("read"):
                if self._state == "closed":
                    self._shed("read", "draining")
                    raise Draining("gateway is closed")
                self._rate_check("read", client)
                if not self.breaker.allow():
                    self._shed("read", "circuit_open")
                    raise CircuitOpen(
                        f"read circuit {self.breaker.state}; engine reads "
                        "are failing",
                        retry_after=self.breaker.retry_after(),
                    )
                eff_deadline = self._deadline_for(deadline)
                try:
                    result = self.service.query(query, tool, deadline=eff_deadline)
                except DeadlineExceeded:
                    self.breaker.record_abandon()
                    self._shed("read", "deadline")
                    raise
                except ReproError:
                    self.breaker.record_failure()
                    self.registry.counter(
                        "repro_gateway_read_errors_total"
                    ).inc()
                    raise
                self.breaker.record_success()
                self.registry.counter(
                    "repro_gateway_admitted_total", kind="read"
                ).inc()
                return result

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------

    def subscribe(
        self, query: str, tool: Optional[str] = None, *, buffer: int = 8
    ) -> Subscription:
        """Register a bounded lossy stream of (version, top-k) events."""
        sub = Subscription(query, tool, buffer)
        with self._lock:
            if self._state == "closed":
                raise Draining("gateway is closed")
            self._subs.append(sub)
            self.registry.gauge("repro_gateway_subscribers").set(
                len(self._subs)
            )
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        sub.close()
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)
            self.registry.gauge("repro_gateway_subscribers").set(
                len(self._subs)
            )

    def _publish_commits(self) -> None:
        """Push the newly committed version's top-k to every subscriber.

        Runs on the pump thread *after* the service applied; a slow or
        wedged subscriber costs one bounded deque append (drop-oldest),
        never a stall of the commit path.
        """
        version = getattr(self.service, "version", 0)
        with self._lock:
            if version <= self._last_published:
                return
            self._last_published = version
            subs = list(self._subs)
        dropped = 0
        for sub in subs:
            if sub.closed:
                continue
            try:
                result = self.service.query(sub.query, sub.tool)
            except ReproError:
                continue  # e.g. unknown query for this service's toolset
            before = sub.dropped
            sub._publish({
                "version": getattr(result, "version", version),
                "query": sub.query,
                "tool": getattr(result, "tool", sub.tool),
                "top": list(getattr(result, "top", ())),
                "result": getattr(result, "result_string", ""),
            })
            dropped += sub.dropped - before
        if dropped:
            self.registry.counter("repro_gateway_sub_dropped_total").inc(dropped)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def drain(self, close_service: bool = False) -> dict:
        """Graceful shutdown: stop accepting, flush the queue, close.

        Retryable by construction: the very first step flips the state to
        ``draining`` (so no new envelope can slip in), and the queue is
        only consumed through :meth:`pump_once`'s pop-then-apply -- a
        crash at the ``gateway-drain`` point (fired before each pump
        iteration) leaves every unapplied envelope queued and the state
        ``draining``; calling :meth:`drain` again finishes the flush.
        """
        with self._lock:
            if self._state == "closed":
                return self.stats()
            self._state = "draining"
        with span_if(get_tracer(), "drain"):
            while True:
                with self._lock:
                    remaining = len(self._queue)
                if remaining == 0:
                    break
                _fire_fault(GATEWAY_DRAIN, path="gateway", remaining=remaining)
                self.pump_once()
            if hasattr(self.service, "flush"):
                self.service.flush()
            self._publish_commits()
            with self._lock:
                self._state = "closed"
                subs = list(self._subs)
            for sub in subs:
                sub.close()
        if close_service:
            self.service.close()
        return self.stats()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            shed = self.registry.snapshot().get("repro_gateway_shed_total", {})
            return {
                "state": self._state,
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "tickets": self._tickets,
                "applied": self._applied,
                "rejected": self._rejected,
                "breaker": {
                    "state": self.breaker.state,
                    "transitions": list(self.breaker.transitions),
                },
                "shed": shed if isinstance(shed, dict) else {},
                "subscribers": len(self._subs),
                "ops": self._metrics.summary(),
                "service_version": getattr(self.service, "version", None),
            }

    def metrics_text(self) -> str:
        """One merged Prometheus exposition for the whole stack.

        The gateway's own series are stamped ``node="gateway"`` and the
        wrapped service renders under ``node="service"`` (its own layers
        add ``shard=`` / ``replica=`` beneath that), so the merged output
        has a single ``# TYPE`` per metric and no ``(name, labels)``
        collisions -- verified by round-trip through
        :func:`~repro.obs.metrics.parse_exposition`.
        """
        own = render_prometheus(
            self.registry, ops=self._metrics, labels={"node": "gateway"}
        )
        svc = self.service.metrics_text(labels={"node": "service"})
        return merge_expositions([own, svc])
