"""NMF Incremental: generic dependency-graph change propagation.

The reference solution's incremental mode instruments the query expression
once and builds a **dynamic dependency graph** (DDG) at load time; model
changes then re-evaluate exactly the dirty sub-expressions, with value-
change pruning (see :mod:`repro.nmf.ddg` for the engine and for why this is
the faithful architecture rather than a hand-specialised propagator).

Query encoding:

* **Q1**: one computed node per Post reading the post's comment collection
  and every comment's ``likedBy`` set; value = Σ (10 + |likedBy|).
* **Q2**: one computed node per Comment reading the comment's ``likedBy``
  set and every liker's ``friends`` set; value = Σ component-size² of the
  liker subgraph, re-derived by union-find on each re-evaluation -- NMF
  re-runs the sub-expression, it does not patch components algebraically.

Consequences reproduced from the paper's Fig. 5:

* the **slowest load+initial phase**: building one node per post/comment
  plus one dependency edge per (comment, liker) pair is exactly the
  "dependency graph built from the query" the paper blames;
* update cost proportional to the *conservatively* affected set: a new
  friendship (a, b) dirties every comment-score node reading ``friends[a]``
  or ``friends[b]`` (all comments either user likes), most of which
  recompute to unchanged values and prune -- work the GraphBLAS
  incremental solution's exact ``ac`` detection (Fig. 4b steps 1-5) never
  does, which is why GraphBLAS wins Q2 updates at scale.
"""

from __future__ import annotations

from repro.lagraph.incremental_cc import IncrementalCC
from repro.model.changes import ChangeSet
from repro.model.graph import SocialGraph
from repro.nmf.ddg import DependencyGraph
from repro.nmf.objects import Comment, ObjectModel, Post
from repro.queries.topk import TopKTracker
from repro.util.validation import ReproError

__all__ = ["NmfIncrementalEngine"]


class NmfIncrementalEngine:
    """The Fig. 5 "NMF Incremental" tool."""

    tool = "nmf-incremental"

    def __init__(self, query: str, k: int = 3):
        if query not in ("Q1", "Q2"):
            raise ReproError(f"unknown query {query!r}")
        self.query = query
        self.k = k
        self.model: ObjectModel | None = None
        self.ddg = DependencyGraph()
        self.tracker = TopKTracker(k)
        #: most recent top-k (external_id, score) pairs, for the serving layer
        self.last_top: list[tuple[int, int]] = []
        #: rootPost index: all (direct or indirect) comments per post
        self._post_comments: dict[Post, list[Comment]] = {}
        #: set when a removal made scores non-monotone (extension); forces a
        #: top-k reselection over the cached node values after propagation
        self._needs_rescan = False

    # ------------------------------------------------------------------
    # query sub-expressions (the "compute" of each DDG node)
    # ------------------------------------------------------------------

    def _q1_compute(self, post: Post):
        def compute(tracker) -> int:
            tracker.read(("comments", post))
            total = 0
            for c in self._post_comments.get(post, ()):
                tracker.read(("likes", c))
                total += 10 + len(c.liked_by)
            return total

        return compute

    def _q2_compute(self, comment: Comment):
        def compute(tracker) -> int:
            tracker.read(("likes", comment))
            likers = comment.liked_by
            cc = IncrementalCC()
            for u in likers:
                tracker.read(("friends", u))
                cc.add_vertex(u.id)
            for u in likers:
                for f in u.friends:
                    if f.id > u.id and f in likers:
                        cc.add_edge(u.id, f.id)
            return cc.sum_squared_sizes

        return compute

    def _define_post(self, post: Post) -> None:
        self.ddg.define(
            ("q1", post.id),
            self._q1_compute(post),
            on_change=lambda v, p=post: self.tracker.offer(p.id, v, p.timestamp),
        )

    def _define_comment(self, comment: Comment) -> None:
        self.ddg.define(
            ("q2", comment.id),
            self._q2_compute(comment),
            on_change=lambda v, c=comment: self.tracker.offer(c.id, v, c.timestamp),
        )

    # ------------------------------------------------------------------
    # load: build object graph + the dependency graph
    # ------------------------------------------------------------------

    def load(self, graph: SocialGraph) -> None:
        self.model = ObjectModel.from_social_graph(graph)
        self._post_comments = {p: [] for p in self.model.posts.values()}
        for c in self.model.comments.values():
            self._post_comments[c.post].append(c)
        if self.query == "Q1":
            for p in self.model.posts.values():
                self._define_post(p)
        else:
            for c in self.model.comments.values():
                self._define_comment(c)
        self.model.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # model events -> source dirtying
    # ------------------------------------------------------------------

    def _on_event(self, kind: str, payload) -> None:
        if kind == "post":
            self._post_comments[payload] = []
            if self.query == "Q1":
                self._define_post(payload)
        elif kind == "comment":
            self._post_comments[payload.post].append(payload)
            if self.query == "Q1":
                self.ddg.changed(("comments", payload.post))
            else:
                self._define_comment(payload)
        elif kind == "like":
            _u, c = payload
            self.ddg.changed(("likes", c))
        elif kind == "friendship":
            a, b = payload
            self.ddg.changed(("friends", a))
            self.ddg.changed(("friends", b))
        elif kind == "unlike":
            _u, c = payload
            self.ddg.changed(("likes", c))
            self._needs_rescan = True
        elif kind == "unfriend":
            a, b = payload
            self.ddg.changed(("friends", a))
            self.ddg.changed(("friends", b))
            self._needs_rescan = True
        # "user" events create no query dependencies

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def _require_loaded(self) -> ObjectModel:
        if self.model is None:
            raise ReproError("engine not loaded; call load(graph) first")
        return self.model

    def initial(self) -> str:
        self._require_loaded()
        # node definition during load already offered every value; the
        # initial evaluation is a read of the maintained top-k
        self.last_top = self.tracker.top()
        return self.tracker.result_string()

    def update(self, change_set: ChangeSet) -> str:
        model = self._require_loaded()
        model.apply(change_set)  # events dirty the DDG sources
        self.ddg.propagate()  # changed nodes offer themselves to the tracker
        if self._needs_rescan:
            # Extension: a removal decreased some score; reselect the top-k
            # over the cached node values (still no query recomputation).
            self._needs_rescan = False
            entities = (
                model.posts.values() if self.query == "Q1" else model.comments.values()
            )
            prefix = "q1" if self.query == "Q1" else "q2"
            self.tracker.reseed(
                (e.id, self.ddg.node((prefix, e.id)).value, e.timestamp)
                for e in entities
            )
        self.last_top = self.tracker.top()
        return self.tracker.result_string()

    def close(self) -> None:
        pass
