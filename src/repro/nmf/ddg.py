"""A dynamic dependency graph (DDG) engine -- the NMF execution model.

The .NET Modeling Framework's incremental mode [Hinkel, ICMT 2018] does not
hand-write incremental algorithms per query.  It instruments the query
expression once, records which model elements each sub-expression *read*,
and when the model changes it re-evaluates exactly the dirty
sub-expressions, pruning propagation where a recomputed value is unchanged.
The price is generic machinery: a graph of dependency nodes built at load
time (the paper: NMF Incremental has the slowest load+initial phase
"as it initially builds a dependency graph from the query") and re-running
whole sub-expressions instead of applying algebraic deltas.

This module implements that execution model concretely so the repository's
"NMF Incremental" baseline has the *architecture* of the original rather
than an idealised hand-specialised propagator:

* :class:`Source` -- a leaf standing for one observable model fragment
  (a collection or attribute).  Marking it changed dirties its dependents.
* :class:`Computed` -- a node with a ``compute(tracker)`` function.  During
  (re)computation the node *dynamically re-registers* its dependencies:
  every Source it reads through :meth:`DependencyTracker.read` becomes an
  incoming edge, exactly like NMF's (and Adapton's/Incremental's) dynamic
  dependence discovery.
* :class:`DependencyGraph.propagate` -- recomputes the dirty closure in
  topological (height) order with value-change pruning: if a node
  recomputes to an equal value its dependents stay clean.

The conservative over-approximation this produces is characteristic:
adding the friendship (a, b) dirties *every* comment-score node that reads
``friends[a]`` or ``friends[b]`` -- a superset of the truly affected
comments -- and the superfluous nodes recompute to unchanged values and
prune there.  Hand-written delta engines (the GraphBLAS solution!) skip
that work, which is precisely the performance gap the paper measures.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

__all__ = ["Source", "Computed", "DependencyTracker", "DependencyGraph"]


class Source:
    """A leaf node: one observable fragment of the model."""

    __slots__ = ("graph", "key", "dependents")

    def __init__(self, graph: "DependencyGraph", key):
        self.graph = graph
        self.key = key
        self.dependents: set[Computed] = set()

    def changed(self) -> None:
        """Mark every dependent dirty (the model mutated this fragment)."""
        for node in self.dependents:
            self.graph._dirty(node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Source {self.key!r} deps={len(self.dependents)}>"


class DependencyTracker:
    """Passed to ``compute``; records which sources the expression reads."""

    __slots__ = ("graph", "reads")

    def __init__(self, graph: "DependencyGraph"):
        self.graph = graph
        self.reads: set[Source] = set()

    def read(self, key):
        """Declare a read of the model fragment ``key``; returns nothing.

        The value itself is read straight from the model object graph --
        the DDG only tracks *that* the read happened, as NMF's
        instrumentation does.
        """
        self.reads.add(self.graph.source(key))


class Computed:
    """An incremental sub-expression with dynamically discovered deps."""

    __slots__ = ("graph", "key", "compute", "value", "sources", "on_change", "_height")

    def __init__(
        self,
        graph: "DependencyGraph",
        key,
        compute: Callable[[DependencyTracker], object],
        on_change: Optional[Callable[[object], None]],
    ):
        self.graph = graph
        self.key = key
        self.compute = compute
        self.value: object = None
        self.sources: set[Source] = set()
        self.on_change = on_change
        self._height = 0  # all current nodes read sources directly

    def _recompute(self) -> bool:
        """Re-evaluate; re-register dependencies; True if the value changed."""
        tracker = DependencyTracker(self.graph)
        new_value = self.compute(tracker)
        # dynamic dependency maintenance: drop stale edges, add fresh ones
        for src in self.sources - tracker.reads:
            src.dependents.discard(self)
        for src in tracker.reads - self.sources:
            src.dependents.add(self)
        self.sources = tracker.reads
        if new_value == self.value:
            return False
        self.value = new_value
        if self.on_change is not None:
            self.on_change(new_value)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Computed {self.key!r} value={self.value!r}>"


class DependencyGraph:
    """The propagation engine: sources, computed nodes, a dirty set."""

    def __init__(self) -> None:
        self._sources: dict = {}
        self._nodes: dict = {}
        self._dirty_set: set[Computed] = set()
        #: instrumentation: recomputations whose value was unchanged
        #: (the cost of conservative over-approximation; see module doc)
        self.pruned_recomputations = 0
        self.total_recomputations = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def source(self, key) -> Source:
        """The (interned) source node for a model fragment key."""
        src = self._sources.get(key)
        if src is None:
            src = self._sources[key] = Source(self, key)
        return src

    def define(
        self,
        key,
        compute: Callable[[DependencyTracker], object],
        *,
        on_change: Optional[Callable[[object], None]] = None,
    ) -> Computed:
        """Install a computed node and evaluate it once (load phase)."""
        if key in self._nodes:
            raise KeyError(f"node {key!r} already defined")
        node = Computed(self, key, compute, on_change)
        self._nodes[key] = node
        node._recompute()
        return node

    def node(self, key) -> Computed:
        return self._nodes[key]

    def __contains__(self, key) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_sources(self) -> int:
        return len(self._sources)

    @property
    def num_edges(self) -> int:
        return sum(len(s.dependents) for s in self._sources.values())

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def _dirty(self, node: Computed) -> None:
        self._dirty_set.add(node)

    def changed(self, key) -> None:
        """Notify: the model fragment behind ``key`` mutated."""
        src = self._sources.get(key)
        if src is not None:
            src.changed()

    def propagate(self) -> list[Computed]:
        """Recompute the dirty closure; returns nodes whose value changed.

        All current queries are depth-1 (computed nodes read sources only),
        so a single pass suffices; the height sort keeps the engine correct
        if deeper expressions are ever defined.
        """
        changed_nodes: list[Computed] = []
        while self._dirty_set:
            batch = sorted(self._dirty_set, key=lambda n: n._height)
            self._dirty_set.clear()
            for node in batch:
                self.total_recomputations += 1
                if node._recompute():
                    changed_nodes.append(node)
                else:
                    self.pruned_recomputations += 1
        return changed_nodes
