"""The reference baseline: a model-traversal solution in the NMF style.

The paper benchmarks against the case study's reference implementation,
written in the .NET Modeling Framework (NMF) [Hinkel, ICMT 2018], in two
flavours:

* **NMF Batch** re-runs the queries by traversing the object graph on every
  evaluation -- :class:`~repro.nmf.batch.NmfBatchEngine`.
* **NMF Incremental** builds a dependency (change-propagation) structure
  during load -- which is why its load+initial phase is the slowest in
  Fig. 5 -- and afterwards updates query results by propagating individual
  model changes -- :class:`~repro.nmf.incremental.NmfIncrementalEngine`.

Both operate on a plain-Python object model (:mod:`repro.nmf.objects`),
deliberately *not* using the GraphBLAS substrate: the baseline's point is to
represent the conventional object-graph programming model.
"""

from repro.nmf.objects import Comment, ObjectModel, Post, User
from repro.nmf.batch import NmfBatchEngine
from repro.nmf.incremental import NmfIncrementalEngine

__all__ = [
    "User",
    "Post",
    "Comment",
    "ObjectModel",
    "NmfBatchEngine",
    "NmfIncrementalEngine",
]
