"""The object model: Users, Posts and Comments as linked Python objects.

This mirrors how the NMF reference solution represents the case model --
an in-memory object graph with bidirectional references -- as opposed to the
paper's matrix representation.  The :class:`ObjectModel` can be built from a
:class:`~repro.model.graph.SocialGraph` (so both tools load identical data)
and mutated by :class:`~repro.model.changes.ChangeSet` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
)
from repro.model.graph import SocialGraph
from repro.util.validation import ReproError

__all__ = ["User", "Post", "Comment", "ObjectModel"]


@dataclass(eq=False)
class User:
    id: int
    name: str = ""
    friends: set["User"] = field(default_factory=set)
    likes: set["Comment"] = field(default_factory=set)

    def __hash__(self) -> int:
        return id(self)


@dataclass(eq=False)
class Post:
    id: int
    timestamp: int
    submitter: User
    comments: list["Comment"] = field(default_factory=list)  # direct replies

    def __hash__(self) -> int:
        return id(self)


@dataclass(eq=False)
class Comment:
    id: int
    timestamp: int
    submitter: User
    parent: Union[Post, "Comment"]
    post: Post  # the rootPost pointer of the case model
    comments: list["Comment"] = field(default_factory=list)  # direct replies
    liked_by: set[User] = field(default_factory=set)

    def __hash__(self) -> int:
        return id(self)


class ObjectModel:
    """The full object graph plus id lookup tables."""

    def __init__(self) -> None:
        self.users: dict[int, User] = {}
        self.posts: dict[int, Post] = {}
        self.comments: dict[int, Comment] = {}
        #: subscribers notified of each applied element insertion
        self._listeners: list[Callable] = []

    # ------------------------------------------------------------------

    @classmethod
    def from_social_graph(cls, graph: SocialGraph) -> "ObjectModel":
        """Materialise the object graph from the matrix representation."""
        m = cls()
        for idx in range(graph.num_users):
            m.add_user(graph.users.external(idx), graph._user_names[idx])
        for idx in range(graph.num_posts):
            m.add_post(
                graph.posts.external(idx),
                int(graph._post_ts[idx]),
                graph.users.external(graph._post_author[idx]),
            )
        for idx in range(graph.num_comments):
            is_post, pidx = graph._comment_parent[idx]
            parent_ext = (
                graph.posts.external(pidx)
                if is_post
                else graph.comments.external(pidx)
            )
            m.add_comment(
                graph.comments.external(idx),
                int(graph._comment_ts[idx]),
                graph.users.external(graph._comment_author[idx]),
                parent_ext,
            )
        for a, b in sorted(graph._friend_keys):
            m.add_friendship(graph.users.external(a), graph.users.external(b))
        for c, u in sorted(graph._like_keys):
            m.add_like(graph.users.external(u), graph.comments.external(c))
        return m

    # ------------------------------------------------------------------
    # element mutators (fire change notifications)
    # ------------------------------------------------------------------

    def subscribe(self, listener: Callable) -> None:
        """Register a change listener: ``listener(kind, payload)``."""
        self._listeners.append(listener)

    def _notify(self, kind: str, payload) -> None:
        for listener in self._listeners:
            listener(kind, payload)

    def add_user(self, user_id: int, name: str = "") -> User:
        if user_id in self.users:
            raise ReproError(f"duplicate user id {user_id}")
        u = self.users[user_id] = User(user_id, name)
        self._notify("user", u)
        return u

    def add_post(self, post_id: int, timestamp: int, user_id: int) -> Post:
        if post_id in self.posts or post_id in self.comments:
            raise ReproError(f"duplicate submission id {post_id}")
        p = self.posts[post_id] = Post(post_id, timestamp, self.users[user_id])
        self._notify("post", p)
        return p

    def add_comment(
        self, comment_id: int, timestamp: int, user_id: int, parent_id: int
    ) -> Comment:
        if comment_id in self.posts or comment_id in self.comments:
            raise ReproError(f"duplicate submission id {comment_id}")
        if parent_id in self.posts:
            parent: Union[Post, Comment] = self.posts[parent_id]
            root = parent
        elif parent_id in self.comments:
            parent = self.comments[parent_id]
            root = parent.post
        else:
            raise ReproError(f"unknown parent {parent_id}")
        c = Comment(comment_id, timestamp, self.users[user_id], parent, root)
        self.comments[comment_id] = c
        parent.comments.append(c)
        self._notify("comment", c)
        return c

    def add_like(self, user_id: int, comment_id: int) -> Optional[tuple]:
        u = self.users[user_id]
        c = self.comments[comment_id]
        if u in c.liked_by:
            return None
        c.liked_by.add(u)
        u.likes.add(c)
        self._notify("like", (u, c))
        return (u, c)

    def add_friendship(self, user1_id: int, user2_id: int) -> Optional[tuple]:
        a = self.users[user1_id]
        b = self.users[user2_id]
        if a is b:
            raise ReproError(f"self-friendship for user {user1_id}")
        if b in a.friends:
            return None
        a.friends.add(b)
        b.friends.add(a)
        self._notify("friendship", (a, b))
        return (a, b)

    def remove_like(self, user_id: int, comment_id: int) -> Optional[tuple]:
        """Extension: withdraw a like; no-op when absent."""
        u = self.users[user_id]
        c = self.comments[comment_id]
        if u not in c.liked_by:
            return None
        c.liked_by.discard(u)
        u.likes.discard(c)
        self._notify("unlike", (u, c))
        return (u, c)

    def remove_friendship(self, user1_id: int, user2_id: int) -> Optional[tuple]:
        """Extension: remove a friends edge; no-op when absent."""
        a = self.users[user1_id]
        b = self.users[user2_id]
        if b not in a.friends:
            return None
        a.friends.discard(b)
        b.friends.discard(a)
        self._notify("unfriend", (a, b))
        return (a, b)

    # ------------------------------------------------------------------

    def apply(self, change_set: ChangeSet) -> None:
        for ch in change_set:
            if isinstance(ch, AddUser):
                self.add_user(ch.user_id, ch.name)
            elif isinstance(ch, AddPost):
                self.add_post(ch.post_id, ch.timestamp, ch.user_id)
            elif isinstance(ch, AddComment):
                self.add_comment(ch.comment_id, ch.timestamp, ch.user_id, ch.parent_id)
            elif isinstance(ch, AddLike):
                self.add_like(ch.user_id, ch.comment_id)
            elif isinstance(ch, AddFriendship):
                self.add_friendship(ch.user1_id, ch.user2_id)
            elif isinstance(ch, RemoveLike):
                self.remove_like(ch.user_id, ch.comment_id)
            elif isinstance(ch, RemoveFriendship):
                self.remove_friendship(ch.user1_id, ch.user2_id)
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown change type {type(ch)}")

    def all_comments_of(self, post: Post) -> list[Comment]:
        """Direct and indirect comments via tree traversal (no rootPost use)."""
        out: list[Comment] = []
        stack: list[Union[Post, Comment]] = [post]
        while stack:
            node = stack.pop()
            for child in node.comments:
                out.append(child)
                stack.append(child)
        return out
