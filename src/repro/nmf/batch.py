"""NMF Batch: recompute both queries by object-graph traversal.

This mirrors the reference solution's batch mode: every evaluation walks the
comment trees (Q1) and runs a BFS over liker-induced friend subgraphs (Q2)
from scratch.  No indexes survive between evaluations -- that is the point
of the baseline.
"""

from __future__ import annotations

from repro.model.changes import ChangeSet
from repro.model.graph import SocialGraph
from repro.nmf.objects import Comment, ObjectModel, Post, User
from repro.queries.topk import _sort_key
from repro.util.validation import ReproError

__all__ = ["q1_score", "q2_score", "NmfBatchEngine"]


def q1_score(post: Post) -> int:
    """10 x #comments + #likes-on-those-comments, by tree traversal."""
    score = 0
    stack: list = [post]
    while stack:
        node = stack.pop()
        for child in node.comments:
            score += 10 + len(child.liked_by)
            stack.append(child)
    return score


def q2_score(comment: Comment) -> int:
    """Σ component-size² over the liker-induced friends subgraph (BFS)."""
    likers = comment.liked_by
    unvisited = set(likers)
    score = 0
    while unvisited:
        seed = unvisited.pop()
        size = 1
        frontier = [seed]
        while frontier:
            nxt: list[User] = []
            for u in frontier:
                for f in u.friends:
                    if f in unvisited:
                        unvisited.discard(f)
                        size += 1
                        nxt.append(f)
            frontier = nxt
        score += size * size
    return score


def _top3(entries: list[tuple[int, int, int]], k: int) -> list[tuple[int, int]]:
    """(score, ts, id) triples -> contest-ordered (id, score) top-k."""
    entries.sort(key=_sort_key)
    return [(ext, score) for score, _ts, ext in entries[:k]]


class NmfBatchEngine:
    """The Fig. 5 "NMF Batch" tool: full traversal per evaluation."""

    tool = "nmf-batch"

    def __init__(self, query: str, k: int = 3):
        if query not in ("Q1", "Q2"):
            raise ReproError(f"unknown query {query!r}")
        self.query = query
        self.k = k
        self.model: ObjectModel | None = None
        #: most recent top-k (external_id, score) pairs, for the serving layer
        self.last_top: list[tuple[int, int]] = []

    def load(self, graph: SocialGraph) -> None:
        self.model = ObjectModel.from_social_graph(graph)

    def _evaluate(self) -> list[tuple[int, int]]:
        m = self.model
        if m is None:
            raise ReproError("engine not loaded; call load(graph) first")
        if self.query == "Q1":
            entries = [(q1_score(p), p.timestamp, p.id) for p in m.posts.values()]
        else:
            entries = [(q2_score(c), c.timestamp, c.id) for c in m.comments.values()]
        return _top3(entries, self.k)

    def initial(self) -> str:
        self.last_top = self._evaluate()
        return "|".join(str(ext) for ext, _ in self.last_top)

    def update(self, change_set: ChangeSet) -> str:
        self.model.apply(change_set)
        self.last_top = self._evaluate()
        return "|".join(str(ext) for ext, _ in self.last_top)

    def close(self) -> None:
        pass
