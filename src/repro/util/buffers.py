"""Append-only int64 sequences with O(1) NumPy views.

The model layer keeps per-entity attributes (timestamps, rootPost pointers,
external ids) in append-only sequences that the query layer reads as NumPy
arrays on *every* update.  A plain Python list costs an O(n) ``np.asarray``
per read -- measurable at serving rates -- so :class:`IntArrayList` keeps
the data in a doubling ``int64`` buffer instead: appends are amortised
O(1), and :meth:`array` returns a zero-copy read-only view.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["IntArrayList"]


class IntArrayList:
    """A list of ints backed by a growable int64 array.

    Supports the small list surface the model layer uses (``append``,
    ``len``, indexing, iteration, equality) plus the O(1) :meth:`array`
    view the query layer reads.
    """

    __slots__ = ("_buf", "_n")

    def __init__(self, items: Iterable[int] = ()):
        arr = np.asarray(list(items), dtype=np.int64)
        self._n = int(arr.size)
        cap = max(8, self._n)
        self._buf = np.empty(cap, dtype=np.int64)
        self._buf[: self._n] = arr

    def append(self, value: int) -> None:
        if self._n == self._buf.size:
            grown = np.empty(2 * self._buf.size, dtype=np.int64)
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n] = value
        self._n += 1

    def array(self) -> np.ndarray:
        """Zero-copy read-only view of the current contents."""
        view = self._buf[: self._n]
        view.flags.writeable = False
        return view

    def tolist(self) -> list[int]:
        return self._buf[: self._n].tolist()

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i):
        if isinstance(i, slice):
            return self._buf[: self._n][i].tolist()
        if not -self._n <= i < self._n:
            raise IndexError(f"index {i} out of range for length {self._n}")
        return int(self._buf[i % self._n if i < 0 else i])

    def __iter__(self) -> Iterator[int]:
        return iter(self._buf[: self._n].tolist())

    def __eq__(self, other) -> bool:
        if isinstance(other, IntArrayList):
            return self.tolist() == other.tolist()
        if isinstance(other, list):
            return self.tolist() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntArrayList({self.tolist()!r})"
