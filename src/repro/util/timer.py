"""Monotonic wall-clock timing used by the benchmark harness.

The TTC benchmark framework reports per-phase wall times; these helpers keep
the timing discipline in one place (perf_counter, explicit start/stop, and a
context-manager form for one-shot measurement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class WallClock:
    """Thin, patchable wrapper around :func:`time.perf_counter`."""

    @staticmethod
    def now() -> float:
        return time.perf_counter()


@dataclass
class Timer:
    """Accumulating stopwatch.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._started is not None:
            raise RuntimeError("Timer already running")
        self._started = WallClock.now()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("Timer is not running")
        self.elapsed += WallClock.now() - self._started
        self._started = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
