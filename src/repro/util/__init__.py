"""Small shared utilities: validation, timing, RNG plumbing."""

from repro.util.validation import (
    check_index_array,
    check_in_range,
    check_positive,
    ReproError,
    DimensionMismatch,
    IndexOutOfBounds,
)
from repro.util.timer import Timer, WallClock

__all__ = [
    "check_index_array",
    "check_in_range",
    "check_positive",
    "ReproError",
    "DimensionMismatch",
    "IndexOutOfBounds",
    "Timer",
    "WallClock",
]
