"""Validation helpers and the library's exception hierarchy.

All user-facing errors raised by :mod:`repro` derive from :class:`ReproError`
so downstream code can catch one base class.  The two most common failure
modes in a GraphBLAS-style API -- mismatched object dimensions and
out-of-bounds indices -- get dedicated subclasses mirroring the C API's
``GrB_DIMENSION_MISMATCH`` and ``GrB_INDEX_OUT_OF_BOUNDS`` error codes.
"""

from __future__ import annotations

import numpy as np


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionMismatch(ReproError):
    """Operands have incompatible shapes (GrB_DIMENSION_MISMATCH)."""


class IndexOutOfBounds(ReproError):
    """An index is outside the object's dimensions (GrB_INDEX_OUT_OF_BOUNDS)."""


class NotCanonical(ReproError):
    """Internal arrays violate the canonical sorted/unique invariant."""


class DeadlineExceeded(ReproError):
    """A read's absolute deadline passed before a result could be served.

    Raised by the service ``query`` paths when the caller's deadline
    (an absolute :class:`~repro.util.timer.WallClock` instant) expires.
    The gateway counts these as *shed* load, not errors: the service is
    healthy, the caller's budget simply ran out.
    """


def check_positive(value: int, what: str) -> int:
    """Return ``value`` if it is a non-negative int, else raise."""
    v = int(value)
    if v < 0:
        raise ReproError(f"{what} must be non-negative, got {value}")
    return v


def check_in_range(value: int, limit: int, what: str) -> int:
    """Return ``value`` if ``0 <= value < limit``, else raise IndexOutOfBounds."""
    v = int(value)
    if not 0 <= v < limit:
        raise IndexOutOfBounds(f"{what}={value} out of range [0, {limit})")
    return v


def check_index_array(idx, limit: int, what: str) -> np.ndarray:
    """Validate and normalise an index array.

    Accepts any integer sequence; returns a contiguous int64 ndarray and
    verifies every element lies in ``[0, limit)``.
    """
    arr = np.ascontiguousarray(idx, dtype=np.int64)
    if arr.ndim != 1:
        raise ReproError(f"{what} must be one-dimensional, got shape {arr.shape}")
    if arr.size:
        lo = int(arr.min())
        hi = int(arr.max())
        if lo < 0 or hi >= limit:
            raise IndexOutOfBounds(
                f"{what} contains index outside [0, {limit}): min={lo}, max={hi}"
            )
    return arr
