"""Durable state for the serving layer: snapshots + a write-ahead change log.

Two complementary artefacts live in a service's data directory:

``snapshot-<version>/``
    A point-in-time copy of the :class:`~repro.model.graph.SocialGraph`,
    written with :func:`repro.model.loader.save_graph` (the same CSV
    dialect as benchmark inputs) plus a ``meta.json`` carrying the service
    version.  Snapshots are committed atomically: the graph is written to a
    ``.tmp`` directory and renamed into place, so a crash mid-snapshot
    leaves at most an ignorable ``.tmp`` turd, never a half-readable
    snapshot.

``wal.csv``
    An append-only change log.  Each applied micro-batch is framed as::

        BEGIN,<version>,<n_changes>
        <one change row per change, repro.model.loader codec>
        COMMIT,<version>

    The ``COMMIT`` line is the durability point: replay ignores a torn
    trailing batch (crash mid-append), and the frame tags cannot collide
    with change rows because change tags are single characters
    (``U/P/C/L/F/-L/-F``).

Recovery = load the newest snapshot, then replay every committed batch
with ``version > snapshot.version``.  Because a batch's effect on the
graph is deterministic (``SocialGraph.apply`` is a pure function of graph
state and change list), snapshot + log tail provably converges to the
same graph -- and therefore the same top-k -- as applying the full stream
to the initial graph.  ``tests/serving/test_recovery_property.py`` checks
exactly that, removals included.
"""

from __future__ import annotations

import csv
import io
import json
import os
import shutil
from pathlib import Path
from typing import Iterator, Optional

from repro.model.changes import ChangeSet
from repro.model.graph import SocialGraph
from repro.model.loader import change_to_row, load_graph, row_to_change, save_graph
from repro.util.validation import ReproError

__all__ = ["ChangeLog", "SnapshotStore", "dir_bytes"]


def dir_bytes(path) -> int:
    """Total file bytes under ``path`` (the ``repro_snapshot_bytes`` gauge)."""
    return sum(p.stat().st_size for p in Path(path).rglob("*") if p.is_file())

_SNAP_PREFIX = "snapshot-"
_META = "meta.json"
_SCHEMA = 1


class ChangeLog:
    """Append-only write-ahead log of applied change batches."""

    FILENAME = "wal.csv"

    def __init__(self, directory, *, sync: bool = True):
        self.path = Path(directory) / self.FILENAME
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self._fh: Optional[io.TextIOWrapper] = None

    # -- writing --------------------------------------------------------

    def _handle(self) -> io.TextIOWrapper:
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "a", newline="")
        return self._fh

    def append(self, version: int, change_set: ChangeSet) -> int:
        """Durably append one batch as ``version`` (call *before* applying).

        Returns the bytes appended for this frame (the service feeds the
        ``repro_wal_bytes_total`` counter with it).
        """
        fh = self._handle()
        t0 = fh.tell()
        w = csv.writer(fh)
        w.writerow(["BEGIN", version, len(change_set)])
        for ch in change_set:
            w.writerow(change_to_row(ch))
        w.writerow(["COMMIT", version])
        fh.flush()
        if self.sync:
            os.fsync(fh.fileno())
        return fh.tell() - t0

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    # -- replay ---------------------------------------------------------

    def replay(self, after_version: int = 0) -> Iterator[tuple[int, ChangeSet]]:
        """Yield committed (version, batch) pairs with version > ``after_version``.

        A torn batch at the tail (``BEGIN`` without its ``COMMIT``) is the
        signature of a crash mid-append and is silently dropped; a torn
        batch *followed by more records* is corruption and raises.
        """
        if not self.path.exists():
            return
        open_version: Optional[int] = None
        open_changes: list = []
        torn_at: Optional[int] = None
        with open(self.path, newline="") as fh:
            for row in csv.reader(fh):
                if not row:
                    continue
                if torn_at is not None:
                    raise ReproError(
                        f"corrupt change log {self.path}: batch v{torn_at} has "
                        "no COMMIT but the log continues"
                    )
                tag = row[0]
                if tag == "BEGIN":
                    if open_version is not None:
                        torn_at = open_version
                        continue
                    open_version = int(row[1])
                    open_changes = []
                elif tag == "COMMIT":
                    if open_version is None or int(row[1]) != open_version:
                        raise ReproError(
                            f"corrupt change log {self.path}: stray COMMIT {row[1:]}"
                        )
                    if open_version > after_version:
                        yield open_version, ChangeSet(open_changes)
                    open_version = None
                else:
                    if open_version is None:
                        raise ReproError(
                            f"corrupt change log {self.path}: change row outside "
                            f"a batch frame: {row}"
                        )
                    open_changes.append(row_to_change(row))
        # a still-open batch at EOF is the torn tail: dropped by design

    def last_version(self) -> int:
        """Highest committed version in the log (0 when empty/missing)."""
        last = 0
        for version, _ in self.replay(0):
            last = version
        return last

    def repair(self) -> bool:
        """Truncate an uncommitted trailing frame; True if bytes were cut.

        Recovery must call this before the log is appended to again:
        replay merely *skips* a torn tail, but appending a new frame after
        one would turn the recoverable crash artefact into mid-log
        corruption on the next recovery.  Truncating at the last
        ``COMMIT`` is tail-only by construction -- an interior torn frame
        (real corruption) sits *before* a later COMMIT, survives the
        truncation, and still raises in :meth:`replay`.
        """
        if not self.path.exists():
            return False
        good = 0
        with open(self.path, "rb") as fh:
            while True:
                line = fh.readline()
                if not line:
                    break
                if line.split(b",", 1)[0].strip() == b"COMMIT":
                    good = fh.tell()
        if good >= self.path.stat().st_size:
            return False
        self.close()  # never truncate under an open append handle
        os.truncate(self.path, good)
        return True


class SnapshotStore:
    """Atomic point-in-time graph snapshots under one directory."""

    def __init__(self, directory):
        self.root = Path(directory)
        self.root.mkdir(parents=True, exist_ok=True)

    def _dirname(self, version: int) -> Path:
        return self.root / f"{_SNAP_PREFIX}{version:010d}"

    def save(self, graph: SocialGraph, version: int) -> Path:
        """Write a snapshot of ``graph`` at ``version``; atomic via rename."""
        final = self._dirname(version)
        if final.exists():
            raise ReproError(f"snapshot for version {version} already exists")
        tmp = final.with_suffix(".tmp")
        if tmp.exists():  # leftover of a crashed attempt
            shutil.rmtree(tmp)
        save_graph(tmp, graph)
        with open(tmp / _META, "w") as fh:
            json.dump({"schema": _SCHEMA, "version": version}, fh)
        os.rename(tmp, final)
        return final

    def versions(self) -> list[int]:
        """Versions of all complete snapshots, ascending."""
        out = []
        for path in self.root.glob(f"{_SNAP_PREFIX}*"):
            if path.suffix == ".tmp" or not (path / _META).exists():
                continue
            with open(path / _META) as fh:
                meta = json.load(fh)
            if meta.get("schema") != _SCHEMA:
                raise ReproError(
                    f"snapshot {path} has schema {meta.get('schema')}, "
                    f"expected {_SCHEMA}"
                )
            out.append(int(meta["version"]))
        return sorted(out)

    def latest(self) -> Optional[int]:
        versions = self.versions()
        return versions[-1] if versions else None

    def load(self, version: int) -> SocialGraph:
        path = self._dirname(version)
        if not (path / _META).exists():
            raise ReproError(f"no snapshot for version {version} in {self.root}")
        return load_graph(path)

    def prune(self, keep: int = 2) -> list[int]:
        """Drop all but the newest ``keep`` snapshots; returns dropped versions."""
        victims = self.versions()[:-keep] if keep > 0 else self.versions()
        for version in victims:
            shutil.rmtree(self._dirname(version), ignore_errors=True)
        return victims
