"""Durable state for the serving layer: snapshots + a write-ahead change log.

Two complementary artefacts live in a service's data directory:

``snapshot-<version>/``
    A point-in-time copy of the :class:`~repro.model.graph.SocialGraph`,
    written with :func:`repro.model.loader.save_graph` (the same CSV
    dialect as benchmark inputs) plus a ``meta.json`` carrying the service
    version.  Snapshots are committed atomically: the graph is written to a
    ``.tmp`` directory and renamed into place, so a crash mid-snapshot
    leaves at most an ignorable ``.tmp`` turd, never a half-readable
    snapshot.

``wal.csv``
    An append-only change log.  Each applied micro-batch is framed as::

        BEGIN,<version>,<n_changes>,<epoch>
        <one change row per change, repro.model.loader codec>
        COMMIT,<version>

    The ``COMMIT`` line is the durability point: replay ignores a torn
    trailing batch (crash mid-append), and the frame tags cannot collide
    with change rows because change tags are single characters
    (``U/P/C/L/F/-L/-F``).  The ``epoch`` field is the replication
    layer's leadership fencing token (see :mod:`repro.replication`);
    pre-replication logs framed batches without it, and replay treats a
    missing field as epoch 0.

``fence.json``
    Written by replica promotion (:func:`write_fence`): the minimum epoch
    this directory accepts appends under.  A deposed leader -- fenced by
    its successor but still believing it leads -- raises
    :class:`FencedError` on its next append instead of splitting the
    history (checked *before* any frame bytes are written).

Recovery = load the newest snapshot, then replay every committed batch
with ``version > snapshot.version``.  Because a batch's effect on the
graph is deterministic (``SocialGraph.apply`` is a pure function of graph
state and change list), snapshot + log tail provably converges to the
same graph -- and therefore the same top-k -- as applying the full stream
to the initial graph.  ``tests/serving/test_recovery_property.py`` checks
exactly that, removals included.

Crash safety: a frame is fsynced before :meth:`ChangeLog.append` returns
(and the WAL's directory entry is fsynced when the file is first
created); a snapshot's files and directories are fsynced *before* the
atomic rename publishes them.  Without the pre-rename fsync a power loss
could leave a renamed-but-empty snapshot -- acknowledged, yet torn --
which is exactly what a tailing replica must never see.  The killable
moments are marked as :mod:`repro.faults` crash points (``wal-append``,
``snapshot-write``), which is how the regression tests die there.
"""

from __future__ import annotations

import csv
import io
import json
import os
import shutil
import warnings
from pathlib import Path
from typing import Iterator, Optional

from repro.faults import fire as _fire_fault
from repro.faults import register_crash_point
from repro.model.changes import ChangeSet
from repro.model.graph import SocialGraph
from repro.model.loader import change_to_row, load_graph, row_to_change, save_graph
from repro.storage import resolve_storage
from repro.util.validation import ReproError

__all__ = [
    "ChangeLog",
    "FencedError",
    "SnapshotStore",
    "dir_bytes",
    "read_fence",
    "write_fence",
]

CRASH_WAL_APPEND = register_crash_point(
    "wal-append", "ChangeLog.append, before any frame bytes are written"
)
CRASH_SNAPSHOT_WRITE = register_crash_point(
    "snapshot-write",
    "SnapshotStore.save, after the files are written but before "
    "fsync + atomic rename publish the snapshot",
)


class FencedError(ReproError):
    """An append under a stale epoch: this node has been deposed.

    Raised before any bytes hit the log, so a fenced (zombie) leader
    fail-stops without ever forking the committed history.
    """


def dir_bytes(path) -> int:
    """Total file bytes under ``path`` (the ``repro_snapshot_bytes`` gauge)."""
    return sum(p.stat().st_size for p in Path(path).rglob("*") if p.is_file())


def _fsync_path(path: Path) -> None:
    """fsync one file or directory by descriptor."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_tree(root: Path) -> None:
    """fsync every file, then every directory (bottom-up), under ``root``."""
    dirs: list[Path] = []
    for path in sorted(root.rglob("*")):
        if path.is_dir():
            dirs.append(path)
        elif path.is_file():
            _fsync_path(path)
    for path in reversed(dirs):
        _fsync_path(path)
    _fsync_path(root)


_FENCE = "fence.json"
_SNAP_PREFIX = "snapshot-"
_META = "meta.json"
_SCHEMA = 1


def read_fence(directory) -> int:
    """The minimum epoch ``directory`` accepts appends under (0 = none)."""
    path = Path(directory) / _FENCE
    if not path.exists():
        return 0
    with open(path) as fh:
        return int(json.load(fh)["epoch"])


def write_fence(directory, epoch: int) -> None:
    """Durably stamp ``directory`` with a fencing ``epoch`` (atomic).

    Idempotent per epoch; lowering an existing fence raises -- fences only
    ever advance, that is what makes them fences.
    """
    directory = Path(directory)
    current = read_fence(directory)
    if epoch < current:
        raise ReproError(f"cannot lower fence from epoch {current} to {epoch}")
    tmp = directory / (_FENCE + ".tmp")
    with open(tmp, "w") as fh:
        json.dump({"epoch": epoch}, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.rename(tmp, directory / _FENCE)
    _fsync_path(directory)


class ChangeLog:
    """Append-only write-ahead log of applied change batches.

    ``epoch`` stamps every appended frame with the writer's leadership
    epoch (0 for an unreplicated service); appends are rejected with
    :class:`FencedError` when the directory's fence has moved past it.
    """

    FILENAME = "wal.csv"

    def __init__(self, directory, *, sync: bool = True, epoch: int = 0):
        self.path = Path(directory) / self.FILENAME
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self.epoch = epoch
        self._fh: Optional[io.TextIOWrapper] = None

    # -- writing --------------------------------------------------------

    def _handle(self) -> io.TextIOWrapper:
        if self._fh is None or self._fh.closed:
            created = not self.path.exists()
            self._fh = open(self.path, "a", newline="")
            if created and self.sync:
                # the file's *directory entry* must survive power loss too
                _fsync_path(self.path.parent)
        return self._fh

    def append(self, version: int, change_set: ChangeSet) -> int:
        """Durably append one batch as ``version`` (call *before* applying).

        Returns the bytes appended for this frame (the service feeds the
        ``repro_wal_bytes_total`` counter with it).
        """
        _fire_fault(
            CRASH_WAL_APPEND, path=str(self.path), version=version, epoch=self.epoch
        )
        fence = read_fence(self.path.parent)
        if fence > self.epoch:
            raise FencedError(
                f"append to {self.path} under epoch {self.epoch} rejected: "
                f"directory is fenced at epoch {fence} (a newer leader was "
                "promoted; this writer is a zombie)"
            )
        fh = self._handle()
        t0 = fh.tell()
        w = csv.writer(fh)
        w.writerow(["BEGIN", version, len(change_set), self.epoch])
        for ch in change_set:
            w.writerow(change_to_row(ch))
        w.writerow(["COMMIT", version])
        fh.flush()
        if self.sync:
            os.fsync(fh.fileno())
        return fh.tell() - t0

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    # -- replay ---------------------------------------------------------

    def replay(self, after_version: int = 0) -> Iterator[tuple[int, ChangeSet]]:
        """Yield committed (version, batch) pairs with version > ``after_version``."""
        for version, batch, _epoch in self.replay_frames(after_version):
            yield version, batch

    def replay_frames(
        self, after_version: int = 0
    ) -> Iterator[tuple[int, ChangeSet, int]]:
        """Yield committed (version, batch, epoch) with version > ``after_version``.

        A torn batch at the tail (``BEGIN`` without its ``COMMIT``) is the
        signature of a crash mid-append and is silently dropped; a torn
        batch *followed by more records* is corruption and raises.  Frames
        written before the epoch field existed replay as epoch 0.
        """
        if not self.path.exists():
            return
        open_version: Optional[int] = None
        open_epoch = 0
        open_changes: list = []
        torn_at: Optional[int] = None
        with open(self.path, newline="") as fh:
            for row in csv.reader(fh):
                if not row:
                    continue
                if torn_at is not None:
                    raise ReproError(
                        f"corrupt change log {self.path}: batch v{torn_at} has "
                        "no COMMIT but the log continues"
                    )
                tag = row[0]
                if tag == "BEGIN":
                    if open_version is not None:
                        torn_at = open_version
                        continue
                    open_version = int(row[1])
                    open_epoch = int(row[3]) if len(row) > 3 else 0
                    open_changes = []
                elif tag == "COMMIT":
                    if open_version is None or int(row[1]) != open_version:
                        raise ReproError(
                            f"corrupt change log {self.path}: stray COMMIT {row[1:]}"
                        )
                    if open_version > after_version:
                        yield open_version, ChangeSet(open_changes), open_epoch
                    open_version = None
                else:
                    if open_version is None:
                        raise ReproError(
                            f"corrupt change log {self.path}: change row outside "
                            f"a batch frame: {row}"
                        )
                    open_changes.append(row_to_change(row))
        # a still-open batch at EOF is the torn tail: dropped by design

    def last_version(self) -> int:
        """Highest committed version in the log (0 when empty/missing)."""
        last = 0
        for version, _ in self.replay(0):
            last = version
        return last

    def repair(self) -> bool:
        """Truncate an uncommitted trailing frame; True if bytes were cut.

        Recovery must call this before the log is appended to again:
        replay merely *skips* a torn tail, but appending a new frame after
        one would turn the recoverable crash artefact into mid-log
        corruption on the next recovery.  Truncating at the last
        ``COMMIT`` is tail-only by construction -- an interior torn frame
        (real corruption) sits *before* a later COMMIT, survives the
        truncation, and still raises in :meth:`replay`.
        """
        if not self.path.exists():
            return False
        good = 0
        with open(self.path, "rb") as fh:
            while True:
                line = fh.readline()
                if not line:
                    break
                if line.split(b",", 1)[0].strip() == b"COMMIT":
                    good = fh.tell()
        if good >= self.path.stat().st_size:
            return False
        self.close()  # never truncate under an open append handle
        os.truncate(self.path, good)
        return True


class _UnreadableMeta(Exception):
    """A meta.json whose *bytes* cannot be parsed (empty/torn/foreign).

    The quarantine signal: :meth:`SnapshotStore.versions` warns and skips
    such a snapshot dir instead of bricking recovery.  Distinct from a
    schema mismatch, which is readable-but-wrong and stays a loud
    :class:`ReproError`.
    """


class SnapshotStore:
    """Atomic point-in-time graph snapshots under one directory.

    ``sweep=False`` opens the store read-only with respect to crash
    artefacts: orphaned ``.tmp`` trees are left alone.  A *reader* of
    someone else's live directory (replica bootstrap through
    :class:`~repro.replication.shipper.DirectoryWalShipper`) must pass
    it, because sweeping could delete a save the owning writer has in
    flight; the owning service sweeps on construction and recovery.
    """

    def __init__(self, directory, *, sweep: bool = True):
        self.root = Path(directory)
        self.root.mkdir(parents=True, exist_ok=True)
        if sweep:
            self.sweep_tmp()

    def sweep_tmp(self) -> list[str]:
        """Remove orphaned ``snapshot-*.tmp`` trees; returns their names.

        A save that crashed at version V (e.g. at ``snapshot-write``)
        leaves ``snapshot-...V.tmp`` behind, and :meth:`save` only clears
        the tmp of the *same* version it is retrying -- after recovery the
        service's version moves on and the turd would otherwise leak
        forever.
        """
        victims = sorted(self.root.glob(f"{_SNAP_PREFIX}*.tmp"))
        for path in victims:
            shutil.rmtree(path, ignore_errors=True)
        return [p.name for p in victims]

    def _dirname(self, version: int) -> Path:
        return self.root / f"{_SNAP_PREFIX}{version:010d}"

    def _read_meta(self, path: Path) -> dict:
        """Parse + schema-check one snapshot's ``meta.json``.

        Unparseable bytes or a non-snapshot object raise
        :class:`_UnreadableMeta` (the quarantine signal); readable meta
        with the wrong schema raises :class:`ReproError` loudly -- format
        drift must never be silently skipped.
        """
        try:
            with open(path / _META) as fh:
                meta = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            raise _UnreadableMeta(str(exc)) from None
        if not isinstance(meta, dict) or "version" not in meta:
            raise _UnreadableMeta("not a snapshot meta object")
        if meta.get("schema") != _SCHEMA:
            raise ReproError(
                f"snapshot {path} has schema {meta.get('schema')}, "
                f"expected {_SCHEMA}"
            )
        return meta

    def save(self, graph: SocialGraph, version: int) -> Path:
        """Write a snapshot of ``graph`` at ``version``; atomic via rename.

        The tmp tree is fsynced *before* the rename and the store
        directory after it: the rename is the commit point, and a commit
        point over unsynced data would let power loss publish a torn
        snapshot -- the one artefact bootstrap (recovery, replica
        :meth:`~repro.replication.Replica` seeding) must be able to trust
        unconditionally.

        A graph with durable arenas (mmap/sqlite backends) additionally
        flushes and copies its arena files into ``arenas/`` inside the
        snapshot, recorded in the meta as ``"arenas": <backend>`` --
        :meth:`load` then restores edges by remapping those files instead
        of replaying the CSV rows.
        """
        final = self._dirname(version)
        if final.exists():
            raise ReproError(f"snapshot for version {version} already exists")
        tmp = final.with_suffix(".tmp")
        if tmp.exists():  # leftover of a crashed attempt at this version
            shutil.rmtree(tmp)
        save_graph(tmp, graph)
        arenas = None
        if hasattr(graph, "snapshot_arenas"):
            arenas = graph.snapshot_arenas(tmp / "arenas")
        meta = {"schema": _SCHEMA, "version": version}
        if arenas:
            meta["arenas"] = arenas
        with open(tmp / _META, "w") as fh:
            json.dump(meta, fh)
        _fire_fault(CRASH_SNAPSHOT_WRITE, path=str(tmp), version=version)
        _fsync_tree(tmp)
        os.rename(tmp, final)
        _fsync_path(self.root)
        return final

    def versions(self) -> list[int]:
        """Versions of all complete snapshots, ascending.

        A snapshot dir whose ``meta.json`` is unreadable (empty, torn,
        foreign junk) is quarantined -- warned about and skipped -- so one
        bad artefact cannot brick :meth:`latest`/recovery while a good
        snapshot exists.  A *readable* meta with the wrong schema still
        raises: that is drift, not damage.
        """
        out = []
        for path in self.root.glob(f"{_SNAP_PREFIX}*"):
            if path.suffix == ".tmp" or not (path / _META).exists():
                continue
            try:
                meta = self._read_meta(path)
            except _UnreadableMeta as exc:
                warnings.warn(
                    f"quarantining snapshot {path.name}: unreadable meta.json "
                    f"({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            out.append(int(meta["version"]))
        return sorted(out)

    def latest(self) -> Optional[int]:
        versions = self.versions()
        return versions[-1] if versions else None

    def load(self, version: int, *, storage=None, storage_dir=None) -> SocialGraph:
        """Materialise the snapshot at ``version`` as a fresh graph.

        ``storage``/``storage_dir`` choose the *loaded* graph's backend
        (defaulting through ``REPRO_STORAGE`` like any constructor).
        When the snapshot carries durable arenas for that same backend,
        edges are restored by copying + remapping the arena files
        (entities still come from the CSVs); otherwise the full CSV
        replay runs.  Schema is enforced here exactly as in
        :meth:`versions` -- loading an explicit version fails loudly on
        any damage, it never quarantines.
        """
        path = self._dirname(version)
        if not (path / _META).exists():
            raise ReproError(f"no snapshot for version {version} in {self.root}")
        try:
            meta = self._read_meta(path)
        except _UnreadableMeta as exc:
            raise ReproError(
                f"snapshot {path} has unreadable meta.json: {exc}"
            ) from None
        kind, backend = resolve_storage(storage)
        adopt = (
            kind == "dynamic"
            and backend != "heap"
            and meta.get("arenas") == backend
        )
        graph = load_graph(
            path, storage=storage, storage_dir=storage_dir, edges=not adopt
        )
        if adopt:
            graph.adopt_arenas(path / "arenas")
        return graph

    def prune(self, keep: int = 2) -> list[int]:
        """Drop all but the newest ``keep`` snapshots; returns dropped versions."""
        victims = self.versions()[:-keep] if keep > 0 else self.versions()
        for version in victims:
            shutil.rmtree(self._dirname(version), ignore_errors=True)
        return victims
