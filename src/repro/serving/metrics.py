"""Per-operation latency accounting for the serving layer.

The serving story the paper motivates (continuous updates, continuous
reads) is only credible with a latency budget attached, so every
:class:`~repro.serving.service.GraphService` operation -- ``submit``,
``apply`` (a flushed micro-batch), ``query``, ``snapshot``, ``recover`` --
records its wall time here.  :class:`LatencyStats` keeps exact count/total
plus a bounded sample reservoir for percentiles; the reservoir decimates
*deterministically* (it halves itself by keeping every other sample and
doubles the keep-stride) so repeated benchmark runs report identical
numbers -- no RNG in the measurement path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.util.timer import WallClock

__all__ = ["LatencyStats", "OpMetrics"]


@dataclass
class LatencyStats:
    """Streaming latency summary for one operation kind."""

    #: reservoir capacity; beyond it samples are kept at a widening stride
    max_samples: int = 8192

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0
    _samples: list[float] = field(default_factory=list, repr=False)
    _stride: int = field(default=1, repr=False)
    _since_kept: int = field(default=0, repr=False)

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self._since_kept += 1
        if self._since_kept >= self._stride:
            self._since_kept = 0
            self._samples.append(seconds)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (0-100) over the retained samples."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> dict:
        """The stats() wire format: milliseconds, ready to print."""
        return {
            "count": self.count,
            "total_s": round(self.total, 6),
            "mean_ms": round(self.mean * 1e3, 4),
            "min_ms": round((self.min if self.count else 0.0) * 1e3, 4),
            "max_ms": round(self.max * 1e3, 4),
            "p50_ms": round(self.percentile(50) * 1e3, 4),
            "p99_ms": round(self.percentile(99) * 1e3, 4),
        }


class OpMetrics:
    """A named registry of :class:`LatencyStats` with a timing helper.

    Thread-safe: the serving layer records from the submit path, the
    background flusher, and (with concurrent engine fan-out) refresh worker
    threads; a single lock covers registry access and the non-atomic
    reservoir update inside :meth:`LatencyStats.record`.

    >>> m = OpMetrics()
    >>> with m.timed("query"):
    ...     pass
    >>> m["query"].count
    1
    """

    def __init__(self) -> None:
        self._stats: dict[str, LatencyStats] = {}
        self._lock = threading.Lock()

    def __getitem__(self, op: str) -> LatencyStats:
        with self._lock:
            if op not in self._stats:
                self._stats[op] = LatencyStats()
            return self._stats[op]

    def record(self, op: str, seconds: float) -> None:
        # one lock round-trip per sample: get-or-create and the non-atomic
        # reservoir update happen under the same acquisition (going through
        # __getitem__ here would lock twice on the hot submit path)
        with self._lock:
            stats = self._stats.get(op)
            if stats is None:
                stats = self._stats[op] = LatencyStats()
            stats.record(seconds)

    def timed(self, op: str) -> "_Timed":
        return _Timed(self, op)

    def summary(self) -> dict[str, dict]:
        with self._lock:
            return {op: s.summary() for op, s in sorted(self._stats.items())}


class _Timed:
    """Context manager recording one interval into an :class:`OpMetrics`."""

    def __init__(self, metrics: OpMetrics, op: str):
        self._metrics = metrics
        self._op = op
        self._t0 = 0.0

    def __enter__(self) -> "_Timed":
        self._t0 = WallClock.now()
        return self

    def __exit__(self, *exc) -> None:
        self._metrics.record(self._op, WallClock.now() - self._t0)
