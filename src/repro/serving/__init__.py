"""repro.serving -- the streaming query-serving subsystem.

Turns the paper's engines into a long-running service: one shared
:class:`~repro.model.graph.SocialGraph`, a registry of query *and
analytics* engines (:mod:`repro.analytics`), micro-batched ingest,
versioned O(1) cached reads with staleness tags, per-operation latency
accounting, and snapshot + write-ahead-change-log persistence with crash
recovery.  See :mod:`repro.serving.service` for the consistency and
durability model and ``DESIGN.md`` for where this layer sits.
"""

from repro.serving.cache import CachedResult, ResultCache
from repro.serving.ingest import MicroBatcher
from repro.serving.metrics import LatencyStats, OpMetrics
from repro.serving.persistence import ChangeLog, SnapshotStore
from repro.serving.service import GraphService

__all__ = [
    "GraphService",
    "CachedResult",
    "ResultCache",
    "MicroBatcher",
    "LatencyStats",
    "OpMetrics",
    "ChangeLog",
    "SnapshotStore",
]
