"""Versioned top-k result cache: reads are O(1) between updates.

Every applied micro-batch bumps the service's version; each registered
engine's fresh top-k is stored here as an immutable :class:`CachedResult`
stamped with that version.  A read never touches the graph or an engine --
it returns the cached object for the requested (query, tool) pair, so read
latency is independent of graph size and update rate, exactly the
read-heavy/write-batched split of the serving exemplars (Sabine's ADR-001).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.validation import ReproError

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """One query's top-k at one service version, under one tool.

    >>> r = CachedResult("Q1", "graphblas-incremental", 7,
    ...                  top=((11, 37), (12, 10)), result_string="11|12",
    ...                  compute_seconds=0.001, computed_version=5)
    >>> r.ids
    (11, 12)
    >>> r.staleness        # served at v7, last actually computed at v5
    2
    """

    query: str
    tool: str
    #: service version (number of applied batches) this result reflects
    version: int
    #: (external_id, score) pairs in contest order
    top: tuple
    #: the TTC framework's ``id|id|id`` result format
    result_string: str
    #: seconds the engine spent producing this result
    compute_seconds: float
    #: service version at which the result was last actually *computed*.
    #: Query engines are exact every batch, so it equals ``version``;
    #: dirty-threshold analytics engines may lag it (the staleness tag).
    #: ``None`` on records written before this field existed.
    computed_version: Optional[int] = None
    #: which node served this result (``"leader"``, ``"node-01"``, ...)
    #: when read through a :class:`~repro.replication.ReplicatedGraphService`;
    #: ``None`` on results served directly by a :class:`GraphService`.
    source: Optional[str] = None

    @property
    def ids(self) -> tuple:
        return tuple(ext for ext, _ in self.top)

    @property
    def staleness(self) -> int:
        """Batches between serving version and last compute (0 = exact)."""
        if self.computed_version is None:
            return 0
        return self.version - self.computed_version

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        stale = f" (stale {self.staleness})" if self.staleness else ""
        return f"{self.query}@v{self.version}[{self.tool}]{stale}: {self.result_string}"


class ResultCache:
    """(query, tool) -> latest :class:`CachedResult`.

    One entry per registered engine -- the four Fig. 5 (query, tool)
    pairs plus one per analytics tool (keyed ``(name, name)``).

    Bookkeeping: every :meth:`get` counts as a hit or (raising) miss, and
    every :meth:`put` replacing an entry stamped with a *different* service
    version counts as an eviction -- the old result became unservable the
    moment the batch committed, so after one applied batch the eviction
    count equals the number of refreshed engines.  :meth:`stats` reports
    the totals plus a hit rate; the service merges it into
    ``stats()["ops"]["cache"]``.

    >>> cache = ResultCache()
    >>> cache.put(CachedResult("Q2", "nmf-batch", 1, ((21, 4),), "21", 0.0))
    >>> cache.get("Q2", "nmf-batch").result_string
    '21'
    >>> cache.has("Q2", "graphblas-batch")
    False
    >>> cache.version()
    1
    >>> cache.stats()
    {'hits': 1, 'misses': 0, 'evictions': 0, 'entries': 1, 'hit_rate': 1.0}
    """

    def __init__(self) -> None:
        self._results: dict[tuple[str, str], CachedResult] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def put(self, result: CachedResult) -> None:
        key = (result.query, result.tool)
        old = self._results.get(key)
        if old is not None and old.version != result.version:
            self.evictions += 1
        self._results[key] = result

    def get(self, query: str, tool: str) -> CachedResult:
        try:
            out = self._results[(query, tool)]
        except KeyError:
            self.misses += 1
            raise ReproError(
                f"no cached result for query {query!r} under tool {tool!r}; "
                f"known: {sorted(self._results)}"
            ) from None
        self.hits += 1
        return out

    def has(self, query: str, tool: str) -> bool:
        return (query, tool) in self._results

    def tools(self, query: str) -> list[str]:
        return sorted(t for q, t in self._results if q == query)

    def version(self) -> Optional[int]:
        """The common version of all cached results (None when empty).

        The service refreshes every engine under one lock per applied
        batch, so a mixed-version cache indicates a bug; surfacing it here
        keeps the invariant checkable in tests.
        """
        versions = {r.version for r in self._results.values()}
        if not versions:
            return None
        if len(versions) > 1:
            raise ReproError(f"result cache is version-skewed: {sorted(versions)}")
        return versions.pop()

    def stats(self) -> dict:
        """Hit/miss/eviction totals and the realised hit rate."""
        looked = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._results),
            "hit_rate": round(self.hits / looked, 4) if looked else 0.0,
        }
