"""GraphService: one shared graph, many engines, streamed updates, O(1) reads.

This is the component the ROADMAP's "serve heavy traffic" north star asks
for and the offline benchmark harness is not: a long-running owner of one
:class:`~repro.model.graph.SocialGraph` plus a registry of query engines
(all four Fig. 5 tool variants by default) that

* ingests single :class:`~repro.model.changes.Change`\\ s or whole
  :class:`~repro.model.changes.ChangeSet`\\ s through a micro-batching
  queue (coalesce ``max_batch`` changes or ``max_delay_ms``, whichever
  first -- see :mod:`repro.serving.ingest`);
* applies each coalesced batch to the graph **exactly once** and fans the
  resulting :class:`~repro.model.graph.GraphDelta` out to every engine
  (the GraphBLAS query and analytics engines consume the delta via
  ``refresh`` -- the :class:`~repro.queries.engine.EngineBase` protocol --
  the NMF engines mirror the raw change set into their object model);
* optionally serves the :mod:`repro.lagraph` algorithm layer the same way:
  ``analytics=("components", "pagerank", ...)`` registers
  :class:`~repro.analytics.AnalyticsEngine`\\ s that maintain their
  results incrementally or under a dirty-threshold recompute policy;
* caches every engine's top-k per applied version, so
  :meth:`query` never touches the graph and costs O(1) regardless of
  graph size or update rate;
* optionally persists: an append-only write-ahead change log written
  *before* each batch is applied, plus periodic point-in-time snapshots,
  so :meth:`recover` rebuilds an equivalent service after a crash
  (see :mod:`repro.serving.persistence` for the convergence argument);
* accounts per-operation latency (:mod:`repro.serving.metrics`), the
  numbers ``benchmarks/bench_serving.py`` reports.

Consistency model: reads serve the last *applied* version; changes
pending in the micro-batcher are invisible until a flush, which is
bounded by ``max_delay_ms`` (enforced at the next submit or read, or by
the optional background flusher thread).  Durability boundary: an applied
batch is durable (its WAL frame is fsynced before apply); pending
changes are not.  Changes are validated at submit time against the graph
plus earlier pending changes, so a malformed change is rejected at the
edge instead of poisoning the log or a half-applied batch.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.analytics.engine import ANALYTICS_NAMES, make_analytics_engine
from repro.faults import fire as _fire_fault
from repro.faults import register_crash_point
from repro.graphblas._kernels import parallel as _kparallel
from repro.model.changes import Change, ChangeSet
from repro.model.graph import SocialGraph
from repro.obs.kernels import get_kernel_profiler
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.trace import current_span, get_tracer, span_if, trace_output_path
from repro.parallel.executor import Executor
from repro.queries.engine import TOOL_NAMES, make_engine
from repro.serving.cache import CachedResult, ResultCache
from repro.serving.ingest import MicroBatcher, SubmitGate, coerce_changes
from repro.serving.metrics import OpMetrics
from repro.serving.persistence import ChangeLog, SnapshotStore, dir_bytes
from repro.util.timer import WallClock
from repro.util.validation import DeadlineExceeded, ReproError

__all__ = ["GraphService"]

_QUERIES = ("Q1", "Q2")

#: the window the fail-stop docstring below describes: the WAL frame is
#: durable but the in-memory graph has not mutated yet -- a crash here is
#: the canonical "committed write the crashed process never served"
CRASH_POST_APPEND = register_crash_point(
    "post-append-pre-apply",
    "GraphService._apply, after the WAL frame is fsynced but before the "
    "graph mutates",
)


class GraphService:
    """Streaming query-serving facade over the paper's engines.

    Beyond the Fig. 5 query tools, the service registers **analytics
    tools** (``analytics=`` ctor arg, names from
    :data:`repro.analytics.ANALYTICS_NAMES`): long-running
    :class:`~repro.analytics.AnalyticsEngine`\\ s maintaining a
    :mod:`repro.lagraph` algorithm over the friends graph.  They ride the
    same fan-out, cache, metrics and recovery machinery; dirty-threshold
    tools may serve a slightly stale result, tagged on every read as
    :attr:`~repro.serving.cache.CachedResult.computed_version`.

    >>> from repro.model.changes import AddFriendship, AddUser
    >>> svc = GraphService(tools=("graphblas-incremental",),
    ...                    analytics=("components", "degree"), max_batch=1)
    >>> svc.submit([AddUser(1), AddUser(2), AddUser(3)])
    1
    >>> svc.submit(AddFriendship(1, 2))
    2
    >>> svc.query("components").top      # {1,2} then the {3} singleton
    ((1, 2), (3, 1))
    >>> svc.query("degree").result_string
    '1|2|3'
    >>> svc.query("Q1").version          # Fig. 5 tools are still served
    2
    >>> svc.close()
    """

    #: fan engine refreshes out to threads only when their last measured
    #: combined refresh time clears this (else thread dispatch overhead
    #: dominates -- the sub-millisecond single-change micro-batch regime)
    MIN_FANOUT_REFRESH_S = 5e-3

    def __init__(
        self,
        graph: Optional[SocialGraph] = None,
        *,
        storage: Optional[str] = None,
        queries: tuple = _QUERIES,
        tools: tuple = TOOL_NAMES,
        analytics: tuple = (),
        analytics_threshold: float = 0.1,
        k: int = 3,
        q2_algorithm: str = "fastsv",
        executor: Optional[Executor] = None,
        max_batch: int = 256,
        max_delay_ms: float = 50.0,
        max_pending: Optional[int] = None,
        data_dir=None,
        snapshot_every: int = 0,
        keep_snapshots: int = 2,
        wal_sync: bool = True,
        auto_flush: bool = False,
        concurrent_refresh: bool = True,
        shard: Optional[tuple[int, int]] = None,
        _start_version: int = 0,
        _allow_existing: bool = False,
    ):
        for q in queries:
            if q not in _QUERIES:
                raise ReproError(f"unknown query {q!r}")
        for t in tools:
            if t not in TOOL_NAMES:
                raise ReproError(f"unknown tool {t!r}; expected one of {TOOL_NAMES}")
        for a in analytics:
            if a not in ANALYTICS_NAMES:
                raise ReproError(
                    f"unknown analytics tool {a!r}; expected one of {ANALYTICS_NAMES}"
                )
        if bool(queries) != bool(tools):
            raise ReproError(
                "queries and tools are configured together: pass both "
                "non-empty (query engines) or both empty (analytics-only)"
            )
        if not analytics and not tools:
            raise ReproError("need at least one query and one tool, or analytics")

        if graph is None:
            # file-backed arena storage lives inside the service's data
            # dir (so snapshots and arenas share a filesystem); without a
            # data_dir the graph owns a reclaimed-at-GC temp dir
            graph = SocialGraph(
                storage,
                storage_dir=(
                    Path(data_dir) / "arenas" if data_dir is not None else None
                ),
            )
        elif storage is not None:
            raise ReproError(
                "pass storage= only when the service builds its own graph; "
                "a pre-built graph already fixed its backend"
            )
        self.graph = graph
        self.queries = tuple(queries)
        self.tools = tuple(tools)
        self.analytics = tuple(analytics)
        #: the tool whose cached result :meth:`query` serves by default
        self.primary_tool = self.tools[0] if self.tools else None
        self.version = _start_version
        self.snapshot_every = snapshot_every
        self.keep_snapshots = keep_snapshots

        #: (shard_index, shard_count) when this service is one shard of a
        #: :class:`repro.sharding.ShardedGraphService`; forwarded to the
        #: analytics engines so their mergeable partials report only the
        #: users this shard owns
        self.shard = shard

        self._lock = threading.RLock()
        self._batcher = MicroBatcher(
            max_changes=max_batch, max_delay_ms=max_delay_ms,
            max_pending=max_pending,
        )
        self._cache = ResultCache()
        self._metrics = OpMetrics()
        #: typed counters/gauges/histograms (repro.obs); merged into
        #: stats()["metrics"] and served by metrics_text()
        self.registry = MetricsRegistry()
        self._closed = False
        self._failed = False
        self._gate = SubmitGate(self._known_applied)
        self._recovered_from: Optional[tuple[int, int]] = None

        self._store: Optional[SnapshotStore] = None
        self._wal: Optional[ChangeLog] = None
        if data_dir is not None:
            self._store = SnapshotStore(data_dir)
            self._wal = ChangeLog(data_dir, sync=wal_sync)
            if not _allow_existing and (
                self._store.versions() or self._wal.path.exists()
            ):
                raise ReproError(
                    f"{data_dir} already holds service state; use "
                    "GraphService.recover(data_dir) to resume it"
                )

        self._engines: dict[tuple[str, str], object] = {}
        for tool in self.tools:
            for query in self.queries:
                self._engines[(query, tool)] = make_engine(
                    tool, query, k=k, executor=executor, q2_algorithm=q2_algorithm
                )
        # analytics engines are registered under (name, name): the tool IS
        # the query, so query("pagerank") reads its cache entry directly
        for name in self.analytics:
            self._engines[(name, name)] = make_analytics_engine(
                name, k=k, recompute_threshold=analytics_threshold, partition=shard
            )

        # Parallel machinery.  The kernel executor (REPRO_WORKERS) forks its
        # workers *now*, before engines load and the heap grows -- the same
        # place OpenMP pays its thread-spawn cost.  The service holds one
        # shared reference so teardown can stop the workers once the last
        # holder closes, without closing a caller-installed executor.  The
        # fan-out pool refreshes independent engines concurrently per batch.
        self._kex_retained = False
        kex = _kparallel.retain_kernel_executor()
        if kex is not None:
            self._kex_retained = True
            try:
                if hasattr(kex, "start"):
                    kex.start()
            except BaseException:
                # a failed fork must not wedge the refcount above zero
                self._teardown_parallel()
                raise
        self._fanout: Optional[ThreadPoolExecutor] = None
        if concurrent_refresh and len(self._engines) > 1:
            self._fanout = ThreadPoolExecutor(
                max_workers=len(self._engines), thread_name_prefix="engine-refresh"
            )
        #: last measured per-engine refresh seconds (seeded by the initial
        #: evaluations) -- the fan-out amortisation estimate
        self._last_refresh_s: dict[tuple[str, str], float] = {}

        try:
            self._load_engines()

            # a fresh persistent service writes its baseline snapshot so a
            # crash before the first periodic snapshot is still recoverable
            if self._store is not None and not self._store.versions():
                self.snapshot()
        except BaseException:
            # failed construction must not strand the retained kernel
            # executor (refcount wedged above zero => orphaned workers)
            self._teardown_parallel()
            raise

        self._flusher: Optional[_Flusher] = None
        if auto_flush:
            self._flusher = _Flusher(self, max(max_delay_ms, 1.0) / 2e3)
            self._flusher.start()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _load_engines(self) -> None:
        for (query, tool), engine in self._engines.items():
            with self._metrics.timed(f"load[{tool}]"):
                engine.load(self.graph)
                t0 = WallClock.now()
                result_string = engine.initial()
                dt = WallClock.now() - t0
            self._last_refresh_s[(query, tool)] = dt
            self._cache.put(
                CachedResult(
                    query=query,
                    tool=tool,
                    version=self.version,
                    top=tuple(engine.last_top),
                    result_string=result_string,
                    compute_seconds=dt,
                    computed_version=self.version,
                )
            )

    @classmethod
    def recover(cls, data_dir, **kwargs) -> "GraphService":
        """Rebuild a service from its data directory after a crash.

        Loads the newest snapshot, replays the committed tail of the
        change log onto it, and re-runs every engine's initial evaluation
        on the recovered graph -- converging to the same top-k as a
        service that never crashed (property-tested in
        ``tests/serving/test_recovery_property.py``).  Keyword arguments
        are the same as the constructor's and must name the same engine
        configuration the original service ran with (the data directory
        persists *state*, not configuration).
        """
        storage = kwargs.pop("storage", None)
        with span_if(get_tracer(), "recover") as sp:
            store = SnapshotStore(data_dir)
            snap_version = store.latest()
            if snap_version is None:
                raise ReproError(f"no snapshot to recover from in {data_dir}")
            graph = store.load(
                snap_version,
                storage=storage,
                storage_dir=Path(data_dir) / "arenas",
            )
            wal = ChangeLog(data_dir, sync=kwargs.get("wal_sync", True))
            # drop a torn trailing frame now: the recovered service appends to
            # this log, and writing after an unclosed frame would corrupt it
            wal.repair()
            version = snap_version
            replayed = 0
            for v, batch in wal.replay(after_version=snap_version):
                if v != version + 1:
                    raise ReproError(
                        f"change log gap: snapshot v{snap_version}, then batch "
                        f"v{v} after v{version}"
                    )
                graph.apply(batch)
                version = v
                replayed += 1
            sp.set(snapshot_version=snap_version, replayed=replayed)
            service = cls(
                graph,
                data_dir=data_dir,
                _start_version=version,
                _allow_existing=True,
                **kwargs,
            )
        service._recovered_from = (snap_version, replayed)
        return service

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def submit(
        self, changes: Union[Change, ChangeSet, Iterable[Change]]
    ) -> int:
        """Enqueue change(s); returns the current applied version.

        The batch is applied synchronously inside this call when it trips
        a coalescing threshold; otherwise it stays pending until a later
        submit, an expired read, :meth:`flush`, or the background flusher.
        On a bounded service (``max_pending``), an overflowing submission
        raises :class:`~repro.serving.ingest.QueueFull` *before*
        validation tracks anything -- backpressure, not buffering.
        """
        with self._lock:
            self._check_open()
            with span_if(get_tracer(), "submit") as sp:
                with self._metrics.timed("submit"):
                    items = coerce_changes(changes)
                    self._batcher.reserve(len(items))
                    # all-or-nothing validation + pending-id tracking (the
                    # Fig. 3b insert-then-like pattern) lives in SubmitGate
                    self._gate.admit(items)
                    batch = self._batcher.offer(items)
                sp.set(changes=len(items), flushed=batch is not None)
                if batch is not None:
                    self._apply(batch)
            self.registry.gauge("repro_ingest_queue_depth").set(self._batcher.pending)
            return self.version

    def apply_batch(self, changes: Union[Change, ChangeSet, Iterable[Change]]) -> int:
        """Validate and apply one pre-coalesced batch synchronously.

        The sharded router's scatter target: it batches at the router, so
        each shard must apply exactly the sub-batch it is handed -- even
        an *empty* one, which still advances the version and writes a WAL
        frame, keeping every shard's version aligned with the router's
        (the consistency barrier reads rely on).  Anything pending in
        this service's own micro-batcher is applied first, so the two
        write paths cannot interleave within a version.  Returns the new
        applied version.
        """
        with self._lock:
            self._check_open()
            with self._metrics.timed("submit"):
                items = coerce_changes(changes)
                self._gate.admit(items)
            pending = self._batcher.drain()
            if pending is not None:
                self._apply(pending)
            self._apply(ChangeSet(items))
            self._batcher.submitted += len(items)
            self._batcher.batches += 1
            self.registry.gauge("repro_ingest_queue_depth").set(self._batcher.pending)
            return self.version

    def flush(self) -> int:
        """Apply everything pending now; returns the new applied version."""
        with self._lock:
            self._check_open()
            batch = self._batcher.drain()
            if batch is not None:
                with span_if(get_tracer(), "flush"):
                    self._apply(batch)
            self.registry.gauge("repro_ingest_queue_depth").set(self._batcher.pending)
            return self.version

    def _apply(self, batch: ChangeSet) -> None:
        """WAL-log, apply, and re-evaluate one coalesced batch.

        Fail-stop: if the graph or an engine raises mid-apply, the
        in-memory state (graph partially mutated, cache possibly
        version-skewed) is unrecoverable, so the service marks itself
        failed and every later operation raises -- in particular no later
        batch can reuse this batch's WAL version number.  The durable
        state stays sound: the frame is already committed, and
        :meth:`recover` replays it in full.  The failure path also tears
        down the parallel machinery so a crashed apply never strands
        forked kernel workers.
        """
        next_version = self.version + 1
        tr = get_tracer()
        try:
            with span_if(tr, "batch", version=next_version, changes=len(batch)):
                self.registry.histogram("repro_batch_size").observe(len(batch))
                if self._wal is not None:
                    with self._metrics.timed("wal"):
                        with span_if(tr, "wal") as wsp:
                            nbytes = self._wal.append(next_version, batch)
                            wsp.set(nbytes=nbytes)
                    self.registry.counter("repro_wal_bytes_total").inc(nbytes)
                    _fire_fault(
                        CRASH_POST_APPEND,
                        path=str(self._wal.path),
                        version=next_version,
                    )
                with self._metrics.timed("apply"):
                    with span_if(tr, "apply"):
                        delta = self.graph.apply(batch)
                    self._refresh_engines(batch, delta, next_version)
        except BaseException:
            self._failed = True
            self._teardown_parallel()
            raise
        self.version = next_version
        self._gate.clear()
        if (
            self._store is not None
            and self.snapshot_every
            and self.version % self.snapshot_every == 0
        ):
            self.snapshot()

    # ------------------------------------------------------------------
    # engine fan-out
    # ------------------------------------------------------------------

    def _refresh_engines(self, batch: ChangeSet, delta, next_version: int) -> None:
        """Fan one applied delta out to every engine; commit deterministically.

        With the fan-out pool, engines refresh concurrently -- keyed
        futures, one per group of engines that can safely run in parallel
        (engines sharing a user-provided parallel executor are grouped
        serially; the pipe-per-worker pools are single-region).  Outcomes
        are *committed* (metrics + cache) in the fixed engine registration
        order regardless of completion order, so the versioned cache and
        the per-engine ``refresh[tool]`` metrics stay reproducible.  The
        first engine failure, also in that order, re-raises into the
        fail-stop path.

        Adaptive: like the kernel-layer cutoff, the fan-out only engages
        when the engines' last measured combined refresh time clears
        :data:`MIN_FANOUT_REFRESH_S` -- sub-millisecond micro-batch
        refreshes would otherwise pay more in thread dispatch than they
        can win back in overlap.
        """
        engines = list(self._engines.items())
        tr = get_tracer()
        # the enclosing "batch" span; refresh spans are recorded post-hoc
        # below with this explicit parent (worker threads must not rely on
        # the contextvar -- it does not propagate into the fan-out pool)
        parent = current_span()
        est = sum(self._last_refresh_s.get(key, 0.0) for key, _ in engines)
        if (
            self._fanout is None
            or len(engines) == 1
            or est < self.MIN_FANOUT_REFRESH_S
        ):
            outcomes = self._refresh_group(engines, batch, delta)
        else:
            # Freeze the shared graph once in this thread: the relation
            # arenas mutate on first read after an apply, and concurrent
            # first reads from engine threads would race on the freeze.
            _ = (
                self.graph.root_post,
                self.graph.likes,
                self.graph.friends,
                self.graph.commented,
            )
            groups: dict[int, list] = {}
            for key, engine in engines:
                ex = getattr(engine, "executor", None)
                gid = id(ex) if ex is not None else id(engine)
                groups.setdefault(gid, []).append((key, engine))
            futures = [
                self._fanout.submit(self._refresh_group, members, batch, delta)
                for members in groups.values()
            ]
            outcomes = {}
            for fut in futures:
                outcomes.update(fut.result())
        with span_if(tr, "commit", parent=parent, version=next_version):
            for (query, tool), engine in engines:
                outcome = outcomes.get((query, tool))
                if outcome is None:  # skipped after an earlier failure in its group
                    continue
                status, payload, top, dt, t0 = outcome
                if tr is not None:
                    # recorded here, in registration order, not on the worker
                    # thread that measured it: the span log stays reproducible
                    # regardless of fan-out scheduling
                    tr.record("refresh", t0, dt, parent=parent,
                              query=query, tool=tool, status=status)
                if status == "err":
                    raise payload
                self._last_refresh_s[(query, tool)] = dt
                self._metrics.record(f"refresh[{tool}]", dt)
                staleness = getattr(engine, "staleness", 0)
                self.registry.gauge(
                    "repro_engine_staleness", engine=tool
                ).set(staleness)
                self._cache.put(
                    CachedResult(
                        query=query,
                        tool=tool,
                        version=next_version,
                        top=tuple(top),
                        result_string=payload,
                        compute_seconds=dt,
                        # dirty-threshold analytics engines may serve a result
                        # computed `staleness` batches ago; query engines are
                        # exact every batch (staleness 0)
                        computed_version=next_version - staleness,
                    )
                )

    @staticmethod
    def _refresh_group(members, batch: ChangeSet, delta) -> dict:
        """Refresh a group of engines sequentially (worker-thread body).

        Exceptions are captured per engine, not raised: the caller decides
        the deterministic failure order after all groups complete.
        """
        outcomes: dict = {}
        for key, engine in members:
            t0 = WallClock.now()
            try:
                if hasattr(engine, "refresh"):
                    result_string = engine.refresh(delta)
                else:
                    # NMF engines mirror the change set into their own
                    # object model; the shared graph is already updated
                    result_string = engine.update(batch)
            except BaseException as exc:
                outcomes[key] = ("err", exc, (), WallClock.now() - t0, t0)
                break
            outcomes[key] = (
                "ok",
                result_string,
                list(engine.last_top),
                WallClock.now() - t0,
                t0,
            )
        return outcomes

    # ------------------------------------------------------------------
    # submit-time validation (keeps the WAL free of unappliable batches)
    # ------------------------------------------------------------------

    def _known_applied(self, kind: str, external_id: int) -> bool:
        """The :class:`~repro.serving.ingest.SubmitGate` membership hook."""
        idmap = {"user": self.graph.users, "post": self.graph.posts, "comment": self.graph.comments}[kind]
        return external_id in idmap

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def query(
        self,
        query: str,
        tool: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> CachedResult:
        """The cached top-k for ``query`` at the current applied version.

        ``query`` is ``"Q1"``/``"Q2"`` (``tool`` defaults to
        :attr:`primary_tool`) or an analytics tool name, which is its own
        cache key -- ``query("components")`` just works.  O(1) either
        way: a dict lookup plus one expired-deadline check (an overdue
        pending batch is applied first, so staleness stays bounded by
        ``max_delay_ms`` even on a submit-quiet service).

        ``deadline`` is an absolute :class:`~repro.util.timer.WallClock`
        instant: a read whose deadline has already passed raises
        :class:`~repro.util.validation.DeadlineExceeded` *before* doing
        any work (in particular before an overdue pending batch would be
        applied on its behalf) -- the gateway counts these as shed load.
        """
        with self._lock:
            self._check_open()
            if deadline is not None and WallClock.now() >= deadline:
                raise DeadlineExceeded(
                    f"read of {query!r} abandoned: deadline passed before serve"
                )
            if self._batcher.due():
                self._apply(self._batcher.drain())
            with self._metrics.timed("query"):
                if tool is None:
                    tool = query if query in self.analytics else self.primary_tool
                with span_if(get_tracer(), "query", query=query, tool=tool):
                    return self._cache.get(query, tool)

    def engine(self, query: str, tool: Optional[str] = None):
        """The registered engine behind a (query, tool) pair.

        Read-only accessor (the sharded router uses it to reach the
        engine's ``merge_partials`` hook); mutating a served engine from
        outside the service is undefined behaviour.
        """
        with self._lock:
            if tool is None:
                tool = query if query in self.analytics else self.primary_tool
            engine = self._engines.get((query, tool))
            if engine is None:
                raise ReproError(
                    f"no engine for query {query!r} under tool {tool!r}; "
                    f"known: {sorted(self._engines)}"
                )
            return engine

    def engine_partial(self, query: str, tool: Optional[str] = None):
        """The mergeable partial of one engine's *served* result.

        The sharded router's gather hook (see :mod:`repro.sharding`):
        returns whatever the engine's ``partial()`` reports at the current
        applied version, under the same lock the write path holds, so a
        scatter-gather read composed of per-shard partials observes each
        shard at a consistent version.
        """
        with self._lock:
            self._check_open()
            return self.engine(query, tool).partial()

    def result_and_partial(self, query: str, tool: Optional[str] = None):
        """One-sweep gather: ``(cached result, mergeable partial)``.

        What the sharded router reads per shard -- both halves under a
        single acquisition of this shard's lock, so they are guaranteed to
        describe the same applied version.
        """
        with self._lock:
            self._check_open()
            if tool is None:
                tool = query if query in self.analytics else self.primary_tool
            return self._cache.get(query, tool), self.engine(query, tool).partial()

    def stats(self) -> dict:
        """Operational snapshot: version, queue, graph, per-op latencies,
        typed metrics (``"metrics"``), cache counters (``"ops"]["cache"``)
        and -- when ``REPRO_PROFILE_KERNELS`` is on -- per-kernel
        profiling aggregates (``"kernels"``)."""
        with self._lock:
            self._update_storage_gauge()
            ops = self._metrics.summary()
            ops["cache"] = self._cache.stats()
            prof = get_kernel_profiler()
            return {
                "version": self.version,
                "pending": self._batcher.pending,
                "submitted": self._batcher.submitted,
                "applied_batches": self._batcher.batches,
                "queries": list(self.queries),
                "tools": list(self.tools),
                "analytics": list(self.analytics),
                "primary_tool": self.primary_tool,
                "graph": self.graph.stats(),
                "storage": self.graph.storage_stats(),
                "ops": ops,
                "metrics": self.registry.snapshot(),
                "kernels": prof.summary() if prof is not None else {},
                "persistent": self._store is not None,
                "snapshots": self._store.versions() if self._store else [],
                "recovered_from": self._recovered_from,
            }

    def metrics_text(self, labels: Optional[dict] = None) -> str:
        """Prometheus text exposition of this service's telemetry: the
        typed registry, the cache counters, and every per-op latency
        reservoir as ``repro_op_latency_seconds`` summaries.  ``labels``
        are stamped onto every series (the sharded router passes its
        ``shard="i"`` tag)."""
        with self._lock:
            self._update_storage_gauge()
            cache = self._cache.stats()
            return render_prometheus(
                self.registry,
                ops=self._metrics,
                extras={
                    "repro_cache_hits": cache["hits"],
                    "repro_cache_misses": cache["misses"],
                    "repro_cache_evictions": cache["evictions"],
                },
                labels=labels,
            )

    def _update_storage_gauge(self) -> None:
        """Refresh ``repro_storage_bytes`` (labelled by arena backend)."""
        backend = self.graph.backend or self.graph.storage
        self.registry.gauge("repro_storage_bytes", backend=backend).set(
            self.graph.storage_bytes()
        )

    # ------------------------------------------------------------------
    # persistence / lifecycle
    # ------------------------------------------------------------------

    def snapshot(self) -> int:
        """Write a point-in-time snapshot at the current applied version.

        Pending (unapplied) changes are not part of a snapshot -- the
        durability boundary is the applied batch.  Returns the snapshot
        version.  Older snapshots beyond ``keep_snapshots`` are pruned;
        the change log is never truncated (replay always starts from the
        newest snapshot, so the tail before it is merely dead weight).
        """
        with self._lock:
            if self._store is None:
                raise ReproError("service has no data_dir; snapshots are disabled")
            with self._metrics.timed("snapshot"):
                with span_if(get_tracer(), "snapshot", version=self.version):
                    if self.version not in self._store.versions():
                        path = self._store.save(self.graph, self.version)
                        self.registry.gauge("repro_snapshot_bytes").set(
                            dir_bytes(path)
                        )
                    self._store.prune(self.keep_snapshots)
            return self.version

    def close(self) -> None:
        """Graceful shutdown: flush pending, stop the flusher, close files."""
        with self._lock:
            if self._closed:
                return
            if self._batcher.pending and not self._failed:
                self._apply(self._batcher.drain())
            self._closed = True
        if self._flusher is not None:
            self._flusher.stop()
            self._flusher = None
        if self._wal is not None:
            self._wal.close()
        for engine in self._engines.values():
            engine.close()
        self._teardown_parallel()
        # REPRO_TRACE=<path>: the accumulated Chrome trace lands on disk at
        # shutdown (idempotent across services sharing the process tracer)
        out = trace_output_path()
        if out:
            tr = get_tracer()
            if tr is not None:
                tr.dump(out)

    def _teardown_parallel(self) -> None:
        """Stop the fan-out threads and release the forked kernel workers.

        Idempotent; called from :meth:`close` and from the fail-stop path
        so neither a graceful shutdown nor a crashed apply leaves orphaned
        child processes.  The kernel executor is process-wide and
        reference-counted: this drops the service's reference, and the
        workers are closed when the last holder lets go (an explicitly
        installed executor stays caller-owned and is never closed here).
        """
        if self._fanout is not None:
            self._fanout.shutdown(wait=True, cancel_futures=True)
            self._fanout = None
        if self._kex_retained:
            self._kex_retained = False
            _kparallel.release_kernel_executor()

    def _check_open(self) -> None:
        if self._failed:
            raise ReproError(
                "service failed mid-apply and is fail-stopped; rebuild it "
                "(persistent services: GraphService.recover(data_dir))"
            )
        if self._closed:
            raise ReproError("service is closed")

    def _tick(self) -> None:
        """Background-flusher hook: apply an overdue pending batch."""
        with self._lock:
            if not self._closed and not self._failed and self._batcher.due():
                self._apply(self._batcher.drain())

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphService<v{self.version}, pending={self._batcher.pending}, "
            f"tools={list(self.tools)}, persistent={self._store is not None}>"
        )


class _Flusher(threading.Thread):
    """Daemon thread enforcing ``max_delay_ms`` on a submit-quiet service."""

    def __init__(self, service: GraphService, interval_s: float):
        super().__init__(name="graphservice-flusher", daemon=True)
        self._service = service
        self._interval = interval_s
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self._interval):
            try:
                self._service._tick()
            except Exception:  # pragma: no cover - keep the flusher alive
                pass

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)
