"""Micro-batching ingest queue: coalesce N changes or T milliseconds.

The paper's incremental algorithms amortise best over *batches* of changes
(one ``GraphDelta``, one affected-comment detection, one top-k merge), but a
serving workload delivers changes one at a time.  :class:`MicroBatcher`
bridges the two: submitted changes accumulate until either ``max_changes``
are pending or the oldest pending change is ``max_delay_ms`` old, whichever
comes first -- the standard group-commit trade between write amplification
and staleness.

The batcher is deliberately clock-driven rather than thread-driven: it
*reports* readiness (:meth:`offer` returns the coalesced batch when a
threshold trips, :meth:`due` answers "has the oldest change expired?") and
the caller decides when to drain.  That keeps every flush decision
deterministic under a patched :class:`~repro.util.timer.WallClock`, which
is how the serving tests freeze time.  :class:`repro.serving.service
.GraphService` adds the optional background flusher thread on top.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.model.changes import Change, ChangeSet
from repro.util.timer import WallClock
from repro.util.validation import ReproError

__all__ = ["MicroBatcher", "coerce_changes"]


def coerce_changes(
    changes: Union[Change, ChangeSet, Iterable[Change]]
) -> list[Change]:
    """Normalise a single change, a ChangeSet, or an iterable to a list."""
    if isinstance(changes, ChangeSet):
        return list(changes)
    if isinstance(changes, list):
        return changes
    if isinstance(changes, tuple):
        return list(changes)
    return [changes]


class MicroBatcher:
    """Coalesces single changes (or pre-formed ChangeSets) into batches."""

    def __init__(self, max_changes: int = 256, max_delay_ms: float = 50.0):
        if max_changes < 1:
            raise ReproError("max_changes must be >= 1")
        if max_delay_ms < 0:
            raise ReproError("max_delay_ms must be >= 0")
        self.max_changes = max_changes
        self.max_delay_ms = max_delay_ms
        self._pending: list[Change] = []
        self._oldest: Optional[float] = None  # arrival time of first pending
        #: total changes that ever entered the queue (monotone counter)
        self.submitted = 0
        #: number of batches drained
        self.batches = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def age_ms(self) -> float:
        """Age of the oldest pending change, 0 when empty."""
        if self._oldest is None:
            return 0.0
        return (WallClock.now() - self._oldest) * 1e3

    def due(self) -> bool:
        """True when the oldest pending change has exceeded ``max_delay_ms``."""
        return self._oldest is not None and self.age_ms() >= self.max_delay_ms

    # ------------------------------------------------------------------

    def offer(
        self, changes: Union[Change, ChangeSet, Iterable[Change]]
    ) -> Optional[ChangeSet]:
        """Enqueue change(s); return the coalesced batch if a threshold trips.

        A single oversized ChangeSet is *not* split -- changes within one
        submitted set may reference each other (the paper's Fig. 3b inserts
        a comment and immediately likes it), so set boundaries are only ever
        merged, never cut.
        """
        items = coerce_changes(changes)
        if items:
            if self._oldest is None:
                self._oldest = WallClock.now()
            self._pending.extend(items)
            self.submitted += len(items)
        if self._pending and (len(self._pending) >= self.max_changes or self.due()):
            return self.drain()
        return None

    def drain(self) -> Optional[ChangeSet]:
        """Unconditionally take everything pending as one ChangeSet."""
        if not self._pending:
            return None
        batch = ChangeSet(self._pending)
        self._pending = []
        self._oldest = None
        self.batches += 1
        return batch
