"""Micro-batching ingest queue: coalesce N changes or T milliseconds.

The paper's incremental algorithms amortise best over *batches* of changes
(one ``GraphDelta``, one affected-comment detection, one top-k merge), but a
serving workload delivers changes one at a time.  :class:`MicroBatcher`
bridges the two: submitted changes accumulate until either ``max_changes``
are pending or the oldest pending change is ``max_delay_ms`` old, whichever
comes first -- the standard group-commit trade between write amplification
and staleness.

The batcher is deliberately clock-driven rather than thread-driven: it
*reports* readiness (:meth:`offer` returns the coalesced batch when a
threshold trips, :meth:`due` answers "has the oldest change expired?") and
the caller decides when to drain.  That keeps every flush decision
deterministic under a patched :class:`~repro.util.timer.WallClock`, which
is how the serving tests freeze time.  :class:`repro.serving.service
.GraphService` adds the optional background flusher thread on top.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    Change,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
)
from repro.util.timer import WallClock
from repro.util.validation import ReproError

__all__ = ["MicroBatcher", "QueueFull", "SubmitGate", "coerce_changes"]


class QueueFull(ReproError):
    """The bounded ingest path rejected changes instead of buffering them.

    The backpressure verdict shared by every ingest edge: a
    :class:`MicroBatcher` constructed with ``max_pending`` raises it when
    accepting a submission would push the pending queue past the bound,
    and the gateway's bounded request queue (:mod:`repro.gateway`) raises
    the same type, so callers see identical semantics with or without the
    network front door.  Carries enough context to answer "come back
    later": ``pending`` (current depth), ``limit`` (the bound) and
    ``retry_after`` (advisory seconds, ``None`` when the rejecting edge
    cannot estimate drain time).
    """

    def __init__(self, msg: str, *, pending: int, limit: int,
                 retry_after: Optional[float] = None):
        super().__init__(msg)
        self.pending = pending
        self.limit = limit
        self.retry_after = retry_after


def coerce_changes(
    changes: Union[Change, ChangeSet, Iterable[Change]]
) -> list[Change]:
    """Normalise a single change, a ChangeSet, or an iterable to a list."""
    if isinstance(changes, ChangeSet):
        return list(changes)
    if isinstance(changes, list):
        return changes
    if isinstance(changes, tuple):
        return list(changes)
    return [changes]


class MicroBatcher:
    """Coalesces single changes (or pre-formed ChangeSets) into batches."""

    def __init__(
        self,
        max_changes: int = 256,
        max_delay_ms: float = 50.0,
        max_pending: Optional[int] = None,
    ):
        if max_changes < 1:
            raise ReproError("max_changes must be >= 1")
        if max_delay_ms < 0:
            raise ReproError("max_delay_ms must be >= 0")
        if max_pending is not None and max_pending < max_changes:
            raise ReproError(
                f"max_pending ({max_pending}) must be >= max_changes "
                f"({max_changes}): a bound below the flush threshold would "
                "reject batches the batcher is about to drain anyway"
            )
        self.max_changes = max_changes
        self.max_delay_ms = max_delay_ms
        #: optional backpressure bound on the pending queue (None = the
        #: pre-existing unbounded behaviour, which stays the default)
        self.max_pending = max_pending
        self._pending: list[Change] = []
        self._oldest: Optional[float] = None  # arrival time of first pending
        #: total changes that ever entered the queue (monotone counter)
        self.submitted = 0
        #: number of batches drained
        self.batches = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def age_ms(self) -> float:
        """Age of the oldest pending change, 0 when empty."""
        if self._oldest is None:
            return 0.0
        return (WallClock.now() - self._oldest) * 1e3

    def due(self) -> bool:
        """True when the oldest pending change has exceeded ``max_delay_ms``."""
        return self._oldest is not None and self.age_ms() >= self.max_delay_ms

    # ------------------------------------------------------------------

    def reserve(self, n: int) -> None:
        """Backpressure check: raise :class:`QueueFull` if accepting ``n``
        more changes would exceed ``max_pending``.

        A no-op on unbounded batchers.  Callers that validate before
        enqueueing (the services' ``SubmitGate.admit``) call this *first*,
        so a rejected submission leaves no tracked pending ids behind.
        The advisory ``retry_after`` is the time left until the oldest
        pending change forces a flush -- after that the queue has drained
        at least once.
        """
        if self.max_pending is None:
            return
        if len(self._pending) + n > self.max_pending:
            wait_ms = max(self.max_delay_ms - self.age_ms(), 0.0)
            raise QueueFull(
                f"ingest queue full: {len(self._pending)} pending + {n} "
                f"submitted > max_pending={self.max_pending}",
                pending=len(self._pending),
                limit=self.max_pending,
                retry_after=wait_ms / 1e3,
            )

    def offer(
        self, changes: Union[Change, ChangeSet, Iterable[Change]]
    ) -> Optional[ChangeSet]:
        """Enqueue change(s); return the coalesced batch if a threshold trips.

        A single oversized ChangeSet is *not* split -- changes within one
        submitted set may reference each other (the paper's Fig. 3b inserts
        a comment and immediately likes it), so set boundaries are only ever
        merged, never cut.  On a bounded batcher (``max_pending``), a
        submission that would overflow the queue raises :class:`QueueFull`
        before anything is enqueued -- all-or-nothing, like validation.
        """
        items = coerce_changes(changes)
        self.reserve(len(items))
        if items:
            if self._oldest is None:
                self._oldest = WallClock.now()
            self._pending.extend(items)
            self.submitted += len(items)
        if self._pending and (len(self._pending) >= self.max_changes or self.due()):
            return self.drain()
        return None

    def drain(self) -> Optional[ChangeSet]:
        """Unconditionally take everything pending as one ChangeSet."""
        if not self._pending:
            return None
        batch = ChangeSet(self._pending)
        self._pending = []
        self._oldest = None
        self.batches += 1
        return batch


class SubmitGate:
    """Submit-time change validation + pending-id tracking (all-or-nothing).

    Keeps the WAL free of unappliable batches: a malformed change is
    rejected at the edge instead of poisoning the log or a half-applied
    batch.  The gate is storage-agnostic -- ``known_applied(kind,
    external_id)`` answers membership against the *applied* state, which
    is the graph's id maps for :class:`~repro.serving.service
    .GraphService` and the routing tables for the sharded router
    (:class:`repro.sharding.ShardedGraphService`); on top of that the
    gate tracks ids introduced by changes still pending in the
    micro-batcher, so a pending entity can be referenced by a later
    submit (the paper's Fig. 3b inserts a comment and immediately likes
    it).  ``kind`` is one of ``"user"`` / ``"post"`` / ``"comment"``.
    """

    def __init__(self, known_applied: Callable[[str, int], bool]):
        self._known_applied = known_applied
        #: ids introduced by changes still pending in the batcher
        self.pending: dict[str, set] = {"user": set(), "post": set(), "comment": set()}

    def known(self, kind: str, external_id: int) -> bool:
        return self._known_applied(kind, external_id) or external_id in self.pending[kind]

    def admit(self, items: list[Change]) -> None:
        """Validate ``items`` in order, tracking introduced ids in lockstep.

        A later change may reference an entity an earlier one in the same
        submitted set introduces, and a duplicate id within one set must
        collide with its own predecessor.  On rejection, everything this
        call tracked is rolled back -- nothing half-enqueued.
        """
        tracked: list[tuple[str, int]] = []
        try:
            for ch in items:
                self._validate(ch)
                added = self._track(ch)
                if added is not None:
                    tracked.append(added)
        except ReproError:
            for kind, ext in tracked:
                self.pending[kind].discard(ext)
            raise

    def clear(self) -> None:
        """Forget pending ids (call when the pending batch is applied)."""
        for ids in self.pending.values():
            ids.clear()

    # ------------------------------------------------------------------

    def _validate(self, ch: Change) -> None:
        if isinstance(ch, AddUser):
            if self.known("user", ch.user_id):
                raise ReproError(f"duplicate user id {ch.user_id}")
        elif isinstance(ch, AddPost):
            if self.known("post", ch.post_id) or self.known("comment", ch.post_id):
                raise ReproError(f"submission id {ch.post_id} already in use")
            if not self.known("user", ch.user_id):
                raise ReproError(f"post {ch.post_id}: unknown user {ch.user_id}")
        elif isinstance(ch, AddComment):
            if self.known("post", ch.comment_id) or self.known("comment", ch.comment_id):
                raise ReproError(f"submission id {ch.comment_id} already in use")
            if not self.known("user", ch.user_id):
                raise ReproError(f"comment {ch.comment_id}: unknown user {ch.user_id}")
            if not (
                self.known("post", ch.parent_id) or self.known("comment", ch.parent_id)
            ):
                raise ReproError(
                    f"comment {ch.comment_id}: unknown parent {ch.parent_id}"
                )
        elif isinstance(ch, (AddLike, RemoveLike)):
            if not self.known("user", ch.user_id):
                raise ReproError(f"like: unknown user {ch.user_id}")
            if not self.known("comment", ch.comment_id):
                raise ReproError(f"like: unknown comment {ch.comment_id}")
        elif isinstance(ch, (AddFriendship, RemoveFriendship)):
            if ch.user1_id == ch.user2_id:
                raise ReproError(f"self-friendship for user {ch.user1_id}")
            for uid in (ch.user1_id, ch.user2_id):
                if not self.known("user", uid):
                    raise ReproError(f"friendship: unknown user {uid}")
        else:
            raise ReproError(f"unknown change type {type(ch)}")

    def _track(self, ch: Change) -> Optional[tuple[str, int]]:
        """Record an id a pending change introduces; returns the (kind, id)
        it added (for rollback) or None for non-introducing changes."""
        if isinstance(ch, AddUser):
            self.pending["user"].add(ch.user_id)
            return ("user", ch.user_id)
        if isinstance(ch, AddPost):
            self.pending["post"].add(ch.post_id)
            return ("post", ch.post_id)
        if isinstance(ch, AddComment):
            self.pending["comment"].add(ch.comment_id)
            return ("comment", ch.comment_id)
        return None
