"""Q2 batch scoring with ONE FastSV run over all comments (extension).

The published solution loops over comments, extracting each induced Friends
subgraph and running connected components on it -- and parallelises that
loop with OpenMP.  Linear algebra offers a better trick: make the loop a
*single* algebraic computation.

Construct the block-diagonal "liker graph": one vertex per **(comment, user)
like pair** -- i.e. per stored entry of the Likes matrix -- and one edge
between two vertices iff they belong to the same comment and their users are
friends.  Distinct comments can never connect (their vertices differ in the
comment coordinate), so the graph is a disjoint union of every comment's
induced subgraph, and one FastSV call labels all components of all comments
simultaneously.  Per-comment scores are then two ``bincount``s away.

Complexity: O(nnz(Likes) + Σ_c induced-edges) fully vectorised -- the same
work the per-comment loop does, minus every per-comment constant (Matrix
construction, FastSV setup, Python dispatch).  The ablation benchmark
``bench_ablation_batched_cc.py`` measures the difference; the speed-up over
the loop is typically an order of magnitude at scale.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas import ops as _ops
from repro.graphblas import types as _gbtypes
from repro.graphblas._kernels.csr import expand_rows, row_ranges
from repro.graphblas.matrix import Matrix
from repro.lagraph.fastsv import fastsv
from repro.model.graph import SocialGraph

__all__ = ["batched_comment_scores"]


def batched_comment_scores(graph: SocialGraph, comments=None) -> dict[int, int]:
    """Scores for the given comments (default: all) via one FastSV run.

    Returns ``{comment_idx: score}`` for every requested comment that has at
    least one like; comments without likes score 0 and are omitted, matching
    :func:`repro.queries.q2.score_comments`.
    """
    likes = graph.likes
    friends = graph.friends
    nv = likes.nvals
    if nv == 0:
        return {}

    li = likes.indptr
    comment_of = expand_rows(li)  # per like-entry: its comment
    users = likes._cols  # per like-entry: its user
    n_users = likes.ncols

    if comments is not None:
        wanted = np.zeros(graph.num_comments, dtype=np.bool_)
        wanted[np.asarray(list(comments), dtype=np.int64)] = True
        entry_sel = wanted[comment_of]
    else:
        entry_sel = None

    # Expand every like-entry's user over its friend list (vectorised CSR
    # gather), then locate the friend *within the same comment's* like
    # entries by a searchsorted on the canonical (comment, user) keys.
    fi = friends.indptr
    fc = friends._cols
    entry_idx, src_entry = row_ranges(fi, users)
    nb = fc[entry_idx]

    like_keys = comment_of * np.int64(n_users) + users  # sorted (canonical)
    want = comment_of[src_entry] * np.int64(n_users) + nb
    pos = np.searchsorted(like_keys, want)
    pos[pos == nv] = 0
    valid = like_keys[pos] == want
    src = src_entry[valid]
    dst = pos[valid]
    keep = src < dst  # one direction; symmetrised below
    src, dst = src[keep], dst[keep]

    if entry_sel is not None:
        edge_keep = entry_sel[src]  # src and dst share a comment
        src, dst = src[edge_keep], dst[edge_keep]

    if src.size:
        block = Matrix.from_coo(
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
            True,
            nv,
            nv,
            dtype=_gbtypes.BOOL,
            dup_op=_ops.lor,
        )
        labels = fastsv(block).to_dense()
    else:
        labels = np.arange(nv, dtype=np.int64)

    # Component sizes: FastSV labels every vertex with its component's
    # minimum vertex id, so sizes fall out of one bincount; component ->
    # comment is read off any member (we use the representative itself).
    sizes = np.bincount(labels, minlength=nv)
    comp_ids = np.flatnonzero(sizes)
    comp_sizes = sizes[comp_ids].astype(np.int64)
    comp_comment = comment_of[comp_ids]
    if entry_sel is not None:
        sel = entry_sel[comp_ids]
        comp_sizes, comp_comment = comp_sizes[sel], comp_comment[sel]

    per_comment = np.zeros(graph.num_comments, dtype=np.int64)
    np.add.at(per_comment, comp_comment, comp_sizes**2)
    scored = np.flatnonzero(per_comment)
    out = dict(zip(scored.tolist(), per_comment[scored].tolist()))
    if comments is not None:
        # include requested comments that have likes but score computed 0?
        # (impossible: >=1 like => score >= 1), so restrict to request only.
        out = {c: s for c, s in out.items() if wanted[c]}
    return out
