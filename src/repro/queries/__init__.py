"""The paper's contribution: GraphBLAS Q1/Q2, batch and incremental.

* :class:`~repro.queries.q1.Q1Batch` -- Alg. 1 of the paper
* :class:`~repro.queries.q1.Q1Incremental` -- Alg. 2 of the paper
* :class:`~repro.queries.q2.Q2Batch` -- Sec. III "Q2 Batch" (Fig. 4b top)
* :class:`~repro.queries.q2.Q2Incremental` -- Sec. III "Q2 Incremental"
  (Fig. 4b bottom, steps 1-9), with an optional extension mode that
  maintains connected components incrementally (future-work item (2))

plus the :class:`~repro.queries.engine.EngineBase` serving protocol
(``load`` / ``initial`` / ``refresh(delta)`` / ``last_top`` / ``close``,
shared with :mod:`repro.analytics`) and the
:class:`~repro.queries.engine.QueryEngine` facade implementing it for the
TTC phase sequence (load -> initial evaluation -> update -> reevaluation).
"""

from repro.queries.topk import TopKTracker, top_k
from repro.queries.q1 import Q1Batch, Q1Incremental
from repro.queries.q2 import Q2Batch, Q2Incremental
from repro.queries.engine import EngineBase, QueryEngine, make_engine, TOOL_NAMES

__all__ = [
    "TopKTracker",
    "top_k",
    "Q1Batch",
    "Q1Incremental",
    "Q2Batch",
    "Q2Incremental",
    "EngineBase",
    "QueryEngine",
    "make_engine",
    "TOOL_NAMES",
]
