"""Q2 -- "influential comments" (paper Sec. III, Fig. 4b).

Score of a Comment = sum of squared connected-component sizes of the
subgraph induced by the users who like the comment, over the friends graph.

Batch pipeline (steps 1-4 of Fig. 4b, upper half):

1. ``extractTuples`` on the Likes matrix groups liker ids per comment
   (read straight off the CSR rows -- the matrix *is* that grouping);
2. ``extract`` the induced Friends submatrix per comment;
3. connected components of the submatrix (FastSV, as in the paper);
4. score = Σ component-size².

Incremental pipeline (steps 1-9, lower half): detect the comments an update
can affect -- new comments, comments with new likes, and comments where a
new friendship joins two likers (found with the NewFriends incidence-matrix
product, select(==2), row-wise OR) -- and re-score only those.

Per the paper's evaluation, the per-comment loop is parallelisable at
comment granularity; pass an :class:`~repro.parallel.Executor`.

``algorithm`` selects the component kernel:

* ``"fastsv"``     -- the paper's choice (LAGraph FastSV on GraphBLAS);
* ``"unionfind"``  -- pure-Python union-find (fast for tiny subgraphs);
* ``"incremental"``-- only for :class:`Q2Incremental`: maintain components
  dynamically per comment (future-work item (2), Ediger-style).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.graphblas import monoid as _monoid
from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas._kernels import parallel as _kparallel
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import BOOL, INT64
from repro.graphblas.vector import Vector
from repro.lagraph.cc_numpy import connected_components_numpy
from repro.lagraph.fastsv import fastsv
from repro.lagraph.incremental_cc import IncrementalCC
from repro.model.graph import GraphDelta, SocialGraph
from repro.parallel.executor import Executor, SerialExecutor, chunk_evenly
from repro.queries.topk import TopKTracker, top_k_entries
from repro.util.validation import ReproError

__all__ = [
    "Q2Batch",
    "Q2Incremental",
    "affected_comments_delta",
    "affected_comments_incidence",
    "score_comments",
]

_PLUS_TIMES = _semiring.get("plus_times")
_LOR = _monoid.lor_monoid

#: affected sets at or below this size are scored without freezing Likes
_SMALL_SCORE_SET = 32

#: friendship batches above this size fall back to the incidence SpGEMM --
#: the per-pair intersection's Python loop loses to one matrix product once
#: a change set carries many friendships (the offline bulk-load regime)
_DELTA_PAIR_LIMIT = 64


# ---------------------------------------------------------------------------
# per-comment scoring kernel (runs in workers; globals primed by _init_worker)
# ---------------------------------------------------------------------------

_W: dict = {}


def _init_worker(
    likes_indptr: np.ndarray,
    likes_users: np.ndarray,
    friends_indptr: np.ndarray,
    friends_cols: np.ndarray,
    algorithm: str,
) -> None:
    """Prime (process-local) read-only state: ships once per worker."""
    _W["likes_indptr"] = likes_indptr
    _W["likes_users"] = likes_users
    _W["friends_indptr"] = friends_indptr
    _W["friends_cols"] = friends_cols
    _W["algorithm"] = algorithm


def _induced_edges(users: np.ndarray, fi: np.ndarray, fc: np.ndarray):
    """Friend edges among ``users``, in local (0..len(users)-1) indices.

    ``users`` is sorted (CSR column order), so global->local mapping is one
    searchsorted -- no dict, no Python loop.  ``fi``/``fc`` are the friends
    CSR indptr and column arrays.
    """
    starts = fi[users]
    lengths = fi[users + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return (np.zeros(0, np.int64),) * 2
    src_local = np.repeat(np.arange(users.size, dtype=np.int64), lengths)
    out_starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(out_starts, lengths)
    nb = fc[np.repeat(starts, lengths) + within]
    pos = np.searchsorted(users, nb)
    pos[pos == users.size] = 0
    valid = users[pos] == nb
    src, dst = src_local[valid], pos[valid]
    keep = src < dst  # one direction of the symmetric pair suffices
    return src[keep], dst[keep]


def _score_one(comment: int) -> int:
    """Σ component-size² for one comment's induced liker subgraph."""
    li = _W["likes_indptr"]
    users = _W["likes_users"][li[comment] : li[comment + 1]]
    return _score_users(
        users, _W["friends_indptr"], _W["friends_cols"], _W["algorithm"]
    )


def _score_users(users, fi, fc, algorithm) -> int:
    """Σ component-size² for a sorted liker set over the friends CSR."""
    n = users.size
    if n == 0:
        return 0
    src, dst = _induced_edges(users, fi, fc)
    if algorithm == "fastsv":
        if src.size == 0:
            return n  # n singleton components
        sub = Matrix.from_coo(
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
            True,
            n,
            n,
            dtype=BOOL,
            dup_op=_ops.lor,
        )
        labels = fastsv(sub).to_dense()
    elif algorithm == "unionfind":
        labels = connected_components_numpy(n, src, dst)
    else:  # pragma: no cover - guarded at construction
        raise ReproError(f"unknown Q2 algorithm {algorithm!r}")
    _, counts = np.unique(labels, return_counts=True)
    return int(np.sum(counts.astype(np.int64) ** 2))


def _score_chunk(comments: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Score a chunk; ndarray in/out keeps IPC pickling cost negligible."""
    comments = np.asarray(comments, dtype=np.int64)
    scores = np.empty(comments.size, dtype=np.int64)
    for k, c in enumerate(comments.tolist()):
        scores[k] = _score_one(c)
    return comments, scores


def score_comments(
    graph: SocialGraph,
    comments: Iterable[int],
    *,
    algorithm: str = "fastsv",
    executor: Optional[Executor] = None,
) -> dict[int, int]:
    """Scores for the given comment indices (the shared batch kernel of Q2).

    ``algorithm="batched"`` dispatches to the single-FastSV block-diagonal
    formulation (:mod:`repro.queries.q2_batched`) -- same results, no
    per-comment loop.
    """
    if algorithm not in ("fastsv", "unionfind", "batched"):
        raise ReproError(f"unknown Q2 algorithm {algorithm!r}")
    comments = np.asarray(list(comments), dtype=np.int64)
    if comments.size == 0:
        return {}
    if algorithm == "batched":
        from repro.queries.q2_batched import batched_comment_scores

        scored = batched_comment_scores(graph, comments)
        return {int(c): scored.get(int(c), 0) for c in comments.tolist()}
    if comments.size <= _SMALL_SCORE_SET:
        # Delta-rescore fast path: a handful of affected comments does not
        # justify freezing the likes matrix or spinning the chunk machinery
        # -- read each liker set straight off the graph storage.
        friends = graph.friends
        fi, fc = friends.indptr, friends._cols
        return {
            int(c): _score_users(graph.likers_of(int(c)), fi, fc, algorithm)
            for c in comments.tolist()
        }
    likes = graph.likes
    friends = graph.friends
    initargs = (
        likes.indptr,
        likes._cols,
        friends.indptr,
        friends._cols,
        algorithm,
    )
    # Engine-owned executors win; otherwise fall back to the process-wide
    # kernel executor (REPRO_WORKERS), which is shared across engines and
    # therefore driven through the kernel layer's region lock.  Only
    # fork-isolated pools qualify: _score_chunk re-enters routed kernels
    # (FastSV -> mxm/mxv), which an in-process worker would deadlock on
    # while the dispatcher holds the region lock.
    shared = False
    if executor is None:
        kex = _kparallel.get_kernel_executor()
        if kex is not None and _kparallel.executor_isolates_workers(kex):
            executor = kex
            shared = True
    if executor is None:
        executor = SerialExecutor()
    # A parallel region cannot amortise its spawn cost on small inputs
    # (the paper: updates are small, so parallel gains little there).
    min_items = getattr(executor, "MIN_PARALLEL_ITEMS", 0)
    if comments.size < min_items:
        executor = SerialExecutor()
        shared = False
    n_chunks = max(1, min(executor.workers * 4, comments.size))
    # Strided (round-robin) chunking: comment popularity is heavy-tailed and
    # correlated with index (early = hot), so contiguous chunks would load a
    # single worker with all the expensive subgraphs.
    chunks = [comments[i::n_chunks] for i in range(n_chunks)]
    if shared:
        results = _kparallel.locked_map(
            executor, _score_chunk, chunks, initializer=_init_worker, initargs=initargs
        )
    else:
        results = executor.map_chunks(
            _score_chunk, chunks, initializer=_init_worker, initargs=initargs
        )
    out: dict[int, int] = {}
    for ids, scores in results:
        out.update(zip(ids.tolist(), scores.tolist()))
    return out


# ---------------------------------------------------------------------------
# affected-comment detection (steps 1-5 of Fig. 4b, lower half)
# ---------------------------------------------------------------------------


def affected_comments_incidence(graph: SocialGraph, delta: GraphDelta) -> np.ndarray:
    """The ``ac`` set via the paper's incidence-matrix SpGEMM (reference).

    Step 1: ``AC = Likes ⊕.⊗ NewFriends`` (likers per friendship column);
    step 2: keep cells equal to 2 (both endpoints like the comment); step 3:
    row-wise OR; step 4/5: extract and union.  Cost is O(nnz(Likes)) per
    batch *regardless of batch size* -- which is why the serving path uses
    the delta-targeted formulation below; this one is kept as the
    property-test oracle (``tests/queries/test_affected_delta.py``).
    """
    affected = set(delta.new_comment_idx.tolist())        # Δcomments
    affected.update(delta.new_likes[0].tolist())          # Δlikes targets
    affected.update(delta.removed_likes[0].tolist())      # unlikes (ext.)
    for incidence_pairs, incidence in (
        (delta.new_friendships, delta.new_friends_incidence),
        (delta.removed_friendships, delta.removed_friends_incidence),
    ):
        if incidence_pairs[0].size:
            ac = graph.likes.mxm(incidence(), _PLUS_TIMES)
            ac2 = ac.select(_ops.valueeq, 2)
            hit = ac2.reduce_vector(_LOR, dtype=BOOL)
            affected.update(hit.to_coo()[0].tolist())
    return np.asarray(sorted(affected), dtype=np.int64)


def affected_comments_delta(graph: SocialGraph, delta: GraphDelta) -> np.ndarray:
    """The same ``ac`` set, delta-targeted: O(deg(a) + deg(b)) per pair.

    A friendship (a, b) -- inserted or removed -- can only affect comments
    *both* users like, so instead of multiplying the whole Likes matrix by
    the incidence matrix we intersect the two users' like sets off the
    graph's maintained likes-transpose index
    (:meth:`SocialGraph.comments_liked_by_both`).  Property-tested equal to
    :func:`affected_comments_incidence` on seeded random change streams,
    removals included.
    """
    n_pairs = delta.new_friendships[0].size + delta.removed_friendships[0].size
    if n_pairs > _DELTA_PAIR_LIMIT:
        # bulk regime: one SpGEMM beats thousands of per-pair intersections
        return affected_comments_incidence(graph, delta)
    affected = set(delta.new_comment_idx.tolist())
    affected.update(delta.new_likes[0].tolist())
    affected.update(delta.removed_likes[0].tolist())
    for pairs in (delta.new_friendships, delta.removed_friendships):
        for a, b in zip(pairs[0].tolist(), pairs[1].tolist()):
            affected.update(graph.comments_liked_by_both(a, b).tolist())
    return np.asarray(sorted(affected), dtype=np.int64)


# ---------------------------------------------------------------------------
# batch
# ---------------------------------------------------------------------------


class Q2Batch:
    """Full evaluation of every comment's score, then top-3."""

    name = "Q2"

    def __init__(
        self,
        graph: SocialGraph,
        k: int = 3,
        algorithm: str = "fastsv",
        executor: Optional[Executor] = None,
    ):
        self.graph = graph
        self.k = k
        self.algorithm = algorithm
        self.executor = executor

    def scores(self) -> Vector:
        """Sparse scores vector over comments (absent = 0)."""
        g = self.graph
        scored = score_comments(
            g, range(g.num_comments), algorithm=self.algorithm, executor=self.executor
        )
        idx = np.fromiter(scored.keys(), dtype=np.int64, count=len(scored))
        vals = np.fromiter(scored.values(), dtype=np.int64, count=len(scored))
        return Vector.from_coo(idx, vals, g.num_comments, dtype=INT64)

    def evaluate_entries(self) -> list[tuple[int, int, int]]:
        """Top-k (comment_id, score, timestamp) triples, contest ordering."""
        g = self.graph
        dense = self.scores().to_dense()
        return top_k_entries(
            dense, g.comment_timestamps, g.comments.external_array(), self.k
        )

    def evaluate(self) -> list[tuple[int, int]]:
        return [(ext, score) for ext, score, _ in self.evaluate_entries()]

    def result_string(self) -> str:
        return "|".join(str(ext) for ext, _ in self.evaluate())


# ---------------------------------------------------------------------------
# incremental
# ---------------------------------------------------------------------------


class Q2Incremental:
    """Affected-comment detection + re-scoring (Fig. 4b, steps 1-9).

    ``algorithm="incremental"`` switches step 8 from a FastSV re-run to
    dynamically maintained per-comment components (future-work item (2)):
    each comment keeps an :class:`IncrementalCC` of its likers, updated in
    O(α) per inserted like/friendship, and Σ size² is read in O(1).
    """

    name = "Q2"

    def __init__(
        self,
        graph: SocialGraph,
        k: int = 3,
        algorithm: str = "fastsv",
        executor: Optional[Executor] = None,
    ):
        if algorithm not in ("fastsv", "unionfind", "incremental", "batched"):
            raise ReproError(f"unknown Q2 algorithm {algorithm!r}")
        self.graph = graph
        self.k = k
        self.algorithm = algorithm
        self.executor = executor
        self.scores: Vector | None = None
        self.tracker = TopKTracker(k)
        # state for the "incremental" components mode
        self._cc: dict[int, IncrementalCC] = {}
        self._likers: dict[int, set[int]] = {}
        self._user_likes: dict[int, set[int]] = {}
        self._friend_adj: dict[int, set[int]] = {}

    # -- phase 1 ----------------------------------------------------------

    def initial(self) -> list[tuple[int, int]]:
        g = self.graph
        if self.algorithm == "incremental":
            self._build_dynamic_state()
            scored = {c: cc.sum_squared_sizes for c, cc in self._cc.items()}
        else:
            scored = score_comments(
                g,
                range(g.num_comments),
                algorithm=self.algorithm,
                executor=self.executor,
            )
        idx = np.fromiter(scored.keys(), dtype=np.int64, count=len(scored))
        vals = np.fromiter(scored.values(), dtype=np.int64, count=len(scored))
        self.scores = Vector.from_coo(idx, vals, g.num_comments, dtype=INT64)
        dense = self.scores.to_dense()
        # vectorised seed (one lexsort top-k; see Q1Incremental.initial)
        self.tracker.reseed(
            top_k_entries(
                dense, g.comment_timestamps, g.comments.external_array(), self.k
            )
        )
        return self.tracker.top()

    def _build_dynamic_state(self) -> None:
        """Materialise the per-comment union-find state from the matrices."""
        g = self.graph
        likes = g.likes
        li = likes.indptr
        for c in range(g.num_comments):
            users = likes._cols[li[c] : li[c + 1]]
            if users.size == 0:
                continue
            self._likers[c] = set(users.tolist())
            for u in users.tolist():
                self._user_likes.setdefault(u, set()).add(c)
        friends = g.friends
        fi = friends.indptr
        for u in range(g.num_users):
            nbrs = friends._cols[fi[u] : fi[u + 1]]
            if nbrs.size:
                self._friend_adj[u] = set(nbrs.tolist())
        for c, likers in self._likers.items():
            cc = IncrementalCC()
            for u in likers:
                cc.add_vertex(u)
            for u in likers:
                for v in self._friend_adj.get(u, ()):
                    if v > u and v in likers:
                        cc.add_edge(u, v)
            self._cc[c] = cc

    # -- phase 2 ----------------------------------------------------------

    def _affected_comments(self, delta: GraphDelta) -> np.ndarray:
        """Steps 1-5 of Fig. 4b (lower half): the ``ac`` set, delta-targeted.

        Extension: removed likes and removed friendships affect comments by
        the exact dual argument -- an unlike shrinks the induced subgraph, an
        unfriend may *split* a component of any comment both users like --
        so the same per-pair intersection runs on the removed edges.
        """
        return affected_comments_delta(self.graph, delta)

    def _apply_dynamic(self, delta: GraphDelta) -> None:
        """Maintain per-comment components across one change set."""
        like_c, like_u = delta.new_likes
        for c, u in zip(like_c.tolist(), like_u.tolist()):
            cc = self._cc.get(c)
            if cc is None:
                cc = self._cc[c] = IncrementalCC()
            cc.add_vertex(u)
            likers = self._likers.setdefault(c, set())
            for f in self._friend_adj.get(u, set()) & likers:
                cc.add_edge(u, f)
            likers.add(u)
            self._user_likes.setdefault(u, set()).add(c)
        fa, fb = delta.new_friendships
        for a, b in zip(fa.tolist(), fb.tolist()):
            for c in self._user_likes.get(a, set()) & self._user_likes.get(b, set()):
                self._cc[c].add_edge(a, b)
            self._friend_adj.setdefault(a, set()).add(b)
            self._friend_adj.setdefault(b, set()).add(a)

    def _apply_dynamic_removals(self, delta: GraphDelta) -> None:
        """Extension: fold edge removals into the dynamic state.

        Union-find cannot split, so every comment whose subgraph *lost* an
        edge or vertex gets its structure rebuilt from the (already updated)
        index sets -- the standard decremental fallback of Ediger-style
        streaming CC.  Cost is proportional to the affected subgraphs only.
        """
        rebuild: set[int] = set()
        unlike_c, unlike_u = delta.removed_likes
        for c, u in zip(unlike_c.tolist(), unlike_u.tolist()):
            self._likers.get(c, set()).discard(u)
            self._user_likes.get(u, set()).discard(c)
            rebuild.add(c)
        fa, fb = delta.removed_friendships
        for a, b in zip(fa.tolist(), fb.tolist()):
            self._friend_adj.get(a, set()).discard(b)
            self._friend_adj.get(b, set()).discard(a)
            rebuild.update(
                self._user_likes.get(a, set()) & self._user_likes.get(b, set())
            )
        for c in rebuild:
            likers = self._likers.get(c, set())
            cc = IncrementalCC()
            for u in likers:
                cc.add_vertex(u)
            for u in likers:
                for v in self._friend_adj.get(u, ()):
                    if v > u and v in likers:
                        cc.add_edge(u, v)
            self._cc[c] = cc

    def update(self, delta: GraphDelta) -> list[tuple[int, int]]:
        if self.scores is None:
            raise RuntimeError("call initial() before update()")
        if (
            delta.new_comment_idx.size == 0
            and delta.new_likes[0].size == 0
            and delta.new_friendships[0].size == 0
            and not delta.has_removals
        ):
            # Post-/user-only change set: no comment, like or friendship
            # moved, so no induced liker subgraph -- and no score -- changed.
            return self.tracker.top()
        g = self.graph
        self.scores.resize(g.num_comments)
        affected = self._affected_comments(delta)

        # Steps 6-9: re-score the affected comments only.
        if self.algorithm == "incremental":
            if delta.has_removals:
                self._apply_dynamic_removals(delta)
            self._apply_dynamic(delta)
            scored = {
                int(c): self._cc[c].sum_squared_sizes if c in self._cc else 0
                for c in affected.tolist()
            }
        else:
            scored = score_comments(
                g, affected.tolist(), algorithm=self.algorithm, executor=self.executor
            )

        ts = g.comment_timestamps
        ext = g.comments.external_array()
        if scored:
            delta_scores = Vector.from_coo(
                np.asarray(sorted(scored), dtype=np.int64),
                np.asarray([scored[c] for c in sorted(scored)], dtype=np.int64),
                g.num_comments,
                dtype=INT64,
            )
            # scores' <- scores overwritten at changed positions ("new scores
            # overwrite existing ones", Sec. III)
            self.scores.assign(delta_scores, accum=_ops.second)
            if not delta.has_removals:
                for c, s in scored.items():
                    self.tracker.offer(int(ext[c]), int(s), int(ts[c]))
        if delta.has_removals:
            # Extension: scores may have decreased -- reselect the top-3
            # from the maintained vector (O(|comments|), not O(batch)).
            self.tracker.reseed(top_k_entries(self.scores.to_dense(), ts, ext, self.k))
        return self.tracker.top()

    def result_string(self) -> str:
        return self.tracker.result_string()
