"""Top-k selection and incremental top-k maintenance.

The case study orders both queries' results by score (descending), breaking
ties by timestamp (descending: newer wins) and finally by external id
(ascending) for full determinism.  ``k = 3`` throughout the contest.

:class:`TopKTracker` implements the paper's merge rule for incremental
evaluation: under the contest's original insert-only update language both
queries' scores are monotonically non-decreasing, so the new top-k is
always contained in ``previous top-k ∪ entities whose score changed``, and
feeding the tracker the changed scores per update maintains the exact
top-k in O(|changed| log k) instead of a full rescan.

**Removal extension** (``RemoveLike`` / ``RemoveFriendship``, see
:mod:`repro.model.changes`): with removals in the update stream scores are
no longer monotone -- a decrease can evict a pooled entity and promote one
pruned earlier, so the merge rule alone is unsound for such change sets.
Callers detect that case via ``GraphDelta.has_removals`` and call
:meth:`TopKTracker.reseed` with a candidate set re-derived from the
maintained scores vector: an O(|entities|) reselect, still far cheaper
than the O(|E|) batch recompute, and exact for both regimes.
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

__all__ = ["top_k", "top_k_entries", "TopKTracker"]


def _sort_key(entry: tuple[int, int, int]):
    score, ts, ext_id = entry
    return (-score, -ts, ext_id)


def top_k_entries(
    scores: np.ndarray, timestamps: np.ndarray, external_ids: np.ndarray, k: int = 3
) -> list[tuple[int, int, int]]:
    """Top-k (external_id, score, timestamp) triples, contest ordering.

    Vectorised: one ``np.lexsort`` over (score desc, timestamp desc,
    external id asc) instead of building and sorting a Python list of every
    entity -- this is the hot reselect path of the removal extension and of
    the incremental engines' initial evaluation.  The timestamp rides along
    so callers can reseed a :class:`TopKTracker` without building an
    entity->timestamp dict over the whole graph.
    """
    scores = np.asarray(scores)
    n = scores.size
    if n == 0:
        return []
    ts = np.asarray(timestamps)
    ext = np.asarray(external_ids)
    # lexsort: last key is primary; negate the descending keys
    order = np.lexsort((ext, -ts, -scores))[: min(k, n)]
    return [
        (int(ext[i]), int(scores[i]), int(ts[i])) for i in order.tolist()
    ]


def top_k(
    scores: np.ndarray, timestamps: np.ndarray, external_ids: np.ndarray, k: int = 3
) -> list[tuple[int, int]]:
    """Top-k (external_id, score) pairs under the contest ordering.

    ``scores`` is a *dense* array over all entities (absent scores are 0 --
    a post with no comments still has a well-defined score of zero and may
    appear in the top-k of a small graph, as in the paper's Fig. 3 example
    where only two posts exist).
    """
    return [(ext, score) for ext, score, _ in top_k_entries(scores, timestamps, external_ids, k)]


class TopKTracker:
    """Maintains top-k under monotonically non-decreasing score updates."""

    def __init__(self, k: int = 3):
        self.k = k
        #: best known (score, ts, ext_id) per candidate currently in the pool
        self._pool: dict[int, tuple[int, int, int]] = {}

    def offer(self, ext_id: int, score: int, timestamp: int) -> None:
        """Report a (possibly new) score for an entity."""
        prev = self._pool.get(ext_id)
        entry = (int(score), int(timestamp), int(ext_id))
        if prev is None or prev[0] < entry[0]:
            self._pool[ext_id] = entry

    def offer_many(self, items: Iterable[tuple[int, int, int]]) -> None:
        """Bulk :meth:`offer`; items are (ext_id, score, timestamp)."""
        for ext_id, score, ts in items:
            self.offer(ext_id, score, ts)

    def reseed(self, entries: Iterable[tuple[int, int, int]]) -> None:
        """Replace the pool outright; items are (ext_id, score, timestamp).

        Used after *non-monotone* updates (the removal extension): a score
        decrease can evict a pooled entity and promote one pruned earlier,
        so the merge rule no longer applies and the caller re-derives the
        candidate set from the full scores vector.
        """
        self._pool = {
            int(ext): (int(score), int(ts), int(ext)) for ext, score, ts in entries
        }

    def top(self) -> list[tuple[int, int]]:
        """Current top-k (external_id, score), contest ordering.

        Also prunes the pool to the k survivors: under monotone updates no
        pruned entity can re-enter without its score changing again, in
        which case it will be re-offered.
        """
        return [(ext, score) for ext, score, _ in self.top_entries()]

    def top_entries(self) -> list[tuple[int, int, int]]:
        """Current top-k as (external_id, score, timestamp) triples.

        Same pool-pruning contract as :meth:`top`.  The timestamp rides
        along for the sharded merge protocol: a router combining per-shard
        top-k partials needs the full contest ordering key
        (score desc, timestamp desc, external id asc) to reproduce the
        unsharded top-k exactly (see :mod:`repro.sharding.merge`).
        """
        entries = sorted(self._pool.values(), key=_sort_key)[: self.k]
        self._pool = {e[2]: e for e in entries}
        return [(ext, score, ts) for score, ts, ext in entries]

    def result_string(self) -> str:
        """The TTC framework's result format: ids joined by ``|``."""
        return "|".join(str(ext) for ext, _ in self.top())
