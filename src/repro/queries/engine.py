"""QueryEngine: the tool facade the benchmark harness drives.

One engine = one (query, variant) configuration of Fig. 5:

* ``graphblas-batch``        -- full re-evaluation every step (Alg. 1 / Q2 batch)
* ``graphblas-incremental``  -- initial full evaluation, then incremental
  maintenance (Alg. 2 / Q2 steps 1-9)

with an optional executor for the paper's "8 threads" configurations, plus
the NMF reference variants (constructed by :func:`make_engine`, implemented
in :mod:`repro.nmf`).

The TTC phase protocol:

=================  =====================================================
``load(graph)``    adopt the initial model
``initial()``      first evaluation; returns the top-3 result string
``update(cs)``     apply one change set and re-evaluate; returns top-3
=================  =====================================================
"""

from __future__ import annotations

from typing import Optional

from repro.model.changes import ChangeSet
from repro.model.graph import GraphDelta, SocialGraph
from repro.parallel.executor import Executor
from repro.queries.q1 import Q1Batch, Q1Incremental
from repro.queries.q2 import Q2Batch, Q2Incremental
from repro.util.validation import ReproError

__all__ = ["EngineBase", "QueryEngine", "make_engine", "TOOL_NAMES"]

#: the Fig. 5 tool names (NMF variants are created through make_engine too)
TOOL_NAMES = (
    "graphblas-batch",
    "graphblas-incremental",
    "nmf-batch",
    "nmf-incremental",
)


class EngineBase:
    """The engine protocol every served tool speaks.

    :class:`~repro.serving.service.GraphService` drives any object with
    this surface -- the Fig. 5 query engines here, the analytics engines
    in :mod:`repro.analytics`, and the NMF baselines (which predate the
    ``refresh`` hook and are fanned the raw change set instead):

    ========================  ============================================
    ``load(graph)``           adopt the shared :class:`SocialGraph`
    ``initial()``             first full evaluation; returns the result
                              string
    ``refresh(delta)``        maintain the result across one *already
                              applied* :class:`~repro.model.graph
                              .GraphDelta`
    ``last_top``              the latest ``(external_id, score)`` pairs,
                              what the serving cache stores
    ``partial()``             mergeable summary of the served result for
                              the sharded scatter-gather (optional; see
                              :mod:`repro.sharding.merge`)
    ``merge_partials(ps, k)`` fold one ``partial()`` per shard back into
                              ``(top, result_string)`` (optional)
    ``close()``               release private resources (executors,
                              pools)
    ========================  ============================================

    ``update(change_set)`` is the single-engine convenience that applies
    the change set to the engine's own graph and then refreshes -- the
    serving layer never calls it on a GraphBLAS engine because several
    engines share one graph and the batch must apply exactly once.

    >>> class CountEngine(EngineBase):
    ...     def load(self, graph): self.graph = graph
    ...     def initial(self):
    ...         self.last_top = [(0, self.graph.num_users)]
    ...         return self.format_top(self.last_top)
    ...     def refresh(self, delta):
    ...         self.last_top = [(0, delta.n_users_after)]
    ...         return self.format_top(self.last_top)
    >>> from repro.model.graph import SocialGraph
    >>> e = CountEngine(); e.load(SocialGraph()); e.initial()
    '0'
    """

    graph: Optional[SocialGraph] = None
    #: the most recent top-k as (external_id, score) pairs -- the serving
    #: layer caches this instead of re-parsing result strings.  Immutable
    #: class default: implementations *assign* a fresh list per evaluation
    #: (mutating a shared class-level list would cross-contaminate engines)
    last_top: tuple | list = ()

    def load(self, graph: SocialGraph) -> None:
        raise NotImplementedError

    def initial(self) -> str:
        raise NotImplementedError

    def refresh(self, delta: GraphDelta) -> str:
        raise NotImplementedError

    def update(self, change_set: ChangeSet) -> str:
        if self.graph is None:
            raise ReproError("engine not loaded; call load(graph) first")
        return self.refresh(self.graph.apply(change_set))

    def close(self) -> None:
        """Release engine-private resources; default engines hold none."""

    # -- mergeable-result protocol (sharded serving) -------------------

    def partial(self):
        """Mergeable summary of the served result (sharded scatter-gather).

        Engines that can be sharded return a partial restricted to the
        entities their shard owns; the router folds one partial per shard
        through :meth:`merge_partials`.  The base implementation declares
        the engine unshardable (the NMF baselines, for instance, predate
        the protocol).
        """
        raise ReproError(
            f"{type(self).__name__} does not implement the mergeable-result "
            "protocol and cannot be served sharded"
        )

    @staticmethod
    def merge_partials(partials, k: int):
        """Fold one :meth:`partial` per shard into ``(top, result_string)``."""
        raise ReproError(
            "engine does not implement the mergeable-result protocol"
        )

    @staticmethod
    def format_top(top) -> str:
        """The TTC framework's ``id|id|id`` result line."""
        return "|".join(str(ext) for ext, _ in top)


class QueryEngine(EngineBase):
    """Drives one query in either batch or incremental mode.

    >>> from repro.model.graph import SocialGraph
    >>> g = SocialGraph()
    >>> g.add_user(1)
    0
    >>> g.add_post(10, timestamp=0, user_id=1)
    0
    >>> e = QueryEngine("Q1", "batch")
    >>> e.load(g); e.initial()       # a post with no comments scores 0
    '10'
    >>> e.last_top
    [(10, 0)]
    """

    def __init__(
        self,
        query: str,
        variant: str,
        *,
        k: int = 3,
        q2_algorithm: str = "fastsv",
        executor: Optional[Executor] = None,
    ):
        if query not in ("Q1", "Q2"):
            raise ReproError(f"unknown query {query!r}")
        if variant not in ("batch", "incremental"):
            raise ReproError(f"unknown variant {variant!r}")
        self.query = query
        self.variant = variant
        self.k = k
        self.q2_algorithm = q2_algorithm
        self.executor = executor
        if executor is not None and hasattr(executor, "start"):
            # persistent pools fork their workers here, in the TTC
            # Initialization phase -- where OpenMP pays its thread spawn
            executor.start()
        self.graph: Optional[SocialGraph] = None
        self._impl = None
        #: the most recent top-k as (external_id, score) pairs -- the
        #: serving layer caches this instead of re-parsing result strings
        self.last_top: list[tuple[int, int]] = []
        #: same top-k as (external_id, score, timestamp) triples -- the
        #: mergeable partial of the sharded scatter-gather (the timestamp
        #: completes the contest ordering key a cross-shard merge needs)
        self.last_entries: list[tuple[int, int, int]] = []

    # -- TTC phases -------------------------------------------------------

    def load(self, graph: SocialGraph) -> None:
        self.graph = graph
        if self.query == "Q1":
            self._impl = (
                Q1Batch(graph, self.k)
                if self.variant == "batch"
                else Q1Incremental(graph, self.k)
            )
        else:
            if self.variant == "batch":
                self._impl = Q2Batch(
                    graph, self.k, algorithm=self._batch_algorithm(), executor=self.executor
                )
            else:
                self._impl = Q2Incremental(
                    graph, self.k, algorithm=self.q2_algorithm, executor=self.executor
                )

    def _batch_algorithm(self) -> str:
        # "incremental" is only meaningful for the incremental variant.
        return "fastsv" if self.q2_algorithm == "incremental" else self.q2_algorithm

    def initial(self) -> str:
        self._require_loaded()
        if self.variant == "incremental":
            self._impl.initial()
            entries = self._impl.tracker.top_entries()
        else:
            entries = self._impl.evaluate_entries()
        return self._commit(entries)

    def refresh(self, delta: GraphDelta) -> str:
        """Re-evaluate against a delta the caller already applied.

        The serving layer (:class:`repro.serving.GraphService`) owns one
        graph shared by several engines, so it applies each change set
        exactly once and hands every engine the resulting
        :class:`~repro.model.graph.GraphDelta`; :meth:`update` is the
        single-engine convenience that applies-then-refreshes.
        """
        self._require_loaded()
        if self.variant == "incremental":
            self._impl.update(delta)
            entries = self._impl.tracker.top_entries()
        else:
            entries = self._impl.evaluate_entries()
        return self._commit(entries)

    def _commit(self, entries: list[tuple[int, int, int]]) -> str:
        self.last_entries = entries
        self.last_top = [(ext, score) for ext, score, _ in entries]
        return self.format_top(self.last_top)

    # -- mergeable-result protocol ----------------------------------------

    def partial(self) -> list[tuple[int, int, int]]:
        """The shard's top-k as (external_id, score, timestamp) triples.

        Content (posts and their comment trees) is hash-partitioned by
        root post, so per-shard top-k lists cover disjoint entity sets and
        any global top-k member appears in its owner shard's partial.
        """
        return list(self.last_entries)

    @staticmethod
    def merge_partials(partials, k: int):
        from repro.sharding.merge import merge_topk_entries

        return merge_topk_entries(partials, k)

    # ----------------------------------------------------------------------

    def _require_loaded(self) -> None:
        if self._impl is None:
            raise ReproError("engine not loaded; call load(graph) first")

    def close(self) -> None:
        if self.executor is not None:
            self.executor.close()


def make_engine(
    tool: str,
    query: str,
    *,
    k: int = 3,
    executor: Optional[Executor] = None,
    q2_algorithm: str = "fastsv",
):
    """Factory covering every Fig. 5 tool (GraphBLAS and NMF variants)."""
    if tool == "graphblas-batch":
        return QueryEngine(
            query, "batch", k=k, executor=executor, q2_algorithm=q2_algorithm
        )
    if tool == "graphblas-incremental":
        return QueryEngine(
            query, "incremental", k=k, executor=executor, q2_algorithm=q2_algorithm
        )
    if tool == "nmf-batch":
        from repro.nmf.batch import NmfBatchEngine

        return NmfBatchEngine(query, k=k)
    if tool == "nmf-incremental":
        from repro.nmf.incremental import NmfIncrementalEngine

        return NmfIncrementalEngine(query, k=k)
    raise ReproError(f"unknown tool {tool!r}; expected one of {TOOL_NAMES}")
