"""Q1 -- "influential posts" (paper Sec. III, Alg. 1 and Alg. 2).

Score of a Post = 10 x (number of direct or indirect Comments)
                 + (number of likes on those Comments).

Because every Comment carries a ``rootPost`` pointer, the comment tree never
has to be traversed: the ``RootPost`` matrix (|posts| x |comments|) already
links each post to *all* its comments, and the whole query is two reductions
and one sparse matrix-vector product.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas import monoid as _monoid
from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas.types import INT64
from repro.graphblas.vector import Vector
from repro.model.graph import GraphDelta, SocialGraph
from repro.queries.topk import TopKTracker, top_k_entries

__all__ = ["Q1Batch", "Q1Incremental"]

_PLUS = _monoid.plus_monoid
_PLUS_TIMES = _semiring.get("plus_times")
_MUL10 = _ops.times.bind_second(np.int64(10))


def _likes_count(graph: SocialGraph) -> Vector:
    """likesCount ∈ N^{|comments|}: incoming likes per comment (row-wise sum)."""
    return graph.likes.reduce_vector(_PLUS, dtype=INT64)


def _scores_from(root_post, likes_count: Vector) -> Vector:
    """Alg. 1 lines 6-9 on an arbitrary RootPost matrix and likes vector."""
    # line 6: sum <- [⊕_j RootPost(:, j)]          (# comments per post)
    total = root_post.reduce_vector(_PLUS, dtype=INT64)
    # line 7: repliesScores <- 10 x sum            (GrB_apply, mul-by-10)
    replies_scores = total.apply(_MUL10)
    # line 8: likesScore <- RootPost ⊕.⊗ likesCount
    likes_score = root_post.mxv(likes_count, _PLUS_TIMES)
    # line 9: scores <- repliesScores ⊕ likesScore
    return replies_scores.ewise_add(likes_score, _ops.plus)


class Q1Batch:
    """Alg. 1: full evaluation of every post's score, then top-3."""

    name = "Q1"

    def __init__(self, graph: SocialGraph, k: int = 3):
        self.graph = graph
        self.k = k

    def scores(self) -> Vector:
        """The complete scores vector (sparse; absent = score 0)."""
        return _scores_from(self.graph.root_post, _likes_count(self.graph))

    def evaluate_entries(self) -> list[tuple[int, int, int]]:
        """Top-k (post_id, score, timestamp) triples, contest ordering."""
        g = self.graph
        dense = self.scores().to_dense()
        return top_k_entries(dense, g.post_timestamps, g.posts.external_array(), self.k)

    def evaluate(self) -> list[tuple[int, int]]:
        """Top-k (post_id, score) under the contest ordering."""
        return [(ext, score) for ext, score, _ in self.evaluate_entries()]

    def result_string(self) -> str:
        return "|".join(str(ext) for ext, _ in self.evaluate())


class Q1Incremental:
    """Alg. 2: maintain the scores vector and top-3 across updates.

    ``initial()`` performs one batch evaluation (the paper's GraphBLAS
    Incremental variant does the same on the first step); each ``update()``
    then costs O(|Δ|) matrix work instead of a full recomputation.
    """

    name = "Q1"

    def __init__(self, graph: SocialGraph, k: int = 3):
        self.graph = graph
        self.k = k
        self.scores: Vector | None = None
        self.tracker = TopKTracker(k)

    # -- phase 1: initial full evaluation --------------------------------

    def initial(self) -> list[tuple[int, int]]:
        g = self.graph
        self.scores = _scores_from(g.root_post, _likes_count(g))
        dense = self.scores.to_dense()
        # vectorised seed: the tracker only ever retains k survivors, so
        # one lexsort top-k replaces offering every post through Python
        self.tracker.reseed(
            top_k_entries(dense, g.post_timestamps, g.posts.external_array(), self.k)
        )
        return self.tracker.top()

    # -- phase 2: incremental maintenance (Alg. 2) -----------------------

    def update(self, delta: GraphDelta) -> list[tuple[int, int]]:
        """Lines 9-14 of Alg. 2, then the top-3 merge.

        Extension: with edge *removals* in the delta (see
        :mod:`repro.model.changes`) the like-count increment vector simply
        carries negative entries -- the algebra of Alg. 2 is signed and
        needs no other change -- but scores are no longer monotone, so the
        top-3 is re-derived from the maintained scores vector instead of
        merged (O(|posts|) reselect vs O(|E|) batch recompute).
        """
        if self.scores is None:
            raise RuntimeError("call initial() before update()")
        if (
            delta.new_post_idx.size == 0
            and delta.new_comment_idx.size == 0
            and delta.new_likes[0].size == 0
            and delta.removed_likes[0].size == 0
        ):
            # Friendship-only (or user-only) change set: both Alg. 2 inputs
            # (ΔRootPost, likesCount+) are empty, so no score can move.
            return self.tracker.top()
        g = self.graph
        n_posts = delta.n_posts_after
        n_comments = delta.n_comments_after
        # dimensions grow: posts' x comments'
        self.scores.resize(n_posts)

        # ΔRootPost and likesCount+ from the applied change set; removed
        # likes contribute -1 (the extension's signed increment).  Empty
        # operands are skipped outright: ⊕ with nothing is the identity, and
        # in the micro-batch steady state most deltas carry only one kind.
        like_c, _like_u = delta.new_likes
        counts = np.bincount(like_c, minlength=n_comments).astype(np.int64)
        unlike_c, _ = delta.removed_likes
        if unlike_c.size:
            counts -= np.bincount(unlike_c, minlength=n_comments).astype(np.int64)
        nz = np.flatnonzero(counts)

        replies_plus = None
        if delta.new_comment_idx.size:
            # line 9-10: repliesScores+ <- 10 x [⊕_j ΔRootPost(:, j)]
            new_comment_counts = delta.delta_root_post().reduce_vector(
                _PLUS, dtype=INT64
            )
            replies_plus = new_comment_counts.apply(_MUL10)
        likes_plus = None
        if nz.size:
            likes_count_plus = Vector.from_coo(nz, counts[nz], n_comments, dtype=INT64)
            # line 11: likesScore+ <- RootPost' ⊕.⊗ likesCount+
            likes_plus = g.root_post.mxv(likes_count_plus, _PLUS_TIMES)
        # line 12: scores+ <- repliesScores+ ⊕ likesScore+
        if replies_plus is not None and likes_plus is not None:
            scores_plus = replies_plus.ewise_add(likes_plus, _ops.plus)
        elif replies_plus is not None:
            scores_plus = replies_plus
        elif likes_plus is not None:
            scores_plus = likes_plus
        else:
            scores_plus = Vector.sparse(INT64, n_posts)
        # line 13: scores' <- scores ⊕ scores+
        self.scores = self.scores.ewise_add(scores_plus, _ops.plus)
        # line 14: Δscores<scores+> <- scores'   (changed scores only)
        delta_scores = Vector.sparse(INT64, n_posts)
        delta_scores.assign(self.scores, mask=scores_plus)

        ts = g.post_timestamps
        ext = g.posts.external_array()
        if delta.has_removals:
            # Non-monotone: reselect the top-3 over the maintained vector.
            self.tracker.reseed(top_k_entries(self.scores.to_dense(), ts, ext, self.k))
        else:
            # merge with previous top-3 (monotone => candidates suffice);
            # brand-new posts with no comments score 0 but may still place.
            for i, s in delta_scores.items():
                self.tracker.offer(int(ext[i]), int(s), int(ts[i]))
            for i in delta.new_post_idx.tolist():
                self.tracker.offer(int(ext[i]), int(self.scores.get(i, 0)), int(ts[i]))
        return self.tracker.top()

    def result_string(self) -> str:
        return self.tracker.result_string()
