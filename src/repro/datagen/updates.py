"""Insert change-sequence generation (the update phase workload).

The TTC benchmark applies a series of change sets after the initial
evaluation; Table II fixes the *total* number of inserted elements per scale
factor.  The mix mirrors the case study's updates (and the paper's Fig. 3b
example): mostly new comments and likes, some friendships, a few new users
and posts.  References point at existing entities, sampled with the same
heavy-tailed popularity as the initial graph so updates hit the hot
comments -- the case that stresses incremental Q2.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.distributions import sample_zipf
from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
)
from repro.model.graph import SocialGraph
from repro.util.validation import ReproError

__all__ = ["generate_change_sets", "DEFAULT_MIX"]

#: fractions of each insert kind (comments, likes, friendships, users, posts)
DEFAULT_MIX = {
    "comment": 0.34,
    "like": 0.32,
    "friendship": 0.18,
    "user": 0.10,
    "post": 0.06,
}


def generate_change_sets(
    graph: SocialGraph,
    total_inserts: int,
    num_change_sets: int = 10,
    seed: int = 42,
    mix: dict[str, float] | None = None,
    removal_fraction: float = 0.0,
) -> list[ChangeSet]:
    """Build ``num_change_sets`` ChangeSets totalling ``total_inserts`` elements.

    The graph is *not* modified; generated changes reference its current
    entities plus entities introduced earlier in the generated sequence.

    ``removal_fraction`` (extension, the paper's "more realistic update
    operations") converts that fraction of the like/friendship changes into
    removals of *existing* edges, producing the mixed insert/remove stream
    of the future-work experiment (``benchmarks/bench_ext_removals.py``).
    """
    if total_inserts < 0:
        raise ReproError("total_inserts must be non-negative")
    if not 0.0 <= removal_fraction <= 1.0:
        raise ReproError("removal_fraction must be in [0, 1]")
    mix = mix or DEFAULT_MIX
    rng = np.random.default_rng(seed)

    kinds = list(mix)
    probs = np.asarray([mix[k] for k in kinds], dtype=np.float64)
    probs = probs / probs.sum()
    draw = rng.choice(len(kinds), size=total_inserts, p=probs)

    # Shadow id pools: existing entities + ones created by earlier changes.
    user_ids = list(graph.users.external_array().tolist())
    post_ids = list(graph.posts.external_array().tolist())
    comment_ids = list(graph.comments.external_array().tolist())
    submission_pool = post_ids + comment_ids
    like_id_keys = {
        (graph.comments.external(c), graph.users.external(u))
        for c, u in graph._like_keys
    }
    friend_id_keys = {
        (graph.users.external(a), graph.users.external(b))
        for a, b in graph._friend_keys
    }

    next_user = (max(user_ids) + 1) if user_ids else 1
    next_post = (max(post_ids) + 1) if post_ids else 1
    next_comment = (max(comment_ids) + 1) if comment_ids else 1
    ts = int(graph.comment_timestamps.max()) + 1 if graph.num_comments else 1
    ts = max(ts, int(graph.post_timestamps.max()) + 1 if graph.num_posts else 1)

    def pick_hot(pool: list[int], exponent: float) -> int:
        """Heavy-tailed pick favouring early (popular) entities."""
        i = int(sample_zipf(rng, len(pool), 1, exponent)[0])
        return pool[i]

    changes: list = []
    for kind_idx in draw.tolist():
        kind = kinds[kind_idx]
        if kind == "user" or not user_ids:
            changes.append(AddUser(next_user, f"user{next_user}"))
            user_ids.append(next_user)
            next_user += 1
            continue
        if kind == "post" or not submission_pool:
            changes.append(AddPost(next_post, ts, pick_hot(user_ids, 0.7)))
            post_ids.append(next_post)
            submission_pool.append(next_post)
            next_post += 1
            ts += 1
            continue
        if kind == "comment":
            parent = pick_hot(submission_pool, 0.8)
            changes.append(
                AddComment(next_comment, ts, pick_hot(user_ids, 0.7), parent)
            )
            comment_ids.append(next_comment)
            submission_pool.append(next_comment)
            next_comment += 1
            ts += 1
            continue
        if (
            kind in ("like", "friendship")
            and removal_fraction > 0.0
            and rng.random() < removal_fraction
        ):
            # Extension: remove an existing edge instead of inserting one.
            if kind == "like" and like_id_keys:
                keys = sorted(like_id_keys)
                c, u = keys[int(rng.integers(len(keys)))]
                like_id_keys.discard((c, u))
                changes.append(RemoveLike(u, c))
                continue
            if kind == "friendship" and friend_id_keys:
                keys = sorted(friend_id_keys)
                a, b = keys[int(rng.integers(len(keys)))]
                friend_id_keys.discard((a, b))
                changes.append(RemoveFriendship(a, b))
                continue
        if kind == "like" and comment_ids:
            placed = False
            for _attempt in range(8):
                c = pick_hot(comment_ids, 0.85)
                u = pick_hot(user_ids, 0.7)
                if (c, u) not in like_id_keys:
                    like_id_keys.add((c, u))
                    changes.append(AddLike(u, c))
                    placed = True
                    break
            if placed:
                continue
        if kind == "friendship" and len(user_ids) >= 2:
            placed = False
            for _attempt in range(8):
                a = pick_hot(user_ids, 0.7)
                b = pick_hot(user_ids, 0.7)
                if a == b:
                    continue
                key = (min(a, b), max(a, b))
                if key not in friend_id_keys:
                    friend_id_keys.add(key)
                    changes.append(AddFriendship(*key))
                    placed = True
                    break
            if placed:
                continue
        # fallthrough (like/friendship impossible): add a user instead
        changes.append(AddUser(next_user, f"user{next_user}"))
        user_ids.append(next_user)
        next_user += 1

    # Split into change sets of (near-)equal size, preserving order so that
    # intra-sequence references stay valid.
    num_change_sets = max(1, num_change_sets)
    bounds = np.linspace(0, len(changes), num_change_sets + 1).astype(int)
    return [
        ChangeSet(changes[bounds[i] : bounds[i + 1]])
        for i in range(num_change_sets)
    ]
