"""Heavy-tailed sampling primitives for the generator.

LDBC Datagen models likes and friendships after Facebook's degree
distribution (power-law with exponential cutoff).  We approximate with
discrete Zipf-Mandelbrot weights -- enough to reproduce the property the
paper's evaluation depends on: a few "hot" comments attract many likes, so
Q2 has large induced subgraphs, while the mass of comments stays small.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_weights", "sample_zipf", "sample_pairs_without_replacement"]


def zipf_weights(n: int, exponent: float, shift: float = 2.0) -> np.ndarray:
    """Normalised Zipf-Mandelbrot weights ``(rank + shift)^-exponent``."""
    if n == 0:
        return np.zeros(0)
    ranks = np.arange(n, dtype=np.float64)
    w = (ranks + shift) ** (-exponent)
    return w / w.sum()


def sample_zipf(
    rng: np.random.Generator, n: int, size: int, exponent: float, shift: float = 2.0
) -> np.ndarray:
    """``size`` indices in [0, n) drawn from Zipf-Mandelbrot weights.

    Ranks are identified with indices, i.e. earlier-created entities are the
    popular ones -- matching preferential attachment where early nodes
    accumulate degree.
    """
    if n == 0 or size == 0:
        return np.zeros(0, dtype=np.int64)
    return rng.choice(n, size=size, p=zipf_weights(n, exponent, shift)).astype(np.int64)


def sample_pairs_without_replacement(
    rng: np.random.Generator,
    n_left: int,
    n_right: int,
    target: int,
    exponent_left: float,
    exponent_right: float,
    *,
    symmetric: bool = False,
    oversample: float = 1.6,
    max_rounds: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Up to ``target`` distinct (left, right) pairs with Zipf endpoints.

    ``symmetric=True`` treats (a, b) == (b, a) and drops self-pairs (the
    friends relation).  Sampling proceeds in oversampled rounds with
    deduplication until the target is met or ``max_rounds`` passes -- dense
    corners (tiny n) may return fewer pairs, which callers tolerate.
    """
    if target <= 0 or n_left == 0 or n_right == 0:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    got_l: list[np.ndarray] = []
    got_r: list[np.ndarray] = []
    seen = np.zeros(0, dtype=np.int64)
    total = 0
    for _ in range(max_rounds):
        need = target - total
        if need <= 0:
            break
        k = max(32, int(need * oversample))
        left = sample_zipf(rng, n_left, k, exponent_left)
        right = sample_zipf(rng, n_right, k, exponent_right)
        if symmetric:
            a = np.minimum(left, right)
            b = np.maximum(left, right)
            keep = a != b
            left, right = a[keep], b[keep]
        keys = left * np.int64(max(n_right, n_left)) + right
        # drop duplicates within the round and against previous rounds
        _, first_idx = np.unique(keys, return_index=True)
        first_idx.sort()
        keys = keys[first_idx]
        left, right = left[first_idx], right[first_idx]
        if seen.size:
            fresh = ~np.isin(keys, seen)
            keys, left, right = keys[fresh], left[fresh], right[fresh]
        take = min(need, keys.size)
        got_l.append(left[:take])
        got_r.append(right[:take])
        seen = np.union1d(seen, keys[:take])
        total += take
    if not got_l:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    return np.concatenate(got_l), np.concatenate(got_r)
