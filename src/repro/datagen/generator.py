"""The synthetic graph generator (LDBC Datagen substitute).

Given a scale factor, produce a :class:`~repro.model.graph.SocialGraph`
whose node and edge counts match Table II and whose degree distributions are
Facebook-like (see :mod:`repro.datagen.distributions`), plus the insert
change sequence for the update phase.

Entity-count composition (calibrated on the edge budget identity)::

    nodes = U + P + C
    edges = C (rootPost) + replies (commented) + L (likes) + F (friends)

with U ≈ 0.28·nodes, P ≈ 0.08·nodes, replies ≈ 0.72·C, and the remaining
edge budget split 60/40 between likes and friendships.  External ids live in
disjoint ranges (users 1e6+, posts 2e6+, comments 3e6+) so the submission
namespace is collision-free.

Run as a module to write CSVs::

    python -m repro.datagen.generator --scale 4 --out data/sf4 --seed 42
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.datagen.distributions import sample_pairs_without_replacement, sample_zipf
from repro.datagen.table2 import row_for
from repro.datagen.updates import generate_change_sets
from repro.model.graph import SocialGraph
from repro.model.loader import save_change_sets, save_graph
from repro.util.validation import ReproError

__all__ = ["GeneratorConfig", "generate_graph", "generate_benchmark_input", "main"]

USER_ID_BASE = 1_000_000
POST_ID_BASE = 2_000_000
COMMENT_ID_BASE = 3_000_000
TS_BASE = 1_000_000


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs; defaults reproduce Table II's composition."""

    user_fraction: float = 0.28
    post_fraction: float = 0.08
    reply_fraction: float = 0.72  # comments whose parent is a comment
    like_edge_share: float = 0.60  # of the residual edge budget
    comment_popularity_exp: float = 0.85  # Zipf exponent for like targets
    user_activity_exp: float = 0.70  # Zipf exponent for user endpoints
    post_popularity_exp: float = 0.80  # Zipf exponent for comment placement


def _plan_counts(nodes: int, edges: int, cfg: GeneratorConfig) -> dict[str, int]:
    users = max(4, int(round(nodes * cfg.user_fraction)))
    posts = max(2, int(round(nodes * cfg.post_fraction)))
    comments = max(3, nodes - users - posts)
    replies = int(round(comments * cfg.reply_fraction))
    structural = comments + replies  # rootPost + commented edges
    residual = max(0, edges - structural)
    likes = int(round(residual * cfg.like_edge_share))
    friends = residual - likes
    return {
        "users": users,
        "posts": posts,
        "comments": comments,
        "replies": replies,
        "likes": likes,
        "friends": friends,
    }


def generate_graph(
    scale_factor: int,
    seed: int = 42,
    config: GeneratorConfig | None = None,
    storage: str = "dynamic",
) -> SocialGraph:
    """Initial graph for one scale factor (deterministic in ``seed``)."""
    row = row_for(scale_factor)
    cfg = config or GeneratorConfig()
    plan = _plan_counts(row.nodes, row.edges, cfg)
    rng = np.random.default_rng(seed + scale_factor)
    g = SocialGraph(storage=storage)

    n_users, n_posts, n_comments = plan["users"], plan["posts"], plan["comments"]

    for i in range(n_users):
        g.add_user(USER_ID_BASE + i, f"user{i}")

    ts = TS_BASE
    post_authors = sample_zipf(rng, n_users, n_posts, cfg.user_activity_exp)
    for i in range(n_posts):
        g.add_post(POST_ID_BASE + i, ts, USER_ID_BASE + int(post_authors[i]))
        ts += 1

    # Comment placement: each comment picks a post (Zipf-popular) or an
    # earlier comment (quadratically early-biased -> preferential-like trees).
    comment_authors = sample_zipf(rng, n_users, n_comments, cfg.user_activity_exp)
    reply_flags = rng.random(n_comments) < cfg.reply_fraction
    post_parents = sample_zipf(rng, n_posts, n_comments, cfg.post_popularity_exp)
    reply_positions = rng.random(n_comments) ** 2
    for i in range(n_comments):
        if reply_flags[i] and i > 0:
            parent_ext = COMMENT_ID_BASE + int(reply_positions[i] * i)
        else:
            parent_ext = POST_ID_BASE + int(post_parents[i])
        g.add_comment(
            COMMENT_ID_BASE + i, ts, USER_ID_BASE + int(comment_authors[i]), parent_ext
        )
        ts += 1

    # Likes: hot comments attract many likes (Q2's large subgraphs).
    like_c, like_u = sample_pairs_without_replacement(
        rng,
        n_comments,
        n_users,
        plan["likes"],
        cfg.comment_popularity_exp,
        cfg.user_activity_exp,
    )
    for c, u in zip(like_c.tolist(), like_u.tolist()):
        g.add_like(USER_ID_BASE + u, COMMENT_ID_BASE + c)

    # Friendships: heavy-tailed symmetric pairs.
    fr_a, fr_b = sample_pairs_without_replacement(
        rng,
        n_users,
        n_users,
        plan["friends"],
        cfg.user_activity_exp,
        cfg.user_activity_exp,
        symmetric=True,
    )
    for a, b in zip(fr_a.tolist(), fr_b.tolist()):
        g.add_friendship(USER_ID_BASE + a, USER_ID_BASE + b)

    return g


def generate_benchmark_input(
    scale_factor: int,
    seed: int = 42,
    num_change_sets: int = 10,
    config: GeneratorConfig | None = None,
    removal_fraction: float = 0.0,
):
    """(initial graph, change sequence) for one Fig. 5 data point.

    ``removal_fraction > 0`` generates the mixed insert/remove stream of the
    removal extension (paper future work).
    """
    g = generate_graph(scale_factor, seed=seed, config=config)
    row = row_for(scale_factor)
    change_sets = generate_change_sets(
        g,
        total_inserts=row.inserts,
        num_change_sets=num_change_sets,
        seed=seed + 7 * scale_factor,
        removal_fraction=removal_fraction,
    )
    return g, change_sets


def main(argv=None) -> int:
    """CLI: write a generated graph + changes to a directory as CSV."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=1, help="Table II scale factor")
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--change-sets", type=int, default=10)
    ap.add_argument("--out", required=True, help="output directory")
    args = ap.parse_args(argv)
    graph, changes = generate_benchmark_input(
        args.scale, seed=args.seed, num_change_sets=args.change_sets
    )
    save_graph(args.out, graph)
    save_change_sets(args.out, changes)
    stats = graph.stats()
    print(
        f"SF{args.scale}: nodes={stats['nodes']} edges={stats['edges']} "
        f"inserts={sum(len(cs) for cs in changes)} -> {args.out}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
