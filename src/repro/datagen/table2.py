"""Table II of the paper: graph sizes w.r.t. the scale factor.

Counts marked "15k"/"1.1M" in the paper are printed rounded; the constants
below use those rounded values as generation targets.  The benchmark
``benchmarks/bench_table2_datagen.py`` regenerates the table and reports the
achieved counts next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Table2Row", "TABLE2", "scale_factors", "row_for"]


@dataclass(frozen=True)
class Table2Row:
    scale_factor: int
    nodes: int
    edges: int
    inserts: int


TABLE2: dict[int, Table2Row] = {
    r.scale_factor: r
    for r in (
        Table2Row(1, 1_274, 2_533, 67),
        Table2Row(2, 2_071, 4_207, 120),
        Table2Row(4, 4_350, 9_118, 132),
        Table2Row(8, 7_530, 18_000, 104),
        Table2Row(16, 15_000, 35_000, 110),
        Table2Row(32, 30_000, 71_000, 117),
        Table2Row(64, 58_000, 143_000, 68),
        Table2Row(128, 115_000, 287_000, 86),
        Table2Row(256, 225_000, 568_000, 45),
        Table2Row(512, 443_000, 1_100_000, 112),
        Table2Row(1024, 859_000, 2_300_000, 74),
    )
}


def scale_factors() -> list[int]:
    return sorted(TABLE2)


def row_for(scale_factor: int) -> Table2Row:
    """Table II row; unlisted scale factors interpolate geometrically."""
    if scale_factor in TABLE2:
        return TABLE2[scale_factor]
    # Geometric continuation for out-of-table sizes (used in smoke tests):
    # nodes and edges roughly double per SF doubling.
    base = TABLE2[1]
    return Table2Row(
        scale_factor,
        int(base.nodes * scale_factor * 0.82),
        int(base.edges * scale_factor * 0.9),
        100,
    )
