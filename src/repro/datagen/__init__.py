"""Synthetic social-network generation (the LDBC Datagen substitute).

The paper benchmarks on graphs produced by the TTC 2018 framework, whose
element counts follow the LDBC SNB Datagen's Facebook-like distributions.
Without the (Hadoop-based, network-distributed) LDBC generator available,
:mod:`repro.datagen.generator` produces seeded synthetic graphs that

* match Table II's node / edge / insert counts per scale factor, and
* reproduce the property that makes Q2 interesting: heavy-tailed likes and
  friendships, so popular comments induce large subgraphs.

:mod:`repro.datagen.table2` holds the paper's Table II constants;
:mod:`repro.datagen.updates` builds the insert change sequences.
"""

from repro.datagen.table2 import TABLE2, Table2Row, scale_factors
from repro.datagen.generator import GeneratorConfig, generate_graph, generate_benchmark_input
from repro.datagen.updates import generate_change_sets

__all__ = [
    "TABLE2",
    "Table2Row",
    "scale_factors",
    "GeneratorConfig",
    "generate_graph",
    "generate_benchmark_input",
    "generate_change_sets",
]
