"""The benchmark runner: regenerate the paper's Fig. 5 and Table II.

Sweeps (tool x query x scale factor), repeating each configuration ``runs``
times on freshly generated input (same seed -> identical data per run) and
aggregating with the geometric mean, exactly as the paper's framework does.
Cross-tool result strings are verified for equality on every run -- a wrong
answer invalidates a benchmark, so it aborts loudly.

CLI (also installed as ``ttc-bench``)::

    python -m repro.benchmark.runner --report fig5 --max-sf 16 --runs 3
    python -m repro.benchmark.runner --report table2 --max-sf 64
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field

from repro.benchmark.phases import PhaseTimes, run_once
from repro.benchmark.reporting import (
    ascii_loglog_chart,
    format_fig5_table,
    format_table2,
    geometric_mean,
    results_to_csv,
)
from repro.datagen.generator import generate_benchmark_input
from repro.datagen.table2 import TABLE2, scale_factors
from repro.parallel.executor import make_executor
from repro.queries.engine import make_engine
from repro.util.validation import ReproError

__all__ = [
    "BenchmarkConfig",
    "BenchmarkResult",
    "ToolSpec",
    "FIG5_TOOLS",
    "run_benchmark",
    "main",
]


@dataclass(frozen=True)
class ToolSpec:
    """One Fig. 5 line: a tool name plus its engine configuration."""

    label: str
    tool: str
    executor_kind: str = "serial"
    workers: int = 1
    q2_algorithm: str = "fastsv"

    def make(self, query: str):
        executor = None
        if self.executor_kind != "serial":
            executor = make_executor(self.executor_kind, self.workers)
        return make_engine(
            self.tool, query, executor=executor, q2_algorithm=self.q2_algorithm
        )


#: the six lines of Fig. 5.  "8 threads" maps to the persistent fork pool
#: with shared-memory priming -- the executor whose cost model matches
#: OpenMP's (see repro.parallel.pool for the substitution rationale;
#: bench_ablation_parallel.py compares all executor kinds).
FIG5_TOOLS: tuple[ToolSpec, ...] = (
    ToolSpec("GraphBLAS Batch", "graphblas-batch"),
    ToolSpec("GraphBLAS Incremental", "graphblas-incremental"),
    ToolSpec("GraphBLAS Batch (8 thr)", "graphblas-batch", "persistent", 8),
    ToolSpec("GraphBLAS Incr (8 thr)", "graphblas-incremental", "persistent", 8),
    ToolSpec("NMF Batch", "nmf-batch"),
    ToolSpec("NMF Incremental", "nmf-incremental"),
)


@dataclass
class BenchmarkConfig:
    queries: tuple[str, ...] = ("Q1", "Q2")
    tools: tuple[ToolSpec, ...] = FIG5_TOOLS
    scale_factors: tuple[int, ...] = (1, 2, 4, 8)
    runs: int = 5
    seed: int = 42
    num_change_sets: int = 10
    verify: bool = True


@dataclass
class BenchmarkResult:
    tool: str
    query: str
    scale_factor: int
    runs: int
    load_and_initial: float
    update_and_reevaluation: float
    per_run: list[PhaseTimes] = field(default_factory=list)


def run_benchmark(config: BenchmarkConfig, *, progress=None) -> list[BenchmarkResult]:
    """Execute the full sweep; returns one aggregated result per cell."""
    results: list[BenchmarkResult] = []
    for query in config.queries:
        for sf in config.scale_factors:
            expected: list[str] | None = None
            for spec in config.tools:
                phases: list[PhaseTimes] = []
                for run in range(config.runs):
                    graph, change_sets = generate_benchmark_input(
                        sf, seed=config.seed, num_change_sets=config.num_change_sets
                    )
                    pt = run_once(lambda: spec.make(query), graph, change_sets)
                    phases.append(pt)
                    if config.verify:
                        if expected is None:
                            expected = pt.results
                        elif pt.results != expected:
                            diffs = [
                                (i, a, b)
                                for i, (a, b) in enumerate(zip(pt.results, expected))
                                if a != b
                            ]
                            raise ReproError(
                                f"result mismatch: {spec.label} {query} SF{sf}: {diffs[:3]}"
                            )
                res = BenchmarkResult(
                    tool=spec.label,
                    query=query,
                    scale_factor=sf,
                    runs=config.runs,
                    load_and_initial=geometric_mean(
                        [p.load_and_initial for p in phases]
                    ),
                    update_and_reevaluation=geometric_mean(
                        [p.update_and_reevaluation for p in phases]
                    ),
                    per_run=phases,
                )
                results.append(res)
                if progress is not None:
                    progress(res)
    return results


def _fig5_report(results, out=None) -> None:
    out = out if out is not None else sys.stdout
    for query in sorted({r.query for r in results}):
        for phase in ("load_and_initial", "update_and_reevaluation"):
            print(format_fig5_table(results, query, phase), file=out)
            print(file=out)
            series = {}
            for r in results:
                if r.query == query:
                    series.setdefault(r.tool, []).append(
                        (float(r.scale_factor), getattr(r, phase))
                    )
            print(
                ascii_loglog_chart(
                    series, title=f"Fig. 5 panel: {query} / {phase}"
                ),
                file=out,
            )
            print(file=out)


def _table2_report(max_sf: int, seed: int, out=None) -> None:
    out = out if out is not None else sys.stdout
    achieved = {}
    for sf in scale_factors():
        if sf > max_sf:
            break
        graph, changes = generate_benchmark_input(sf, seed=seed)
        stats = graph.stats()
        achieved[sf] = {
            "nodes": stats["nodes"],
            "edges": stats["edges"],
            "inserts": sum(len(cs) for cs in changes),
        }
    print(format_table2(achieved, TABLE2), file=out)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--report", choices=("fig5", "table2"), default="fig5")
    ap.add_argument("--max-sf", type=int, default=int(os.environ.get("REPRO_MAX_SF", 8)))
    ap.add_argument("--runs", type=int, default=5)
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--queries", nargs="+", default=["Q1", "Q2"])
    ap.add_argument("--change-sets", type=int, default=10)
    ap.add_argument("--csv", help="also write results to this CSV file")
    ap.add_argument(
        "--ttc-csv",
        help="also write every run in the TTC 2018 contest log format "
        "(Tool;View;ChangeSet;RunIndex;Iteration;PhaseName;MetricName;MetricValue)",
    )
    ap.add_argument(
        "--serial-only",
        action="store_true",
        help="skip the process-pool (8-thread) tool variants",
    )
    args = ap.parse_args(argv)

    if args.report == "table2":
        _table2_report(args.max_sf, args.seed)
        return 0

    sfs = tuple(sf for sf in scale_factors() if sf <= args.max_sf)
    tools = tuple(
        t for t in FIG5_TOOLS if not (args.serial_only and t.executor_kind != "serial")
    )
    config = BenchmarkConfig(
        queries=tuple(args.queries),
        tools=tools,
        scale_factors=sfs,
        runs=args.runs,
        seed=args.seed,
        num_change_sets=args.change_sets,
    )

    def progress(res: BenchmarkResult) -> None:
        print(
            f"  {res.query} SF{res.scale_factor:<5} {res.tool:<26} "
            f"load+init={res.load_and_initial:8.4f}s  "
            f"update+reeval={res.update_and_reevaluation:8.4f}s",
            file=sys.stderr,
        )

    results = run_benchmark(config, progress=progress)
    _fig5_report(results)
    if args.csv:
        with open(args.csv, "w") as f:
            f.write(results_to_csv(results) + "\n")
    if args.ttc_csv:
        from repro.benchmark.ttc_format import render_results

        with open(args.ttc_csv, "w") as f:
            f.write(render_results(results) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
