"""The benchmark framework of the case study (TTC 2018 harness substitute).

Phase structure follows the contest framework the paper uses:

1. **Initialization** -- construct the tool (excluded from Fig. 5's axes)
2. **Load** -- hand the initial model to the tool
3. **Initial evaluation** -- first query evaluation
4. **Update + Reevaluation** -- per change set: apply inserts, re-evaluate

Fig. 5 plots two aggregates per (tool, query, scale factor): *load and
initial evaluation* (2+3) and *update and reevaluation* (sum over 4).  Each
configuration runs ``runs`` times (paper: 5) and reports the geometric mean.
"""

from repro.benchmark.phases import PhaseTimes, run_once
from repro.benchmark.runner import (
    FIG5_TOOLS,
    BenchmarkConfig,
    BenchmarkResult,
    run_benchmark,
    main,
)
from repro.benchmark.reporting import (
    ascii_loglog_chart,
    format_fig5_table,
    format_table2,
    geometric_mean,
    results_to_csv,
)
from repro.benchmark.ttc_format import (
    TTC_HEADER,
    TTCRecord,
    aggregate_times,
    parse as parse_ttc,
    render_results as render_ttc,
    render_run as render_ttc_run,
    verify_elements,
)

__all__ = [
    "PhaseTimes",
    "run_once",
    "BenchmarkConfig",
    "BenchmarkResult",
    "run_benchmark",
    "FIG5_TOOLS",
    "main",
    "geometric_mean",
    "format_fig5_table",
    "format_table2",
    "ascii_loglog_chart",
    "results_to_csv",
    "TTC_HEADER",
    "TTCRecord",
    "parse_ttc",
    "render_ttc",
    "render_ttc_run",
    "aggregate_times",
    "verify_elements",
]
