"""Single benchmark execution: drive one engine through the TTC phases."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.changes import ChangeSet
from repro.model.graph import SocialGraph
from repro.util.timer import WallClock

__all__ = ["PhaseTimes", "run_once"]


@dataclass
class PhaseTimes:
    """Wall-clock seconds of every phase of one run."""

    initialization: float = 0.0
    load: float = 0.0
    initial: float = 0.0
    updates: list[float] = field(default_factory=list)
    #: result strings, for cross-tool correctness verification
    results: list[str] = field(default_factory=list)

    @property
    def load_and_initial(self) -> float:
        """Fig. 5 upper panels: load + initial evaluation."""
        return self.load + self.initial

    @property
    def update_and_reevaluation(self) -> float:
        """Fig. 5 lower panels: total update + reevaluation time."""
        return float(sum(self.updates))


def run_once(engine_factory, graph: SocialGraph, change_sets: list[ChangeSet]) -> PhaseTimes:
    """One full benchmark execution of one tool configuration.

    ``engine_factory`` constructs a fresh engine (counted as the
    Initialization phase); the engine then loads ``graph``, evaluates, and
    processes every change set.  The graph is mutated, so callers pass a
    fresh copy per run (the runner regenerates it from the seed).
    """
    clock = WallClock.now

    t0 = clock()
    engine = engine_factory()
    t1 = clock()

    engine.load(graph)
    t2 = clock()

    times = PhaseTimes(initialization=t1 - t0, load=t2 - t1)
    times.results.append(engine.initial())
    times.initial = clock() - t2

    for cs in change_sets:
        t = clock()
        times.results.append(engine.update(cs))
        times.updates.append(clock() - t)

    engine.close()
    return times
