"""The TTC 2018 benchmark framework's output format.

The contest harness (Hinkel, "The TTC 2018 Social Media case" [7]) collects
measurements from every solution as semicolon-separated records::

    Tool;View;ChangeSet;RunIndex;Iteration;PhaseName;MetricName;MetricValue

* ``View`` is the query (``Q1``/``Q2``);
* ``ChangeSet`` names the input model (the scale factor directory);
* ``Iteration`` is 0 for the one-shot phases and the 1-based change-set
  number for ``Update`` phases;
* ``PhaseName`` is one of ``Initialization``, ``Load``, ``Initial``,
  ``Update``;
* ``MetricName`` is ``Time`` (nanoseconds) or ``Elements`` (the result
  string, used by the contest for cross-solution correctness checks).

This module renders :class:`~repro.benchmark.phases.PhaseTimes` into that
exact format and parses/aggregates it back, so our runner's output can be
fed to the contest's R reporting scripts (and vice versa: reference
solutions' logs can be compared against ours line-for-line).
"""

from __future__ import annotations

import csv
import io
from collections import defaultdict
from dataclasses import dataclass

from repro.benchmark.phases import PhaseTimes
from repro.benchmark.reporting import geometric_mean
from repro.util.validation import ReproError

__all__ = [
    "TTC_HEADER",
    "TTCRecord",
    "render_run",
    "render_results",
    "parse",
    "aggregate_times",
    "verify_elements",
]

TTC_HEADER = "Tool;View;ChangeSet;RunIndex;Iteration;PhaseName;MetricName;MetricValue"

_PHASES = ("Initialization", "Load", "Initial", "Update")
_METRICS = ("Time", "Memory", "Elements")


@dataclass(frozen=True)
class TTCRecord:
    """One parsed line of a TTC benchmark log."""

    tool: str
    view: str
    change_set: str
    run_index: int
    iteration: int
    phase: str
    metric: str
    value: str

    @property
    def time_seconds(self) -> float:
        """The Time metric converted from the contest's nanoseconds."""
        if self.metric != "Time":
            raise ReproError(f"record carries {self.metric!r}, not Time")
        return int(self.value) / 1e9

    def line(self) -> str:
        return ";".join(
            (
                self.tool,
                self.view,
                self.change_set,
                str(self.run_index),
                str(self.iteration),
                self.phase,
                self.metric,
                self.value,
            )
        )


def _ns(seconds: float) -> str:
    return str(int(round(seconds * 1e9)))


def render_run(
    tool: str,
    view: str,
    change_set: str,
    run_index: int,
    times: PhaseTimes,
    *,
    with_results: bool = True,
) -> list[str]:
    """All log lines of a single benchmark execution, in phase order."""
    rec = lambda it, phase, metric, value: TTCRecord(  # noqa: E731
        tool, view, change_set, run_index, it, phase, metric, value
    ).line()
    lines = [
        rec(0, "Initialization", "Time", _ns(times.initialization)),
        rec(0, "Load", "Time", _ns(times.load)),
        rec(0, "Initial", "Time", _ns(times.initial)),
    ]
    if with_results and times.results:
        lines.append(rec(0, "Initial", "Elements", times.results[0]))
    for i, t in enumerate(times.updates, start=1):
        lines.append(rec(i, "Update", "Time", _ns(t)))
        if with_results and i < len(times.results):
            lines.append(rec(i, "Update", "Elements", times.results[i]))
    return lines


def render_results(results, *, header: bool = True) -> str:
    """Render runner :class:`BenchmarkResult` objects into a full TTC log.

    Every individual run (not the aggregate) is emitted, as the contest
    framework's R scripts do their own aggregation.
    """
    out = [TTC_HEADER] if header else []
    for res in results:
        for run_index, pt in enumerate(res.per_run):
            out.extend(
                render_run(
                    res.tool, res.query, f"sf{res.scale_factor}", run_index, pt
                )
            )
    return "\n".join(out)


def parse(text: str) -> list[TTCRecord]:
    """Parse a TTC log (with or without header) into records.

    Malformed lines raise :class:`ReproError` with the offending line number
    -- silently skipping records would corrupt cross-tool comparisons.
    """
    records: list[TTCRecord] = []
    reader = csv.reader(io.StringIO(text), delimiter=";")
    for lineno, row in enumerate(reader, start=1):
        if not row or (lineno == 1 and row == TTC_HEADER.split(";")):
            continue
        if len(row) != 8:
            raise ReproError(f"TTC log line {lineno}: expected 8 fields, got {len(row)}")
        tool, view, change_set, run_index, iteration, phase, metric, value = row
        if phase not in _PHASES:
            raise ReproError(f"TTC log line {lineno}: unknown phase {phase!r}")
        if metric not in _METRICS:
            raise ReproError(f"TTC log line {lineno}: unknown metric {metric!r}")
        try:
            records.append(
                TTCRecord(
                    tool, view, change_set, int(run_index), int(iteration),
                    phase, metric, value,
                )
            )
        except ValueError as exc:
            raise ReproError(f"TTC log line {lineno}: {exc}") from exc
    return records


def aggregate_times(records) -> dict[tuple[str, str, str, str], float]:
    """Geometric-mean seconds per (tool, view, change_set, phase-group).

    Phase groups follow Fig. 5: ``load_and_initial`` sums Load + Initial
    per run; ``update_and_reevaluation`` sums all Update iterations per
    run.  Aggregation across runs uses the geometric mean, as the paper
    reports.
    """
    per_run: dict[tuple, float] = defaultdict(float)
    for r in records:
        if r.metric != "Time":
            continue
        group = "load_and_initial" if r.phase in ("Load", "Initial") else (
            "update_and_reevaluation" if r.phase == "Update" else None
        )
        if group is None:
            continue
        per_run[(r.tool, r.view, r.change_set, group, r.run_index)] += r.time_seconds
    collected: dict[tuple, list[float]] = defaultdict(list)
    for (tool, view, cs, group, _run), total in sorted(per_run.items()):
        collected[(tool, view, cs, group)].append(total)
    return {key: geometric_mean(vals) for key, vals in collected.items()}


def verify_elements(records) -> None:
    """Cross-tool correctness check on the Elements records.

    For every (view, change_set, iteration), all tools and runs must report
    the identical result string -- the contest disqualifies mismatches, and
    so do we.
    """
    seen: dict[tuple, tuple[str, str]] = {}
    for r in records:
        if r.metric != "Elements":
            continue
        key = (r.view, r.change_set, r.iteration)
        if key in seen and seen[key][1] != r.value:
            other_tool, other_value = seen[key]
            raise ReproError(
                f"result mismatch at {key}: {r.tool}={r.value!r} "
                f"vs {other_tool}={other_value!r}"
            )
        seen.setdefault(key, (r.tool, r.value))
