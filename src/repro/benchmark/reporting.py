"""Result aggregation and presentation: tables, CSV and ASCII log-log plots.

The paper reports the geometric mean of 5 runs and plots both Fig. 5 axes
logarithmically; :func:`ascii_loglog_chart` renders the same series in the
terminal so the reproduction is inspectable without matplotlib.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "geometric_mean",
    "format_fig5_table",
    "format_table2",
    "ascii_loglog_chart",
    "results_to_csv",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; tolerates (clamps) sub-microsecond values."""
    vals = [max(float(v), 1e-9) for v in values]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _fmt_time(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:8.1f}"
    if seconds >= 1:
        return f"{seconds:8.3f}"
    return f"{seconds:8.4f}"


def format_fig5_table(results, query: str, phase: str) -> str:
    """One Fig. 5 panel as a text table: rows = scale factors, cols = tools.

    ``results`` is an iterable of BenchmarkResult; ``phase`` is
    ``load_and_initial`` or ``update_and_reevaluation``.
    """
    rows = [r for r in results if r.query == query]
    tools = sorted({r.tool for r in rows})
    sfs = sorted({r.scale_factor for r in rows})
    title = {
        "load_and_initial": "Load and initial evaluation",
        "update_and_reevaluation": "Update and reevaluation",
    }[phase]
    lines = [f"{query} -- {title} (geometric-mean seconds)"]
    header = "SF".rjust(6) + "".join(t.rjust(28) for t in tools)
    lines.append(header)
    lines.append("-" * len(header))
    for sf in sfs:
        cells = [f"{sf}".rjust(6)]
        for t in tools:
            match = [r for r in rows if r.scale_factor == sf and r.tool == t]
            cells.append(
                _fmt_time(getattr(match[0], phase)).rjust(28) if match else "-".rjust(28)
            )
        lines.append("".join(cells))
    return "\n".join(lines)


def format_table2(achieved: dict[int, dict], paper_rows: dict) -> str:
    """Table II regeneration: paper targets vs achieved counts."""
    lines = [
        "Table II -- graph sizes w.r.t. the scale factor (paper -> generated)",
        f"{'SF':>6} {'#nodes':>20} {'#edges':>22} {'#inserts':>18}",
    ]
    for sf in sorted(achieved):
        a = achieved[sf]
        p = paper_rows[sf]
        lines.append(
            f"{sf:>6} {p.nodes:>9} -> {a['nodes']:<8} {p.edges:>9} -> {a['edges']:<9} "
            f"{p.inserts:>7} -> {a['inserts']:<7}"
        )
    return "\n".join(lines)


def ascii_loglog_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 22,
    title: str = "",
) -> str:
    """Render (x, y) series on a log-log grid with one symbol per series."""
    symbols = "BIbiNnXOZ*+#"
    pts = [(x, y) for s in series.values() for x, y in s if x > 0 and y > 0]
    if not pts:
        return f"{title}\n(no data)"
    lx = [math.log10(x) for x, _ in pts]
    ly = [math.log10(max(y, 1e-9)) for _, y in pts]
    x0, x1 = min(lx), max(lx)
    y0, y1 = min(ly), max(ly)
    x1 = x1 if x1 > x0 else x0 + 1
    y1 = y1 if y1 > y0 else y0 + 1
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, ch: str) -> None:
        cx = int((math.log10(x) - x0) / (x1 - x0) * (width - 1))
        cy = int((math.log10(max(y, 1e-9)) - y0) / (y1 - y0) * (height - 1))
        grid[height - 1 - cy][cx] = ch

    legend = []
    for i, (name, data) in enumerate(series.items()):
        ch = symbols[i % len(symbols)]
        legend.append(f"  {ch} = {name}")
        for x, y in data:
            place(x, y, ch)

    out = [title] if title else []
    out.append(f"y: {10**y1:.3g}s (top) .. {10**y0:.3g}s (bottom), log scale")
    out.extend("|" + "".join(row) + "|" for row in grid)
    out.append(f"x: SF {10**x0:.3g} .. {10**x1:.3g}, log scale")
    out.extend(legend)
    return "\n".join(out)


def results_to_csv(results) -> str:
    """Flatten BenchmarkResults to CSV (one row per tool/query/SF)."""
    lines = [
        "tool,query,scale_factor,runs,load_and_initial_s,update_and_reevaluation_s"
    ]
    for r in sorted(results, key=lambda r: (r.query, r.tool, r.scale_factor)):
        lines.append(
            f"{r.tool},{r.query},{r.scale_factor},{r.runs},"
            f"{r.load_and_initial:.6f},{r.update_and_reevaluation:.6f}"
        )
    return "\n".join(lines)
