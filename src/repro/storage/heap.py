"""The default arena home: plain in-process ndarrays.

Bit-identical to the storage the dynamic format shipped with -- the
conformance suite holds the other backends to this one's ``to_coo``
output.  Not durable: ``flush`` is a no-op and snapshots of heap-backed
graphs serialize through the CSV dialect as they always have.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.storage import ArenaStorage
from repro.util.validation import ReproError

__all__ = ["HeapArena"]


class HeapArena(ArenaStorage):
    backend = "heap"
    persistent = False

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}
        self._meta: Optional[dict] = None

    def new(self, name: str, size: int, dtype, fill=0) -> np.ndarray:
        dtype = np.dtype(dtype)
        if fill == 0:
            arr = np.zeros(size, dtype=dtype)
        else:
            arr = np.full(size, fill, dtype=dtype)
        self._arrays[name] = arr
        return arr

    def resize(self, name: str, arr: np.ndarray, size: int, keep: int,
               fill=0) -> np.ndarray:
        # Explicit allocate-and-copy of the live prefix.  (np.resize would
        # *repeat* the old content into the new tail -- harmless while
        # nothing reads unwritten slots, but a correctness trap -- and pays
        # an extra temporary copy.)
        new = self.new(name, size, arr.dtype, fill)
        keep = min(keep, size)
        new[:keep] = arr[:keep]
        return new

    def put_meta(self, meta: dict) -> None:
        self._meta = dict(meta)

    def get_meta(self) -> Optional[dict]:
        return self._meta

    def open_array(self, name: str, dtype) -> np.ndarray:
        arr = self._arrays.get(name)
        if arr is None:
            raise ReproError(f"heap arena has no array {name!r} to open")
        return arr

    def flush(self) -> None:
        pass

    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())

    def snapshot_to(self, dest) -> None:
        raise ReproError("heap arenas are not durable; snapshot via the CSV path")

    def adopt_from(self, src) -> None:
        raise ReproError("heap arenas are not durable; restore via the CSV path")
