"""Pluggable arena storage for :class:`~repro.graphblas.dynamic.DynamicMatrix`.

The dynamic format keeps every relation in a handful of flat arrays (the
``cols``/``vals`` arena plus the ``start``/``len``/``cap`` row tables).
This package is the seam that decides *where those arrays live*:

``heap`` (:class:`~repro.storage.heap.HeapArena`, default)
    Plain in-process ndarrays -- exactly the storage the dynamic format
    shipped with, bit-identical allocation sizes and all.  Not durable:
    snapshots serialize through the CSV graph dialect as before.

``mmap`` (:class:`~repro.storage.mmapfile.MmapArena`)
    Each array is a ``numpy.memmap`` over a file in the store's
    directory, so arenas page in and out under OS control -- graphs
    larger than RAM work, and a snapshot is *flush + copy the files*
    instead of re-serializing the graph (see
    :meth:`~repro.serving.persistence.SnapshotStore.save`).

``sqlite`` (:class:`~repro.storage.sqlite.SqliteArena`)
    A slow-but-safe durable oracle: arrays live on the heap, but
    ``flush()`` commits them bit-exactly into an SQLite database as
    blobs *plus* a relational ``entries(row, col, val)`` mirror that
    external SQL can query.  Property tests cross-check the fast
    backends against it.

All three present the same :class:`ArenaStorage` surface; the
conformance suite (``tests/storage/``) drives identical mutation streams
-- removals included -- through each and asserts bit-identical
``to_coo`` output.  Backend selection threads through
``SocialGraph(storage=...)`` and ``GraphService(storage=...)``, with the
``REPRO_STORAGE`` environment variable steering every
default-constructed graph (how the ``tier1-mmap`` CI job runs whole
suites out-of-core).

>>> from repro.storage import make_store, resolve_storage
>>> resolve_storage("dynamic")[0]
'dynamic'
>>> store = make_store("heap")
>>> arr = store.new("cols", 4, "int64")
>>> arr[0] = 7
>>> int(store.resize("cols", arr, 8, keep=4)[0])
7
>>> store.persistent
False
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import numpy as np

from repro.faults import register_crash_point
from repro.util.validation import ReproError

__all__ = [
    "ArenaStorage",
    "BACKENDS",
    "CRASH_ARENA_FLUSH",
    "make_store",
    "resolve_storage",
]

#: fired by the file-backed backends inside ``flush()``, after the store
#: decided to persist but before any bytes are durable -- the
#: crash-during-flush moment the storage recovery suite kills at
CRASH_ARENA_FLUSH = register_crash_point(
    "arena-flush",
    "ArenaStorage.flush (mmap/sqlite), before arena bytes reach durable "
    "storage",
)


class ArenaStorage:
    """The protocol a DynamicMatrix array home implements.

    A store owns a *named set of 1-D arrays* (one namespace per
    DynamicMatrix) plus a JSON-able metadata blob.  The matrix keeps the
    returned ndarrays as plain attributes -- the hot mutation path never
    calls through the store -- and comes back only to grow/shrink
    (:meth:`resize`), persist (:meth:`flush`), or account
    (:meth:`nbytes`).

    Durability contract: after ``put_meta`` + ``flush``, a store with
    :attr:`persistent` true can be reopened (or :meth:`snapshot_to`-ed
    and later :meth:`adopt_from`-ed) and every array restored bit-exactly
    to its flushed prefix via :meth:`open_array` and :meth:`get_meta`.
    The heap backend is the degenerate case: ``persistent`` is false and
    flush is a no-op.
    """

    #: short name ("heap"/"mmap"/"sqlite"), used in metrics labels
    backend: str = "?"
    #: whether flush()ed state survives this process
    persistent: bool = False

    def new(self, name: str, size: int, dtype, fill=0) -> np.ndarray:
        """Allocate the array ``name`` with ``size`` elements of ``fill``."""
        raise NotImplementedError

    def resize(self, name: str, arr: np.ndarray, size: int, keep: int,
               fill=0) -> np.ndarray:
        """Return ``name`` re-sized to ``size`` elements.

        The first ``keep`` elements of ``arr`` are preserved; everything
        past them reads as ``fill``.  ``size < arr.size`` shrinks (the
        compaction path).  The returned array replaces ``arr`` -- the old
        reference must not be written through afterwards.
        """
        raise NotImplementedError

    def put_meta(self, meta: dict) -> None:
        """Stage the JSON-able metadata blob persisted by the next flush."""
        raise NotImplementedError

    def get_meta(self) -> Optional[dict]:
        """The last *flushed* metadata blob, or None if never flushed."""
        raise NotImplementedError

    def open_array(self, name: str, dtype) -> np.ndarray:
        """Re-open a flushed array (persistent backends only)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make every array + staged meta durable (no-op on heap)."""
        raise NotImplementedError

    def nbytes(self) -> int:
        """Resident/allocated bytes this store accounts for."""
        raise NotImplementedError

    def snapshot_to(self, dest) -> None:
        """Copy the flushed durable form into directory ``dest``.

        Call :meth:`flush` first; the copy is of durable bytes, never of
        live maps (hardlinking a live arena file would alias the pages --
        a later in-place write would corrupt the published snapshot).
        """
        raise NotImplementedError

    def adopt_from(self, src) -> None:
        """Replace this store's durable state with a snapshot directory.

        After adoption, :meth:`get_meta`/:meth:`open_array` read the
        adopted state.  Any previously returned array is invalidated.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release file handles / connections (idempotent)."""


#: backend name -> needs a directory?
BACKENDS = {"heap": False, "mmap": True, "sqlite": True}


def resolve_storage(storage: Optional[str] = None) -> tuple[str, Optional[str]]:
    """Resolve a user-facing ``storage=`` spec to ``(kind, backend)``.

    ``kind`` is ``"matrix"`` (the legacy log-flush oracle, no arena) or
    ``"dynamic"`` (arena-backed), and ``backend`` names the arena home
    for dynamic graphs.  ``None`` and ``"dynamic"`` defer to the
    ``REPRO_STORAGE`` environment variable (default ``heap``), so one
    env knob flips every default-constructed graph in the process;
    ``"heap"``/``"mmap"``/``"sqlite"`` pin the backend explicitly.
    """
    env = os.environ.get("REPRO_STORAGE", "").strip().lower()
    if storage is None:
        storage = "matrix" if env == "matrix" else "dynamic"
    if storage == "matrix":
        return ("matrix", None)
    if storage == "dynamic":
        backend = env if env in BACKENDS else "heap"
        return ("dynamic", backend)
    if storage in BACKENDS:
        return ("dynamic", storage)
    raise ReproError(
        f"unknown storage {storage!r}; expected one of "
        f"{sorted(('matrix', 'dynamic', *BACKENDS))}"
    )


def make_store(backend: str, *, directory=None, name: str = "arena") -> ArenaStorage:
    """Construct an :class:`ArenaStorage` for ``backend``.

    File-backed backends place their arrays under
    ``directory / name`` (``name`` namespaces the relations of one
    graph); the heap backend ignores both.
    """
    if backend == "heap":
        from repro.storage.heap import HeapArena

        return HeapArena()
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown storage backend {backend!r}; expected one of "
            f"{sorted(BACKENDS)}"
        )
    if directory is None:
        raise ReproError(f"storage backend {backend!r} needs a directory")
    home = Path(directory) / name
    if backend == "mmap":
        from repro.storage.mmapfile import MmapArena

        return MmapArena(home)
    from repro.storage.sqlite import SqliteArena

    return SqliteArena(home.with_suffix(".db"))
