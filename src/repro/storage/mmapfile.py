"""Out-of-core arenas: every array is a ``numpy.memmap`` over a file.

One :class:`MmapArena` owns a directory holding ``<name>.bin`` per array
plus a ``meta.json``.  The mutation hot path is untouched -- a memmap
slice supports the same in-place writes and fancy indexing as an ndarray
-- and the OS pages cold arena regions out, so graphs larger than RAM
work.  Growth is ``ftruncate`` + remap: the file *is* the array, no
allocate-and-copy (the kernel moves nothing), which also means a grown
file's new tail reads as zeros for free.

Durability: :meth:`flush` msyncs every map and then publishes
``meta.json`` atomically (tmp + rename) -- the meta write is the flush's
commit point, but the *live* directory is never what recovery trusts:
snapshots copy the flushed files into the snapshot's own tmp tree
(:meth:`snapshot_to`), which the snapshot store publishes with its usual
fsync + rename discipline.  The copy is deliberate -- hardlinking a live
arena file into a snapshot would share the inode, and the next in-place
write through the map would corrupt the published snapshot in place.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Optional

import numpy as np

from repro.faults import fire as _fire_fault
from repro.storage import CRASH_ARENA_FLUSH, ArenaStorage
from repro.util.validation import ReproError

__all__ = ["MmapArena"]

_META = "meta.json"


class MmapArena(ArenaStorage):
    """File-per-array arena storage under one directory."""

    backend = "mmap"
    persistent = True

    def __init__(self, home) -> None:
        self.home = Path(home)
        self.home.mkdir(parents=True, exist_ok=True)
        #: full-extent parent maps, kept for flush(); the arrays handed to
        #: the matrix are exact-size slices of these
        self._maps: dict[str, np.memmap] = {}
        self._staged_meta: Optional[dict] = None

    def _path(self, name: str) -> Path:
        return self.home / f"{name}.bin"

    def _map(self, name: str, size: int, dtype) -> np.ndarray:
        """(Re)map ``name`` at exactly ``size`` logical elements.

        The file holds ``max(size, 1)`` elements (mmap rejects empty
        files); the returned array is sliced to ``size`` so the matrix's
        growth arithmetic (``2 * arr.size``) matches the heap backend
        exactly.
        """
        dtype = np.dtype(dtype)
        path = self._path(name)
        with open(path, "ab"):
            pass  # ensure existence without clobbering
        os.truncate(path, max(size, 1) * dtype.itemsize)
        mm = np.memmap(path, dtype=dtype, mode="r+")
        self._maps[name] = mm
        return mm[:size]

    def new(self, name: str, size: int, dtype, fill=0) -> np.ndarray:
        path = self._path(name)
        if path.exists():
            os.truncate(path, 0)  # fresh array: drop stale content
        arr = self._map(name, size, dtype)
        if fill != 0:
            arr[:] = fill
        return arr

    def resize(self, name: str, arr: np.ndarray, size: int, keep: int,
               fill=0) -> np.ndarray:
        # ftruncate preserves [0:keep] in place and zero-fills any region
        # beyond the old extent; only a non-zero fill needs explicit writes
        new = self._map(name, size, arr.dtype)
        if fill != 0 and size > keep:
            new[keep:] = fill
        return new

    def put_meta(self, meta: dict) -> None:
        self._staged_meta = dict(meta)

    def get_meta(self) -> Optional[dict]:
        path = self.home / _META
        if not path.exists():
            return None
        with open(path) as fh:
            return json.load(fh)

    def open_array(self, name: str, dtype) -> np.ndarray:
        path = self._path(name)
        if not path.exists():
            raise ReproError(f"mmap arena {self.home} has no array {name!r}")
        mm = np.memmap(path, dtype=np.dtype(dtype), mode="r+")
        self._maps[name] = mm
        return mm

    def flush(self) -> None:
        if self._staged_meta is None:
            raise ReproError("flush before put_meta: nothing to commit")
        _fire_fault(CRASH_ARENA_FLUSH, path=str(self.home), backend=self.backend)
        for mm in self._maps.values():
            mm.flush()
        tmp = self.home / (_META + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(self._staged_meta, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.rename(tmp, self.home / _META)

    def nbytes(self) -> int:
        return sum(
            p.stat().st_size for p in self.home.glob("*.bin")
        )

    def snapshot_to(self, dest) -> None:
        if not (self.home / _META).exists():
            raise ReproError(f"snapshot of unflushed mmap arena {self.home}")
        dest = Path(dest)
        dest.mkdir(parents=True, exist_ok=True)
        for src in sorted(self.home.iterdir()):
            if src.name == _META or src.suffix == ".bin":
                shutil.copy2(src, dest / src.name)

    def adopt_from(self, src) -> None:
        src = Path(src)
        if not (src / _META).exists():
            raise ReproError(f"{src} holds no flushed mmap arena to adopt")
        self._maps.clear()
        self._staged_meta = None
        shutil.rmtree(self.home, ignore_errors=True)
        shutil.copytree(src, self.home)

    def close(self) -> None:
        self._maps.clear()
