"""The durable oracle: arenas committed to SQLite, SQL-queryable.

:class:`SqliteArena` keeps the live arrays on the heap (mutation speed is
heap-identical), and :meth:`flush` commits the whole arena state in one
transaction:

``arrays(name, dtype, size, data)``
    Every array, bit-exact, as a blob -- what :meth:`open_array` restores
    from, so a reopened matrix is indistinguishable from the flushed one
    (free lists, slack and all).

``meta(key, value)``
    The staged metadata blob as JSON under key ``"meta"``.

``entries(row, col, val)``
    A *relational mirror* of the logical matrix content, decoded from
    the arena layout at commit time.  This is what makes the backend an
    oracle: any external SQL client can ``SELECT row, col FROM entries``
    and cross-check the fast backends without importing this codebase --
    the role SNIPPETS.md's relational-graph-store ADR argues for.

Slow by design (every flush rewrites the blobs); the property tests that
cross-check heap/mmap against it keep their streams small.
"""

from __future__ import annotations

import json
import shutil
import sqlite3
import threading
from pathlib import Path
from typing import Optional

import numpy as np

from repro.faults import fire as _fire_fault
from repro.storage import CRASH_ARENA_FLUSH, ArenaStorage
from repro.util.validation import ReproError

__all__ = ["SqliteArena"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS arrays (
    name TEXT PRIMARY KEY, dtype TEXT NOT NULL,
    size INTEGER NOT NULL, data BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS entries (row INTEGER, col INTEGER, val REAL);
"""

#: the arena arrays the relational mirror is decoded from
_LAYOUT = ("start", "len", "cols", "vals")


class SqliteArena(ArenaStorage):
    backend = "sqlite"
    persistent = True

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # the service snapshots from whichever thread applies the batch;
        # our own lock serialises access instead of sqlite's thread check
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._arrays: dict[str, np.ndarray] = {}
        self._staged_meta: Optional[dict] = None

    # -- live arrays: heap semantics ------------------------------------

    def new(self, name: str, size: int, dtype, fill=0) -> np.ndarray:
        dtype = np.dtype(dtype)
        arr = np.zeros(size, dtype) if fill == 0 else np.full(size, fill, dtype)
        self._arrays[name] = arr
        return arr

    def resize(self, name: str, arr: np.ndarray, size: int, keep: int,
               fill=0) -> np.ndarray:
        new = self.new(name, size, arr.dtype, fill)
        keep = min(keep, size)
        new[:keep] = arr[:keep]
        return new

    def put_meta(self, meta: dict) -> None:
        self._staged_meta = dict(meta)

    # -- durability ------------------------------------------------------

    def flush(self) -> None:
        if self._staged_meta is None:
            raise ReproError("flush before put_meta: nothing to commit")
        _fire_fault(CRASH_ARENA_FLUSH, path=str(self.path), backend=self.backend)
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM arrays")
            for name, arr in self._arrays.items():
                self._conn.execute(
                    "INSERT INTO arrays (name, dtype, size, data) VALUES (?,?,?,?)",
                    (name, arr.dtype.str, arr.size, arr.tobytes()),
                )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('meta', ?)",
                (json.dumps(self._staged_meta),),
            )
            self._conn.execute("DELETE FROM entries")
            self._conn.executemany(
                "INSERT INTO entries (row, col, val) VALUES (?,?,?)",
                self._logical_entries(),
            )

    def _logical_entries(self):
        """Decode (row, col, val) triples from the arena layout."""
        if not all(k in self._arrays for k in _LAYOUT):
            return []
        start, length = self._arrays["start"], self._arrays["len"]
        cols, vals = self._arrays["cols"], self._arrays["vals"]
        live = np.flatnonzero(length)
        if live.size == 0:
            return []
        lens = length[live]
        total = int(lens.sum())
        out_starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
        within = np.arange(total, dtype=np.int64) - np.repeat(out_starts, lens)
        idx = np.repeat(start[live], lens) + within
        rows = np.repeat(live, lens)
        return zip(
            rows.tolist(), cols[idx].tolist(),
            np.asarray(vals[idx], dtype=np.float64).tolist(),
        )

    def get_meta(self) -> Optional[dict]:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'meta'"
            ).fetchone()
        return json.loads(row[0]) if row else None

    def open_array(self, name: str, dtype) -> np.ndarray:
        with self._lock:
            row = self._conn.execute(
                "SELECT dtype, size, data FROM arrays WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            raise ReproError(f"sqlite arena {self.path} has no array {name!r}")
        stored_dtype, size, data = row
        if np.dtype(stored_dtype) != np.dtype(dtype):
            raise ReproError(
                f"array {name!r} stored as {stored_dtype}, requested {np.dtype(dtype)}"
            )
        arr = np.frombuffer(data, dtype=np.dtype(dtype)).copy()
        if arr.size != size:
            raise ReproError(
                f"array {name!r} blob holds {arr.size} elements, meta says {size}"
            )
        self._arrays[name] = arr
        return arr

    def nbytes(self) -> int:
        live = sum(a.nbytes for a in self._arrays.values())
        db = self.path.stat().st_size if self.path.exists() else 0
        return live + db

    def snapshot_to(self, dest) -> None:
        dest = Path(dest)
        dest.mkdir(parents=True, exist_ok=True)
        with self._lock:
            shutil.copy2(self.path, dest / "arena.db")

    def adopt_from(self, src) -> None:
        src = Path(src) / "arena.db"
        if not src.exists():
            raise ReproError(f"{src} holds no sqlite arena to adopt")
        with self._lock:
            self._conn.close()
            shutil.copy2(src, self.path)
            self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
            self._arrays.clear()
            self._staged_meta = None

    def close(self) -> None:
        with self._lock:
            self._conn.close()
