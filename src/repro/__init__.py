"""repro -- an incremental GraphBLAS solution for the TTC 2018 Social Media case study.

A complete, pure-Python reproduction of Elekes & Szárnyas (2020) -- the
GraphBLAS substrate, the LAGraph algorithm layer, the case-study data
model and generators, the paper's batch and incremental query algorithms,
the NMF reference baseline, and the benchmark framework regenerating the
paper's Fig. 5 and Table II -- grown, per ``ROADMAP.md``, into a serving
system: streaming ingest with crash recovery, rebuild-free dynamic
storage, row-parallel kernels, online graph analytics, and
hash-partitioned sharded serving with exact scatter-gather top-k.

Layer map (see DESIGN.md for the full inventory):

=====================  =====================================================
``repro.graphblas``    sparse linear algebra over semirings (GrB_* API),
                       DynamicMatrix updatable storage, and row-parallel
                       kernel execution (``REPRO_WORKERS`` forks a kernel
                       worker pool; large SpGEMM/SpMV/reduce/merge kernels
                       fan out over nnz-balanced row blocks)
``repro.lagraph``      FastSV CC, BFS, PageRank, triangles, SSSP, CDLP,
                       k-core, k-truss, LCC, betweenness, SCC, incremental
                       CC, plus ``online``: uniform servable entry points
                       with on_delta incremental maintainers
``repro.model``        SocialGraph (dynamic arenas + dirty-row freeze, or
                       legacy matrix log-flush), ChangeSets incl. removals,
                       CSV + EMF/XMI IO
``repro.queries``      Q1/Q2 batch + incremental (the paper's contribution)
                       and the EngineBase serving protocol
``repro.nmf``          reference baseline: object-graph traversal (batch)
                       and a dynamic dependency graph engine (incremental)
``repro.datagen``      LDBC-style synthetic graphs (Table II targets)
``repro.parallel``     executors; "8 threads" = fork-once pool + /dev/shm,
                       doubling as the kernel-layer worker pool
``repro.benchmark``    TTC phase harness, Fig. 5 / Table II / contest logs
``repro.analytics``    the lagraph algorithms as servable, incrementally
                       maintained analytics engines (policy-driven: exact
                       incremental or dirty-threshold recompute)
``repro.serving``      GraphService: micro-batched streaming ingest of
                       query + analytics engines, O(1) cached reads,
                       snapshot + change-log crash recovery, concurrent
                       engine fan-out
``repro.sharding``     ShardedGraphService: K hash-partitioned shards
                       behind a router (``REPRO_SHARDS``) -- router WAL,
                       versioned consistency barrier, exact scatter-gather
                       merge of per-shard partials, orchestrated recovery
``repro.replication``  ReplicatedGraphService: leader + WAL-shipping read
                       replicas (``REPRO_REPLICAS``) -- bounded-staleness
                       replica reads, epoch-fenced ``promote()`` failover
``repro.faults``       deterministic fault injection: named crash points,
                       explicit FaultPlan schedules (no RNG)
=====================  =====================================================

Quick start (see README.md)::

    from repro import GraphService
    from repro.model.changes import AddFriendship, AddUser

    svc = GraphService(analytics=("components", "pagerank"))
    svc.submit([AddUser(1), AddUser(2), AddFriendship(1, 2)])
    svc.flush()
    print(svc.query("Q1").result_string, svc.query("components").top)
    svc.close()
"""

from repro.analytics import ANALYTICS_NAMES, AnalyticsEngine, make_analytics_engine
from repro.model import ChangeSet, SocialGraph
from repro.queries import (
    Q1Batch,
    Q1Incremental,
    Q2Batch,
    Q2Incremental,
    QueryEngine,
    make_engine,
)
from repro.replication import ReplicatedGraphService
from repro.serving import GraphService
from repro.sharding import ShardedGraphService

__version__ = "1.4.0"

__all__ = [
    "SocialGraph",
    "ChangeSet",
    "Q1Batch",
    "Q1Incremental",
    "Q2Batch",
    "Q2Incremental",
    "QueryEngine",
    "make_engine",
    "AnalyticsEngine",
    "make_analytics_engine",
    "ANALYTICS_NAMES",
    "GraphService",
    "ReplicatedGraphService",
    "ShardedGraphService",
    "__version__",
]
