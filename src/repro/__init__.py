"""repro -- an incremental GraphBLAS solution for the TTC 2018 Social Media case study.

A complete, pure-Python reproduction of Elekes & Szárnyas (2020): the
GraphBLAS substrate, the LAGraph algorithm layer (FastSV and friends), the
case-study data model and generators, the paper's batch and incremental
query algorithms, the NMF reference baseline, and the benchmark framework
that regenerates the paper's Fig. 5 and Table II.

Layer map (see DESIGN.md for the full inventory):

=====================  =====================================================
``repro.graphblas``    sparse linear algebra over semirings (GrB_* API),
                       plus DynamicMatrix updatable storage
``repro.lagraph``      FastSV CC, BFS, PageRank, triangles, SSSP, CDLP,
                       k-core, k-truss, LCC, betweenness, SCC, incremental CC
``repro.model``        SocialGraph, ChangeSets, CSV + EMF/XMI IO
``repro.queries``      Q1/Q2 batch + incremental (the paper's contribution)
``repro.nmf``          reference baseline: object-graph traversal (batch)
                       and a dynamic dependency graph engine (incremental)
``repro.datagen``      LDBC-style synthetic graphs (Table II targets)
``repro.parallel``     executors; "8 threads" = fork-once pool + /dev/shm
``repro.benchmark``    TTC phase harness, Fig. 5 / Table II / contest logs
``repro.serving``      GraphService: micro-batched streaming ingest, O(1)
                       cached reads, snapshot + change-log crash recovery
=====================  =====================================================

Quick start::

    from repro import SocialGraph, Q1Batch
    g = SocialGraph()
    g.add_user(1); g.add_post(10, timestamp=0, user_id=1)
    print(Q1Batch(g).evaluate())
"""

from repro.model import ChangeSet, SocialGraph
from repro.queries import (
    Q1Batch,
    Q1Incremental,
    Q2Batch,
    Q2Incremental,
    QueryEngine,
    make_engine,
)
from repro.serving import GraphService

__version__ = "1.1.0"

__all__ = [
    "SocialGraph",
    "ChangeSet",
    "Q1Batch",
    "Q1Incremental",
    "Q2Batch",
    "Q2Incremental",
    "QueryEngine",
    "make_engine",
    "GraphService",
    "__version__",
]
