"""User/content partitioning for the sharded serving layer.

The router (:class:`repro.sharding.ShardedGraphService`) splits the model
across K shards along two axes:

* **Users are hash-partitioned**: :func:`shard_of` maps an external user id
  to its *owner* shard.  Ownership governs which shard's analytics partial
  reports a user (so per-shard partials are disjoint and their merge is
  exact -- see :mod:`repro.sharding.merge`), not which shards know about
  the user: ``AddUser`` / ``Add-``/``RemoveFriendship`` changes are
  replicated to every shard, because Q2 scores a comment by friendships
  among its likers and a liker can live anywhere.  The friends graph is by
  far the smallest relation of the workload (Table II: likes outnumber
  friendships ~10:1 at every scale factor), which is what makes
  replication the right trade -- the same call LDBC-style systems make for
  small dimension tables.

* **Content is hash-partitioned by root post**: a post lives on
  ``shard_of(post_id)``, and its entire comment tree plus every like on
  those comments follow it.  Both queries score content whose inputs
  (comment counts, like counts, liker-induced friend subgraphs) are then
  entirely shard-local, so per-shard Q1/Q2 scores are *exact* and the
  global top-k is a pure merge of per-shard top-k partials.

:func:`partition_graph` applies the same split to an already-built
:class:`~repro.model.graph.SocialGraph` (the router's initial-load path).
"""

from __future__ import annotations

import numpy as np

from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
)
from repro.model.graph import SocialGraph

__all__ = ["shard_of", "shard_of_array", "partition_graph"]

#: splitmix64's multiplicative constant -- one 64-bit mix is enough to
#: decorrelate the (often sequential) external ids from the modulus
_MIX = np.uint64(0x9E3779B97F4A7C15)
_SHIFT = np.uint64(31)
_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def shard_of(external_id: int, num_shards: int) -> int:
    """Owner shard of one external id (user or post), in ``[0, num_shards)``.

    Deterministic and shared by the router, the analytics partials, and
    recovery -- the partition IS this function.

    >>> shard_of(42, 1)
    0
    >>> all(0 <= shard_of(i, 4) < 4 for i in range(100))
    True
    """
    if num_shards == 1:
        return 0
    x = (int(external_id) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x % num_shards


def shard_of_array(external_ids: np.ndarray, num_shards: int) -> np.ndarray:
    """Vectorised :func:`shard_of` over an array of external ids."""
    if num_shards == 1:
        return np.zeros(np.asarray(external_ids).size, dtype=np.int64)
    with np.errstate(over="ignore"):  # uint64 wraparound is the mix
        x = (np.asarray(external_ids).astype(np.uint64) * _MIX) & _MASK
    x ^= x >> _SHIFT
    return (x % np.uint64(num_shards)).astype(np.int64)


def partition_graph(
    graph: SocialGraph, num_shards: int
) -> tuple[list[SocialGraph], dict[int, int], dict[int, int]]:
    """Split an initial graph into per-shard graphs plus routing tables.

    Returns ``(shard_graphs, post_shard, comment_shard)`` where the dicts
    map external content ids to their owner shard.  With ``num_shards ==
    1`` the input graph is passed through *by reference* (no replay), so a
    single-shard router is bit-identical to an unsharded service over the
    same graph object.

    Users and friendships are replayed onto every shard **in the original
    internal-index order**, so every shard's user
    :class:`~repro.model.entities.IdMap` is identical to the unsharded
    one -- the property the analytics merge's internal-index tie-breaks
    rely on.
    """
    post_shard: dict[int, int] = {}
    comment_shard: dict[int, int] = {}
    for p in graph.posts.external_array().tolist():
        post_shard[p] = shard_of(p, num_shards)
    roots = graph.comment_root_posts()
    post_ext = graph.posts.external_array()
    for i, c in enumerate(graph.comments.external_array().tolist()):
        comment_shard[c] = post_shard[int(post_ext[roots[i]])]

    if num_shards == 1:
        return [graph], post_shard, comment_shard

    shards = [SocialGraph(storage=graph.storage_spec) for _ in range(num_shards)]
    for ch in graph.to_change_stream():
        if isinstance(ch, (AddUser, AddFriendship)):
            targets = range(num_shards)
        elif isinstance(ch, AddPost):
            targets = (post_shard[ch.post_id],)
        elif isinstance(ch, AddComment):
            targets = (comment_shard[ch.comment_id],)
        elif isinstance(ch, AddLike):
            targets = (comment_shard[ch.comment_id],)
        else:  # pragma: no cover - to_change_stream emits only Add* kinds
            raise AssertionError(f"unexpected change {ch!r}")
        for s in targets:
            _apply_one(shards[s], ch)
    return shards, post_shard, comment_shard


def _apply_one(g: SocialGraph, ch) -> None:
    if isinstance(ch, AddUser):
        g.add_user(ch.user_id, ch.name)
    elif isinstance(ch, AddPost):
        g.add_post(ch.post_id, ch.timestamp, ch.user_id)
    elif isinstance(ch, AddComment):
        g.add_comment(ch.comment_id, ch.timestamp, ch.user_id, ch.parent_id)
    elif isinstance(ch, AddLike):
        g.add_like(ch.user_id, ch.comment_id)
    elif isinstance(ch, AddFriendship):
        g.add_friendship(ch.user1_id, ch.user2_id)
